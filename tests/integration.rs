//! Cross-crate integration tests: whole simulations exercising the event
//! engine, network model, transport, AQMs and harness together.

use ecn_sharp::aqm::DctcpRed;
use ecn_sharp::core::{EcnSharp, EcnSharpConfig};
use ecn_sharp::experiments::{run_testbed_star, FctScenario, Scheme};
use ecn_sharp::net::topology::star;
use ecn_sharp::net::{FlowCmd, FlowId, PortConfig};
use ecn_sharp::sim::{Duration, Rate, SimTime};
use ecn_sharp::transport::{TcpConfig, TcpStack};
use ecn_sharp::workload::dists;
use ecnsharp_aqm::{Aqm, DropTail};

/// Identical seeds must give bit-identical experiment outcomes across the
/// whole stack (workload generation, ECMP, transport, AQM).
#[test]
fn whole_experiment_is_deterministic() {
    let run = || {
        let sc = FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.5, 80, 1234);
        let (fct, stats) = run_testbed_star(&sc);
        (
            (fct.overall.avg * 1e18) as u64,
            (fct.overall.p99 * 1e18) as u64,
            stats.enqueued,
            stats.total_marks(),
        )
    };
    assert_eq!(run(), run());
}

/// Different seeds must actually change the workload (guards against a
/// pinned RNG).
#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let sc = FctScenario::testbed(Scheme::DctcpRedTail, dists::web_search(), 0.5, 60, seed);
        (run_testbed_star(&sc).0.overall.avg * 1e15) as u64
    };
    assert_ne!(run(1), run(2));
}

/// The paper's central mechanism end-to-end: with long-lived small-RTT
/// flows holding a standing queue under a tail-RTT threshold, ECN♯ drains
/// the queue (short probes get much faster) while the long flows keep
/// their throughput.
#[test]
fn ecnsharp_drains_standing_queue_without_throughput_loss() {
    /// Run the standing-queue scenario with the given switch AQM; return
    /// (probe FCT average in seconds, average queue in packets).
    fn measure(make: fn() -> Box<dyn Aqm>) -> (f64, f64) {
        let rate = Rate::from_gbps(10);
        let mut topo = star(
            3,
            4,
            rate,
            Duration::from_micros(17),
            |_| TcpStack::boxed(TcpConfig::dctcp()),
            || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
            || PortConfig::fifo(1_000_000, make()),
        );
        let receiver = topo.hosts[3];
        for (i, extra_us) in [0u64, 140].into_iter().enumerate() {
            topo.net.schedule_flow(
                SimTime::ZERO,
                FlowCmd {
                    flow: FlowId(1 + i as u64),
                    src: topo.hosts[i],
                    dst: receiver,
                    size: 100_000_000,
                    class: 0,
                    extra_delay: Duration::from_micros(extra_us),
                },
            );
        }
        for k in 0..10u64 {
            topo.net.schedule_flow(
                SimTime::from_millis(40 + k * 3),
                FlowCmd {
                    flow: FlowId(100 + k),
                    src: topo.hosts[2],
                    dst: receiver,
                    size: 20_000,
                    class: 0,
                    extra_delay: Duration::ZERO,
                },
            );
        }
        let bport = topo.net.port_towards(topo.switch, receiver).unwrap();
        topo.net.add_queue_monitor(
            topo.switch,
            bport,
            Duration::from_micros(100),
            SimTime::from_millis(40),
            SimTime::from_millis(75),
        );
        topo.net.run_until(SimTime::from_millis(80));
        let probes: Vec<f64> = topo
            .net
            .records()
            .iter()
            .filter(|r| r.flow.0 >= 100)
            .map(|r| r.fct().as_secs_f64())
            .collect();
        assert!(!probes.is_empty());
        let probe_avg = probes.iter().sum::<f64>() / probes.len() as f64;
        let m = &topo.net.monitors()[0];
        let q_avg =
            m.samples.iter().map(|&(_, _, p)| p as f64).sum::<f64>() / m.samples.len() as f64;
        (probe_avg, q_avg)
    }

    let (red_probe, red_q) = measure(|| Box::new(DctcpRed::with_threshold(250_000)));
    let (sharp_probe, sharp_q) = measure(|| {
        Box::new(EcnSharp::new(EcnSharpConfig::new(
            Duration::from_micros(200),
            Duration::from_micros(20),
            Duration::from_micros(200),
        )))
    });
    assert!(
        sharp_q < red_q / 2.0,
        "ECN# queue {sharp_q:.1} pkts should be well below RED-Tail's {red_q:.1}"
    );
    assert!(
        sharp_probe < red_probe * 0.8,
        "ECN# probes {sharp_probe:.6}s vs RED {red_probe:.6}s"
    );
}

/// The Tofino pipeline, dropped into a live network as the switch AQM,
/// produces experiment results equivalent to the reference algorithm.
#[test]
fn tofino_pipeline_matches_reference_in_network() {
    let run = |scheme: Scheme| {
        let sc = FctScenario::testbed(scheme, dists::web_search(), 0.5, 120, 77);
        run_testbed_star(&sc).0
    };
    let sw = run(Scheme::EcnSharp(None));
    let hw = run(Scheme::EcnSharpTofino);
    let rel = (sw.overall.avg - hw.overall.avg).abs() / sw.overall.avg;
    assert!(
        rel < 0.05,
        "reference {:.1}us vs pipeline {:.1}us ({:.1}% apart)",
        sw.overall.avg * 1e6,
        hw.overall.avg * 1e6,
        rel * 100.0
    );
}

/// The queue-length flavour of ECN♯ behaves like the sojourn flavour on a
/// FIFO port (signal equivalence, §3.2).
#[test]
fn qlen_flavour_equivalent_on_fifo() {
    let run = |scheme: Scheme| {
        let sc = FctScenario::testbed(scheme, dists::web_search(), 0.6, 120, 78);
        run_testbed_star(&sc).0
    };
    let soj = run(Scheme::EcnSharp(None));
    let qlen = run(Scheme::EcnSharpQlen);
    let rel = (soj.overall.avg - qlen.overall.avg).abs() / soj.overall.avg;
    assert!(rel < 0.15, "sojourn vs qlen diverge by {:.1}%", rel * 100.0);
}

/// Fault injection end-to-end: with lossy switch ports, every flow still
/// completes (retransmission machinery) and FCTs remain finite.
#[test]
fn lossy_fabric_still_completes_all_flows() {
    let rate = Rate::from_gbps(10);
    let mut topo = star(
        9,
        4,
        rate,
        Duration::from_micros(10),
        |_| TcpStack::boxed(TcpConfig::dctcp()),
        || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
        || PortConfig::fifo(1_000_000, Box::new(DropTail::new())).with_fault_drop(0.005),
    );
    let receiver = topo.hosts[3];
    for k in 0..30u64 {
        topo.net.schedule_flow(
            SimTime::from_micros(k * 50),
            FlowCmd {
                flow: FlowId(k),
                src: topo.hosts[(k % 3) as usize],
                dst: receiver,
                size: 50_000,
                class: 0,
                extra_delay: Duration::ZERO,
            },
        );
    }
    topo.net.run_until_idle();
    assert_eq!(topo.net.records().len(), 30, "all flows must complete");
    assert_eq!(topo.net.unfinished_flows(), 0);
}
