//! # ecn-sharp
//!
//! A from-scratch Rust reproduction of **“Enabling ECN for Datacenter
//! Networks with RTT Variations”** (Zhang, Bai, Chen — CoNEXT 2019): the
//! **ECN♯** switch AQM, together with every substrate its evaluation needs
//! — a deterministic packet-level datacenter network simulator, a DCTCP
//! transport, the baseline AQMs (DCTCP-RED, classic RED, CoDel, TCN, PIE),
//! multi-queue packet schedulers (DWRR et al.), production workload
//! generators, a Tofino match-action-pipeline emulation of the §4 hardware
//! implementation, and a harness regenerating every table and figure of
//! the paper.
//!
//! This crate is the facade: it re-exports all workspace crates under one
//! name. Use the individual `ecnsharp-*` crates directly when you need
//! only a piece.
//!
//! ```
//! use ecn_sharp::core::{EcnSharp, EcnSharpConfig, MarkReason};
//! use ecn_sharp::sim::{Duration, SimTime};
//!
//! // The heart of the paper in three lines: instantaneous marking above a
//! // high-percentile-RTT target, conservative marking on persistent
//! // queues above a small target.
//! let mut marker = EcnSharp::new(EcnSharpConfig::paper_testbed());
//! let decision = marker.decide(SimTime::ZERO, Duration::from_micros(300));
//! assert_eq!(decision, MarkReason::Instantaneous);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Discrete-event engine: time, rates, RNG, event queue.
pub use ecnsharp_sim as sim;

/// AQM trait and baseline schemes.
pub use ecnsharp_aqm as aqm;

/// ECN♯ itself (Algorithm 1, sojourn and queue-length flavours).
pub use ecnsharp_core as core;

/// Tofino hardware-model emulation (§4).
pub use ecnsharp_tofino as tofino;

/// Packet schedulers (FIFO, DWRR, strict priority, RR).
pub use ecnsharp_sched as sched;

/// The network model: packets, ports, switches, hosts, topologies.
pub use ecnsharp_net as net;

/// Typed telemetry events, subscribers, histograms and sinks.
pub use ecnsharp_telemetry as telemetry;

/// DCTCP / ECN-TCP endpoint transport.
pub use ecnsharp_transport as transport;

/// Workloads: CDFs, Poisson traffic, incast, RTT variation.
pub use ecnsharp_workload as workload;

/// Metrics: FCT breakdowns, queue series, tables.
pub use ecnsharp_stats as stats;

/// The paper's evaluation harness (figures/tables).
pub use ecnsharp_experiments as experiments;
