//! The statically-dispatched [`Subscriber`] trait.
//!
//! Modeled on s2n-quic's `event::Subscriber`: one default-no-op method per
//! event, delivered by value of a shared reference, dispatched through a
//! generic parameter (never a trait object) so the compiler can inline and
//! fold the whole delivery path. The associated `ENABLED` constant lets
//! emission sites guard event *construction* too:
//!
//! ```ignore
//! if S::ENABLED {
//!     sub.on_packet_dropped(&meta, &ev); // not even built for Noop
//! }
//! ```
//!
//! [`NoopSubscriber`] sets `ENABLED = false`, so with the default
//! subscriber every emission site is `if false { .. }` — dead code the
//! optimizer removes entirely (the `telemetry_noop` bench group pins this).
//!
//! Subscribers compose as tuples: `(metrics, (histograms, timeline))` is a
//! subscriber that fans every event out to all three, still statically
//! dispatched.

use crate::event::{
    AlphaUpdated, CeMarked, CwndUpdated, EpisodeEntered, EpisodeExited, FlowCompleted,
    LinkStateChanged, Meta, PacketDropped, PacketEnqueued, RtoFired, SojournSampled,
};

/// A consumer of simulation telemetry events.
///
/// All methods default to no-ops; implement only what you need. Methods
/// take `&mut self` — subscribers are owned by the network and accumulate
/// state across the run. Implementations must be deterministic given the
/// event sequence (no clocks, no ambient randomness, no hash-order
/// iteration) so that attaching one never perturbs simulation results and
/// two identical runs produce identical output.
pub trait Subscriber: Send + 'static {
    /// Whether emission sites should construct and deliver events at all.
    /// Leave at `true` for real subscribers; only [`NoopSubscriber`] (and
    /// tuples of no-ops) set it to `false`.
    const ENABLED: bool = true;

    /// A packet was admitted to an egress queue.
    #[inline]
    fn on_packet_enqueued(&mut self, meta: &Meta, ev: &PacketEnqueued) {
        let _ = (meta, ev);
    }

    /// A packet was discarded.
    #[inline]
    fn on_packet_dropped(&mut self, meta: &Meta, ev: &PacketDropped) {
        let _ = (meta, ev);
    }

    /// A packet had its CE codepoint set.
    #[inline]
    fn on_ce_marked(&mut self, meta: &Meta, ev: &CeMarked) {
        let _ = (meta, ev);
    }

    /// A dequeued packet's sojourn time was measured.
    #[inline]
    fn on_sojourn_sampled(&mut self, meta: &Meta, ev: &SojournSampled) {
        let _ = (meta, ev);
    }

    /// An ECN♯ persistent-marking episode began.
    #[inline]
    fn on_episode_entered(&mut self, meta: &Meta, ev: &EpisodeEntered) {
        let _ = (meta, ev);
    }

    /// An ECN♯ persistent-marking episode ended.
    #[inline]
    fn on_episode_exited(&mut self, meta: &Meta, ev: &EpisodeExited) {
        let _ = (meta, ev);
    }

    /// A sender's congestion window changed.
    #[inline]
    fn on_cwnd_updated(&mut self, meta: &Meta, ev: &CwndUpdated) {
        let _ = (meta, ev);
    }

    /// A DCTCP sender updated `alpha`.
    #[inline]
    fn on_alpha_updated(&mut self, meta: &Meta, ev: &AlphaUpdated) {
        let _ = (meta, ev);
    }

    /// A retransmission timeout fired.
    #[inline]
    fn on_rto_fired(&mut self, meta: &Meta, ev: &RtoFired) {
        let _ = (meta, ev);
    }

    /// A link changed administrative state.
    #[inline]
    fn on_link_state_changed(&mut self, meta: &Meta, ev: &LinkStateChanged) {
        let _ = (meta, ev);
    }

    /// A flow finished (completed or aborted).
    #[inline]
    fn on_flow_completed(&mut self, meta: &Meta, ev: &FlowCompleted) {
        let _ = (meta, ev);
    }
}

/// The do-nothing subscriber: `ENABLED = false`, so every emission site
/// guarded by `S::ENABLED` compiles to nothing. This is the default
/// subscriber of `Network`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    const ENABLED: bool = false;
}

macro_rules! forward_pair {
    ($($method:ident($ev:ty)),+ $(,)?) => {
        $(
            #[inline]
            fn $method(&mut self, meta: &Meta, ev: &$ev) {
                self.0.$method(meta, ev);
                self.1.$method(meta, ev);
            }
        )+
    };
}

/// Tuple composition: deliver every event to both members, in order.
/// Nest tuples for wider fan-out: `(a, (b, c))`.
impl<A: Subscriber, B: Subscriber> Subscriber for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    forward_pair! {
        on_packet_enqueued(PacketEnqueued),
        on_packet_dropped(PacketDropped),
        on_ce_marked(CeMarked),
        on_sojourn_sampled(SojournSampled),
        on_episode_entered(EpisodeEntered),
        on_episode_exited(EpisodeExited),
        on_cwnd_updated(CwndUpdated),
        on_alpha_updated(AlphaUpdated),
        on_rto_fired(RtoFired),
        on_link_state_changed(LinkStateChanged),
        on_flow_completed(FlowCompleted),
    }
}

/// A [`Subscriber`] that can be split across simulation shards and
/// deterministically recombined.
///
/// The sharded engine gives every shard a fork of the run's subscriber;
/// each fork sees exactly the events of its shard's nodes. After the run,
/// forks are merged back **in shard-index order**, so the merged result is
/// a pure function of the per-shard event streams — independent of thread
/// scheduling. Aggregate subscribers (counters, histograms) are natural
/// fits: their merge is commutative, so they are additionally independent
/// of the shard *count* whenever the underlying event multiset is.
/// Stream-order subscribers (e.g. JSONL writers) cannot implement this
/// trait meaningfully and are rejected by the sharded entry points at
/// compile time.
pub trait ShardSubscriber: Subscriber + Sized {
    /// An empty subscriber for shard `shard`, configured compatibly with
    /// `self` (same precision, same registry, ...).
    fn fork_shard(&self, shard: usize) -> Self;

    /// Fold a shard's fork back into the run-level subscriber. Called once
    /// per fork, in ascending shard index.
    fn merge_shard(&mut self, child: Self);
}

impl ShardSubscriber for NoopSubscriber {
    fn fork_shard(&self, _shard: usize) -> Self {
        NoopSubscriber
    }

    fn merge_shard(&mut self, _child: Self) {}
}

impl<A: ShardSubscriber, B: ShardSubscriber> ShardSubscriber for (A, B) {
    fn fork_shard(&self, shard: usize) -> Self {
        (self.0.fork_shard(shard), self.1.fork_shard(shard))
    }

    fn merge_shard(&mut self, child: Self) {
        self.0.merge_shard(child.0);
        self.1.merge_shard(child.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;
    use ecnsharp_sim::SimTime;

    struct Counting(u64);
    impl Subscriber for Counting {
        fn on_packet_dropped(&mut self, _meta: &Meta, _ev: &PacketDropped) {
            self.0 += 1;
        }
    }

    #[test]
    // The whole point is that these are compile-time constants.
    #[allow(clippy::assertions_on_constants)]
    fn noop_is_disabled_and_real_subscribers_are_enabled() {
        assert!(!NoopSubscriber::ENABLED);
        assert!(Counting::ENABLED);
        assert!(<(Counting, NoopSubscriber)>::ENABLED);
        assert!(!<(NoopSubscriber, NoopSubscriber)>::ENABLED);
    }

    #[test]
    fn tuple_fans_out_to_both_members() {
        let meta = Meta {
            at: SimTime::ZERO,
            node: 3,
        };
        let ev = PacketDropped {
            port: 0,
            flow: 1,
            seq: 0,
            payload: 1460,
            wire_bytes: 1500,
            reason: DropReason::Tail,
        };
        let mut pair = (Counting(0), (Counting(0), NoopSubscriber));
        pair.on_packet_dropped(&meta, &ev);
        pair.on_packet_dropped(&meta, &ev);
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0 .0, 2);
    }
}
