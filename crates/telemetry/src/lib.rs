//! # ecnsharp-telemetry
//!
//! The observability layer of the ECN♯ reproduction: typed simulation
//! events and statically-dispatched subscribers, modeled on s2n-quic's
//! `event::Subscriber` pattern.
//!
//! - [`event`] — the event catalogue ([`PacketEnqueued`],
//!   [`PacketDropped`] with a [`DropReason`], [`CeMarked`],
//!   [`SojournSampled`], [`EpisodeEntered`]/[`EpisodeExited`],
//!   [`CwndUpdated`], [`AlphaUpdated`], [`RtoFired`],
//!   [`LinkStateChanged`], [`FlowCompleted`]);
//! - [`subscribe`] — the [`Subscriber`] trait, the zero-cost
//!   [`NoopSubscriber`], and tuple composition;
//! - [`metrics`] — [`MetricsAggregator`], counters/gauges keyed by the
//!   static [`METRIC_NAMES`] registry (no hash maps, no default hashers);
//! - [`hist`] — [`LogLinearHistogram`], a deterministic HDR-style
//!   histogram over `u64` values with documented quantile error bounds,
//!   mergeable across `parallel_map` workers;
//! - [`timeline`] — [`TimelineSampler`], per-port queue/sojourn and
//!   per-flow cwnd/alpha CSV series on a **sim-event-driven** cadence
//!   (never the wall clock);
//! - [`json`] — [`JsonlWriter`], a qlog-style JSON-lines structured
//!   writer over any `io::Write` sink.
//!
//! All event ids are raw integers (`u64` node/flow/port numbers) so this
//! crate sits *below* `ecnsharp-net` in the dependency graph: the network
//! emits events, subscribers consume them, and nothing here can reach back
//! into simulation state.
//!
//! Every subscriber is deterministic given the event sequence; none of
//! them reads clocks, environment, or ambient randomness. Emission in the
//! simulator is guarded by `Subscriber::ENABLED` so that the no-op
//! subscriber compiles down to nothing (verified by the `telemetry_noop`
//! bench group; see OBSERVABILITY.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod subscribe;
pub mod timeline;

pub use event::{
    AlphaUpdated, CeMarked, CwndUpdated, DropReason, EpisodeEntered, EpisodeExited, FlowCompleted,
    LinkStateChanged, MarkSite, Meta, PacketDropped, PacketEnqueued, RtoFired, SojournSampled,
    TransportEvent,
};
pub use hist::{HistogramRecorder, LogLinearHistogram, PrecisionMismatch, FCT_BUCKET_NAMES};
pub use json::JsonlWriter;
pub use metrics::{Metric, MetricsAggregator, METRIC_COUNT, METRIC_NAMES};
pub use subscribe::{NoopSubscriber, ShardSubscriber, Subscriber};
pub use timeline::TimelineSampler;

// Compile-time shard-safety proofs: subscribers travel with their
// `Network` across worker threads, and per-shard recorders are merged on
// the host thread (ROADMAP item 1). Lint rules R7/R8 guard the source
// text; these assertions guard the types themselves.
const fn assert_send<T: Send>() {}
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<JsonlWriter<std::io::Sink>>();
    assert_send_sync::<MetricsAggregator>();
    assert_send_sync::<HistogramRecorder>();
    assert_send_sync::<NoopSubscriber>();
};
