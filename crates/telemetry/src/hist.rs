//! Deterministic log-linear histograms (HDR-style) over `u64` values.
//!
//! [`LogLinearHistogram`] buckets values on a hybrid scale: exact below
//! `2^p` (one bucket per value), then `2^p` sub-buckets per power of two —
//! so every bucket's width is at most `2^-p` of its lower bound and any
//! reported quantile has **relative error ≤ 2^-p** (≈ 0.8% at the default
//! precision of 7 bits). Bucket boundaries depend only on the precision,
//! never on the data, which makes histograms from `parallel_map` workers
//! mergeable by plain element-wise addition — merging is associative,
//! commutative, and lossless.
//!
//! [`HistogramRecorder`] is the [`Subscriber`] packaging: sojourn time,
//! queue depth, and flow-completion time split across the paper's flow
//! size buckets.

use crate::event::{FlowCompleted, Meta, PacketEnqueued, SojournSampled};
use crate::subscribe::Subscriber;

/// Merge attempted between histograms of different precision.
///
/// Bucket layouts with different precision are incompatible; re-record or
/// construct both sides with the same precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionMismatch {
    /// Precision (bits) of the destination histogram.
    pub dst: u32,
    /// Precision (bits) of the source histogram.
    pub src: u32,
}

impl std::fmt::Display for PrecisionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge histograms of different precision ({} vs {} bits)",
            self.dst, self.src
        )
    }
}

impl std::error::Error for PrecisionMismatch {}

/// A deterministic log-linear histogram of `u64` values.
///
/// Values `v < 2^p` land in exact singleton buckets; larger values land in
/// one of `2^p` equal-width sub-buckets of their power-of-two range. The
/// full `u64` domain is covered (including `u64::MAX`); recording never
/// fails and never panics. Counts and the running sum saturate at
/// `u64::MAX` rather than wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLinearHistogram {
    precision: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Default precision: 7 bits = 128 sub-buckets per power of two,
/// relative quantile error ≤ 1/128 ≈ 0.79%, ~58 KiB of buckets.
pub const DEFAULT_PRECISION: u32 = 7;

/// Largest accepted precision (space bound: p = 10 is ~440 KiB).
const MAX_PRECISION: u32 = 10;

impl LogLinearHistogram {
    /// Create an empty histogram with `precision` sub-bucket bits,
    /// clamped to `1..=10`.
    pub fn with_precision(precision: u32) -> Self {
        let p = precision.clamp(1, MAX_PRECISION);
        // Exponents run p..=63, each contributing 2^p sub-buckets, plus
        // the 2^p singleton buckets below 2^p.
        let len = ((64 - p + 1) as usize) << p;
        LogLinearHistogram {
            precision: p,
            buckets: vec![0; len],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Create an empty histogram at [`DEFAULT_PRECISION`].
    pub fn new() -> Self {
        Self::with_precision(DEFAULT_PRECISION)
    }

    /// Sub-bucket bits of this histogram.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Upper bound on the relative error of any reported quantile:
    /// `2^-precision`.
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << self.precision) as f64
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(v);
        if let Some(b) = self.buckets.get_mut(idx) {
            *b = b.saturating_add(n);
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), or `None` if empty.
    ///
    /// Returns the upper bound of the bucket containing the rank
    /// `max(1, ceil(q·count))` observation, clamped to the recorded
    /// `[min, max]` — so the result is never below the true quantile and
    /// overshoots it by at most [`Self::relative_error_bound`] relative.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum = cum.saturating_add(n);
            if cum >= target {
                let (_, hi) = self.bounds_of(idx);
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge `other` into `self` (element-wise bucket addition). Both
    /// histograms must share the same precision. Merging is associative
    /// and commutative, so per-worker histograms can be folded in any
    /// order with identical results.
    pub fn merge(&mut self, other: &LogLinearHistogram) -> Result<(), PrecisionMismatch> {
        if self.precision != other.precision {
            return Err(PrecisionMismatch {
                dst: self.precision,
                src: other.precision,
            });
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }

    /// Iterate the non-empty buckets as `(lower, upper, count)` with
    /// inclusive value bounds, in ascending value order.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| {
                let (lo, hi) = self.bounds_of(idx);
                (lo, hi, n)
            })
    }

    /// CSV dump of the non-empty buckets: `lower,upper,count` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("lower,upper,count\n");
        for (lo, hi, n) in self.iter_buckets() {
            out.push_str(&format!("{lo},{hi},{n}\n"));
        }
        out
    }

    #[inline]
    fn index_of(&self, v: u64) -> usize {
        let p = self.precision;
        if v < (1u64 << p) {
            v as usize
        } else {
            let e = 63 - v.leading_zeros();
            let sub = (v >> (e - p)) & ((1u64 << p) - 1);
            ((u64::from(e - p + 1) << p) | sub) as usize
        }
    }

    fn bounds_of(&self, idx: usize) -> (u64, u64) {
        let p = self.precision;
        if idx < (1usize << p) {
            (idx as u64, idx as u64)
        } else {
            let e = (idx >> p) as u32 + p - 1;
            let sub = (idx & ((1usize << p) - 1)) as u64;
            let width = 1u64 << (e - p);
            let lo = (1u64 << e) | (sub * width);
            (lo, lo + (width - 1))
        }
    }
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Flow size class used to bucket completion times, matching the paper's
/// workload taxonomy: small (< 100 KB), medium (100 KB – 10 MB),
/// large (> 10 MB).
fn fct_bucket(bytes: u64) -> usize {
    if bytes < 100_000 {
        0
    } else if bytes <= 10_000_000 {
        1
    } else {
        2
    }
}

/// Names for the three FCT size buckets, index-aligned with
/// [`HistogramRecorder::fct`].
pub const FCT_BUCKET_NAMES: [&str; 3] = ["small", "medium", "large"];

/// Subscriber recording log-linear histograms of the distributional
/// signals: per-packet sojourn time (ns), queue depth seen by arriving
/// packets (bytes), and flow completion time (ns) split by flow size
/// bucket. All histograms share one precision and merge across
/// `parallel_map` workers via [`HistogramRecorder::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramRecorder {
    /// Sojourn time of every dequeued packet, nanoseconds.
    pub sojourn_ns: LogLinearHistogram,
    /// Queue backlog observed by every admitted packet, bytes.
    pub queue_depth_bytes: LogLinearHistogram,
    /// Completion time by flow size bucket (see [`FCT_BUCKET_NAMES`]),
    /// nanoseconds; aborted flows are not recorded.
    pub fct: [LogLinearHistogram; 3],
}

impl HistogramRecorder {
    /// Empty recorder at `precision` bits (clamped to `1..=10`).
    pub fn with_precision(precision: u32) -> Self {
        let h = LogLinearHistogram::with_precision(precision);
        HistogramRecorder {
            sojourn_ns: h.clone(),
            queue_depth_bytes: h.clone(),
            fct: [h.clone(), h.clone(), h],
        }
    }

    /// Empty recorder at [`DEFAULT_PRECISION`].
    pub fn new() -> Self {
        Self::with_precision(DEFAULT_PRECISION)
    }

    /// Merge another recorder (e.g. from a parallel worker) into this one.
    pub fn merge(&mut self, other: &HistogramRecorder) -> Result<(), PrecisionMismatch> {
        self.sojourn_ns.merge(&other.sojourn_ns)?;
        self.queue_depth_bytes.merge(&other.queue_depth_bytes)?;
        for (dst, src) in self.fct.iter_mut().zip(other.fct.iter()) {
            dst.merge(src)?;
        }
        Ok(())
    }
}

impl Default for HistogramRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::subscribe::ShardSubscriber for HistogramRecorder {
    fn fork_shard(&self, _shard: usize) -> Self {
        Self::with_precision(self.sojourn_ns.precision())
    }

    fn merge_shard(&mut self, child: Self) {
        // Once-per-run fold at the post-run barrier, not a per-packet path.
        self.merge(&child) // lint: allow(hot-path-panic) once-per-run merge; fork inherits precision so the mismatch arm is unreachable
            .expect("shard fork precision matches by construction");
    }
}

impl Subscriber for HistogramRecorder {
    #[inline]
    fn on_packet_enqueued(&mut self, _meta: &Meta, ev: &PacketEnqueued) {
        self.queue_depth_bytes.record(ev.backlog_bytes);
    }

    #[inline]
    fn on_sojourn_sampled(&mut self, _meta: &Meta, ev: &SojournSampled) {
        self.sojourn_ns.record(ev.sojourn_ns);
    }

    #[inline]
    fn on_flow_completed(&mut self, _meta: &Meta, ev: &FlowCompleted) {
        if ev.completed {
            if let Some(h) = self.fct.get_mut(fct_bucket(ev.bytes)) {
                h.record(ev.fct_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_below_two_to_p() {
        let mut h = LogLinearHistogram::with_precision(7);
        for v in 0..128u64 {
            h.record(v);
        }
        for (lo, hi, n) in h.iter_buckets() {
            assert_eq!(lo, hi, "linear region buckets are singletons");
            assert_eq!(n, 1);
        }
        assert_eq!(h.count(), 128);
    }

    #[test]
    fn zero_max_and_saturation() {
        let mut h = LogLinearHistogram::with_precision(4);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        // Saturating count/sum: huge weights don't wrap.
        h.record_n(u64::MAX, u64::MAX);
        h.record_n(1, u64::MAX);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn precision_mismatch_is_an_error() {
        let mut a = LogLinearHistogram::with_precision(4);
        let b = LogLinearHistogram::with_precision(5);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err, PrecisionMismatch { dst: 4, src: 5 });
        assert!(err.to_string().contains("different precision"));
    }

    #[test]
    fn precision_is_clamped() {
        assert_eq!(LogLinearHistogram::with_precision(0).precision(), 1);
        assert_eq!(LogLinearHistogram::with_precision(40).precision(), 10);
    }

    /// Reference quantile with the same rank rule as the histogram.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as u64;
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        sorted[(target - 1) as usize]
    }

    proptest! {
        #[test]
        fn bucket_bounds_contain_the_value(v in 0u64..u64::MAX, p in 1u32..10) {
            let h = LogLinearHistogram::with_precision(p);
            let idx = h.index_of(v);
            let (lo, hi) = h.bounds_of(idx);
            prop_assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}]");
            // Width bound behind the quantile error guarantee.
            if lo > 0 {
                prop_assert!((hi - lo) as f64 / lo as f64 <= h.relative_error_bound());
            }
        }

        #[test]
        fn quantile_error_within_bucket_bound(
            vals in collection::vec(0u64..1_000_000_000, 1..200),
            p in 2u32..9,
        ) {
            let mut h = LogLinearHistogram::with_precision(p);
            for &v in &vals {
                h.record(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let exact = exact_quantile(&sorted, q);
                let est = h.quantile(q).unwrap();
                prop_assert!(est >= exact, "q={q}: est {est} < exact {exact}");
                let slack = (exact as f64 * h.relative_error_bound()).ceil() as u64 + 1;
                prop_assert!(
                    est - exact <= slack,
                    "q={q}: est {est} overshoots exact {exact} by more than {slack}"
                );
            }
        }

        #[test]
        fn merge_is_associative_and_matches_combined_recording(
            a in collection::vec(0u64..1_000_000, 0..60),
            b in collection::vec(0u64..1_000_000, 0..60),
            c in collection::vec(0u64..1_000_000, 0..60),
        ) {
            let hist_of = |vals: &[u64]| {
                let mut h = LogLinearHistogram::with_precision(6);
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
            // (a ⊕ b) ⊕ c
            let mut left = ha.clone();
            left.merge(&hb).unwrap();
            left.merge(&hc).unwrap();
            // a ⊕ (b ⊕ c)
            let mut bc = hb.clone();
            bc.merge(&hc).unwrap();
            let mut right = ha.clone();
            right.merge(&bc).unwrap();
            prop_assert_eq!(&left, &right);
            // Both equal recording everything into one histogram.
            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&left, &hist_of(&all));
        }
    }

    #[test]
    fn recorder_routes_events_and_merges() {
        use ecnsharp_sim::SimTime;
        let meta = Meta {
            at: SimTime::ZERO,
            node: 0,
        };
        let mut r = HistogramRecorder::new();
        r.on_packet_enqueued(
            &meta,
            &PacketEnqueued {
                port: 0,
                flow: 1,
                seq: 0,
                payload: 1460,
                wire_bytes: 1500,
                backlog_bytes: 3000,
                marked: false,
            },
        );
        r.on_sojourn_sampled(
            &meta,
            &SojournSampled {
                port: 0,
                flow: 1,
                sojourn_ns: 42_000,
                backlog_bytes: 1500,
            },
        );
        for (bytes, bucket) in [(50_000u64, 0usize), (1_000_000, 1), (50_000_000, 2)] {
            r.on_flow_completed(
                &meta,
                &FlowCompleted {
                    flow: 1,
                    bytes,
                    fct_ns: 7_000_000,
                    completed: true,
                },
            );
            assert_eq!(r.fct[bucket].count(), 1, "size {bytes} -> bucket {bucket}");
        }
        // Aborts are not FCT samples.
        r.on_flow_completed(
            &meta,
            &FlowCompleted {
                flow: 2,
                bytes: 10,
                fct_ns: 1,
                completed: false,
            },
        );
        assert_eq!(r.fct[0].count(), 1);
        let mut merged = HistogramRecorder::new();
        merged.merge(&r).unwrap();
        merged.merge(&r).unwrap();
        assert_eq!(merged.sojourn_ns.count(), 2);
        assert_eq!(merged.queue_depth_bytes.count(), 2);
        assert_eq!(merged.fct[1].count(), 2);
    }
}
