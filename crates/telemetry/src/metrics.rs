//! Counter/gauge aggregation keyed by a static registry.
//!
//! [`MetricsAggregator`] maintains one `u64` counter per [`Metric`] in a
//! fixed array — no hash maps, no default hashers (lint R3), no
//! allocation on the event path — plus two high-watermark gauges. The
//! registry is the [`METRIC_NAMES`] array, index-aligned with the enum,
//! so CSV/JSON output is stable and exhaustively enumerable.

use crate::event::{
    AlphaUpdated, CeMarked, CwndUpdated, DropReason, EpisodeEntered, EpisodeExited, FlowCompleted,
    LinkStateChanged, Meta, PacketDropped, PacketEnqueued, RtoFired, SojournSampled,
};
use crate::subscribe::Subscriber;

/// The counter registry. Each variant is one monotonic counter; the
/// numeric discriminant is its slot in [`MetricsAggregator`]'s array and
/// in [`METRIC_NAMES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Packets admitted to an egress queue.
    PacketsEnqueued = 0,
    /// CE marks applied at enqueue.
    EnqueueMarks,
    /// CE marks applied at dequeue.
    DequeueMarks,
    /// Sojourn-time samples observed (one per transmitted packet).
    SojournSamples,
    /// Tail drops (buffer full).
    DropsTail,
    /// AQM early drops at enqueue.
    DropsAqmEnqueue,
    /// AQM drops at dequeue.
    DropsAqmDequeue,
    /// Injected random-loss drops.
    DropsFault,
    /// Injected corruption drops.
    DropsCorrupt,
    /// Gilbert-Elliott burst-loss drops.
    DropsBurst,
    /// Routing no-route drops.
    DropsNoRoute,
    /// ECN♯ marking episodes entered.
    EpisodesEntered,
    /// ECN♯ marking episodes exited.
    EpisodesExited,
    /// Marks attributed to completed episodes (sum over exits).
    EpisodeMarks,
    /// Congestion-window updates reported by senders.
    CwndUpdates,
    /// DCTCP alpha folds reported by senders.
    AlphaUpdates,
    /// Retransmission timeouts fired.
    RtoFirings,
    /// Link state transitions (up or down).
    LinkTransitions,
    /// Flows that completed successfully.
    FlowsCompleted,
    /// Flows that aborted.
    FlowsFailed,
}

/// Number of counters in the registry.
pub const METRIC_COUNT: usize = 20;

/// Counter names, index-aligned with [`Metric`]. This is the stable
/// output registry: CSV rows appear in exactly this order.
pub const METRIC_NAMES: [&str; METRIC_COUNT] = [
    "packets_enqueued",
    "enqueue_marks",
    "dequeue_marks",
    "sojourn_samples",
    "drops_tail",
    "drops_aqm_enqueue",
    "drops_aqm_dequeue",
    "drops_fault",
    "drops_corrupt",
    "drops_burst",
    "drops_no_route",
    "episodes_entered",
    "episodes_exited",
    "episode_marks",
    "cwnd_updates",
    "alpha_updates",
    "rto_firings",
    "link_transitions",
    "flows_completed",
    "flows_failed",
];

impl Metric {
    /// The counter a drop with `reason` increments.
    pub fn for_drop(reason: DropReason) -> Metric {
        match reason {
            DropReason::Tail => Metric::DropsTail,
            DropReason::AqmEnqueue => Metric::DropsAqmEnqueue,
            DropReason::AqmDequeue => Metric::DropsAqmDequeue,
            DropReason::Fault => Metric::DropsFault,
            DropReason::Corrupt => Metric::DropsCorrupt,
            DropReason::Burst => Metric::DropsBurst,
            DropReason::NoRoute => Metric::DropsNoRoute,
        }
    }

    /// Registry name of this counter.
    pub fn name(self) -> &'static str {
        METRIC_NAMES[self as usize]
    }
}

/// Subscriber folding the event stream into the fixed counter registry
/// plus two high-watermark gauges. Cheap enough to leave attached on any
/// run; merges across `parallel_map` workers by addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsAggregator {
    counters: [u64; METRIC_COUNT],
    /// Largest queue backlog (bytes) observed by any admitted packet.
    max_backlog_bytes: u64,
    /// Largest sojourn time (ns) observed by any transmitted packet.
    max_sojourn_ns: u64,
}

impl MetricsAggregator {
    /// All counters and gauges at zero.
    pub fn new() -> Self {
        MetricsAggregator {
            counters: [0; METRIC_COUNT],
            max_backlog_bytes: 0,
            max_sojourn_ns: 0,
        }
    }

    #[inline]
    fn bump(&mut self, m: Metric) {
        self.add(m, 1);
    }

    #[inline]
    fn add(&mut self, m: Metric, n: u64) {
        if let Some(c) = self.counters.get_mut(m as usize) {
            *c = c.saturating_add(n);
        }
    }

    /// Current value of one counter.
    pub fn get(&self, m: Metric) -> u64 {
        self.counters.get(m as usize).copied().unwrap_or(0)
    }

    /// Largest queue backlog (bytes) observed by any admitted packet.
    pub fn max_backlog_bytes(&self) -> u64 {
        self.max_backlog_bytes
    }

    /// Largest sojourn time (ns) observed by any transmitted packet.
    pub fn max_sojourn_ns(&self) -> u64 {
        self.max_sojourn_ns
    }

    /// Sum of all drop counters.
    pub fn total_drops(&self) -> u64 {
        DropReason::ALL
            .iter()
            .map(|&r| self.get(Metric::for_drop(r)))
            .sum()
    }

    /// Merge another aggregator (e.g. from a parallel worker): counters
    /// add, gauges take the maximum.
    pub fn merge(&mut self, other: &MetricsAggregator) {
        for (dst, src) in self.counters.iter_mut().zip(other.counters.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.max_backlog_bytes = self.max_backlog_bytes.max(other.max_backlog_bytes);
        self.max_sojourn_ns = self.max_sojourn_ns.max(other.max_sojourn_ns);
    }

    /// CSV dump: `metric,value` rows in registry order, gauges last.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (name, value) in METRIC_NAMES.iter().zip(self.counters.iter()) {
            out.push_str(&format!("{name},{value}\n"));
        }
        out.push_str(&format!("max_backlog_bytes,{}\n", self.max_backlog_bytes));
        out.push_str(&format!("max_sojourn_ns,{}\n", self.max_sojourn_ns));
        out
    }
}

impl Default for MetricsAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::subscribe::ShardSubscriber for MetricsAggregator {
    fn fork_shard(&self, _shard: usize) -> Self {
        MetricsAggregator::new()
    }

    fn merge_shard(&mut self, child: Self) {
        self.merge(&child);
    }
}

impl Subscriber for MetricsAggregator {
    #[inline]
    fn on_packet_enqueued(&mut self, _meta: &Meta, ev: &PacketEnqueued) {
        self.bump(Metric::PacketsEnqueued);
        self.max_backlog_bytes = self.max_backlog_bytes.max(ev.backlog_bytes);
    }

    #[inline]
    fn on_packet_dropped(&mut self, _meta: &Meta, ev: &PacketDropped) {
        self.bump(Metric::for_drop(ev.reason));
    }

    #[inline]
    fn on_ce_marked(&mut self, _meta: &Meta, ev: &CeMarked) {
        match ev.site {
            crate::event::MarkSite::Enqueue => self.bump(Metric::EnqueueMarks),
            crate::event::MarkSite::Dequeue => self.bump(Metric::DequeueMarks),
        }
    }

    #[inline]
    fn on_sojourn_sampled(&mut self, _meta: &Meta, ev: &SojournSampled) {
        self.bump(Metric::SojournSamples);
        self.max_sojourn_ns = self.max_sojourn_ns.max(ev.sojourn_ns);
    }

    #[inline]
    fn on_episode_entered(&mut self, _meta: &Meta, _ev: &EpisodeEntered) {
        self.bump(Metric::EpisodesEntered);
    }

    #[inline]
    fn on_episode_exited(&mut self, _meta: &Meta, ev: &EpisodeExited) {
        self.bump(Metric::EpisodesExited);
        self.add(Metric::EpisodeMarks, ev.marks);
    }

    #[inline]
    fn on_cwnd_updated(&mut self, _meta: &Meta, _ev: &CwndUpdated) {
        self.bump(Metric::CwndUpdates);
    }

    #[inline]
    fn on_alpha_updated(&mut self, _meta: &Meta, _ev: &AlphaUpdated) {
        self.bump(Metric::AlphaUpdates);
    }

    #[inline]
    fn on_rto_fired(&mut self, _meta: &Meta, _ev: &RtoFired) {
        self.bump(Metric::RtoFirings);
    }

    #[inline]
    fn on_link_state_changed(&mut self, _meta: &Meta, _ev: &LinkStateChanged) {
        self.bump(Metric::LinkTransitions);
    }

    #[inline]
    fn on_flow_completed(&mut self, _meta: &Meta, ev: &FlowCompleted) {
        if ev.completed {
            self.bump(Metric::FlowsCompleted);
        } else {
            self.bump(Metric::FlowsFailed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MarkSite;
    use ecnsharp_sim::SimTime;

    fn meta() -> Meta {
        Meta {
            at: SimTime::from_micros(5),
            node: 1,
        }
    }

    #[test]
    fn registry_is_exhaustive_and_aligned() {
        // Every drop reason maps to a distinct counter named after it.
        let mut slots: Vec<usize> = DropReason::ALL
            .iter()
            .map(|&r| Metric::for_drop(r) as usize)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 7);
        assert_eq!(Metric::DropsTail.name(), "drops_tail");
        assert_eq!(Metric::FlowsFailed as usize, METRIC_COUNT - 1);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut m = MetricsAggregator::new();
        m.on_packet_enqueued(
            &meta(),
            &PacketEnqueued {
                port: 0,
                flow: 1,
                seq: 0,
                payload: 1460,
                wire_bytes: 1500,
                backlog_bytes: 9_000,
                marked: true,
            },
        );
        m.on_ce_marked(
            &meta(),
            &CeMarked {
                port: 0,
                flow: 1,
                seq: 0,
                site: MarkSite::Enqueue,
            },
        );
        m.on_packet_dropped(
            &meta(),
            &PacketDropped {
                port: 0,
                flow: 2,
                seq: 0,
                payload: 1460,
                wire_bytes: 1500,
                reason: DropReason::Burst,
            },
        );
        m.on_episode_exited(&meta(), &EpisodeExited { port: 0, marks: 4 });
        assert_eq!(m.get(Metric::PacketsEnqueued), 1);
        assert_eq!(m.get(Metric::EnqueueMarks), 1);
        assert_eq!(m.get(Metric::DropsBurst), 1);
        assert_eq!(m.get(Metric::EpisodeMarks), 4);
        assert_eq!(m.total_drops(), 1);
        assert_eq!(m.max_backlog_bytes(), 9_000);

        let mut merged = MetricsAggregator::new();
        merged.merge(&m);
        merged.merge(&m);
        assert_eq!(merged.get(Metric::EpisodeMarks), 8);
        assert_eq!(merged.max_backlog_bytes(), 9_000);
    }

    #[test]
    fn csv_lists_every_registry_row() {
        let csv = MetricsAggregator::new().to_csv();
        for name in METRIC_NAMES {
            assert!(csv.contains(&format!("{name},0\n")), "missing {name}");
        }
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("max_backlog_bytes,0\n"));
    }
}
