//! qlog-style JSON-lines structured output.
//!
//! [`JsonlWriter`] serialises every event as one self-contained JSON
//! object per line — `{"at_ns":…,"node":…,"event":"…",…}` — to any
//! `io::Write` sink. All values are numbers, booleans, or static
//! identifier strings, so no escaping is required and the output is a
//! deterministic function of the event stream. Write errors set a sticky
//! flag instead of panicking (this crate is on the hot-path panic-free
//! list, lint R4); callers check [`JsonlWriter::had_error`] after the
//! run.

use crate::event::{
    AlphaUpdated, CeMarked, CwndUpdated, EpisodeEntered, EpisodeExited, FlowCompleted,
    LinkStateChanged, Meta, PacketDropped, PacketEnqueued, RtoFired, SojournSampled,
};
use crate::subscribe::Subscriber;
use std::io::Write;

/// Subscriber writing one JSON object per event to `W`.
#[derive(Debug)]
pub struct JsonlWriter<W: Write + Send + 'static> {
    w: W,
    failed: bool,
}

impl<W: Write + Send + 'static> JsonlWriter<W> {
    /// Wrap a sink. Consider a `BufWriter` for file sinks; the writer
    /// itself does not buffer.
    pub fn new(w: W) -> Self {
        JsonlWriter { w, failed: false }
    }

    /// Whether any write failed since construction. Once set it stays
    /// set, and further events are dropped silently.
    pub fn had_error(&self) -> bool {
        self.failed
    }

    /// Flush and return the underlying sink.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }

    #[inline]
    fn emit(&mut self, line: std::fmt::Arguments<'_>) {
        if self.failed {
            return;
        }
        if writeln!(self.w, "{line}").is_err() {
            self.failed = true;
        }
    }
}

impl<W: Write + Send + 'static> Subscriber for JsonlWriter<W> {
    fn on_packet_enqueued(&mut self, meta: &Meta, ev: &PacketEnqueued) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"packet_enqueued","port":{},"flow":{},"seq":{},"payload":{},"wire_bytes":{},"backlog_bytes":{},"marked":{}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.port,
            ev.flow,
            ev.seq,
            ev.payload,
            ev.wire_bytes,
            ev.backlog_bytes,
            ev.marked
        ));
    }

    fn on_packet_dropped(&mut self, meta: &Meta, ev: &PacketDropped) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"packet_dropped","port":{},"flow":{},"seq":{},"payload":{},"wire_bytes":{},"reason":"{}"}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.port,
            ev.flow,
            ev.seq,
            ev.payload,
            ev.wire_bytes,
            ev.reason.as_str()
        ));
    }

    fn on_ce_marked(&mut self, meta: &Meta, ev: &CeMarked) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"ce_marked","port":{},"flow":{},"seq":{},"site":"{}"}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.port,
            ev.flow,
            ev.seq,
            ev.site.as_str()
        ));
    }

    fn on_sojourn_sampled(&mut self, meta: &Meta, ev: &SojournSampled) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"sojourn_sampled","port":{},"flow":{},"sojourn_ns":{},"backlog_bytes":{}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.port,
            ev.flow,
            ev.sojourn_ns,
            ev.backlog_bytes
        ));
    }

    fn on_episode_entered(&mut self, meta: &Meta, ev: &EpisodeEntered) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"episode_entered","port":{}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.port
        ));
    }

    fn on_episode_exited(&mut self, meta: &Meta, ev: &EpisodeExited) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"episode_exited","port":{},"marks":{}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.port,
            ev.marks
        ));
    }

    fn on_cwnd_updated(&mut self, meta: &Meta, ev: &CwndUpdated) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"cwnd_updated","flow":{},"cwnd_bytes":{},"ssthresh_bytes":{}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.flow,
            ev.cwnd_bytes,
            ev.ssthresh_bytes
        ));
    }

    fn on_alpha_updated(&mut self, meta: &Meta, ev: &AlphaUpdated) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"alpha_updated","flow":{},"alpha":{:.6}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.flow,
            ev.alpha
        ));
    }

    fn on_rto_fired(&mut self, meta: &Meta, ev: &RtoFired) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"rto_fired","flow":{},"streak":{}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.flow,
            ev.streak
        ));
    }

    fn on_link_state_changed(&mut self, meta: &Meta, ev: &LinkStateChanged) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"link_state_changed","node_a":{},"node_b":{},"up":{}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.node_a,
            ev.node_b,
            ev.up
        ));
    }

    fn on_flow_completed(&mut self, meta: &Meta, ev: &FlowCompleted) {
        self.emit(format_args!(
            r#"{{"at_ns":{},"node":{},"event":"flow_completed","flow":{},"bytes":{},"fct_ns":{},"completed":{}}}"#,
            meta.at.as_nanos(),
            meta.node,
            ev.flow,
            ev.bytes,
            ev.fct_ns,
            ev.completed
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropReason, MarkSite};
    use ecnsharp_sim::SimTime;

    fn meta() -> Meta {
        Meta {
            at: SimTime::from_micros(3),
            node: 9,
        }
    }

    #[test]
    fn events_serialise_one_line_each() {
        let mut w = JsonlWriter::new(Vec::new());
        w.on_packet_dropped(
            &meta(),
            &PacketDropped {
                port: 2,
                flow: 5,
                seq: 1460,
                payload: 1460,
                wire_bytes: 1500,
                reason: DropReason::Corrupt,
            },
        );
        w.on_ce_marked(
            &meta(),
            &CeMarked {
                port: 2,
                flow: 5,
                seq: 1460,
                site: MarkSite::Dequeue,
            },
        );
        w.on_alpha_updated(
            &meta(),
            &AlphaUpdated {
                flow: 5,
                alpha: 0.25,
            },
        );
        assert!(!w.had_error());
        let out = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            r#"{"at_ns":3000,"node":9,"event":"packet_dropped","port":2,"flow":5,"seq":1460,"payload":1460,"wire_bytes":1500,"reason":"corrupt"}"#
        );
        assert!(lines[1].contains(r#""site":"dequeue""#));
        assert!(lines[2].ends_with(r#""alpha":0.250000}"#));
    }

    /// A sink that always fails, to exercise the sticky error flag.
    struct Broken;
    impl Write for Broken {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("broken"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_are_sticky_not_fatal() {
        let mut w = JsonlWriter::new(Broken);
        w.on_episode_entered(&meta(), &EpisodeEntered { port: 0 });
        assert!(w.had_error());
        // Further events are swallowed without panicking.
        w.on_episode_exited(&meta(), &EpisodeExited { port: 0, marks: 1 });
        assert!(w.had_error());
    }
}
