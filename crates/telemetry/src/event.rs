//! The typed event catalogue.
//!
//! Every event is a plain-old-data struct carrying raw integer ids
//! (node/flow/port numbers), so subscribers can be written without
//! depending on the network crate. Events are borrowed (`&Meta`, `&E`)
//! when delivered; subscribers copy out what they keep.

use ecnsharp_sim::SimTime;

/// Common context attached to every delivered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Simulation time at which the event occurred.
    pub at: SimTime,
    /// The node (host or switch) the event occurred on.
    pub node: u64,
}

/// Why a packet was discarded. Mirrors the drop taxonomy of the port's
/// `PortStats` and the network's `PerfCounters`, so traces, metrics, and
/// counters all agree on classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Buffer full: the port's tail-drop capacity check refused the packet.
    Tail,
    /// The AQM refused the packet at enqueue (early drop, or a "mark"
    /// decision on a non-ECT packet).
    AqmEnqueue,
    /// The AQM discarded the packet at dequeue (CoDel-style drop of
    /// non-ECT traffic under persistent congestion).
    AqmDequeue,
    /// Injected random link fault (independent per-packet loss).
    Fault,
    /// Injected payload corruption (modelled as a drop).
    Corrupt,
    /// Gilbert-Elliott burst-loss model drop.
    Burst,
    /// A switch had no route towards the destination (link failures
    /// partitioned the topology).
    NoRoute,
}

impl DropReason {
    /// Every reason, in declaration order (stable across releases; new
    /// reasons are appended).
    pub const ALL: [DropReason; 7] = [
        DropReason::Tail,
        DropReason::AqmEnqueue,
        DropReason::AqmDequeue,
        DropReason::Fault,
        DropReason::Corrupt,
        DropReason::Burst,
        DropReason::NoRoute,
    ];

    /// Short stable identifier used in traces, CSV, and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::Tail => "tail",
            DropReason::AqmEnqueue => "aqm-enq",
            DropReason::AqmDequeue => "aqm-deq",
            DropReason::Fault => "fault",
            DropReason::Corrupt => "corrupt",
            DropReason::Burst => "burst",
            DropReason::NoRoute => "no-route",
        }
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the port pipeline a CE mark was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkSite {
    /// Marked on admission (queue-length schemes: DCTCP-RED, RED, PIE).
    Enqueue,
    /// Marked at dequeue, when the sojourn time is known (CoDel, TCN, ECN♯).
    Dequeue,
}

impl MarkSite {
    /// Short stable identifier used in CSV and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            MarkSite::Enqueue => "enqueue",
            MarkSite::Dequeue => "dequeue",
        }
    }
}

/// A packet was admitted to an egress queue.
#[derive(Debug, Clone, Copy)]
pub struct PacketEnqueued {
    /// Egress port index on the emitting node.
    pub port: u64,
    /// Flow the packet belongs to.
    pub flow: u64,
    /// First payload byte carried (TCP-style sequence number).
    pub seq: u64,
    /// Payload bytes carried.
    pub payload: u64,
    /// Wire size in bytes (headers included).
    pub wire_bytes: u64,
    /// Queue backlog in bytes *before* this packet was added.
    pub backlog_bytes: u64,
    /// Whether the AQM set the CE codepoint on admission.
    pub marked: bool,
}

/// A packet was discarded (anywhere in the port pipeline or at routing).
#[derive(Debug, Clone, Copy)]
pub struct PacketDropped {
    /// Egress port index on the emitting node; `u64::MAX` when no egress
    /// port was involved (routing-stage no-route drops).
    pub port: u64,
    /// Flow the packet belonged to.
    pub flow: u64,
    /// First payload byte carried.
    pub seq: u64,
    /// Payload bytes carried.
    pub payload: u64,
    /// Wire size in bytes.
    pub wire_bytes: u64,
    /// Drop classification.
    pub reason: DropReason,
}

/// A packet had its CE codepoint set.
#[derive(Debug, Clone, Copy)]
pub struct CeMarked {
    /// Egress port index on the emitting node.
    pub port: u64,
    /// Flow the packet belongs to.
    pub flow: u64,
    /// First payload byte carried.
    pub seq: u64,
    /// Pipeline stage that applied the mark.
    pub site: MarkSite,
}

/// A packet left the queue for transmission; its sojourn time is known.
#[derive(Debug, Clone, Copy)]
pub struct SojournSampled {
    /// Egress port index on the emitting node.
    pub port: u64,
    /// Flow the packet belongs to.
    pub flow: u64,
    /// Time the packet spent queued, in nanoseconds.
    pub sojourn_ns: u64,
    /// Queue backlog in bytes *after* this packet was removed.
    pub backlog_bytes: u64,
}

/// An ECN♯ persistent-marking episode began (Algorithm 1 entered the
/// marking state; the packet triggering entry receives the first mark).
#[derive(Debug, Clone, Copy)]
pub struct EpisodeEntered {
    /// Egress port index on the emitting node.
    pub port: u64,
}

/// An ECN♯ persistent-marking episode ended (the persistent-queue signal
/// cleared).
#[derive(Debug, Clone, Copy)]
pub struct EpisodeExited {
    /// Egress port index on the emitting node.
    pub port: u64,
    /// Packets marked during the episode, including the entry mark.
    pub marks: u64,
}

/// A sender's congestion window changed.
#[derive(Debug, Clone, Copy)]
pub struct CwndUpdated {
    /// The flow whose window changed.
    pub flow: u64,
    /// New congestion window in bytes.
    pub cwnd_bytes: u64,
    /// New slow-start threshold in bytes.
    pub ssthresh_bytes: u64,
}

/// A DCTCP sender folded its marked-byte fraction into `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct AlphaUpdated {
    /// The flow whose `alpha` changed.
    pub flow: u64,
    /// New EWMA of the marked-byte fraction, in `[0, 1]`.
    pub alpha: f64,
}

/// A retransmission timeout fired on a sender.
#[derive(Debug, Clone, Copy)]
pub struct RtoFired {
    /// The flow that timed out.
    pub flow: u64,
    /// Consecutive RTOs without intervening forward progress.
    pub streak: u32,
}

/// A link changed administrative state (fault injection).
#[derive(Debug, Clone, Copy)]
pub struct LinkStateChanged {
    /// One endpoint of the link.
    pub node_a: u64,
    /// The other endpoint.
    pub node_b: u64,
    /// `true` when the link came up, `false` when it went down.
    pub up: bool,
}

/// A flow finished — completed all bytes, or gave up after repeated RTOs.
#[derive(Debug, Clone, Copy)]
pub struct FlowCompleted {
    /// The finished flow.
    pub flow: u64,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Flow completion time (start to finish) in nanoseconds.
    pub fct_ns: u64,
    /// `true` for successful completion, `false` for an abort.
    pub completed: bool,
}

/// A transport-side event buffered through the agent callback context.
///
/// Endpoint agents have no direct subscriber access (the subscriber lives
/// on the network, which is mutably borrowed while agents run), so the
/// transport pushes these into the callback context and the network
/// forwards them to the subscriber when the callback returns.
#[derive(Debug, Clone, Copy)]
pub enum TransportEvent {
    /// Congestion window change — forwarded as [`CwndUpdated`].
    Cwnd {
        /// The flow whose window changed.
        flow: u64,
        /// New congestion window in bytes.
        cwnd_bytes: u64,
        /// New slow-start threshold in bytes.
        ssthresh_bytes: u64,
    },
    /// DCTCP alpha fold — forwarded as [`AlphaUpdated`].
    Alpha {
        /// The flow whose `alpha` changed.
        flow: u64,
        /// New EWMA of the marked-byte fraction.
        alpha: f64,
    },
    /// Retransmission timeout — forwarded as [`RtoFired`].
    Rto {
        /// The flow that timed out.
        flow: u64,
        /// Consecutive RTOs without forward progress.
        streak: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_reason_strings_are_distinct_and_stable() {
        let mut seen: Vec<&str> = DropReason::ALL.iter().map(|r| r.as_str()).collect();
        assert_eq!(seen.len(), 7);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 7, "reason strings must be unique");
        assert_eq!(DropReason::Tail.as_str(), "tail");
        assert_eq!(DropReason::NoRoute.to_string(), "no-route");
        assert_eq!(MarkSite::Enqueue.as_str(), "enqueue");
        assert_eq!(MarkSite::Dequeue.as_str(), "dequeue");
    }
}
