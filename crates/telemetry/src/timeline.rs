//! Sim-time timeline sampling.
//!
//! [`TimelineSampler`] tracks the latest per-port queue state and
//! per-flow congestion state, and appends one CSV row per tracked entity
//! every time simulation time crosses the sampling interval. The cadence
//! is driven **entirely by event timestamps** — the sampler owns no
//! timers and never reads the wall clock (lint R1) — so output is a
//! deterministic function of the event stream: quiet periods produce no
//! rows, and two identical runs produce byte-identical series.

use crate::event::{
    AlphaUpdated, CwndUpdated, EpisodeEntered, EpisodeExited, Meta, PacketEnqueued, RtoFired,
    SojournSampled,
};
use crate::subscribe::Subscriber;
use ecnsharp_sim::{Duration, SimTime};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, Default)]
struct PortSample {
    backlog_bytes: u64,
    last_sojourn_ns: u64,
    in_episode: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct FlowSample {
    cwnd_bytes: u64,
    ssthresh_bytes: u64,
    alpha: f64,
    rtos: u64,
}

/// Subscriber emitting per-port and per-flow CSV time series on a
/// sim-event-driven cadence.
///
/// State updates happen on every event; a snapshot row for every tracked
/// port and flow is appended whenever an event timestamp reaches the next
/// sampling deadline (deadlines advance from the first event, so the
/// series is sparse during idle periods). Iteration order is `BTreeMap`
/// order — numeric, stable, hasher-free.
#[derive(Debug, Clone)]
pub struct TimelineSampler {
    interval: Duration,
    next: Option<SimTime>,
    ports: BTreeMap<(u64, u64), PortSample>,
    flows: BTreeMap<u64, FlowSample>,
    port_rows: String,
    flow_rows: String,
}

impl TimelineSampler {
    /// Sampler flushing a snapshot every `interval` of simulation time.
    /// A zero interval is promoted to 1 ns (snapshot at every event).
    pub fn new(interval: Duration) -> Self {
        TimelineSampler {
            interval: interval.max(Duration::from_nanos(1)),
            next: None,
            ports: BTreeMap::new(),
            flows: BTreeMap::new(),
            port_rows: String::new(),
            flow_rows: String::new(),
        }
    }

    /// The per-port series: `time_ns,node,port,backlog_bytes,sojourn_ns,in_episode`.
    pub fn ports_csv(&self) -> String {
        let mut out = String::from("time_ns,node,port,backlog_bytes,sojourn_ns,in_episode\n");
        out.push_str(&self.port_rows);
        out
    }

    /// The per-flow series: `time_ns,flow,cwnd_bytes,ssthresh_bytes,alpha,rtos`.
    pub fn flows_csv(&self) -> String {
        let mut out = String::from("time_ns,flow,cwnd_bytes,ssthresh_bytes,alpha,rtos\n");
        out.push_str(&self.flow_rows);
        out
    }

    /// Number of snapshot rows accumulated so far (ports + flows).
    pub fn rows(&self) -> usize {
        self.port_rows.lines().count() + self.flow_rows.lines().count()
    }

    fn tick(&mut self, at: SimTime) {
        match self.next {
            None => {
                // First event anchors the cadence; the first snapshot
                // lands one interval later.
                self.next = Some(at + self.interval);
            }
            Some(next) if at >= next => {
                self.flush(at);
                self.next = Some(at + self.interval);
            }
            Some(_) => {}
        }
    }

    fn flush(&mut self, at: SimTime) {
        let t = at.as_nanos();
        for (&(node, port), s) in &self.ports {
            self.port_rows.push_str(&format!(
                "{t},{node},{port},{},{},{}\n",
                s.backlog_bytes,
                s.last_sojourn_ns,
                u8::from(s.in_episode)
            ));
        }
        for (&flow, s) in &self.flows {
            self.flow_rows.push_str(&format!(
                "{t},{flow},{},{},{:.6},{}\n",
                s.cwnd_bytes, s.ssthresh_bytes, s.alpha, s.rtos
            ));
        }
    }
}

impl Subscriber for TimelineSampler {
    fn on_packet_enqueued(&mut self, meta: &Meta, ev: &PacketEnqueued) {
        let s = self.ports.entry((meta.node, ev.port)).or_default();
        s.backlog_bytes = ev.backlog_bytes + ev.wire_bytes;
        self.tick(meta.at);
    }

    fn on_sojourn_sampled(&mut self, meta: &Meta, ev: &SojournSampled) {
        let s = self.ports.entry((meta.node, ev.port)).or_default();
        s.backlog_bytes = ev.backlog_bytes;
        s.last_sojourn_ns = ev.sojourn_ns;
        self.tick(meta.at);
    }

    fn on_episode_entered(&mut self, meta: &Meta, ev: &EpisodeEntered) {
        self.ports
            .entry((meta.node, ev.port))
            .or_default()
            .in_episode = true;
        self.tick(meta.at);
    }

    fn on_episode_exited(&mut self, meta: &Meta, ev: &EpisodeExited) {
        self.ports
            .entry((meta.node, ev.port))
            .or_default()
            .in_episode = false;
        self.tick(meta.at);
    }

    fn on_cwnd_updated(&mut self, meta: &Meta, ev: &CwndUpdated) {
        let s = self.flows.entry(ev.flow).or_default();
        s.cwnd_bytes = ev.cwnd_bytes;
        s.ssthresh_bytes = ev.ssthresh_bytes;
        self.tick(meta.at);
    }

    fn on_alpha_updated(&mut self, meta: &Meta, ev: &AlphaUpdated) {
        self.flows.entry(ev.flow).or_default().alpha = ev.alpha;
        self.tick(meta.at);
    }

    fn on_rto_fired(&mut self, meta: &Meta, ev: &RtoFired) {
        self.flows.entry(ev.flow).or_default().rtos += 1;
        self.tick(meta.at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(us: u64, node: u64) -> Meta {
        Meta {
            at: SimTime::from_micros(us),
            node,
        }
    }

    fn enq(port: u64, backlog: u64) -> PacketEnqueued {
        PacketEnqueued {
            port,
            flow: 1,
            seq: 0,
            payload: 1460,
            wire_bytes: 1500,
            backlog_bytes: backlog,
            marked: false,
        }
    }

    #[test]
    fn cadence_is_event_driven_and_sparse() {
        let mut t = TimelineSampler::new(Duration::from_micros(10));
        // Events at 0, 5 µs: below the first deadline (10 µs) -> no rows.
        t.on_packet_enqueued(&meta(0, 1), &enq(0, 0));
        t.on_packet_enqueued(&meta(5, 1), &enq(0, 1500));
        assert_eq!(t.ports_csv().lines().count(), 1, "header only");
        // Event at 12 µs crosses the deadline -> one port row at 12 µs.
        t.on_packet_enqueued(&meta(12, 1), &enq(0, 3000));
        let csv = t.ports_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("12000,1,0,4500,0,0\n"), "csv was:\n{csv}");
        // A long quiet gap produces no filler rows; the next event
        // yields exactly one more snapshot.
        t.on_packet_enqueued(&meta(500, 1), &enq(0, 0));
        assert_eq!(t.ports_csv().lines().count(), 3);
    }

    #[test]
    fn flow_state_tracks_latest_values() {
        let mut t = TimelineSampler::new(Duration::from_micros(1));
        t.on_cwnd_updated(
            &meta(0, 0),
            &CwndUpdated {
                flow: 7,
                cwnd_bytes: 4380,
                ssthresh_bytes: 100_000,
            },
        );
        t.on_alpha_updated(
            &meta(1, 0),
            &AlphaUpdated {
                flow: 7,
                alpha: 0.5,
            },
        );
        t.on_rto_fired(&meta(3, 0), &RtoFired { flow: 7, streak: 1 });
        let csv = t.flows_csv();
        assert!(
            csv.contains("3000,7,4380,100000,0.500000,1\n"),
            "csv was:\n{csv}"
        );
    }

    #[test]
    fn episode_flag_flips() {
        let mut t = TimelineSampler::new(Duration::from_micros(1));
        t.on_episode_entered(&meta(0, 2), &EpisodeEntered { port: 3 });
        t.on_packet_enqueued(&meta(5, 2), &enq(3, 0));
        assert!(t.ports_csv().contains(",1\n"), "in_episode set");
        t.on_episode_exited(&meta(6, 2), &EpisodeExited { port: 3, marks: 2 });
        t.on_packet_enqueued(&meta(20, 2), &enq(3, 0));
        let csv = t.ports_csv();
        assert!(csv.lines().last().is_some_and(|l| l.ends_with(",0")));
    }

    #[test]
    fn identical_event_streams_produce_identical_csv() {
        let run = || {
            let mut t = TimelineSampler::new(Duration::from_micros(2));
            for i in 0..50u64 {
                t.on_packet_enqueued(&meta(i, i % 3), &enq(i % 2, i * 100));
            }
            (t.ports_csv(), t.flows_csv())
        };
        assert_eq!(run(), run());
    }
}
