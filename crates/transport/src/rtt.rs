//! RTT estimation and retransmission-timeout computation (RFC 6298, with a
//! datacenter-scale minimum RTO).

use ecnsharp_sim::Duration;

/// Jacobson/Karels smoothed RTT estimator.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: Duration,
    max_rto: Duration,
    init_rto: Duration,
    /// Smallest RTT ever observed (the flow's base RTT estimate).
    min_rtt: Option<Duration>,
}

impl RttEstimator {
    /// Create with the given RTO clamps and the RTO used before any sample.
    pub fn new(min_rto: Duration, max_rto: Duration, init_rto: Duration) -> Self {
        assert!(min_rto <= max_rto);
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            min_rto,
            max_rto,
            init_rto,
            min_rtt: None,
        }
    }

    /// Feed one RTT sample.
    pub fn sample(&mut self, rtt: Duration) {
        let r = rtt.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                // RFC 6298: alpha = 1/8, beta = 1/4.
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        self.min_rtt = Some(match self.min_rtt {
            None => rtt,
            Some(m) => m.min(rtt),
        });
    }

    /// Current smoothed RTT, if any sample has been seen.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt.map(Duration::from_secs_f64)
    }

    /// Smallest observed RTT (base-RTT estimate).
    pub fn min_rtt(&self) -> Option<Duration> {
        self.min_rtt
    }

    /// Retransmission timeout: `srtt + 4·rttvar`, clamped to
    /// `[min_rto, max_rto]`; the initial RTO before any sample.
    pub fn rto(&self) -> Duration {
        match self.srtt {
            None => self.init_rto,
            Some(srtt) => {
                let raw = Duration::from_secs_f64(srtt + 4.0 * self.rttvar);
                raw.max(self.min_rto).min(self.max_rto)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            Duration::from_millis(5),
            Duration::from_secs(1),
            Duration::from_millis(10),
        )
    }

    #[test]
    fn initial_rto_used_before_samples() {
        let e = est();
        assert_eq!(e.rto(), Duration::from_millis(10));
        assert!(e.srtt().is_none());
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.sample(Duration::from_micros(100));
        assert_eq!(e.srtt().unwrap(), Duration::from_micros(100));
        // rto = srtt + 4*rttvar = 100 + 200 = 300 us, clamped up to 5 ms.
        assert_eq!(e.rto(), Duration::from_millis(5));
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(Duration::from_micros(200));
        }
        let srtt = e.srtt().unwrap().as_micros_f64();
        assert!((srtt - 200.0).abs() < 1.0, "{srtt}");
    }

    #[test]
    fn rto_clamped_to_max() {
        let mut e = RttEstimator::new(
            Duration::from_millis(1),
            Duration::from_millis(50),
            Duration::from_millis(10),
        );
        e.sample(Duration::from_millis(500));
        assert_eq!(e.rto(), Duration::from_millis(50));
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = RttEstimator::new(
            Duration::from_nanos(1),
            Duration::from_secs(10),
            Duration::from_millis(10),
        );
        for i in 0..50 {
            e.sample(Duration::from_micros(if i % 2 == 0 { 100 } else { 900 }));
        }
        // With heavy oscillation the RTO must exceed the mean RTT.
        assert!(e.rto() > Duration::from_micros(500), "{:?}", e.rto());
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = est();
        e.sample(Duration::from_micros(300));
        e.sample(Duration::from_micros(120));
        e.sample(Duration::from_micros(250));
        assert_eq!(e.min_rtt().unwrap(), Duration::from_micros(120));
    }
}
