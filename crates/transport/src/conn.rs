//! Per-flow connection state: the sending side (congestion control, loss
//! recovery, RTO) and the receiving side (cumulative ACKs, out-of-order
//! reassembly, the DCTCP CE-echo state machine).
//!
//! The model is byte-counted TCP without SACK: slow start, congestion
//! avoidance, NewReno fast retransmit/recovery on three duplicate ACKs,
//! go-back-N on RTO with exponential backoff, and ECN reactions per
//! [`CcKind`]. This is the fidelity class of the ns-3 models the paper's
//! simulations use.

use crate::config::{CcKind, TcpConfig, TimerBackend};
use crate::rtt::RttEstimator;
use ecnsharp_net::{Ctx, Ecn, FlowCmd, FlowId, NodeId, Packet};
use ecnsharp_sim::SimTime;
use std::collections::BTreeMap;

/// Sender connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderState {
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Data transfer in progress.
    Established,
    /// All bytes acknowledged; flow reported complete.
    Done,
    /// Aborted after `max_rto_retries` consecutive timeouts without
    /// forward progress; flow reported failed.
    Failed,
}

/// The sending half of a flow.
pub struct Sender {
    /// Immutable flow parameters.
    pub cmd: FlowCmd,
    cfg: TcpConfig,
    /// Connection state.
    pub state: SenderState,
    /// Lowest unacknowledged byte.
    pub snd_una: u64,
    /// Next byte to send.
    pub snd_nxt: u64,
    /// Congestion window in bytes.
    pub cwnd: f64,
    /// Slow-start threshold in bytes.
    pub ssthresh: f64,
    dupacks: u32,
    /// NewReno recovery point: `Some(snd_nxt at loss)` while recovering.
    recover: Option<u64>,
    /// RTT/RTO estimation.
    pub rtt: RttEstimator,
    /// Monotonic epoch distinguishing live from stale RTO timers.
    pub rto_epoch: u32,
    backoff: u32,
    /// Consecutive RTOs without an intervening new ACK; at
    /// `max_rto_retries` the sender gives up (see [`SenderState::Failed`]).
    rto_streak: u32,
    /// Retransmission timeouts suffered.
    pub timeouts: u32,
    // ── DCTCP state ─────────────────────────────────────────────────────
    /// EWMA of the marked-byte fraction.
    pub alpha: f64,
    acked_bytes: u64,
    marked_bytes: u64,
    /// When `snd_una` passes this, fold the counters into `alpha`.
    alpha_seq: u64,
    /// Congestion-window-reduced until `snd_una` passes this (one reaction
    /// per window, both for DCTCP and ECN-TCP).
    cwr_end: Option<u64>,
}

impl Sender {
    /// Create a sender for `cmd` and emit its first packet (SYN).
    pub fn start(cmd: FlowCmd, cfg: TcpConfig, ctx: &mut Ctx<'_>) -> Self {
        let mut s = Sender {
            state: SenderState::SynSent,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: cfg.init_cwnd_bytes(),
            ssthresh: cfg.max_cwnd as f64,
            dupacks: 0,
            recover: None,
            rtt: RttEstimator::new(cfg.min_rto, cfg.max_rto, cfg.init_rto),
            rto_epoch: 0,
            backoff: 1,
            rto_streak: 0,
            timeouts: 0,
            alpha: cfg.dctcp_init_alpha,
            acked_bytes: 0,
            marked_bytes: 0,
            alpha_seq: 0,
            cwr_end: None,
            cmd,
            cfg,
        };
        s.send_syn(ctx);
        s.arm_rto(ctx);
        s
    }

    fn mss(&self) -> u64 {
        self.cfg.mss
    }

    fn send_syn(&mut self, ctx: &mut Ctx<'_>) {
        let mut p = Packet::data(self.cmd.flow, self.cmd.src, self.cmd.dst, 0, 0);
        p.set_syn(true);
        p.set_class(self.cmd.class);
        p.ts = ctx.now;
        ctx.send_delayed(p, self.cmd.extra_delay);
    }

    fn send_segment(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        let len = self.mss().min(self.cmd.size - seq);
        debug_assert!(len > 0);
        let mut p = Packet::data(self.cmd.flow, self.cmd.src, self.cmd.dst, seq, len);
        p.set_class(self.cmd.class);
        p.ts = ctx.now;
        ctx.send_delayed(p, self.cmd.extra_delay);
    }

    /// Transmit whatever the window allows.
    fn send_available(&mut self, ctx: &mut Ctx<'_>) {
        let cwnd = (self.cwnd as u64).min(self.cfg.max_cwnd);
        while self.snd_nxt < self.cmd.size {
            let len = self.mss().min(self.cmd.size - self.snd_nxt);
            let in_flight = self.snd_nxt - self.snd_una;
            if in_flight + len > cwnd {
                break;
            }
            let seq = self.snd_nxt;
            self.send_segment(ctx, seq);
            self.snd_nxt += len;
        }
    }

    /// (Re-)arm the retransmission timer. On the wheel backend the pending
    /// deadline is replaced in place; on the legacy backend old timers are
    /// invalidated via the epoch and filtered when they pop.
    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        let timeout = self.rtt.rto() * self.backoff as u64;
        match self.cfg.timer_backend {
            TimerBackend::Wheel => {
                ctx.arm_timer(timeout, timer_key(self.cmd.flow, TimerKind::Rto, 0));
            }
            TimerBackend::Legacy => {
                self.rto_epoch = self.rto_epoch.wrapping_add(1);
                ctx.set_timer(
                    timeout,
                    timer_key(self.cmd.flow, TimerKind::Rto, self.rto_epoch),
                );
            }
        }
    }

    /// Cancel the retransmission timer — on the wheel for real, on the
    /// legacy backend logically (any pending firing becomes stale).
    fn disarm_rto(&mut self, ctx: &mut Ctx<'_>) {
        match self.cfg.timer_backend {
            TimerBackend::Wheel => {
                ctx.cancel_timer(timer_key(self.cmd.flow, TimerKind::Rto, 0));
            }
            TimerBackend::Legacy => {
                self.rto_epoch = self.rto_epoch.wrapping_add(1);
            }
        }
    }

    /// Handle an incoming ACK / SYN-ACK for this flow.
    pub fn on_ack(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        if matches!(self.state, SenderState::Done | SenderState::Failed) {
            return;
        }
        if pkt.flags().syn {
            // SYN-ACK: connection established.
            if self.state == SenderState::SynSent {
                self.state = SenderState::Established;
                if pkt.ts != SimTime::ZERO {
                    self.rtt.sample(ctx.now.saturating_since(pkt.ts));
                }
                self.backoff = 1;
                self.rto_streak = 0;
                if self.cmd.size == 0 {
                    self.complete(ctx);
                    return;
                }
                self.send_available(ctx);
                self.arm_rto(ctx);
            }
            return;
        }
        if self.state != SenderState::Established {
            return;
        }

        if pkt.ack_no() > self.snd_una {
            self.on_new_ack(ctx, pkt);
        } else if pkt.ack_no() == self.snd_una {
            self.on_dup_ack(ctx, pkt);
        }
    }

    fn on_new_ack(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let acked = pkt.ack_no() - self.snd_una;
        self.snd_una = pkt.ack_no();
        // A late ACK for data sent before an RTO's go-back-N rewind can
        // overtake snd_nxt; sending resumes from the ACK point.
        self.snd_nxt = self.snd_nxt.max(self.snd_una);
        self.dupacks = 0;
        self.backoff = 1;
        self.rto_streak = 0;
        if pkt.ts != SimTime::ZERO {
            self.rtt.sample(ctx.now.saturating_since(pkt.ts));
        }

        // DCTCP bookkeeping: every acked byte counts; ECE-carrying ACKs
        // contribute to the marked fraction.
        self.acked_bytes += acked;
        if pkt.flags().ece {
            self.marked_bytes += acked;
        }
        if self.snd_una >= self.alpha_seq {
            if let CcKind::Dctcp { g } = self.cfg.cc {
                if self.acked_bytes > 0 {
                    let frac = self.marked_bytes as f64 / self.acked_bytes as f64;
                    self.alpha = (1.0 - g) * self.alpha + g * frac;
                    ctx.emit_alpha(self.cmd.flow, self.alpha);
                }
            }
            self.acked_bytes = 0;
            self.marked_bytes = 0;
            self.alpha_seq = self.snd_nxt.max(self.snd_una + 1);
        }

        match self.recover {
            Some(recover) if self.snd_una < recover => {
                // Partial ACK inside recovery: the next hole is lost too.
                let seq = self.snd_una;
                self.send_segment(ctx, seq);
                self.arm_rto(ctx);
            }
            Some(_) => {
                // Recovery complete.
                self.recover = None;
                self.cwnd = self.ssthresh;
            }
            None => {
                // Normal growth.
                if self.cwnd < self.ssthresh {
                    // Slow start: one MSS per ACK (bounded by acked bytes).
                    self.cwnd += acked.min(self.mss()) as f64;
                } else {
                    // Congestion avoidance: ~one MSS per RTT.
                    self.cwnd += (self.mss() * self.mss()) as f64 / self.cwnd
                        * (acked as f64 / self.mss() as f64).min(1.0);
                }
                self.cwnd = self.cwnd.min(self.cfg.max_cwnd as f64);
            }
        }

        // ECN reaction, at most once per window, never during loss
        // recovery (loss already cut the window).
        if pkt.flags().ece && self.recover.is_none() {
            let past_cwr = self.cwr_end.is_none_or(|e| self.snd_una >= e);
            if past_cwr {
                let factor = match self.cfg.cc {
                    CcKind::Dctcp { .. } => 1.0 - self.alpha / 2.0,
                    CcKind::EcnTcp => 0.5,
                    CcKind::Reno => 1.0,
                };
                if factor < 1.0 {
                    self.cwnd = (self.cwnd * factor).max((2 * self.mss()) as f64);
                    self.ssthresh = self.cwnd;
                    self.cwr_end = Some(self.snd_nxt);
                }
            }
        }

        ctx.emit_cwnd(self.cmd.flow, self.cwnd as u64, self.ssthresh as u64);

        if self.snd_una >= self.cmd.size {
            self.complete(ctx);
            return;
        }
        self.send_available(ctx);
        self.arm_rto(ctx);
    }

    fn on_dup_ack(&mut self, ctx: &mut Ctx<'_>, _pkt: &Packet) {
        self.dupacks += 1;
        if self.recover.is_some() {
            // NewReno window inflation keeps the pipe full in recovery.
            self.cwnd += self.mss() as f64;
            self.send_available(ctx);
            return;
        }
        if self.dupacks == 3 {
            // Fast retransmit.
            let flight = (self.snd_nxt - self.snd_una) as f64;
            self.ssthresh = (flight / 2.0).max((2 * self.mss()) as f64);
            self.cwnd = self.ssthresh + (3 * self.mss()) as f64;
            self.recover = Some(self.snd_nxt);
            ctx.emit_cwnd(self.cmd.flow, self.cwnd as u64, self.ssthresh as u64);
            let seq = self.snd_una;
            self.send_segment(ctx, seq);
            self.arm_rto(ctx);
        }
    }

    /// RTO fired (stack verified the epoch matches).
    pub fn on_rto(&mut self, ctx: &mut Ctx<'_>) {
        match self.state {
            SenderState::Done | SenderState::Failed => {}
            SenderState::SynSent => {
                self.timeouts += 1;
                self.rto_streak += 1;
                ctx.emit_rto(self.cmd.flow, self.rto_streak);
                if self.rto_streak >= self.cfg.max_rto_retries {
                    self.fail(ctx);
                    return;
                }
                self.backoff = (self.backoff * 2).min(64);
                self.send_syn(ctx);
                self.arm_rto(ctx);
            }
            SenderState::Established => {
                if self.snd_una >= self.cmd.size {
                    return;
                }
                self.timeouts += 1;
                self.rto_streak += 1;
                ctx.emit_rto(self.cmd.flow, self.rto_streak);
                if self.rto_streak >= self.cfg.max_rto_retries {
                    self.fail(ctx);
                    return;
                }
                // Classic RTO reaction: collapse to one segment, go-back-N.
                self.ssthresh =
                    ((self.snd_nxt - self.snd_una) as f64 / 2.0).max((2 * self.mss()) as f64);
                self.cwnd = self.mss() as f64;
                ctx.emit_cwnd(self.cmd.flow, self.cwnd as u64, self.ssthresh as u64);
                self.snd_nxt = self.snd_una;
                self.dupacks = 0;
                self.recover = None;
                self.cwr_end = None;
                self.backoff = (self.backoff * 2).min(64);
                self.send_available(ctx);
                self.arm_rto(ctx);
            }
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>) {
        self.state = SenderState::Done;
        self.disarm_rto(ctx);
        ctx.flow_done(self.cmd.flow, self.timeouts);
    }

    /// Give up: the path is (effectively) dead. Stops all retransmission
    /// and reports the flow as failed so FCT accounting can count the
    /// abort without polluting completion-time statistics.
    fn fail(&mut self, ctx: &mut Ctx<'_>) {
        self.state = SenderState::Failed;
        self.disarm_rto(ctx);
        ctx.flow_failed(self.cmd.flow, self.timeouts);
    }
}

/// The receiving half of a flow.
pub struct Receiver {
    flow: FlowId,
    /// This host.
    me: NodeId,
    /// The sender to ACK back to.
    peer: NodeId,
    class: u8,
    cfg: TcpConfig,
    /// Next expected in-order byte.
    pub rcv_nxt: u64,
    /// Out-of-order segments: start → end (exclusive).
    ooo: BTreeMap<u64, u64>,
    // ── DCTCP CE-echo state machine (DCTCP paper §3.2) ──────────────────
    /// Last CE state observed.
    ce_state: bool,
    /// Data segments received since the last ACK.
    pending: u32,
    /// Epoch for the delayed-ACK timer (legacy backend only).
    pub delack_epoch: u32,
    /// Whether a wheel delayed-ACK timer is currently armed.
    delack_armed: bool,
    /// Logical delayed-ACK deadline (wheel backend, `delack_count > 1`
    /// only). The physical wheel token is *not* cancelled when an ACK goes
    /// out and *not* re-armed on every data packet; instead this field
    /// tracks the deadline the receiver actually owes. A token firing with
    /// no deadline (`None`) is suppressed; one firing early (deadline still
    /// in the future) pushes the token forward in place. Cuts per-packet
    /// wheel traffic to at most one arm per quiet period while keeping ACK
    /// emission times identical to the un-batched reference.
    delack_deadline: Option<SimTime>,
    /// Timestamp to echo on the next ACK.
    echo_ts: SimTime,
}

impl Receiver {
    /// Create receiver state upon the first packet of a flow.
    pub fn new(flow: FlowId, me: NodeId, peer: NodeId, class: u8, cfg: TcpConfig) -> Self {
        Receiver {
            flow,
            me,
            peer,
            class,
            cfg,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ce_state: false,
            pending: 0,
            delack_epoch: 0,
            delack_armed: false,
            delack_deadline: None,
            echo_ts: SimTime::ZERO,
        }
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>, ece: bool) {
        let mut a = Packet::ack(self.flow, self.me, self.peer, self.rcv_nxt);
        a.set_ece(ece);
        a.set_class(self.class);
        a.ts = self.echo_ts;
        // Pure ACKs are not ECT (standard practice; they are tiny and
        // marking them would signal the wrong direction).
        a.set_ecn(Ecn::NotEct);
        ctx.send(a);
        self.pending = 0;
        match self.cfg.timer_backend {
            TimerBackend::Wheel => {
                if self.cfg.delack_count > 1 {
                    // Batched bookkeeping: leave the physical wheel token
                    // armed and only clear the logical deadline — the
                    // eventual firing is suppressed in
                    // [`Receiver::on_delack_timer`]. Saves one cancel per
                    // count-triggered ACK on the hot path.
                    self.delack_deadline = None;
                } else if self.delack_armed {
                    self.delack_armed = false;
                    ctx.cancel_timer(timer_key(self.flow, TimerKind::DelAck, 0));
                }
            }
            TimerBackend::Legacy => {
                self.delack_epoch = self.delack_epoch.wrapping_add(1);
            }
        }
    }

    /// Handle an arriving SYN or data packet.
    pub fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        if pkt.flags().syn {
            let mut sa = Packet::ack(self.flow, self.me, self.peer, 0);
            sa.set_syn(true);
            sa.ts = pkt.ts;
            sa.set_class(self.class);
            sa.set_ecn(Ecn::NotEct);
            ctx.send(sa);
            return;
        }
        if pkt.payload() == 0 {
            return;
        }

        // Reassembly.
        let (start, end) = (pkt.seq(), pkt.seq() + pkt.payload());
        let duplicate = end <= self.rcv_nxt;
        if !duplicate {
            if start <= self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.max(end);
                // Drain any now-contiguous buffered segments.
                while let Some((&s, &e)) = self.ooo.first_key_value() {
                    if s > self.rcv_nxt {
                        break;
                    }
                    self.rcv_nxt = self.rcv_nxt.max(e);
                    self.ooo.remove(&s);
                }
            } else {
                // Buffer out-of-order segment (coarse: keyed by start).
                let entry = self.ooo.entry(start).or_insert(end);
                *entry = (*entry).max(end);
                // Reassembly state is the transport's only unbounded
                // growth; meter it against the configured budget. The
                // report never alters receiver behaviour, so an
                // armed-but-untriggered budget stays byte-identical.
                if let Some(budget) = self.cfg.ooo_budget {
                    if self.ooo.len() as u64 > u64::from(budget) {
                        ctx.report_mem_breach(self.ooo.len() as u64, u64::from(budget));
                    }
                }
            }
        }

        self.echo_ts = pkt.ts;
        let ce = pkt.ecn().is_ce();
        self.pending += 1;

        // DCTCP CE-echo: on a CE-state flip, immediately ACK what is
        // pending with the *old* state so the sender's marked-byte
        // accounting stays exact, then continue with the new state.
        if ce != self.ce_state && self.pending > 1 {
            let old = self.ce_state;
            self.pending -= 1; // the current packet is acked by the next ACK
            self.send_ack(ctx, old);
            self.pending = 1;
        }
        self.ce_state = ce;

        // Out-of-order or duplicate data ⇒ immediate (dup-)ACK to drive
        // fast retransmit; in-order data follows the delayed-ACK policy.
        let out_of_order = duplicate || start > self.rcv_nxt || !self.ooo.is_empty();
        if out_of_order || self.pending >= self.cfg.delack_count {
            self.send_ack(ctx, ce);
        } else {
            // Arm the delayed-ACK timer.
            match self.cfg.timer_backend {
                TimerBackend::Wheel if self.cfg.delack_count > 1 => {
                    // Batched: record the deadline; only touch the wheel if
                    // no token is in flight. An in-flight token always has a
                    // physical deadline ≤ this logical one (deadlines are
                    // `now + timeout` and `now` is monotone), so the early
                    // firing re-arms forward rather than missing it.
                    self.delack_deadline = Some(ctx.now + self.cfg.delack_timeout);
                    if !self.delack_armed {
                        self.delack_armed = true;
                        ctx.arm_timer(
                            self.cfg.delack_timeout,
                            timer_key(self.flow, TimerKind::DelAck, 0),
                        );
                    }
                }
                TimerBackend::Wheel => {
                    self.delack_armed = true;
                    ctx.arm_timer(
                        self.cfg.delack_timeout,
                        timer_key(self.flow, TimerKind::DelAck, 0),
                    );
                }
                TimerBackend::Legacy => {
                    self.delack_epoch = self.delack_epoch.wrapping_add(1);
                    ctx.set_timer(
                        self.cfg.delack_timeout,
                        timer_key(self.flow, TimerKind::DelAck, self.delack_epoch),
                    );
                }
            }
        }
    }

    /// Delayed-ACK timer fired (stack verified the epoch).
    pub fn on_delack_timer(&mut self, ctx: &mut Ctx<'_>) {
        // The firing spent the wheel timer; nothing left to cancel.
        self.delack_armed = false;
        if self.cfg.timer_backend == TimerBackend::Wheel && self.cfg.delack_count > 1 {
            match self.delack_deadline {
                // The token outlived its ACK (batched bookkeeping never
                // cancels); nothing is owed.
                None => return,
                // Fired at a stale earlier deadline; push the token forward
                // to the live one in place.
                Some(d) if d > ctx.now => {
                    self.delack_armed = true;
                    ctx.arm_timer(
                        d.saturating_since(ctx.now),
                        timer_key(self.flow, TimerKind::DelAck, 0),
                    );
                    return;
                }
                Some(_) => self.delack_deadline = None,
            }
        }
        if self.pending > 0 {
            let ce = self.ce_state;
            self.send_ack(ctx, ce);
        }
    }
}

/// Timer namespaces multiplexed into the agent's single `u64` key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Sender retransmission timeout.
    Rto,
    /// Receiver delayed ACK.
    DelAck,
}

/// Pack `(flow, kind, epoch)` into a timer key. Flow ids must fit 31 bits.
pub fn timer_key(flow: FlowId, kind: TimerKind, epoch: u32) -> u64 {
    debug_assert!(flow.0 < (1 << 31), "flow id too large for timer key");
    let kind_bit = match kind {
        TimerKind::Rto => 0u64,
        TimerKind::DelAck => 1u64,
    };
    (kind_bit << 63) | (flow.0 << 32) | epoch as u64
}

/// Unpack a timer key.
pub fn parse_timer_key(key: u64) -> (FlowId, TimerKind, u32) {
    let kind = if key >> 63 == 0 {
        TimerKind::Rto
    } else {
        TimerKind::DelAck
    };
    let flow = FlowId((key >> 32) & 0x7FFF_FFFF);
    (flow, kind, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnsharp_net::Ctx;
    use ecnsharp_sim::Duration;

    #[test]
    fn timer_key_roundtrip() {
        for (flow, kind, epoch) in [
            (FlowId(0), TimerKind::Rto, 0u32),
            (FlowId(12345), TimerKind::DelAck, 77),
            (FlowId((1 << 31) - 1), TimerKind::Rto, u32::MAX),
        ] {
            let k = timer_key(flow, kind, epoch);
            assert_eq!(parse_timer_key(k), (flow, kind, epoch));
        }
    }

    // ── Sender state-machine unit tests (detached contexts) ────────────

    fn sender_cmd(size: u64) -> FlowCmd {
        FlowCmd {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            class: 0,
            extra_delay: Duration::ZERO,
        }
    }

    /// Collect the data packets a callback caused the sender to emit.
    fn sent(actions: &mut Vec<ecnsharp_net::Action>) -> Vec<Packet> {
        actions
            .drain(..)
            .filter_map(|a| match a {
                ecnsharp_net::Action::Send(p, _) => Some(p),
                _ => None,
            })
            .collect()
    }

    /// Drive a sender to Established and return it (SYN-ACK consumed).
    fn established(size: u64) -> (Sender, Vec<Packet>) {
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(0), NodeId(0), &mut actions);
        let mut s = Sender::start(sender_cmd(size), TcpConfig::dctcp(), &mut ctx);
        let syn = sent(&mut actions);
        assert_eq!(syn.len(), 1);
        assert!(syn[0].flags().syn);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(100), NodeId(0), &mut actions);
        let mut synack = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 0);
        synack.set_syn(true);
        synack.ts = SimTime::from_micros(0);
        s.on_ack(&mut ctx, &synack);
        let first_window = sent(&mut actions);
        (s, first_window)
    }

    /// Build an ACK for the sender with optional ECE.
    fn ack_pkt(ack: u64, ece: bool, ts_us: u64) -> Packet {
        let mut a = Packet::ack(FlowId(1), NodeId(1), NodeId(0), ack);
        a.set_ece(ece);
        a.ts = SimTime::from_micros(ts_us);
        a
    }

    #[test]
    fn initial_window_is_three_segments() {
        let (s, w) = established(1_000_000);
        assert_eq!(w.len(), 3, "IW=3");
        assert_eq!(w[0].seq(), 0);
        assert_eq!(w[1].seq(), 1460);
        assert_eq!(w[2].seq(), 2920);
        assert_eq!(s.snd_nxt, 4380);
        assert_eq!(s.state, SenderState::Established);
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let (mut s, _) = established(10_000_000);
        let cwnd0 = s.cwnd;
        // Ack the three IW segments: slow start adds 1 MSS per ACK.
        for (i, ack) in [1460u64, 2920, 4380].into_iter().enumerate() {
            let mut actions = Vec::new();
            let mut ctx = Ctx::detached(
                SimTime::from_micros(200 + i as u64),
                NodeId(0),
                &mut actions,
            );
            s.on_ack(&mut ctx, &ack_pkt(ack, false, 100));
        }
        assert!(
            (s.cwnd - (cwnd0 + 3.0 * 1460.0)).abs() < 1.0,
            "cwnd {}",
            s.cwnd
        );
    }

    #[test]
    fn dctcp_alpha_decays_without_marks_and_rises_with() {
        let (mut s, _) = established(100_000_000);
        // Initialization assigns the literal 1.0; no arithmetic involved.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(s.alpha, 1.0, "Linux-style init");
        }
        // Several clean windows: alpha decays by (1-g) per window.
        let mut ack = 0u64;
        for k in 0..50u64 {
            ack += 1460;
            let mut actions = Vec::new();
            let mut ctx = Ctx::detached(SimTime::from_micros(300 + k), NodeId(0), &mut actions);
            s.on_ack(&mut ctx, &ack_pkt(ack, false, 200));
        }
        assert!(s.alpha < 0.8, "alpha should decay, got {}", s.alpha);
        let low = s.alpha;
        // Now every ACK carries ECE: alpha climbs towards 1.
        for k in 0..300u64 {
            ack += 1460;
            let mut actions = Vec::new();
            let mut ctx = Ctx::detached(SimTime::from_micros(1_000 + k), NodeId(0), &mut actions);
            s.on_ack(&mut ctx, &ack_pkt(ack, true, 900));
        }
        assert!(s.alpha > low, "alpha should rise, got {}", s.alpha);
        assert!(s.alpha > 0.5, "alpha {}", s.alpha);
    }

    #[test]
    fn ece_cuts_once_per_window() {
        let (mut s, _) = established(100_000_000);
        // Grow a bit first.
        let mut ack = 0u64;
        for k in 0..20u64 {
            ack += 1460;
            let mut actions = Vec::new();
            let mut ctx = Ctx::detached(SimTime::from_micros(300 + k), NodeId(0), &mut actions);
            s.on_ack(&mut ctx, &ack_pkt(ack, false, 200));
        }
        let before = s.cwnd;
        // Two consecutive ECE ACKs within one window: only one cut.
        ack += 1460;
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(400), NodeId(0), &mut actions);
        s.on_ack(&mut ctx, &ack_pkt(ack, true, 300));
        let after_first = s.cwnd;
        assert!(after_first < before, "first ECE must cut");
        ack += 1460;
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(401), NodeId(0), &mut actions);
        s.on_ack(&mut ctx, &ack_pkt(ack, true, 300));
        // Second cut suppressed (CWR window), modulo normal growth.
        assert!(s.cwnd >= after_first, "second ECE in window must not cut");
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let (mut s, _) = established(10_000_000);
        // Ack first segment so snd_una = 1460 and more data flies.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(300), NodeId(0), &mut actions);
        s.on_ack(&mut ctx, &ack_pkt(1460, false, 200));
        sent(&mut actions);
        // Three duplicate ACKs at 1460.
        for k in 0..3 {
            let mut actions = Vec::new();
            let mut ctx = Ctx::detached(SimTime::from_micros(310 + k), NodeId(0), &mut actions);
            s.on_ack(&mut ctx, &ack_pkt(1460, false, 0));
            let out = sent(&mut actions);
            if k < 2 {
                assert!(out.is_empty(), "no retransmit before 3rd dupack");
            } else {
                assert_eq!(out.len(), 1, "fast retransmit on 3rd dupack");
                assert_eq!(out[0].seq(), 1460, "retransmits the hole");
            }
        }
    }

    #[test]
    fn rto_rewinds_and_collapses_window() {
        let (mut s, _) = established(10_000_000);
        let nxt_before = s.snd_nxt;
        assert!(nxt_before > 0);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_millis(50), NodeId(0), &mut actions);
        s.on_rto(&mut ctx);
        assert_eq!(s.timeouts, 1);
        // RTO assigns cwnd = mss as f64 exactly; no arithmetic involved.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(s.cwnd, 1460.0, "cwnd collapses to one segment");
        }
        let out = sent(&mut actions);
        assert_eq!(out.len(), 1, "go-back-N resends from snd_una");
        assert_eq!(out[0].seq(), 0);
    }

    #[test]
    fn completion_reports_flow_done() {
        let (mut s, _) = established(1_460);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(500), NodeId(0), &mut actions);
        s.on_ack(&mut ctx, &ack_pkt(1460, false, 200));
        assert_eq!(s.state, SenderState::Done);
        assert!(actions.iter().any(|a| matches!(
            a,
            ecnsharp_net::Action::FlowDone(f, 0) if *f == FlowId(1)
        )));
        // Further ACKs are ignored harmlessly.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(600), NodeId(0), &mut actions);
        s.on_ack(&mut ctx, &ack_pkt(1460, false, 0));
        assert!(actions.is_empty());
    }

    #[test]
    fn rto_streak_gives_up_after_max_retries() {
        let (mut s, _) = established(10_000_000);
        let max = TcpConfig::dctcp().max_rto_retries;
        for k in 0..max {
            let mut actions = Vec::new();
            let mut ctx =
                Ctx::detached(SimTime::from_millis(50 + k as u64), NodeId(0), &mut actions);
            s.on_rto(&mut ctx);
            if k + 1 < max {
                assert_eq!(s.state, SenderState::Established);
            } else {
                assert_eq!(s.state, SenderState::Failed, "gives up on RTO #{max}");
                assert!(actions.iter().any(|a| matches!(
                    a,
                    ecnsharp_net::Action::FlowFailed(f, t) if *f == FlowId(1) && *t == max
                )));
                assert!(
                    !actions
                        .iter()
                        .any(|a| matches!(a, ecnsharp_net::Action::Send(_, _))),
                    "no retransmission after giving up"
                );
            }
        }
        // Further RTOs and ACKs are ignored harmlessly.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_millis(100), NodeId(0), &mut actions);
        s.on_rto(&mut ctx);
        s.on_ack(&mut ctx, &ack_pkt(1460, false, 0));
        assert!(actions.is_empty());
        assert_eq!(s.timeouts, max);
    }

    #[test]
    fn ack_progress_resets_rto_streak() {
        let (mut s, _) = established(10_000_000);
        let max = TcpConfig::dctcp().max_rto_retries;
        // max-1 consecutive RTOs: still alive.
        for k in 0..max - 1 {
            let mut actions = Vec::new();
            let mut ctx =
                Ctx::detached(SimTime::from_millis(50 + k as u64), NodeId(0), &mut actions);
            s.on_rto(&mut ctx);
        }
        assert_eq!(s.state, SenderState::Established);
        // Forward progress resets the streak...
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_millis(80), NodeId(0), &mut actions);
        s.on_ack(&mut ctx, &ack_pkt(1460, false, 0));
        // ...so the next RTO is streak 1, not max.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_millis(90), NodeId(0), &mut actions);
        s.on_rto(&mut ctx);
        assert_eq!(s.state, SenderState::Established, "streak was reset");
        assert_eq!(s.timeouts, max, "total timeouts still accumulate");
    }

    #[test]
    fn syn_retry_exhaustion_fails_flow() {
        // A flow whose SYN never gets through must also give up.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(0), &mut actions);
        let cfg = TcpConfig::dctcp();
        let mut s = Sender::start(sender_cmd(1_000_000), cfg, &mut ctx);
        for k in 0..cfg.max_rto_retries {
            let mut actions = Vec::new();
            let mut ctx =
                Ctx::detached(SimTime::from_millis(10 + k as u64), NodeId(0), &mut actions);
            s.on_rto(&mut ctx);
        }
        assert_eq!(s.state, SenderState::Failed);
        assert_eq!(s.timeouts, cfg.max_rto_retries);
    }

    #[test]
    fn late_ack_after_rto_rewind_is_safe() {
        // Regression test: an ACK beyond snd_nxt after go-back-N must not
        // underflow the in-flight computation.
        let (mut s, _) = established(10_000_000);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_millis(50), NodeId(0), &mut actions);
        s.on_rto(&mut ctx); // snd_nxt rewound to snd_una = 0
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_millis(51), NodeId(0), &mut actions);
        // Old in-flight data gets acked beyond the rewound snd_nxt.
        s.on_ack(&mut ctx, &ack_pkt(2920, false, 0));
        assert!(s.snd_nxt >= s.snd_una);
        let out = sent(&mut actions);
        assert!(!out.is_empty(), "transmission resumes from the ACK point");
    }

    // Receiver-side unit tests.

    #[test]
    fn receiver_reassembles_out_of_order() {
        let cfg = TcpConfig::default();
        let mut r = Receiver::new(FlowId(1), NodeId(1), NodeId(0), 0, cfg);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(1), &mut actions);
        // Segment [1460, 2920) arrives first.
        let p2 = Packet::data(FlowId(1), NodeId(0), NodeId(1), 1460, 1460);
        r.on_packet(&mut ctx, &p2);
        assert_eq!(r.rcv_nxt, 0);
        // Hole filled: rcv_nxt jumps over the buffered segment.
        let p1 = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1460);
        r.on_packet(&mut ctx, &p1);
        assert_eq!(r.rcv_nxt, 2920);
    }

    #[test]
    fn receiver_acks_syn_with_synack() {
        let cfg = TcpConfig::default();
        let mut r = Receiver::new(FlowId(1), NodeId(1), NodeId(0), 0, cfg);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(9), NodeId(1), &mut actions);
        let mut syn = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 0);
        syn.set_syn(true);
        syn.ts = SimTime::from_micros(3);
        r.on_packet(&mut ctx, &syn);
        match &actions[0] {
            ecnsharp_net::Action::Send(p, _) => {
                assert!(p.flags().syn && p.flags().ack);
                assert_eq!(p.ts, SimTime::from_micros(3), "ts echoed");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn receiver_echoes_ce_per_packet() {
        let cfg = TcpConfig::default(); // delack_count = 1: per-packet ACKs
        let mut r = Receiver::new(FlowId(1), NodeId(1), NodeId(0), 0, cfg);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(1), &mut actions);
        let mut p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1460);
        p.set_ecn(Ecn::Ce);
        r.on_packet(&mut ctx, &p);
        let mut p2 = Packet::data(FlowId(1), NodeId(0), NodeId(1), 1460, 1460);
        p2.set_ecn(Ecn::Ect);
        r.on_packet(&mut ctx, &p2);
        let eces: Vec<bool> = actions
            .iter()
            .map(|a| match a {
                ecnsharp_net::Action::Send(p, _) => p.flags().ece,
                _ => panic!(),
            })
            .collect();
        assert_eq!(eces, vec![true, false]);
    }

    #[test]
    fn duplicate_data_triggers_dup_ack() {
        let cfg = TcpConfig::default();
        let mut r = Receiver::new(FlowId(1), NodeId(1), NodeId(0), 0, cfg);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(1), &mut actions);
        let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1460);
        r.on_packet(&mut ctx, &p);
        r.on_packet(&mut ctx, &p); // duplicate
        assert_eq!(actions.len(), 2);
        match &actions[1] {
            ecnsharp_net::Action::Send(a, _) => assert_eq!(a.ack_no(), 1460),
            _ => panic!(),
        }
    }

    // ── Wheel-batched delayed-ACK bookkeeping (delack_count > 1) ───────

    fn delack2_cfg() -> TcpConfig {
        TcpConfig {
            delack_count: 2,
            ..TcpConfig::dctcp()
        }
    }

    fn data(seq: u64) -> Packet {
        Packet::data(FlowId(1), NodeId(0), NodeId(1), seq, 1460)
    }

    #[test]
    fn batched_delack_never_cancels_and_suppresses_spent_token() {
        let cfg = delack2_cfg();
        assert_eq!(cfg.timer_backend, TimerBackend::Wheel);
        let timeout = cfg.delack_timeout;
        let mut r = Receiver::new(FlowId(1), NodeId(1), NodeId(0), 0, cfg);

        // First in-order segment: below the count threshold, so no ACK and
        // exactly one physical wheel arm.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(1), &mut actions);
        r.on_packet(&mut ctx, &data(0));
        assert!(
            matches!(actions[..], [ecnsharp_net::Action::ArmTimer(at, _)]
            if at == SimTime::ZERO + timeout)
        );

        // Second segment hits the count: the ACK goes out, but the token is
        // left armed — batched bookkeeping emits no CancelTimer.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(10), NodeId(1), &mut actions);
        r.on_packet(&mut ctx, &data(1460));
        assert!(matches!(actions[..], [ecnsharp_net::Action::Send(..)]));

        // The orphaned token eventually fires: nothing is owed, so it must
        // be swallowed without an ACK or a re-arm.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO + timeout, NodeId(1), &mut actions);
        r.on_delack_timer(&mut ctx);
        assert!(actions.is_empty(), "spurious fire must be suppressed");
    }

    #[test]
    fn batched_delack_pushes_early_fire_to_live_deadline() {
        let cfg = delack2_cfg();
        let timeout = cfg.delack_timeout;
        let mut r = Receiver::new(FlowId(1), NodeId(1), NodeId(0), 0, cfg);

        // t=0: segment arms the token (physical deadline = timeout).
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(1), &mut actions);
        r.on_packet(&mut ctx, &data(0));
        assert_eq!(actions.len(), 1);

        // t=10us: second segment ACKs (count reached), token stays armed.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(10), NodeId(1), &mut actions);
        r.on_packet(&mut ctx, &data(1460));
        assert!(matches!(actions[..], [ecnsharp_net::Action::Send(..)]));

        // t=20us: a third segment only records the later logical deadline —
        // the in-flight token means no new physical arm.
        let arrive = SimTime::from_micros(20);
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(arrive, NodeId(1), &mut actions);
        r.on_packet(&mut ctx, &data(2920));
        assert!(actions.is_empty(), "in-flight token must absorb the arm");

        // The token fires at its stale physical deadline: the live logical
        // deadline is still ahead, so it re-arms forward without ACKing.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO + timeout, NodeId(1), &mut actions);
        r.on_delack_timer(&mut ctx);
        assert!(
            matches!(actions[..], [ecnsharp_net::Action::ArmTimer(at, _)]
            if at == arrive + timeout)
        );

        // At the live deadline the owed ACK finally goes out.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(arrive + timeout, NodeId(1), &mut actions);
        r.on_delack_timer(&mut ctx);
        match &actions[..] {
            [ecnsharp_net::Action::Send(a, _)] => assert_eq!(a.ack_no(), 4380),
            other => panic!("expected the owed ACK, got {other:?}"),
        }
        // The deadline is spent: a duplicate fire is a no-op.
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(arrive + timeout + timeout, NodeId(1), &mut actions);
        r.on_delack_timer(&mut ctx);
        assert!(actions.is_empty());
    }

    #[test]
    fn batched_delack_ack_cadence_matches_legacy_reference() {
        // Drive the identical arrival schedule through the batched wheel
        // receiver and the un-batched legacy receiver, replaying recorded
        // timer actions through each backend's real dispatch rules (legacy:
        // stale events stay queued and are epoch-filtered like in
        // `stack::on_timer`; wheel: one live token per key, cancellable,
        // re-armable in place). The emitted ACK streams must be identical.
        fn run(backend: TimerBackend) -> Vec<(SimTime, u64, bool)> {
            let cfg = TcpConfig {
                timer_backend: backend,
                ..delack2_cfg()
            };
            let mut r = Receiver::new(FlowId(1), NodeId(1), NodeId(0), 0, cfg);
            let mut acks = Vec::new();
            // Legacy `SetTimer` events (never removed, epoch-checked at
            // fire) and the wheel's single live token.
            let mut legacy_q: Vec<(SimTime, u64)> = Vec::new();
            let mut wheel_tok: Option<(SimTime, u64)> = None;
            let apply = |r: &mut Receiver,
                         now: SimTime,
                         ev: Option<&Packet>,
                         acks: &mut Vec<(SimTime, u64, bool)>,
                         legacy_q: &mut Vec<(SimTime, u64)>,
                         wheel_tok: &mut Option<(SimTime, u64)>| {
                let mut actions = Vec::new();
                let mut ctx = Ctx::detached(now, NodeId(1), &mut actions);
                match ev {
                    Some(p) => r.on_packet(&mut ctx, p),
                    None => r.on_delack_timer(&mut ctx),
                }
                for a in actions {
                    match a {
                        ecnsharp_net::Action::Send(p, _) => {
                            acks.push((now, p.ack_no(), p.flags().ece));
                        }
                        ecnsharp_net::Action::SetTimer(at, key) => legacy_q.push((at, key)),
                        ecnsharp_net::Action::ArmTimer(at, key) => *wheel_tok = Some((at, key)),
                        ecnsharp_net::Action::CancelTimer(_) => *wheel_tok = None,
                        _ => {}
                    }
                }
            };
            // Pairs complete immediately; a CE flip forces an immediate
            // mid-count ACK; the trailing odd segment is owed to the timer.
            let mut ce = data(4380);
            ce.set_ecn(Ecn::Ce);
            let arrivals = [data(0), data(1460), data(2920), ce, data(5840)];
            for (i, p) in arrivals.iter().enumerate() {
                let now = SimTime::from_micros(5 * i as u64);
                apply(
                    &mut r,
                    now,
                    Some(p),
                    &mut acks,
                    &mut legacy_q,
                    &mut wheel_tok,
                );
            }
            // Quiet period: drain every pending timer event in time order.
            loop {
                let fire = match backend {
                    TimerBackend::Wheel => wheel_tok.take(),
                    TimerBackend::Legacy => {
                        legacy_q.sort_by_key(|&(at, _)| at);
                        if legacy_q.is_empty() {
                            None
                        } else {
                            Some(legacy_q.remove(0))
                        }
                    }
                };
                let Some((at, key)) = fire else { break };
                let (_, kind, epoch) = parse_timer_key(key);
                assert_eq!(kind, TimerKind::DelAck);
                // Legacy stale-epoch filter, exactly as the stack applies it.
                if backend == TimerBackend::Legacy && epoch != r.delack_epoch {
                    continue;
                }
                apply(&mut r, at, None, &mut acks, &mut legacy_q, &mut wheel_tok);
            }
            acks
        }
        let legacy = run(TimerBackend::Legacy);
        let wheel = run(TimerBackend::Wheel);
        assert_eq!(legacy, wheel, "ACK cadence must not depend on batching");
        // The trailing segment's ACK is timer-driven: 500us after arrival.
        let t_last = SimTime::from_micros(20) + TcpConfig::dctcp().delack_timeout;
        assert_eq!(*legacy.last().unwrap(), (t_last, 7300, false));
    }
}
