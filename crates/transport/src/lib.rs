//! # ecnsharp-transport
//!
//! Endpoint transport for the ECN♯ reproduction: a byte-counted TCP with
//! pluggable ECN congestion control, packaged as an
//! [`ecnsharp_net::Agent`].
//!
//! - **DCTCP** ([`CcKind::Dctcp`]) — the evaluation default (paper §5.1):
//!   the receiver echoes CE per packet (with the DCTCP delayed-ACK state
//!   machine when ACK coalescing is on), the sender maintains
//!   `α ← (1−g)·α + g·F` per window and cuts `cwnd ← cwnd·(1 − α/2)`.
//! - **ECN-TCP** ([`CcKind::EcnTcp`]) — classic RFC 3168 behaviour: halve
//!   once per window on ECE (λ = 1).
//! - **Reno** ([`CcKind::Reno`]) — loss-only control.
//!
//! Loss recovery is NewReno (3 dup-ACKs → fast retransmit, partial-ACK
//! retransmissions), with go-back-N and exponential backoff on RTO. The
//! RTO floor defaults to 5 ms — the datacenter setting that makes each
//! incast timeout cost "more than 1 ms" of FCT as the paper observes.
//!
//! ```
//! use ecnsharp_transport::{TcpStack, TcpConfig};
//! use ecnsharp_net::{topology::dumbbell, PortConfig, FlowCmd, FlowId};
//! use ecnsharp_aqm::DctcpRed;
//! use ecnsharp_sim::{Rate, Duration, SimTime};
//!
//! let plain = || PortConfig::fifo(1_000_000, Box::new(ecnsharp_aqm::DropTail::new()));
//! let mut d = dumbbell(
//!     1, Rate::from_gbps(40), Rate::from_gbps(10), Duration::from_micros(5),
//!     TcpStack::boxed(TcpConfig::dctcp()),
//!     TcpStack::boxed(TcpConfig::dctcp()),
//!     plain,
//!     PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(65_000))),
//! );
//! let (a, b) = (d.a, d.b);
//! d.net.schedule_flow(SimTime::ZERO, FlowCmd {
//!     flow: FlowId(1), src: a, dst: b, size: 1_000_000, class: 0,
//!     extra_delay: Duration::ZERO,
//! });
//! d.net.run_until_idle();
//! assert_eq!(d.net.records().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod conn;
pub mod rtt;
pub mod stack;

pub use config::{CcKind, TcpConfig, TimerBackend};
pub use conn::{Receiver, Sender, SenderState};
pub use rtt::RttEstimator;
pub use stack::TcpStack;

// Compile-time shard-safety proofs: endpoint stacks live inside the
// `Network` a sharded engine (ROADMAP item 1) moves across worker
// threads. Lint rules R7/R8 guard the source text; these assertions
// guard the types themselves.
const fn assert_send<T: Send>() {}
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<TcpStack>();
    assert_send::<Sender>();
    assert_send::<Receiver>();
    assert_send_sync::<TcpConfig>();
    assert_send_sync::<RttEstimator>();
};
