//! Transport configuration.

use ecnsharp_sim::{bytes, Duration};

/// Which congestion-control algorithm a sender runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// DCTCP (Alizadeh et al., SIGCOMM'10): window cut proportional to the
    /// EWMA fraction `alpha` of CE-marked bytes, `cwnd ← cwnd·(1 − α/2)`,
    /// at most once per window. `g` is the EWMA gain (paper: 1/16).
    Dctcp {
        /// EWMA gain for the marked-fraction estimate.
        g: f64,
    },
    /// Regular ECN-enabled TCP: halve the window on the first ECE of a
    /// window (λ = 1 in Eq. 1's terms).
    EcnTcp,
    /// Loss-only NewReno (ignores ECE) — the no-ECN control case.
    Reno,
}

impl CcKind {
    /// DCTCP with the paper's default gain.
    pub fn dctcp_default() -> Self {
        CcKind::Dctcp { g: 1.0 / 16.0 }
    }
}

/// How the stack schedules its RTO and delayed-ACK timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerBackend {
    /// Cancellable timers on the engine's hierarchical wheel
    /// ([`ecnsharp_net::Ctx::arm_timer`]): re-arming replaces the pending
    /// deadline in place, so no stale timer event ever enters the event
    /// queue. The default.
    Wheel,
    /// One-shot timers ([`ecnsharp_net::Ctx::set_timer`]) with per-timer
    /// epochs; stale firings are filtered at dispatch. Kept as the
    /// equivalence baseline: both backends must produce byte-identical
    /// experiment output (see `crates/experiments/tests/timer_equivalence.rs`).
    Legacy,
}

/// Endpoint transport parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u64,
    /// Initial congestion window, in segments.
    pub init_cwnd_segs: u64,
    /// Lower clamp on the retransmission timeout. Datacenter stacks run
    /// single-digit milliseconds (the paper notes one timeout costs >1 ms).
    pub min_rto: Duration,
    /// RTO before the first RTT sample.
    pub init_rto: Duration,
    /// Upper clamp on the (backed-off) RTO.
    pub max_rto: Duration,
    /// ACK every `delack_count` data segments (1 = per-packet ACKs).
    pub delack_count: u32,
    /// Flush a pending delayed ACK after this long.
    pub delack_timeout: Duration,
    /// Congestion control algorithm.
    pub cc: CcKind,
    /// Initial DCTCP `alpha` (the Linux implementation starts at 1 so the
    /// first marks bite hard).
    pub dctcp_init_alpha: f64,
    /// Upper bound on cwnd in bytes (receive-window stand-in).
    pub max_cwnd: u64,
    /// Timer scheduling backend (wheel vs legacy epoch filtering).
    pub timer_backend: TimerBackend,
    /// Give up after this many *consecutive* retransmission timeouts
    /// without forward progress: the flow aborts with a `Failed` outcome
    /// instead of backing off forever (a permanently dead path would
    /// otherwise hang the simulation). Any new ACK resets the streak.
    pub max_rto_retries: u32,
    /// Memory-budget ceiling on the receiver's out-of-order reassembly
    /// ranges (the transport state that grows without bound under
    /// pathological reordering/loss). `None` (the default) disarms the
    /// guard. Crossing the ceiling reports a typed breach through
    /// [`ecnsharp_net::Ctx::report_mem_breach`] — behaviour is otherwise
    /// unchanged, so an armed-but-untriggered budget stays byte-identical.
    pub ooo_budget: Option<u32>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: bytes::MSS,
            init_cwnd_segs: 3,
            min_rto: Duration::from_millis(5),
            init_rto: Duration::from_millis(10),
            max_rto: Duration::from_secs(1),
            delack_count: 1,
            delack_timeout: Duration::from_micros(500),
            cc: CcKind::dctcp_default(),
            dctcp_init_alpha: 1.0,
            max_cwnd: 10_000_000,
            timer_backend: TimerBackend::Wheel,
            max_rto_retries: 8,
            ooo_budget: None,
        }
    }
}

impl TcpConfig {
    /// The evaluation default: DCTCP at every endhost (paper §5.1).
    pub fn dctcp() -> Self {
        TcpConfig::default()
    }

    /// Regular ECN-TCP endhosts.
    pub fn ecn_tcp() -> Self {
        TcpConfig {
            cc: CcKind::EcnTcp,
            ..TcpConfig::default()
        }
    }

    /// Loss-only Reno endhosts.
    pub fn reno() -> Self {
        TcpConfig {
            cc: CcKind::Reno,
            ..TcpConfig::default()
        }
    }

    /// Initial congestion window in bytes.
    pub fn init_cwnd_bytes(&self) -> f64 {
        (self.init_cwnd_segs * self.mss) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = TcpConfig::dctcp();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.max_rto_retries, 8);
        assert!(matches!(c.cc, CcKind::Dctcp { g } if (g - 0.0625).abs() < 1e-12));
        assert_eq!(c.delack_count, 1);
        // 3 * 1460 is exact in f64.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(c.init_cwnd_bytes(), 4380.0);
        }
    }

    #[test]
    fn variants() {
        assert_eq!(TcpConfig::ecn_tcp().cc, CcKind::EcnTcp);
        assert_eq!(TcpConfig::reno().cc, CcKind::Reno);
    }
}
