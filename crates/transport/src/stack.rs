//! The TCP stack as a network [`Agent`]: demultiplexes packets and timers
//! to per-flow [`Sender`]/[`Receiver`] state.

use crate::config::TcpConfig;
use crate::conn::{parse_timer_key, Receiver, Sender, SenderState, TimerKind};
use ecnsharp_net::{Agent, Ctx, FlowCmd, FlowId, Packet};
use std::collections::BTreeMap;

/// A host's transport stack: any number of concurrent sending and
/// receiving flows.
pub struct TcpStack {
    cfg: TcpConfig,
    senders: BTreeMap<FlowId, Sender>,
    receivers: BTreeMap<FlowId, Receiver>,
}

impl TcpStack {
    /// Create a stack with the given transport configuration.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpStack {
            cfg,
            senders: BTreeMap::new(),
            receivers: BTreeMap::new(),
        }
    }

    /// Boxed constructor, convenient for topology builders.
    pub fn boxed(cfg: TcpConfig) -> Box<dyn Agent> {
        Box::new(TcpStack::new(cfg))
    }

    /// Number of sending flows not yet complete (or given up).
    pub fn active_senders(&self) -> usize {
        self.senders
            .values()
            .filter(|s| !matches!(s.state, SenderState::Done | SenderState::Failed))
            .count()
    }

    /// Inspect a sender (tests and diagnostics).
    pub fn sender(&self, flow: FlowId) -> Option<&Sender> {
        self.senders.get(&flow)
    }
}

impl Agent for TcpStack {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if pkt.flags().ack {
            // ACK or SYN-ACK: for one of our senders.
            if let Some(s) = self.senders.get_mut(&pkt.flow) {
                s.on_ack(ctx, &pkt);
            }
        } else {
            // SYN or data: for one of our receivers (created on demand —
            // the SYN usually creates it, but a retransmitted first data
            // segment must not crash a fresh receiver).
            let r = self.receivers.entry(pkt.flow).or_insert_with(|| {
                Receiver::new(pkt.flow, pkt.dst, pkt.src, pkt.class(), self.cfg)
            });
            r.on_packet(ctx, &pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: u64) {
        let (flow, kind, epoch) = parse_timer_key(key);
        match kind {
            TimerKind::Rto => {
                if let Some(s) = self.senders.get_mut(&flow) {
                    if s.rto_epoch == epoch
                        && !matches!(s.state, SenderState::Done | SenderState::Failed)
                    {
                        s.on_rto(ctx);
                    }
                }
            }
            TimerKind::DelAck => {
                if let Some(r) = self.receivers.get_mut(&flow) {
                    if r.delack_epoch == epoch {
                        r.on_delack_timer(ctx);
                    }
                }
            }
        }
    }

    fn on_flow_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: FlowCmd) {
        let flow = cmd.flow;
        debug_assert!(
            !self.senders.contains_key(&flow),
            "duplicate flow id {flow}"
        );
        let sender = Sender::start(cmd, self.cfg, ctx);
        self.senders.insert(flow, sender);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnsharp_aqm::{DctcpRed, DropTail, Tcn};
    use ecnsharp_net::topology::{dumbbell, star, Dumbbell};
    use ecnsharp_net::{NodeId, PortConfig};
    use ecnsharp_sim::{Duration, Rate, SimTime};

    fn plain() -> PortConfig {
        PortConfig::fifo(1_000_000, Box::new(DropTail::new()))
    }

    fn dumbbell_with(bottleneck: PortConfig, cfg: TcpConfig) -> Dumbbell {
        dumbbell(
            7,
            Rate::from_gbps(40),
            Rate::from_gbps(10),
            Duration::from_micros(5),
            TcpStack::boxed(cfg),
            TcpStack::boxed(cfg),
            plain,
            bottleneck,
        )
    }

    fn flow(id: u64, src: NodeId, dst: NodeId, size: u64) -> FlowCmd {
        FlowCmd {
            flow: FlowId(id),
            src,
            dst,
            size,
            class: 0,
            extra_delay: Duration::ZERO,
        }
    }

    #[test]
    fn single_small_flow_completes_in_two_rtts() {
        let mut d = dumbbell_with(plain(), TcpConfig::dctcp());
        let (a, b) = (d.a, d.b);
        d.net.schedule_flow(SimTime::ZERO, flow(1, a, b, 1460));
        d.net.run_until_idle();
        assert_eq!(d.net.records().len(), 1);
        let r = &d.net.records()[0];
        // Base RTT ≈ 3 hops × (5us prop + ~1.2us tx) ≈ 40 us round trip
        // incl. handshake: FCT ≈ 2 RTT ≈ 80 us. Generous bounds:
        let fct = r.fct().as_micros_f64();
        assert!(fct > 40.0 && fct < 150.0, "fct {fct}us");
        assert_eq!(r.timeouts, 0);
    }

    #[test]
    fn large_flow_over_droptail_completes_despite_overshoot() {
        // Pure DropTail: slow start overshoots the 1 MB buffer and loses a
        // burst of segments; SACK-less NewReno then repairs one hole per
        // RTT (faithful to the ns-3-class transport the paper simulates),
        // so goodput lands below line rate but well above half.
        let mut d = dumbbell_with(plain(), TcpConfig::dctcp());
        let (a, b) = (d.a, d.b);
        let size = 50_000_000u64; // 50 MB
        d.net.schedule_flow(SimTime::ZERO, flow(1, a, b, size));
        d.net.run_until_idle();
        let r = &d.net.records()[0];
        let gbps = (size * 8) as f64 / r.fct().as_secs_f64() / 1e9;
        assert!(gbps > 5.0, "goodput {gbps} Gbps");
        let drops = d.net.port_stats(d.s1, d.bottleneck_port).total_drops();
        assert!(drops > 0, "DropTail must have overflowed during slow start");
    }

    #[test]
    fn large_flow_with_ecn_marking_reaches_line_rate() {
        // With a marking AQM at BDP-scale threshold, DCTCP holds the
        // bottleneck at full utilization with zero drops — the behaviour
        // every paper experiment relies on.
        let mut d = dumbbell_with(
            PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(65_000))),
            TcpConfig::dctcp(),
        );
        let (a, b) = (d.a, d.b);
        let size = 50_000_000u64;
        d.net.schedule_flow(SimTime::ZERO, flow(1, a, b, size));
        d.net.run_until_idle();
        let r = &d.net.records()[0];
        let gbps = (size * 8) as f64 / r.fct().as_secs_f64() / 1e9;
        assert!(gbps > 8.5, "goodput {gbps} Gbps");
        assert_eq!(r.timeouts, 0);
        assert_eq!(
            d.net.port_stats(d.s1, d.bottleneck_port).total_drops(),
            0,
            "ECN marking must prevent drops"
        );
    }

    #[test]
    fn dctcp_with_red_keeps_queue_near_threshold() {
        let k = 60_000u64;
        let mut d = dumbbell_with(
            PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(k))),
            TcpConfig::dctcp(),
        );
        let (a, b, s1, bp) = (d.a, d.b, d.s1, d.bottleneck_port);
        d.net
            .schedule_flow(SimTime::ZERO, flow(1, a, b, 100_000_000));
        d.net.add_queue_monitor(
            s1,
            bp,
            Duration::from_micros(50),
            SimTime::from_millis(20),
            SimTime::from_millis(75),
        );
        d.net.run_until_idle();
        let r = &d.net.records()[0];
        let gbps = (r.size * 8) as f64 / r.fct().as_secs_f64() / 1e9;
        assert!(gbps > 8.0, "goodput {gbps} Gbps");
        // Queue stays bounded near K (not at buffer cap).
        let m = &d.net.monitors()[0];
        let max_q = m.samples.iter().map(|&(_, b, _)| b).max().unwrap();
        assert!(max_q < 4 * k, "queue peaked at {max_q} bytes");
        let marks = d.net.port_stats(s1, bp).enq_marks;
        assert!(marks > 0, "RED must have marked");
        assert_eq!(r.timeouts, 0);
    }

    #[test]
    fn two_flows_share_fairly() {
        // 3-host star: two senders, one receiver; equal-RTT DCTCP flows
        // should finish a same-size transfer at roughly the same time.
        let mut s = star(
            11,
            3,
            Rate::from_gbps(10),
            Duration::from_micros(5),
            |_| TcpStack::boxed(TcpConfig::dctcp()),
            plain,
            || PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(60_000))),
        );
        let (h0, h1, h2) = (s.hosts[0], s.hosts[1], s.hosts[2]);
        s.net
            .schedule_flow(SimTime::ZERO, flow(1, h0, h2, 20_000_000));
        s.net
            .schedule_flow(SimTime::ZERO, flow(2, h1, h2, 20_000_000));
        s.net.run_until_idle();
        let recs = s.net.records();
        assert_eq!(recs.len(), 2);
        let f1 = recs.iter().find(|r| r.flow == FlowId(1)).unwrap().fct();
        let f2 = recs.iter().find(|r| r.flow == FlowId(2)).unwrap().fct();
        let ratio = f1.as_secs_f64() / f2.as_secs_f64();
        assert!((0.7..1.4).contains(&ratio), "unfair: {ratio}");
        // Combined goodput ≈ line rate.
        let total_t = f1.max(f2).as_secs_f64();
        let gbps = (40_000_000u64 * 8) as f64 / total_t / 1e9;
        assert!(gbps > 8.0, "aggregate {gbps} Gbps");
    }

    #[test]
    fn recovers_from_random_drops() {
        // 1% wire drops on the bottleneck: the flow must still complete.
        let cfg = PortConfig::fifo(1_000_000, Box::new(DropTail::new())).with_fault_drop(0.01);
        let mut d = dumbbell_with(cfg, TcpConfig::dctcp());
        let (a, b) = (d.a, d.b);
        d.net.schedule_flow(SimTime::ZERO, flow(1, a, b, 2_000_000));
        d.net.run_until_idle();
        assert_eq!(d.net.records().len(), 1, "flow must complete despite drops");
        let drops = d.net.port_stats(d.s1, d.bottleneck_port).fault_drops;
        assert!(drops > 0, "fault injection must have fired");
    }

    #[test]
    fn dead_path_gives_up_with_failed_outcome() {
        // 100% wire loss on the bottleneck: a permanently dead path. The
        // flow must terminate with a Failed outcome after max_rto_retries
        // instead of hanging the simulation on endless backoffs.
        let cfg = PortConfig::fifo(1_000_000, Box::new(DropTail::new())).with_fault_drop(1.0);
        let tcp = TcpConfig::dctcp();
        let mut d = dumbbell_with(cfg, tcp);
        let (a, b) = (d.a, d.b);
        d.net.schedule_flow(SimTime::ZERO, flow(1, a, b, 1_000_000));
        d.net.run_until_idle();
        assert_eq!(d.net.records().len(), 1);
        let r = &d.net.records()[0];
        assert_eq!(r.outcome, ecnsharp_net::FlowOutcome::Failed);
        assert_eq!(r.timeouts, tcp.max_rto_retries);
        assert_eq!(d.net.unfinished_flows(), 0, "abort clears pending state");
        assert_eq!(d.net.perf().flows_failed, 1);
    }

    #[test]
    fn sojourn_marking_via_tcn_bounds_queueing() {
        let mut d = dumbbell_with(
            PortConfig::fifo(1_000_000, Box::new(Tcn::new(Duration::from_micros(50)))),
            TcpConfig::dctcp(),
        );
        let (a, b, s1, bp) = (d.a, d.b, d.s1, d.bottleneck_port);
        d.net
            .schedule_flow(SimTime::ZERO, flow(1, a, b, 50_000_000));
        d.net.add_queue_monitor(
            s1,
            bp,
            Duration::from_micros(50),
            SimTime::from_millis(10),
            SimTime::from_millis(40),
        );
        d.net.run_until_idle();
        let m = &d.net.monitors()[0];
        // 50 us sojourn at 10 Gbps ≈ 62.5 KB; queue must stay well below
        // an unmarked BDP-sized standing queue.
        let avg_q: f64 =
            m.samples.iter().map(|&(_, b, _)| b as f64).sum::<f64>() / m.samples.len() as f64;
        assert!(avg_q < 150_000.0, "avg queue {avg_q} bytes");
        assert!(d.net.port_stats(s1, bp).deq_marks > 0);
    }

    #[test]
    fn delayed_acks_still_complete() {
        let cfg = TcpConfig {
            delack_count: 2,
            ..TcpConfig::dctcp()
        };
        let mut d = dumbbell_with(plain(), cfg);
        let (a, b) = (d.a, d.b);
        d.net.schedule_flow(SimTime::ZERO, flow(1, a, b, 1_000_000));
        d.net.run_until_idle();
        assert_eq!(d.net.records().len(), 1);
        assert_eq!(d.net.records()[0].timeouts, 0);
    }

    #[test]
    fn many_concurrent_short_flows() {
        let mut s = star(
            13,
            8,
            Rate::from_gbps(10),
            Duration::from_micros(5),
            |_| TcpStack::boxed(TcpConfig::dctcp()),
            plain,
            || PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(80_000))),
        );
        let receiver = s.hosts[7];
        let mut id = 0;
        for round in 0..10u64 {
            for (i, &h) in s.hosts[..7].iter().enumerate() {
                id += 1;
                s.net.schedule_flow(
                    SimTime::from_micros(round * 100 + i as u64),
                    flow(id, h, receiver, 14_600),
                );
            }
        }
        s.net.run_until_idle();
        assert_eq!(s.net.records().len(), 70);
        assert_eq!(s.net.unfinished_flows(), 0);
    }

    #[test]
    fn ecn_tcp_halves_instead_of_proportional() {
        // Both run over a marking bottleneck; DCTCP should sustain higher
        // goodput than ECN-TCP at an aggressive (low) threshold because its
        // cuts are proportional.
        let run = |cfg: TcpConfig| {
            let mut d = dumbbell_with(
                PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(30_000))),
                cfg,
            );
            let (a, b) = (d.a, d.b);
            d.net
                .schedule_flow(SimTime::ZERO, flow(1, a, b, 30_000_000));
            d.net.run_until_idle();
            let r = &d.net.records()[0];
            (r.size * 8) as f64 / r.fct().as_secs_f64() / 1e9
        };
        let dctcp = run(TcpConfig::dctcp());
        let ecn = run(TcpConfig::ecn_tcp());
        assert!(
            dctcp > ecn * 1.02,
            "dctcp {dctcp} Gbps vs ecn-tcp {ecn} Gbps"
        );
    }
}
