//! Property-based robustness: whatever the loss pattern, flow sizes and
//! ACK policy, every flow completes and the simulation stays deterministic.

use ecnsharp_aqm::DropTail;
use ecnsharp_net::topology::star;
use ecnsharp_net::{FlowCmd, FlowId, PortConfig};
use ecnsharp_sim::{Duration, Rate, SimTime};
use ecnsharp_transport::{TcpConfig, TcpStack};
use proptest::prelude::*;

/// Run `sizes.len()` flows from 3 senders to 1 receiver over a switch with
/// the given wire-drop probability; return per-flow FCT in ns.
fn run(sizes: &[u64], drop_p: f64, delack: u32, seed: u64) -> Vec<u64> {
    let cfg = TcpConfig {
        delack_count: delack,
        ..TcpConfig::dctcp()
    };
    let mut topo = star(
        seed,
        4,
        Rate::from_gbps(10),
        Duration::from_micros(5),
        |_| TcpStack::boxed(cfg),
        || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
        || PortConfig::fifo(1_000_000, Box::new(DropTail::new())).with_fault_drop(drop_p),
    );
    let receiver = topo.hosts[3];
    for (k, &size) in sizes.iter().enumerate() {
        topo.net.schedule_flow(
            SimTime::from_micros(k as u64 * 20),
            FlowCmd {
                flow: FlowId(k as u64),
                src: topo.hosts[k % 3],
                dst: receiver,
                size,
                class: 0,
                extra_delay: Duration::from_micros((k as u64 % 4) * 30),
            },
        );
    }
    topo.net.run_until_idle();
    assert_eq!(
        topo.net.records().len(),
        sizes.len(),
        "every flow must complete (drop_p={drop_p})"
    );
    let mut fcts: Vec<(FlowId, u64)> = topo
        .net
        .records()
        .iter()
        .map(|r| (r.flow, r.fct().as_nanos()))
        .collect();
    fcts.sort_by_key(|&(f, _)| f);
    fcts.into_iter().map(|(_, f)| f).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All flows complete under random sizes and loss rates, with either
    /// per-packet or delayed ACKs.
    #[test]
    fn flows_always_complete(
        sizes in proptest::collection::vec(1u64..150_000, 1..8),
        drop_pm in 0u32..30,            // up to 3% wire loss
        delack in 1u32..3,
        seed in 0u64..1_000,
    ) {
        let fcts = run(&sizes, drop_pm as f64 / 1000.0, delack, seed);
        prop_assert_eq!(fcts.len(), sizes.len());
        prop_assert!(fcts.iter().all(|&f| f > 0));
    }

    /// Determinism: the exact same inputs give the exact same FCT vector.
    #[test]
    fn replay_identical(
        sizes in proptest::collection::vec(1u64..80_000, 1..5),
        seed in 0u64..100,
    ) {
        let a = run(&sizes, 0.01, 1, seed);
        let b = run(&sizes, 0.01, 1, seed);
        prop_assert_eq!(a, b);
    }

    /// Monotonicity sanity: on a clean network, a 10x bigger flow never
    /// finishes faster than a tiny one started at the same time from the
    /// same sender (FIFO bottleneck, no loss).
    #[test]
    fn bigger_flows_take_longer_clean(size in 2_000u64..100_000) {
        let small = run(&[1_000], 0.0, 1, 7)[0];
        let big = run(&[size * 10], 0.0, 1, 7)[0];
        prop_assert!(big >= small, "big {big} < small {small}");
    }
}

/// Zero-byte flows complete immediately after the handshake.
#[test]
fn zero_byte_flow_completes() {
    let fcts = run(&[0], 0.0, 1, 3);
    assert_eq!(fcts.len(), 1);
    // One RTT-ish: SYN + SYN-ACK.
    assert!(fcts[0] < 100_000, "fct {}ns", fcts[0]);
}

/// A single-byte flow and a single-MSS flow have nearly identical FCT
/// (both are one data packet).
#[test]
fn sub_mss_flows_single_packet() {
    let one = run(&[1], 0.0, 1, 5)[0];
    let mss = run(&[1460], 0.0, 1, 5)[0];
    let diff = mss.abs_diff(one);
    assert!(diff < 10_000, "1B {one}ns vs MSS {mss}ns");
}
