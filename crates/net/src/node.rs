//! Nodes: hosts (with agents) and switches (with routing tables).

use crate::agent::Agent;
use crate::arena::RingArena;
use crate::port::EgressPort;

/// What kind of node this is.
pub enum NodeKind {
    /// An endpoint running an [`Agent`].
    Host {
        /// The endpoint logic.
        agent: Box<dyn Agent>,
    },
    /// A store-and-forward switch.
    Switch,
}

/// One node of the network.
pub struct Node {
    /// Host or switch.
    pub kind: NodeKind,
    /// Egress ports, in attachment order.
    pub ports: Vec<EgressPort>,
    /// For switches: `routes[dst.0]` lists the egress ports on a shortest
    /// path towards node `dst` (multiple entries = ECMP fan). Computed by
    /// [`crate::Network::compute_routes`]. Hosts leave this empty and
    /// always use port 0.
    pub routes: Vec<Vec<usize>>,
    /// Flattened mirror of `routes` for the per-packet forwarding lookup:
    /// the fan for `dst` is `route_hops[route_off[dst] .. route_off[dst+1]]`.
    /// Two small contiguous arrays replace a `Vec<Vec<_>>` pointer chase on
    /// the hottest switch path; rebuilt alongside `routes`.
    pub(crate) route_off: Vec<u32>,
    pub(crate) route_hops: Vec<u16>,
    /// Pooled ring storage shared by this node's switch-port FIFOs: one
    /// contiguous slot block instead of a heap `VecDeque` per port (see
    /// [`crate::arena`]). Empty for hosts and `Dyn`-scheduled ports.
    pub(crate) arena: RingArena,
}

impl Node {
    pub(crate) fn host(agent: Box<dyn Agent>) -> Self {
        Node {
            kind: NodeKind::Host { agent },
            ports: Vec::new(),
            routes: Vec::new(),
            route_off: Vec::new(),
            route_hops: Vec::new(),
            arena: RingArena::new(),
        }
    }

    pub(crate) fn switch() -> Self {
        Node {
            kind: NodeKind::Switch,
            ports: Vec::new(),
            routes: Vec::new(),
            route_off: Vec::new(),
            route_hops: Vec::new(),
            arena: RingArena::new(),
        }
    }

    /// Rebuild the flattened forwarding mirror from `routes`.
    pub(crate) fn rebuild_flat_routes(&mut self) {
        self.route_off.clear();
        self.route_hops.clear();
        self.route_off.reserve(self.routes.len() + 1);
        self.route_off.push(0);
        for hops in &self.routes {
            for &h in hops {
                self.route_hops
                    .push(u16::try_from(h).expect("port index fits u16"));
            }
            self.route_off
                .push(u32::try_from(self.route_hops.len()).expect("route table fits u32"));
        }
    }

    /// Is this node a host?
    pub fn is_host(&self) -> bool {
        matches!(self.kind, NodeKind::Host { .. })
    }
}
