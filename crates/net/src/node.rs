//! Nodes: hosts (with agents) and switches (with routing tables).

use crate::agent::Agent;
use crate::port::EgressPort;

/// What kind of node this is.
pub enum NodeKind {
    /// An endpoint running an [`Agent`].
    Host {
        /// The endpoint logic.
        agent: Box<dyn Agent>,
    },
    /// A store-and-forward switch.
    Switch,
}

/// One node of the network.
pub struct Node {
    /// Host or switch.
    pub kind: NodeKind,
    /// Egress ports, in attachment order.
    pub ports: Vec<EgressPort>,
    /// For switches: `routes[dst.0]` lists the egress ports on a shortest
    /// path towards node `dst` (multiple entries = ECMP fan). Computed by
    /// [`crate::Network::compute_routes`]. Hosts leave this empty and
    /// always use port 0.
    pub routes: Vec<Vec<usize>>,
}

impl Node {
    pub(crate) fn host(agent: Box<dyn Agent>) -> Self {
        Node {
            kind: NodeKind::Host { agent },
            ports: Vec::new(),
            routes: Vec::new(),
        }
    }

    pub(crate) fn switch() -> Self {
        Node {
            kind: NodeKind::Switch,
            ports: Vec::new(),
            routes: Vec::new(),
        }
    }

    /// Is this node a host?
    pub fn is_host(&self) -> bool {
        matches!(self.kind, NodeKind::Host { .. })
    }
}
