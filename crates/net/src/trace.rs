//! Packet-event tracing: an optional, bounded record of what happened to
//! packets as they moved through the network — the simulator's analogue of
//! the `--pcap` switches that event-driven stacks ship for debugging.
//!
//! Tracing is off by default (zero cost); enable it with
//! [`crate::Network::enable_trace`]. Events are kept in a bounded ring so
//! a runaway simulation cannot exhaust memory.

use crate::ids::{FlowId, NodeId};
use crate::packet::Packet;
use ecnsharp_sim::SimTime;
use ecnsharp_telemetry::DropReason;
#[cfg(feature = "telemetry")]
use ecnsharp_telemetry::{
    CeMarked, Meta, PacketDropped, PacketEnqueued, SojournSampled, Subscriber,
};
use std::collections::VecDeque;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet arrived at a node (delivered to host or entering switching).
    Arrive,
    /// Packet was admitted to an egress queue.
    Enqueue,
    /// Packet started transmission.
    TxStart,
    /// Packet was dropped, with the cause (tail, AQM, wire faults,
    /// no-route — the same taxonomy as the per-port drop counters).
    Drop(DropReason),
    /// Packet was CE-marked.
    Mark,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Arrive => f.write_str("ARR"),
            TraceKind::Enqueue => f.write_str("ENQ"),
            TraceKind::TxStart => f.write_str("TX "),
            TraceKind::Drop(reason) => write!(f, "DRP:{reason}"),
            TraceKind::Mark => f.write_str("MRK"),
        }
    }
}

/// One traced event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When.
    pub at: SimTime,
    /// Where.
    pub node: NodeId,
    /// What.
    pub kind: TraceKind,
    /// Flow of the packet.
    pub flow: FlowId,
    /// Byte sequence of the packet.
    pub seq: u64,
    /// Payload bytes.
    pub payload: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} {} {} {} seq={} len={}",
            format!("{}", self.at),
            self.kind,
            self.node,
            self.flow,
            self.seq,
            self.payload
        )
    }
}

/// A bounded ring of trace events.
#[derive(Debug)]
pub struct Tracer {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events observed (including ones evicted from the ring).
    pub observed: u64,
    /// Restrict tracing to one flow, if set.
    pub flow_filter: Option<FlowId>,
}

/// Hard ceiling on [`Tracer`] ring capacity. Keeps the ring's one-shot
/// pre-allocation bounded (~64 Ki events ≈ 3 MiB) no matter what a
/// caller asks for.
pub const MAX_TRACE_CAPACITY: usize = 65_536;

impl Tracer {
    /// Create a tracer holding at most `capacity` events. Capacities above
    /// [`MAX_TRACE_CAPACITY`] are clamped to it, so the ring's single
    /// up-front allocation is also its peak: the eviction path never
    /// grows it (pinned by the `capacity_clamp_bounds_peak_allocation`
    /// test).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        let capacity = capacity.min(MAX_TRACE_CAPACITY);
        Tracer {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            observed: 0,
            flow_filter: None,
        }
    }

    /// The (clamped) event capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record an event for `pkt`.
    pub fn record(&mut self, at: SimTime, node: NodeId, kind: TraceKind, pkt: &Packet) {
        self.record_raw(at, node, kind, pkt.flow, pkt.seq(), pkt.payload());
    }

    /// Record an event from raw fields (the packet may no longer exist,
    /// e.g. when fed from telemetry events). Honors the flow filter and
    /// the ring bound exactly like [`Tracer::record`].
    pub fn record_raw(
        &mut self,
        at: SimTime,
        node: NodeId,
        kind: TraceKind,
        flow: FlowId,
        seq: u64,
        payload: u64,
    ) {
        if let Some(f) = self.flow_filter {
            if flow != f {
                return;
            }
        }
        self.observed += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent {
            at,
            node,
            kind,
            flow,
            seq,
            payload,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Render the retained events as text, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

/// The [`Tracer`] doubles as a telemetry [`Subscriber`], making the legacy
/// packet trace "just another subscriber": attach one via
/// [`crate::Network::with_subscriber`] (or in a composition tuple) and it
/// records the same `ENQ`/`DRP`/`MRK` lifecycle it always has, now sourced
/// from the typed event stream.
#[cfg(feature = "telemetry")]
impl Subscriber for Tracer {
    #[inline]
    fn on_packet_enqueued(&mut self, meta: &Meta, ev: &PacketEnqueued) {
        self.record_raw(
            meta.at,
            NodeId(meta.node as usize),
            TraceKind::Enqueue,
            FlowId(ev.flow),
            ev.seq,
            ev.payload,
        );
    }

    #[inline]
    fn on_packet_dropped(&mut self, meta: &Meta, ev: &PacketDropped) {
        self.record_raw(
            meta.at,
            NodeId(meta.node as usize),
            TraceKind::Drop(ev.reason),
            FlowId(ev.flow),
            ev.seq,
            ev.payload,
        );
    }

    #[inline]
    fn on_ce_marked(&mut self, meta: &Meta, ev: &CeMarked) {
        self.record_raw(
            meta.at,
            NodeId(meta.node as usize),
            TraceKind::Mark,
            FlowId(ev.flow),
            ev.seq,
            0,
        );
    }

    #[inline]
    fn on_sojourn_sampled(&mut self, _meta: &Meta, _ev: &SojournSampled) {
        // Sojourn samples map to TxStart in the embedded trace path; the
        // subscriber view keeps the ring focused on lifecycle transitions.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u64, seq: u64) -> Packet {
        Packet::data(FlowId(flow), NodeId(0), NodeId(1), seq, 1460)
    }

    #[test]
    fn records_and_dumps() {
        let mut t = Tracer::new(10);
        t.record(
            SimTime::from_micros(1),
            NodeId(2),
            TraceKind::Enqueue,
            &pkt(7, 0),
        );
        t.record(
            SimTime::from_micros(2),
            NodeId(2),
            TraceKind::Mark,
            &pkt(7, 1460),
        );
        assert_eq!(t.len(), 2);
        let dump = t.dump();
        assert!(dump.contains("ENQ"));
        assert!(dump.contains("MRK"));
        assert!(dump.contains("f7"));
    }

    #[test]
    fn ring_bounds_memory() {
        let mut t = Tracer::new(3);
        for k in 0..100u64 {
            t.record(
                SimTime::from_micros(k),
                NodeId(0),
                TraceKind::Arrive,
                &pkt(1, k),
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.observed, 100);
        // Oldest retained is event 97.
        assert_eq!(t.events().next().unwrap().seq, 97);
    }

    #[test]
    fn flow_filter() {
        let mut t = Tracer::new(10);
        t.flow_filter = Some(FlowId(5));
        t.record(SimTime::ZERO, NodeId(0), TraceKind::Arrive, &pkt(4, 0));
        t.record(SimTime::ZERO, NodeId(0), TraceKind::Arrive, &pkt(5, 0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.events().next().unwrap().flow, FlowId(5));
    }

    #[test]
    fn capacity_clamp_bounds_peak_allocation() {
        // Ask for far more than the ceiling; the clamp must bound both the
        // logical capacity and the ring's actual allocation, even after
        // overflowing eviction kicks in.
        let mut t = Tracer::new(10_000_000);
        assert_eq!(t.capacity(), MAX_TRACE_CAPACITY);
        let initial_alloc = t.ring.capacity();
        for k in 0..(MAX_TRACE_CAPACITY as u64 + 100) {
            t.record(
                SimTime::from_nanos(k),
                NodeId(0),
                TraceKind::Arrive,
                &pkt(1, k),
            );
        }
        assert_eq!(t.len(), MAX_TRACE_CAPACITY);
        assert_eq!(t.observed, MAX_TRACE_CAPACITY as u64 + 100);
        // Peak allocation equals the up-front allocation: eviction keeps
        // len == capacity, so push_back never reallocates.
        assert_eq!(t.ring.capacity(), initial_alloc);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn tracer_subscribes_to_events() {
        let mut t = Tracer::new(8);
        let meta = Meta {
            at: SimTime::from_micros(4),
            node: 3,
        };
        t.on_packet_enqueued(
            &meta,
            &PacketEnqueued {
                port: 0,
                flow: 9,
                seq: 100,
                payload: 1460,
                wire_bytes: 1518,
                backlog_bytes: 0,
                marked: false,
            },
        );
        t.on_packet_dropped(
            &meta,
            &PacketDropped {
                port: 0,
                flow: 9,
                seq: 200,
                payload: 1460,
                wire_bytes: 1518,
                reason: DropReason::Tail,
            },
        );
        t.on_ce_marked(
            &meta,
            &CeMarked {
                port: 0,
                flow: 9,
                seq: 300,
                site: ecnsharp_telemetry::MarkSite::Enqueue,
            },
        );
        assert_eq!(t.len(), 3);
        let dump = t.dump();
        assert!(dump.contains("ENQ"));
        assert!(dump.contains("DRP:tail"));
        assert!(dump.contains("MRK"));
        assert!(dump.contains("n3"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TraceKind::Drop(DropReason::Tail)), "DRP:tail");
        assert_eq!(
            format!("{}", TraceKind::Drop(DropReason::NoRoute)),
            "DRP:no-route"
        );
        let e = TraceEvent {
            at: SimTime::from_micros(3),
            node: NodeId(1),
            kind: TraceKind::TxStart,
            flow: FlowId(9),
            seq: 100,
            payload: 1460,
        };
        let s = format!("{e}");
        assert!(s.contains("n1") && s.contains("f9") && s.contains("seq=100"));
    }
}
