//! Packet-event tracing: an optional, bounded record of what happened to
//! packets as they moved through the network — the simulator's analogue of
//! the `--pcap` switches that event-driven stacks ship for debugging.
//!
//! Tracing is off by default (zero cost); enable it with
//! [`crate::Network::enable_trace`]. Events are kept in a bounded ring so
//! a runaway simulation cannot exhaust memory.

use crate::ids::{FlowId, NodeId};
use crate::packet::Packet;
use ecnsharp_sim::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet arrived at a node (delivered to host or entering switching).
    Arrive,
    /// Packet was admitted to an egress queue.
    Enqueue,
    /// Packet started transmission.
    TxStart,
    /// Packet was dropped (tail, AQM or fault).
    Drop,
    /// Packet was CE-marked.
    Mark,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Arrive => "ARR",
            TraceKind::Enqueue => "ENQ",
            TraceKind::TxStart => "TX ",
            TraceKind::Drop => "DRP",
            TraceKind::Mark => "MRK",
        };
        f.write_str(s)
    }
}

/// One traced event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When.
    pub at: SimTime,
    /// Where.
    pub node: NodeId,
    /// What.
    pub kind: TraceKind,
    /// Flow of the packet.
    pub flow: FlowId,
    /// Byte sequence of the packet.
    pub seq: u64,
    /// Payload bytes.
    pub payload: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} {} {} {} seq={} len={}",
            format!("{}", self.at),
            self.kind,
            self.node,
            self.flow,
            self.seq,
            self.payload
        )
    }
}

/// A bounded ring of trace events.
#[derive(Debug)]
pub struct Tracer {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events observed (including ones evicted from the ring).
    pub observed: u64,
    /// Restrict tracing to one flow, if set.
    pub flow_filter: Option<FlowId>,
}

impl Tracer {
    /// Create a tracer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Tracer {
            ring: VecDeque::with_capacity(capacity.min(65_536)),
            capacity,
            observed: 0,
            flow_filter: None,
        }
    }

    /// Record an event for `pkt`.
    pub fn record(&mut self, at: SimTime, node: NodeId, kind: TraceKind, pkt: &Packet) {
        if let Some(f) = self.flow_filter {
            if pkt.flow != f {
                return;
            }
        }
        self.observed += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent {
            at,
            node,
            kind,
            flow: pkt.flow,
            seq: pkt.seq,
            payload: pkt.payload,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Render the retained events as text, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u64, seq: u64) -> Packet {
        Packet::data(FlowId(flow), NodeId(0), NodeId(1), seq, 1460)
    }

    #[test]
    fn records_and_dumps() {
        let mut t = Tracer::new(10);
        t.record(
            SimTime::from_micros(1),
            NodeId(2),
            TraceKind::Enqueue,
            &pkt(7, 0),
        );
        t.record(
            SimTime::from_micros(2),
            NodeId(2),
            TraceKind::Mark,
            &pkt(7, 1460),
        );
        assert_eq!(t.len(), 2);
        let dump = t.dump();
        assert!(dump.contains("ENQ"));
        assert!(dump.contains("MRK"));
        assert!(dump.contains("f7"));
    }

    #[test]
    fn ring_bounds_memory() {
        let mut t = Tracer::new(3);
        for k in 0..100u64 {
            t.record(
                SimTime::from_micros(k),
                NodeId(0),
                TraceKind::Arrive,
                &pkt(1, k),
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.observed, 100);
        // Oldest retained is event 97.
        assert_eq!(t.events().next().unwrap().seq, 97);
    }

    #[test]
    fn flow_filter() {
        let mut t = Tracer::new(10);
        t.flow_filter = Some(FlowId(5));
        t.record(SimTime::ZERO, NodeId(0), TraceKind::Arrive, &pkt(4, 0));
        t.record(SimTime::ZERO, NodeId(0), TraceKind::Arrive, &pkt(5, 0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.events().next().unwrap().flow, FlowId(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TraceKind::Drop), "DRP");
        let e = TraceEvent {
            at: SimTime::from_micros(3),
            node: NodeId(1),
            kind: TraceKind::TxStart,
            flow: FlowId(9),
            seq: 100,
            payload: 1460,
        };
        let s = format!("{e}");
        assert!(s.contains("n1") && s.contains("f9") && s.contains("seq=100"));
    }
}
