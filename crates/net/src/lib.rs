//! # ecnsharp-net
//!
//! The packet-level datacenter network model the ECN♯ reproduction runs on:
//!
//! - [`Packet`] — byte-counted segments with ECN codepoints and TCP-ish
//!   flags;
//! - [`EgressPort`] — the buffered transmit side of a link attachment:
//!   tail-drop capacity, a pluggable [`ecnsharp_aqm::Aqm`] policy, a
//!   pluggable [`ecnsharp_sched::Scheduler`], store-and-forward
//!   serialization, optional fault injection;
//! - [`Network`] — owns nodes and links, runs the deterministic event loop,
//!   routes with flow-consistent ECMP, and records flow completions;
//! - [`Agent`] — endpoint logic plugged into hosts (the DCTCP stack lives
//!   in `ecnsharp-transport`);
//! - topology builders for the paper's scenarios ([`topology::star`],
//!   [`topology::leaf_spine`], [`topology::dumbbell`]).
//!
//! Per-flow artificial sender-side processing delay
//! ([`FlowCmd::extra_delay`]) reproduces the paper's netem-based base-RTT
//! variation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod fault;
pub mod ids;
pub mod network;
pub mod node;
pub mod packet;
pub mod port;
pub mod topology;
pub mod trace;

pub use agent::{Action, Agent, Ctx, EchoAgent, FlowCmd, FlowOutcome, FlowRecord, NullAgent};
pub use fault::{FaultAction, FaultEvent, FaultPlan, GilbertElliott};
pub use ids::{FlowId, NodeId, PortId};
pub use network::{Network, PerfCounters, QueueMonitor};
pub use packet::{Ecn, Flags, Packet};
pub use port::{EgressPort, PortConfig, PortSched, PortStats};
pub use trace::{TraceEvent, TraceKind, Tracer};
