//! # ecnsharp-net
//!
//! The packet-level datacenter network model the ECN♯ reproduction runs on:
//!
//! - [`Packet`] — byte-counted segments with ECN codepoints and TCP-ish
//!   flags;
//! - [`EgressPort`] — the buffered transmit side of a link attachment:
//!   tail-drop capacity, a pluggable [`ecnsharp_aqm::Aqm`] policy, a
//!   pluggable [`ecnsharp_sched::Scheduler`], store-and-forward
//!   serialization, optional fault injection;
//! - [`Network`] — owns nodes and links, runs the deterministic event loop,
//!   routes with flow-consistent ECMP, and records flow completions;
//! - [`Agent`] — endpoint logic plugged into hosts (the DCTCP stack lives
//!   in `ecnsharp-transport`);
//! - topology builders for the paper's scenarios ([`topology::star`],
//!   [`topology::leaf_spine`], [`topology::dumbbell`]).
//!
//! Per-flow artificial sender-side processing delay
//! ([`FlowCmd::extra_delay`]) reproduces the paper's netem-based base-RTT
//! variation.
//!
//! With the default-on `telemetry` feature, the hot paths emit typed
//! events ([`ecnsharp_telemetry::PacketEnqueued`], drops with a
//! [`DropReason`], CE marks, sojourn samples, ECN♯ episode transitions,
//! …) to a statically-dispatched [`Subscriber`]. [`Network`] is generic
//! over the subscriber with a [`NoopSubscriber`] default whose emission
//! sites fold away entirely; see OBSERVABILITY.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deliver one telemetry event to a subscriber.
///
/// Expands the event construction *inside* an `if S::ENABLED` guard, so
/// with [`NoopSubscriber`] (`ENABLED = false`) the whole site folds away
/// at compile time, and with the `telemetry` feature off it is not
/// compiled at all. Call sites must have a `S: Subscriber` type parameter
/// named `S` in scope (the macro is textual, like s2n-quic's event
/// macros). Defined before the module declarations so textual
/// `macro_rules!` scoping makes it visible throughout the crate.
#[cfg(feature = "telemetry")]
macro_rules! emit {
    ($sub:expr, $method:ident, $meta:expr, $ev:expr) => {
        if S::ENABLED {
            ecnsharp_telemetry::Subscriber::$method($sub, &$meta, &$ev);
        }
    };
}
#[cfg(not(feature = "telemetry"))]
macro_rules! emit {
    ($sub:expr, $method:ident, $meta:expr, $ev:expr) => {{
        let _ = &$sub;
    }};
}

pub mod agent;
pub mod arena;
pub mod fault;
pub mod ids;
pub mod network;
pub mod node;
pub mod packet;
pub mod port;
pub mod shard;
pub mod topology;
pub mod trace;

pub use agent::{Action, Agent, Ctx, EchoAgent, FlowCmd, FlowOutcome, FlowRecord, NullAgent};
pub use arena::RingArena;
pub use fault::{FaultAction, FaultEvent, FaultPlan, GilbertElliott};
pub use ids::{FlowId, NodeId, PortId};
pub use network::{Network, PerfCounters, QueueMonitor};
pub use packet::{Ecn, Flags, Packet};
pub use port::{EgressPort, PortConfig, PortSched, PortStats};
pub use shard::ShardPlan;
pub use trace::{TraceEvent, TraceKind, Tracer, MAX_TRACE_CAPACITY};

// Re-export the subscriber vocabulary so downstream crates can attach
// telemetry without depending on `ecnsharp-telemetry` directly.
pub use ecnsharp_telemetry::{DropReason, NoopSubscriber, ShardSubscriber, Subscriber};

// Re-export the run-supervision vocabulary (see `ecnsharp_sim::supervise`)
// so fallible runners and sweep supervisors need only this crate.
pub use ecnsharp_sim::supervise::{
    MemBreach, MemComponent, ProgressGuard, ShardDiag, SimError, Supervision,
};

// Compile-time shard-safety proofs: a sharded engine (ROADMAP item 1)
// hands whole `Network` instances to worker threads, so every piece of
// the network model must stay `Send`. Lint rules R7/R8 guard the source
// text; these assertions guard the types themselves.
const fn assert_send<T: Send>() {}
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<Network<NoopSubscriber>>();
    assert_send::<Box<dyn Agent>>();
    assert_send::<PortConfig>();
    assert_send::<FaultPlan>();
    assert_send_sync::<Packet>();
    assert_send_sync::<GilbertElliott>();
    assert_send_sync::<Tracer>();
    // The sharded runner moves these between threads: whole engines into
    // the worker scope, cross-shard packets through the mailboxes, and
    // the plan's owner map behind an Arc.
    assert_send::<network::OutMsg>();
    assert_send_sync::<ShardPlan>();
    // Pooled ring storage moves with its node across shard threads.
    assert_send::<RingArena>();
    // Supervision config is copied into every shard engine; guard trips
    // cross the worker scope back to the caller.
    assert_send_sync::<Supervision>();
    assert_send_sync::<SimError>();
    // Cache-layout pin alongside the shard-safety proofs: the packed
    // Packet (and therefore every pooled arena slot) must stay within one
    // 64-byte cache line, or the host-path working set regresses.
    assert!(std::mem::size_of::<Packet>() <= 64);
    assert!(std::mem::size_of::<Option<(u64, Packet)>>() <= 72);
};
