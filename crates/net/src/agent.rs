//! Host agents: the pluggable endpoint logic (a TCP stack, a traffic sink,
//! a probe generator) that a [`crate::Network`] drives with packets, timers
//! and flow commands.

use crate::ids::{FlowId, NodeId};
use crate::packet::Packet;
use ecnsharp_sim::{Duration, SimTime};
#[cfg(feature = "telemetry")]
use ecnsharp_telemetry::TransportEvent;

/// An instruction to a source host: "open a flow of `size` bytes to `dst`".
#[derive(Debug, Clone)]
pub struct FlowCmd {
    /// Unique flow identifier.
    pub flow: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes to deliver.
    pub size: u64,
    /// Service class for multi-queue schedulers.
    pub class: u8,
    /// Extra one-way processing delay the *sender* adds to every packet of
    /// this flow — the netem emulation of base-RTT variation (§2.3): the
    /// flow's base RTT becomes network RTT + `extra_delay`.
    pub extra_delay: Duration,
}

/// How a flow ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Every application byte was delivered and acknowledged.
    Completed,
    /// The sender gave up (e.g. `max_rto_retries` consecutive timeouts on
    /// a dead path) — the flow terminated without delivering its bytes.
    Failed,
}

/// A finished flow (completed or aborted), as recorded by the network.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// The flow.
    pub flow: FlowId,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Application bytes.
    pub size: u64,
    /// When the source agent was told to start.
    pub start: SimTime,
    /// When the source agent reported completion (last byte acked).
    pub finish: SimTime,
    /// Service class.
    pub class: u8,
    /// Retransmission timeouts suffered (diagnostics for incast analyses).
    pub timeouts: u32,
    /// Whether the flow completed or was aborted by the sender.
    pub outcome: FlowOutcome,
}

impl FlowRecord {
    /// Flow completion time. For a [`FlowOutcome::Failed`] flow this is the
    /// time from start to abort, not a delivery time — FCT statistics must
    /// exclude failed flows (see `ecnsharp-stats`).
    pub fn fct(&self) -> Duration {
        self.finish.saturating_since(self.start)
    }
}

/// Side effects an agent callback can request.
#[derive(Debug)]
pub enum Action {
    /// Transmit a packet from this host's NIC, after an artificial
    /// processing delay (the netem knob; [`Duration::ZERO`] for none).
    Send(Packet, Duration),
    /// Fire [`Agent::on_timer`] with `key` at absolute time `at`
    /// (one-shot, not cancellable — see [`Ctx::set_timer`]).
    SetTimer(SimTime, u64),
    /// Arm (or re-arm) the cancellable timer identified by `key` on this
    /// node to fire [`Agent::on_timer`] at absolute time `at`. Backed by
    /// the engine's hierarchical timer wheel: a previously armed timer
    /// with the same key is silently replaced without ever reaching the
    /// event queue's pop path.
    ArmTimer(SimTime, u64),
    /// Cancel the armed timer identified by `key` on this node, if any.
    CancelTimer(u64),
    /// Report a flow as complete (FCT bookkeeping) with a timeout count.
    FlowDone(FlowId, u32),
    /// Report a flow as aborted after the given number of timeouts — the
    /// sender gave up (graceful degradation) instead of retrying forever.
    FlowFailed(FlowId, u32),
    /// A transport-owned memory budget (e.g. receiver reassembly state)
    /// exceeded its ceiling: `live` entries against `ceiling`. The engine
    /// latches the run's first breach as
    /// [`SimError::MemBudgetExceeded`](ecnsharp_sim::SimError) and the
    /// fallible entry points fail fast with it.
    MemBreach {
        /// Live entries at the breaching admission.
        live: u64,
        /// The configured ceiling.
        ceiling: u64,
    },
}

/// Callback context handed to agents; collects requested actions and
/// (when a telemetry subscriber is attached) transport events.
pub struct Ctx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The host this agent lives on.
    pub node: NodeId,
    pub(crate) actions: &'a mut Vec<Action>,
    /// Transport-event buffer, present only when the network's subscriber
    /// is enabled (so detached/no-op paths never pay for the pushes).
    #[cfg(feature = "telemetry")]
    pub(crate) events: Option<&'a mut Vec<TransportEvent>>,
}

impl<'a> Ctx<'a> {
    /// Build a detached context collecting into `actions` — for unit tests
    /// of agents outside a running [`crate::Network`]. Transport events
    /// are discarded.
    pub fn detached(now: SimTime, node: NodeId, actions: &'a mut Vec<Action>) -> Ctx<'a> {
        Ctx {
            now,
            node,
            actions,
            #[cfg(feature = "telemetry")]
            events: None,
        }
    }

    /// Report a congestion-window update for telemetry (no-op unless a
    /// subscriber is attached).
    #[inline]
    pub fn emit_cwnd(&mut self, flow: FlowId, cwnd_bytes: u64, ssthresh_bytes: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(events) = self.events.as_deref_mut() {
            events.push(TransportEvent::Cwnd {
                flow: flow.0,
                cwnd_bytes,
                ssthresh_bytes,
            });
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (flow, cwnd_bytes, ssthresh_bytes);
    }

    /// Report a DCTCP alpha fold for telemetry (no-op unless a subscriber
    /// is attached).
    #[inline]
    pub fn emit_alpha(&mut self, flow: FlowId, alpha: f64) {
        #[cfg(feature = "telemetry")]
        if let Some(events) = self.events.as_deref_mut() {
            events.push(TransportEvent::Alpha {
                flow: flow.0,
                alpha,
            });
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (flow, alpha);
    }

    /// Report a fired retransmission timeout for telemetry (no-op unless a
    /// subscriber is attached). `streak` is the consecutive-RTO count.
    #[inline]
    pub fn emit_rto(&mut self, flow: FlowId, streak: u32) {
        #[cfg(feature = "telemetry")]
        if let Some(events) = self.events.as_deref_mut() {
            events.push(TransportEvent::Rto {
                flow: flow.0,
                streak,
            });
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (flow, streak);
    }

    /// Send `pkt` out of this host's NIC immediately.
    pub fn send(&mut self, pkt: Packet) {
        self.actions.push(Action::Send(pkt, Duration::ZERO));
    }

    /// Send `pkt` after an artificial processing delay (netem emulation).
    pub fn send_delayed(&mut self, pkt: Packet, delay: Duration) {
        self.actions.push(Action::Send(pkt, delay));
    }

    /// Request a one-shot timer callback `after` from now, tagged with
    /// `key`.
    ///
    /// These timers are not cancellable; agents using them implement
    /// cancellation by tagging timers with epochs and ignoring stale ones.
    /// That lazy pattern pushes one soon-to-be-garbage event through the
    /// queue per re-arm — prefer [`Ctx::arm_timer`]/[`Ctx::cancel_timer`],
    /// which re-arm in place on the engine's timer wheel. `set_timer` is
    /// kept for the legacy transport backend and as the equivalence
    /// baseline the determinism tests compare the wheel against.
    pub fn set_timer(&mut self, after: Duration, key: u64) {
        self.actions.push(Action::SetTimer(self.now + after, key));
    }

    /// Arm — or re-arm, replacing any pending deadline — the cancellable
    /// timer `key` to fire `after` from now. Re-arming never pushes a
    /// stale event through the queue (see [`Action::ArmTimer`]).
    pub fn arm_timer(&mut self, after: Duration, key: u64) {
        self.actions.push(Action::ArmTimer(self.now + after, key));
    }

    /// Cancel the pending cancellable timer `key`, if armed.
    pub fn cancel_timer(&mut self, key: u64) {
        self.actions.push(Action::CancelTimer(key));
    }

    /// Report that `flow` has completed (sender-side, last byte acked).
    pub fn flow_done(&mut self, flow: FlowId, timeouts: u32) {
        self.actions.push(Action::FlowDone(flow, timeouts));
    }

    /// Report that the sender has aborted `flow` after `timeouts`
    /// consecutive retransmission timeouts without forward progress.
    pub fn flow_failed(&mut self, flow: FlowId, timeouts: u32) {
        self.actions.push(Action::FlowFailed(flow, timeouts));
    }

    /// Report a transport-owned memory-budget breach (`live` entries
    /// against `ceiling`). Observation-only from the agent's point of
    /// view: the engine stops the run through the fallible entry points
    /// but never alters the agent's own state or scheduling.
    pub fn report_mem_breach(&mut self, live: u64, ceiling: u64) {
        self.actions.push(Action::MemBreach { live, ceiling });
    }
}

/// Endpoint logic attached to a host.
pub trait Agent: Send {
    /// A packet addressed to this host has arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// A timer requested via [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: u64);

    /// The workload driver wants this host to start sending a flow.
    fn on_flow_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: FlowCmd);
}

/// A trivial agent that ignores everything — placeholder for pure-sink
/// hosts and unit tests.
#[derive(Debug, Default)]
pub struct NullAgent;

impl Agent for NullAgent {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _key: u64) {}
    fn on_flow_cmd(&mut self, _ctx: &mut Ctx<'_>, _cmd: FlowCmd) {}
}

/// An agent that echoes every data packet back to its source as an ACK —
/// handy for RTT probes and engine tests.
#[derive(Debug, Default)]
pub struct EchoAgent;

impl Agent for EchoAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if !pkt.flags().ack {
            let reply = Packet::ack(pkt.flow, pkt.dst, pkt.src, pkt.seq_end());
            ctx.send(reply);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _key: u64) {}
    fn on_flow_cmd(&mut self, _ctx: &mut Ctx<'_>, _cmd: FlowCmd) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_actions() {
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::from_micros(5), NodeId(0), &mut actions);
        ctx.send(Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 100));
        ctx.set_timer(Duration::from_micros(10), 7);
        ctx.flow_done(FlowId(1), 0);
        assert_eq!(actions.len(), 3);
        match &actions[1] {
            Action::SetTimer(at, key) => {
                assert_eq!(*at, SimTime::from_micros(15));
                assert_eq!(*key, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn echo_agent_acks_data() {
        let mut actions = Vec::new();
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(1), &mut actions);
        let mut agent = EchoAgent;
        let data = Packet::data(FlowId(3), NodeId(0), NodeId(1), 100, 200);
        agent.on_packet(&mut ctx, data);
        match &actions[0] {
            Action::Send(p, _) => {
                assert!(p.flags().ack);
                assert_eq!(p.ack_no(), 300);
                assert_eq!(p.dst, NodeId(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // ACKs are not echoed (no loops).
        actions.clear();
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(1), &mut actions);
        agent.on_packet(&mut ctx, Packet::ack(FlowId(3), NodeId(0), NodeId(1), 5));
        assert!(actions.is_empty());
    }

    #[test]
    fn flow_record_fct() {
        let r = FlowRecord {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1000,
            start: SimTime::from_micros(100),
            finish: SimTime::from_micros(350),
            class: 0,
            timeouts: 0,
            outcome: FlowOutcome::Completed,
        };
        assert_eq!(r.fct(), Duration::from_micros(250));
    }
}
