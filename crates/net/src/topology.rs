//! Topology builders for the paper's three experiment shapes:
//!
//! - [`star`] — N hosts on one switch (the 8-server testbed of §5.2 and the
//!   16→1 incast microscope of §5.4);
//! - [`leaf_spine`] — the §5.3 large-scale fabric (8 spines × 8 leaves × 16
//!   hosts, ECMP);
//! - [`dumbbell`] — two hosts across two switches with a single bottleneck
//!   link (unit-test workhorse).

use crate::agent::Agent;
use crate::ids::NodeId;
use crate::network::Network;
use crate::port::PortConfig;
use ecnsharp_sim::{Duration, Rate};
use ecnsharp_telemetry::{NoopSubscriber, Subscriber};

/// A star network: every host connects to one switch.
pub struct Star<S: Subscriber = NoopSubscriber> {
    /// The network, routes computed.
    pub net: Network<S>,
    /// Host ids, in creation order.
    pub hosts: Vec<NodeId>,
    /// The central switch.
    pub switch: NodeId,
}

/// Build a [`Star`].
///
/// `agent(i)` supplies host `i`'s agent, `host_port()` each host NIC's
/// config, and `switch_port()` each switch egress port's config (this is
/// where the AQM under test goes).
pub fn star(
    seed: u64,
    n_hosts: usize,
    rate: Rate,
    delay: Duration,
    agent: impl FnMut(usize) -> Box<dyn Agent>,
    host_port: impl FnMut() -> PortConfig,
    switch_port: impl FnMut() -> PortConfig,
) -> Star {
    star_with_subscriber(
        seed,
        n_hosts,
        rate,
        delay,
        agent,
        host_port,
        switch_port,
        NoopSubscriber,
    )
}

/// [`star`] with a telemetry subscriber attached from the first event.
#[allow(clippy::too_many_arguments)]
pub fn star_with_subscriber<S: Subscriber>(
    seed: u64,
    n_hosts: usize,
    rate: Rate,
    delay: Duration,
    mut agent: impl FnMut(usize) -> Box<dyn Agent>,
    mut host_port: impl FnMut() -> PortConfig,
    mut switch_port: impl FnMut() -> PortConfig,
    sub: S,
) -> Star<S> {
    assert!(n_hosts >= 2, "a star needs at least two hosts");
    let mut net = Network::with_subscriber(seed, sub);
    let hosts: Vec<NodeId> = (0..n_hosts).map(|i| net.add_host(agent(i))).collect();
    let switch = net.add_switch();
    for &h in &hosts {
        net.connect(h, host_port(), switch, switch_port(), rate, delay);
    }
    net.compute_routes();
    Star { net, hosts, switch }
}

/// A two-tier leaf–spine fabric.
pub struct LeafSpine<S: Subscriber = NoopSubscriber> {
    /// The network, routes computed.
    pub net: Network<S>,
    /// All hosts; host `i` hangs off leaf `i / hosts_per_leaf`.
    pub hosts: Vec<NodeId>,
    /// Leaf switches.
    pub leaves: Vec<NodeId>,
    /// Spine switches.
    pub spines: Vec<NodeId>,
    /// Hosts per leaf (for index arithmetic).
    pub hosts_per_leaf: usize,
}

impl<S: Subscriber> LeafSpine<S> {
    /// The leaf switch serving `host`.
    pub fn leaf_of(&self, host_idx: usize) -> NodeId {
        self.leaves[host_idx / self.hosts_per_leaf]
    }
}

/// Build a [`LeafSpine`] with every leaf connected to every spine.
///
/// `edge_rate`/`fabric_rate` are the host-to-leaf and leaf-to-spine link
/// rates (the paper uses 10 Gbps for both).
#[allow(clippy::too_many_arguments)]
pub fn leaf_spine(
    seed: u64,
    n_spines: usize,
    n_leaves: usize,
    hosts_per_leaf: usize,
    edge_rate: Rate,
    fabric_rate: Rate,
    delay: Duration,
    agent: impl FnMut(usize) -> Box<dyn Agent>,
    host_port: impl FnMut() -> PortConfig,
    switch_port: impl FnMut() -> PortConfig,
) -> LeafSpine {
    leaf_spine_with_subscriber(
        seed,
        n_spines,
        n_leaves,
        hosts_per_leaf,
        edge_rate,
        fabric_rate,
        delay,
        agent,
        host_port,
        switch_port,
        NoopSubscriber,
    )
}

/// [`leaf_spine`] with a telemetry subscriber attached from the first event.
#[allow(clippy::too_many_arguments)]
pub fn leaf_spine_with_subscriber<S: Subscriber>(
    seed: u64,
    n_spines: usize,
    n_leaves: usize,
    hosts_per_leaf: usize,
    edge_rate: Rate,
    fabric_rate: Rate,
    delay: Duration,
    mut agent: impl FnMut(usize) -> Box<dyn Agent>,
    mut host_port: impl FnMut() -> PortConfig,
    mut switch_port: impl FnMut() -> PortConfig,
    sub: S,
) -> LeafSpine<S> {
    assert!(n_spines >= 1 && n_leaves >= 1 && hosts_per_leaf >= 1);
    let mut net = Network::with_subscriber(seed, sub);
    let hosts: Vec<NodeId> = (0..n_leaves * hosts_per_leaf)
        .map(|i| net.add_host(agent(i)))
        .collect();
    let leaves: Vec<NodeId> = (0..n_leaves).map(|_| net.add_switch()).collect();
    let spines: Vec<NodeId> = (0..n_spines).map(|_| net.add_switch()).collect();
    for (i, &h) in hosts.iter().enumerate() {
        let leaf = leaves[i / hosts_per_leaf];
        net.connect(h, host_port(), leaf, switch_port(), edge_rate, delay);
    }
    for &leaf in &leaves {
        for &spine in &spines {
            net.connect(
                leaf,
                switch_port(),
                spine,
                switch_port(),
                fabric_rate,
                delay,
            );
        }
    }
    net.compute_routes();
    LeafSpine {
        net,
        hosts,
        leaves,
        spines,
        hosts_per_leaf,
    }
}

/// A dumbbell: `a — s1 — s2 — b`, with the `s1→s2` link as the bottleneck.
pub struct Dumbbell<S: Subscriber = NoopSubscriber> {
    /// The network, routes computed.
    pub net: Network<S>,
    /// Left host.
    pub a: NodeId,
    /// Right host.
    pub b: NodeId,
    /// Left switch.
    pub s1: NodeId,
    /// Right switch.
    pub s2: NodeId,
    /// `s1`'s egress port index on the bottleneck.
    pub bottleneck_port: usize,
}

/// Build a [`Dumbbell`]. Edge links run at `edge_rate`; the middle link at
/// `bottleneck_rate` with `bottleneck_port()` as its (AQM-bearing) config.
#[allow(clippy::too_many_arguments)]
pub fn dumbbell(
    seed: u64,
    edge_rate: Rate,
    bottleneck_rate: Rate,
    delay: Duration,
    agent_a: Box<dyn Agent>,
    agent_b: Box<dyn Agent>,
    plain_port: impl FnMut() -> PortConfig,
    bottleneck_port_cfg: PortConfig,
) -> Dumbbell {
    dumbbell_with_subscriber(
        seed,
        edge_rate,
        bottleneck_rate,
        delay,
        agent_a,
        agent_b,
        plain_port,
        bottleneck_port_cfg,
        NoopSubscriber,
    )
}

/// [`dumbbell`] with a telemetry subscriber attached from the first event.
#[allow(clippy::too_many_arguments)]
pub fn dumbbell_with_subscriber<S: Subscriber>(
    seed: u64,
    edge_rate: Rate,
    bottleneck_rate: Rate,
    delay: Duration,
    agent_a: Box<dyn Agent>,
    agent_b: Box<dyn Agent>,
    mut plain_port: impl FnMut() -> PortConfig,
    bottleneck_port_cfg: PortConfig,
    sub: S,
) -> Dumbbell<S> {
    let mut net = Network::with_subscriber(seed, sub);
    let a = net.add_host(agent_a);
    let b = net.add_host(agent_b);
    let s1 = net.add_switch();
    let s2 = net.add_switch();
    net.connect(a, plain_port(), s1, plain_port(), edge_rate, delay);
    let (p1, _) = net.connect(
        s1,
        bottleneck_port_cfg,
        s2,
        plain_port(),
        bottleneck_rate,
        delay,
    );
    net.connect(s2, plain_port(), b, plain_port(), edge_rate, delay);
    net.compute_routes();
    Dumbbell {
        net,
        a,
        b,
        s1,
        s2,
        bottleneck_port: p1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NullAgent;
    use ecnsharp_aqm::DropTail;

    fn cfg() -> PortConfig {
        PortConfig::fifo(1_000_000, Box::new(DropTail::new()))
    }

    #[test]
    fn star_shape() {
        let s = star(
            1,
            8,
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        assert_eq!(s.hosts.len(), 8);
        assert_eq!(s.net.node_count(), 9);
        // Every host reachable from the switch on a distinct port.
        for &h in &s.hosts {
            assert!(s.net.port_towards(s.switch, h).is_some());
        }
    }

    #[test]
    fn leaf_spine_shape() {
        let ls = leaf_spine(
            1,
            8,
            8,
            16,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        assert_eq!(ls.hosts.len(), 128);
        assert_eq!(ls.leaves.len(), 8);
        assert_eq!(ls.spines.len(), 8);
        assert_eq!(ls.net.node_count(), 128 + 16);
        assert_eq!(ls.leaf_of(0), ls.leaves[0]);
        assert_eq!(ls.leaf_of(127), ls.leaves[7]);
        // Each leaf has 16 host ports + 8 spine ports.
        for &leaf in &ls.leaves {
            for &spine in &ls.spines {
                assert!(ls.net.port_towards(leaf, spine).is_some());
            }
        }
    }

    #[test]
    fn dumbbell_shape() {
        let d = dumbbell(
            1,
            Rate::from_gbps(40),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            Box::new(NullAgent),
            Box::new(NullAgent),
            cfg,
            cfg(),
        );
        assert_eq!(d.net.node_count(), 4);
        assert_eq!(d.net.port_towards(d.s1, d.s2), Some(d.bottleneck_port));
    }

    #[test]
    #[should_panic(expected = "at least two hosts")]
    fn star_needs_two_hosts() {
        let _ = star(
            1,
            1,
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
    }
}
