//! Topology builders for the paper's experiment shapes:
//!
//! - [`star`] — N hosts on one switch (the 8-server testbed of §5.2 and the
//!   16→1 incast microscope of §5.4);
//! - [`leaf_spine`] — the §5.3 large-scale fabric (8 spines × 8 leaves × 16
//!   hosts, ECMP);
//! - [`fat_tree`] — a three-tier k-ary fat-tree (k pods, k³/4 hosts) for
//!   datacenter-scale sharded runs;
//! - [`dumbbell`] — two hosts across two switches with a single bottleneck
//!   link (unit-test workhorse).
//!
//! Each multi-switch shape exposes a `shard_plan(n)` constructor that cuts
//! the fabric along natural boundaries (per-leaf, per-pod) for
//! [`Network::run_sharded_until_idle`](crate::Network::run_sharded_until_idle).

use crate::agent::Agent;
use crate::ids::NodeId;
use crate::network::Network;
use crate::port::PortConfig;
use crate::shard::ShardPlan;
use ecnsharp_sim::{Duration, Rate};
use ecnsharp_telemetry::{NoopSubscriber, Subscriber};

/// A star network: every host connects to one switch.
pub struct Star<S: Subscriber = NoopSubscriber> {
    /// The network, routes computed.
    pub net: Network<S>,
    /// Host ids, in creation order.
    pub hosts: Vec<NodeId>,
    /// The central switch.
    pub switch: NodeId,
}

/// Build a [`Star`].
///
/// `agent(i)` supplies host `i`'s agent, `host_port()` each host NIC's
/// config, and `switch_port()` each switch egress port's config (this is
/// where the AQM under test goes).
pub fn star(
    seed: u64,
    n_hosts: usize,
    rate: Rate,
    delay: Duration,
    agent: impl FnMut(usize) -> Box<dyn Agent>,
    host_port: impl FnMut() -> PortConfig,
    switch_port: impl FnMut() -> PortConfig,
) -> Star {
    star_with_subscriber(
        seed,
        n_hosts,
        rate,
        delay,
        agent,
        host_port,
        switch_port,
        NoopSubscriber,
    )
}

/// [`star`] with a telemetry subscriber attached from the first event.
#[allow(clippy::too_many_arguments)]
pub fn star_with_subscriber<S: Subscriber>(
    seed: u64,
    n_hosts: usize,
    rate: Rate,
    delay: Duration,
    mut agent: impl FnMut(usize) -> Box<dyn Agent>,
    mut host_port: impl FnMut() -> PortConfig,
    mut switch_port: impl FnMut() -> PortConfig,
    sub: S,
) -> Star<S> {
    assert!(n_hosts >= 2, "a star needs at least two hosts");
    let mut net = Network::with_subscriber(seed, sub);
    let hosts: Vec<NodeId> = (0..n_hosts).map(|i| net.add_host(agent(i))).collect();
    let switch = net.add_switch();
    for &h in &hosts {
        net.connect(h, host_port(), switch, switch_port(), rate, delay);
    }
    net.compute_routes();
    Star { net, hosts, switch }
}

impl<S: Subscriber> Star<S> {
    /// A [`ShardPlan`] spreading hosts round-robin over `n_shards` shards,
    /// with the switch on shard 0.
    ///
    /// Mostly useful for testing the sharded runner against a trivial
    /// shape; every host↔switch link crosses a shard boundary, so the
    /// lookahead is the star's single link delay.
    ///
    /// # Panics
    ///
    /// If `n_shards` is zero or exceeds the host count.
    ///
    /// ```
    /// use ecnsharp_net::topology::star;
    /// use ecnsharp_net::{NullAgent, PortConfig};
    /// use ecnsharp_aqm::DropTail;
    /// use ecnsharp_sim::{Duration, Rate};
    ///
    /// let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
    /// let s = star(7, 4, Rate::from_gbps(10), Duration::from_micros(1),
    ///              |_| Box::new(NullAgent), cfg, cfg);
    /// let plan = s.shard_plan(2);
    /// assert_eq!(plan.shard_count(), 2);
    /// ```
    pub fn shard_plan(&self, n_shards: u32) -> ShardPlan {
        assert!(
            n_shards >= 1 && (n_shards as usize) <= self.hosts.len(),
            "star shard_plan needs 1..=n_hosts shards"
        );
        let mut owner = vec![0u32; self.net.node_count()];
        for (i, &h) in self.hosts.iter().enumerate() {
            owner[h.0] = i as u32 % n_shards;
        }
        owner[self.switch.0] = 0;
        ShardPlan::new(owner)
    }
}

/// A two-tier leaf–spine fabric.
pub struct LeafSpine<S: Subscriber = NoopSubscriber> {
    /// The network, routes computed.
    pub net: Network<S>,
    /// All hosts; host `i` hangs off leaf `i / hosts_per_leaf`.
    pub hosts: Vec<NodeId>,
    /// Leaf switches.
    pub leaves: Vec<NodeId>,
    /// Spine switches.
    pub spines: Vec<NodeId>,
    /// Hosts per leaf (for index arithmetic).
    pub hosts_per_leaf: usize,
}

impl<S: Subscriber> LeafSpine<S> {
    /// The leaf switch serving `host`.
    pub fn leaf_of(&self, host_idx: usize) -> NodeId {
        self.leaves[host_idx / self.hosts_per_leaf]
    }

    /// A [`ShardPlan`] cutting the fabric per leaf: each leaf, together
    /// with all of its hosts, goes to shard `leaf % n_shards`; spines are
    /// spread round-robin the same way.
    ///
    /// Host↔leaf links then never cross a shard boundary, so the
    /// conservative lookahead is the leaf↔spine delay and the chatty
    /// edge traffic stays intra-shard.
    ///
    /// # Panics
    ///
    /// If `n_shards` is zero or exceeds the leaf count.
    ///
    /// ```
    /// use ecnsharp_net::topology::leaf_spine;
    /// use ecnsharp_net::{NullAgent, PortConfig};
    /// use ecnsharp_aqm::DropTail;
    /// use ecnsharp_sim::{Duration, Rate};
    ///
    /// let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
    /// let ls = leaf_spine(7, 2, 4, 4, Rate::from_gbps(10), Rate::from_gbps(10),
    ///                     Duration::from_micros(1), |_| Box::new(NullAgent), cfg, cfg);
    /// let plan = ls.shard_plan(4);
    /// assert_eq!(plan.shard_count(), 4);
    /// // Hosts follow their leaf.
    /// assert_eq!(plan.owner_of(ls.hosts[0]), plan.owner_of(ls.leaves[0]));
    /// ```
    pub fn shard_plan(&self, n_shards: u32) -> ShardPlan {
        assert!(
            n_shards >= 1 && (n_shards as usize) <= self.leaves.len(),
            "leaf_spine shard_plan needs 1..=n_leaves shards"
        );
        let mut owner = vec![0u32; self.net.node_count()];
        for (l, &leaf) in self.leaves.iter().enumerate() {
            owner[leaf.0] = l as u32 % n_shards;
        }
        for (i, &h) in self.hosts.iter().enumerate() {
            owner[h.0] = (i / self.hosts_per_leaf) as u32 % n_shards;
        }
        for (s, &spine) in self.spines.iter().enumerate() {
            owner[spine.0] = s as u32 % n_shards;
        }
        ShardPlan::new(owner)
    }
}

/// Build a [`LeafSpine`] with every leaf connected to every spine.
///
/// `edge_rate`/`fabric_rate` are the host-to-leaf and leaf-to-spine link
/// rates (the paper uses 10 Gbps for both).
#[allow(clippy::too_many_arguments)]
pub fn leaf_spine(
    seed: u64,
    n_spines: usize,
    n_leaves: usize,
    hosts_per_leaf: usize,
    edge_rate: Rate,
    fabric_rate: Rate,
    delay: Duration,
    agent: impl FnMut(usize) -> Box<dyn Agent>,
    host_port: impl FnMut() -> PortConfig,
    switch_port: impl FnMut() -> PortConfig,
) -> LeafSpine {
    leaf_spine_with_subscriber(
        seed,
        n_spines,
        n_leaves,
        hosts_per_leaf,
        edge_rate,
        fabric_rate,
        delay,
        agent,
        host_port,
        switch_port,
        NoopSubscriber,
    )
}

/// [`leaf_spine`] with a telemetry subscriber attached from the first event.
#[allow(clippy::too_many_arguments)]
pub fn leaf_spine_with_subscriber<S: Subscriber>(
    seed: u64,
    n_spines: usize,
    n_leaves: usize,
    hosts_per_leaf: usize,
    edge_rate: Rate,
    fabric_rate: Rate,
    delay: Duration,
    mut agent: impl FnMut(usize) -> Box<dyn Agent>,
    mut host_port: impl FnMut() -> PortConfig,
    mut switch_port: impl FnMut() -> PortConfig,
    sub: S,
) -> LeafSpine<S> {
    assert!(n_spines >= 1 && n_leaves >= 1 && hosts_per_leaf >= 1);
    let mut net = Network::with_subscriber(seed, sub);
    let hosts: Vec<NodeId> = (0..n_leaves * hosts_per_leaf)
        .map(|i| net.add_host(agent(i)))
        .collect();
    let leaves: Vec<NodeId> = (0..n_leaves).map(|_| net.add_switch()).collect();
    let spines: Vec<NodeId> = (0..n_spines).map(|_| net.add_switch()).collect();
    for (i, &h) in hosts.iter().enumerate() {
        let leaf = leaves[i / hosts_per_leaf];
        net.connect(h, host_port(), leaf, switch_port(), edge_rate, delay);
    }
    for &leaf in &leaves {
        for &spine in &spines {
            net.connect(
                leaf,
                switch_port(),
                spine,
                switch_port(),
                fabric_rate,
                delay,
            );
        }
    }
    net.compute_routes();
    LeafSpine {
        net,
        hosts,
        leaves,
        spines,
        hosts_per_leaf,
    }
}

/// A three-tier k-ary fat-tree.
///
/// The classic Clos construction: `k` pods, each with `k/2` edge switches
/// and `k/2` aggregation switches, plus `(k/2)²` core switches. Each edge
/// switch serves `k/2` hosts, giving `k³/4` hosts in total (k=8 → 128,
/// k=16 → 1024).
///
/// Node creation is **pod-contiguous** — pod 0's hosts, edges and aggs get
/// the lowest ids, then pod 1's, …, with cores last — so [`shard_plan`]
/// cuts on pod boundaries with only agg↔core links crossing shards.
///
/// [`shard_plan`]: FatTree::shard_plan
pub struct FatTree<S: Subscriber = NoopSubscriber> {
    /// The network, routes computed.
    pub net: Network<S>,
    /// Pod fan-out degree (even, ≥ 2).
    pub k: usize,
    /// All `k³/4` hosts, pod-major: host `i` lives in pod
    /// `i / (k²/4)` under edge switch `(i / (k/2)) % (k/2)`.
    pub hosts: Vec<NodeId>,
    /// Edge switches, pod-major (`k/2` per pod).
    pub edges: Vec<NodeId>,
    /// Aggregation switches, pod-major (`k/2` per pod).
    pub aggs: Vec<NodeId>,
    /// Core switches (`(k/2)²`); core `c` peers with agg `c / (k/2)` of
    /// every pod.
    pub cores: Vec<NodeId>,
}

impl<S: Subscriber> FatTree<S> {
    /// Hosts per pod, `k²/4`.
    pub fn hosts_per_pod(&self) -> usize {
        self.k * self.k / 4
    }

    /// The pod housing host `host_idx`.
    pub fn pod_of(&self, host_idx: usize) -> usize {
        host_idx / self.hosts_per_pod()
    }

    /// A [`ShardPlan`] cutting the tree per pod: pod `p` (hosts, edge and
    /// agg switches) goes to shard `p % n_shards`; core switches are
    /// spread round-robin.
    ///
    /// Only agg↔core links cross shard boundaries, so the conservative
    /// lookahead is the core-link delay and all intra-pod traffic stays
    /// shard-local.
    ///
    /// # Panics
    ///
    /// If `n_shards` is zero or exceeds the pod count `k`.
    ///
    /// ```
    /// use ecnsharp_net::topology::fat_tree;
    /// use ecnsharp_net::{NullAgent, PortConfig};
    /// use ecnsharp_aqm::DropTail;
    /// use ecnsharp_sim::{Duration, Rate};
    ///
    /// let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
    /// let ft = fat_tree(7, 4, Rate::from_gbps(10), Rate::from_gbps(10),
    ///                   Duration::from_micros(1), |_| Box::new(NullAgent), cfg, cfg);
    /// assert_eq!(ft.hosts.len(), 16); // k³/4
    /// let plan = ft.shard_plan(4);
    /// assert_eq!(plan.shard_count(), 4);
    /// // A pod's hosts and switches share a shard.
    /// assert_eq!(plan.owner_of(ft.hosts[0]), plan.owner_of(ft.edges[0]));
    /// assert_eq!(plan.owner_of(ft.hosts[0]), plan.owner_of(ft.aggs[0]));
    /// ```
    pub fn shard_plan(&self, n_shards: u32) -> ShardPlan {
        assert!(
            n_shards >= 1 && (n_shards as usize) <= self.k,
            "fat_tree shard_plan needs 1..=k shards"
        );
        let half = self.k / 2;
        let mut owner = vec![0u32; self.net.node_count()];
        for (i, &h) in self.hosts.iter().enumerate() {
            owner[h.0] = self.pod_of(i) as u32 % n_shards;
        }
        for (e, &edge) in self.edges.iter().enumerate() {
            owner[edge.0] = (e / half) as u32 % n_shards;
        }
        for (a, &agg) in self.aggs.iter().enumerate() {
            owner[agg.0] = (a / half) as u32 % n_shards;
        }
        for (c, &core) in self.cores.iter().enumerate() {
            owner[core.0] = c as u32 % n_shards;
        }
        ShardPlan::new(owner)
    }
}

/// Build a [`FatTree`].
///
/// `edge_rate` drives host↔edge links; `fabric_rate` drives edge↔agg and
/// agg↔core links (the paper's fabrics run both at 10 Gbps). `agent(i)`
/// supplies host `i`'s agent in pod-major order.
///
/// # Panics
///
/// If `k` is odd or less than 2.
#[allow(clippy::too_many_arguments)]
pub fn fat_tree(
    seed: u64,
    k: usize,
    edge_rate: Rate,
    fabric_rate: Rate,
    delay: Duration,
    agent: impl FnMut(usize) -> Box<dyn Agent>,
    host_port: impl FnMut() -> PortConfig,
    switch_port: impl FnMut() -> PortConfig,
) -> FatTree {
    fat_tree_with_subscriber(
        seed,
        k,
        edge_rate,
        fabric_rate,
        delay,
        agent,
        host_port,
        switch_port,
        NoopSubscriber,
    )
}

/// [`fat_tree`] with a telemetry subscriber attached from the first event.
#[allow(clippy::too_many_arguments)]
pub fn fat_tree_with_subscriber<S: Subscriber>(
    seed: u64,
    k: usize,
    edge_rate: Rate,
    fabric_rate: Rate,
    delay: Duration,
    mut agent: impl FnMut(usize) -> Box<dyn Agent>,
    mut host_port: impl FnMut() -> PortConfig,
    mut switch_port: impl FnMut() -> PortConfig,
    sub: S,
) -> FatTree<S> {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree k must be even and >= 2"
    );
    let half = k / 2;
    let hosts_per_pod = half * half;
    let mut net = Network::with_subscriber(seed, sub);
    let mut hosts = Vec::with_capacity(k * hosts_per_pod);
    let mut edges = Vec::with_capacity(k * half);
    let mut aggs = Vec::with_capacity(k * half);
    // Pod-contiguous ids: all of pod p's nodes precede pod p+1's.
    for p in 0..k {
        for h in 0..hosts_per_pod {
            hosts.push(net.add_host(agent(p * hosts_per_pod + h)));
        }
        for _ in 0..half {
            edges.push(net.add_switch());
        }
        for _ in 0..half {
            aggs.push(net.add_switch());
        }
    }
    let cores: Vec<NodeId> = (0..half * half).map(|_| net.add_switch()).collect();
    for p in 0..k {
        // Edge switch e serves hosts [e*half, (e+1)*half) of its pod.
        for e in 0..half {
            let edge = edges[p * half + e];
            for h in 0..half {
                let host = hosts[p * hosts_per_pod + e * half + h];
                net.connect(host, host_port(), edge, switch_port(), edge_rate, delay);
            }
            // Full edge↔agg bipartite graph within the pod.
            for a in 0..half {
                net.connect(
                    edge,
                    switch_port(),
                    aggs[p * half + a],
                    switch_port(),
                    fabric_rate,
                    delay,
                );
            }
        }
        // Agg switch a uplinks to core group a: cores [a*half, (a+1)*half).
        for a in 0..half {
            let agg = aggs[p * half + a];
            for c in 0..half {
                net.connect(
                    agg,
                    switch_port(),
                    cores[a * half + c],
                    switch_port(),
                    fabric_rate,
                    delay,
                );
            }
        }
    }
    net.compute_routes();
    FatTree {
        net,
        k,
        hosts,
        edges,
        aggs,
        cores,
    }
}

/// A dumbbell: `a — s1 — s2 — b`, with the `s1→s2` link as the bottleneck.
pub struct Dumbbell<S: Subscriber = NoopSubscriber> {
    /// The network, routes computed.
    pub net: Network<S>,
    /// Left host.
    pub a: NodeId,
    /// Right host.
    pub b: NodeId,
    /// Left switch.
    pub s1: NodeId,
    /// Right switch.
    pub s2: NodeId,
    /// `s1`'s egress port index on the bottleneck.
    pub bottleneck_port: usize,
}

/// Build a [`Dumbbell`]. Edge links run at `edge_rate`; the middle link at
/// `bottleneck_rate` with `bottleneck_port()` as its (AQM-bearing) config.
#[allow(clippy::too_many_arguments)]
pub fn dumbbell(
    seed: u64,
    edge_rate: Rate,
    bottleneck_rate: Rate,
    delay: Duration,
    agent_a: Box<dyn Agent>,
    agent_b: Box<dyn Agent>,
    plain_port: impl FnMut() -> PortConfig,
    bottleneck_port_cfg: PortConfig,
) -> Dumbbell {
    dumbbell_with_subscriber(
        seed,
        edge_rate,
        bottleneck_rate,
        delay,
        agent_a,
        agent_b,
        plain_port,
        bottleneck_port_cfg,
        NoopSubscriber,
    )
}

/// [`dumbbell`] with a telemetry subscriber attached from the first event.
#[allow(clippy::too_many_arguments)]
pub fn dumbbell_with_subscriber<S: Subscriber>(
    seed: u64,
    edge_rate: Rate,
    bottleneck_rate: Rate,
    delay: Duration,
    agent_a: Box<dyn Agent>,
    agent_b: Box<dyn Agent>,
    mut plain_port: impl FnMut() -> PortConfig,
    bottleneck_port_cfg: PortConfig,
    sub: S,
) -> Dumbbell<S> {
    let mut net = Network::with_subscriber(seed, sub);
    let a = net.add_host(agent_a);
    let b = net.add_host(agent_b);
    let s1 = net.add_switch();
    let s2 = net.add_switch();
    net.connect(a, plain_port(), s1, plain_port(), edge_rate, delay);
    let (p1, _) = net.connect(
        s1,
        bottleneck_port_cfg,
        s2,
        plain_port(),
        bottleneck_rate,
        delay,
    );
    net.connect(s2, plain_port(), b, plain_port(), edge_rate, delay);
    net.compute_routes();
    Dumbbell {
        net,
        a,
        b,
        s1,
        s2,
        bottleneck_port: p1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NullAgent;
    use ecnsharp_aqm::DropTail;

    fn cfg() -> PortConfig {
        PortConfig::fifo(1_000_000, Box::new(DropTail::new()))
    }

    #[test]
    fn star_shape() {
        let s = star(
            1,
            8,
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        assert_eq!(s.hosts.len(), 8);
        assert_eq!(s.net.node_count(), 9);
        // Every host reachable from the switch on a distinct port.
        for &h in &s.hosts {
            assert!(s.net.port_towards(s.switch, h).is_some());
        }
    }

    #[test]
    fn leaf_spine_shape() {
        let ls = leaf_spine(
            1,
            8,
            8,
            16,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        assert_eq!(ls.hosts.len(), 128);
        assert_eq!(ls.leaves.len(), 8);
        assert_eq!(ls.spines.len(), 8);
        assert_eq!(ls.net.node_count(), 128 + 16);
        assert_eq!(ls.leaf_of(0), ls.leaves[0]);
        assert_eq!(ls.leaf_of(127), ls.leaves[7]);
        // Each leaf has 16 host ports + 8 spine ports.
        for &leaf in &ls.leaves {
            for &spine in &ls.spines {
                assert!(ls.net.port_towards(leaf, spine).is_some());
            }
        }
    }

    #[test]
    fn fat_tree_shape() {
        let ft = fat_tree(
            1,
            4,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        assert_eq!(ft.hosts.len(), 16);
        assert_eq!(ft.edges.len(), 8);
        assert_eq!(ft.aggs.len(), 8);
        assert_eq!(ft.cores.len(), 4);
        assert_eq!(ft.net.node_count(), 16 + 8 + 8 + 4);
        assert_eq!(ft.hosts_per_pod(), 4);
        assert_eq!(ft.pod_of(0), 0);
        assert_eq!(ft.pod_of(15), 3);
        // Host 0 hangs off edge 0; edges see every agg in their pod.
        assert!(ft.net.port_towards(ft.hosts[0], ft.edges[0]).is_some());
        assert!(ft.net.port_towards(ft.edges[0], ft.aggs[0]).is_some());
        assert!(ft.net.port_towards(ft.edges[0], ft.aggs[1]).is_some());
        // Each agg uplinks to its own core group only.
        assert!(ft.net.port_towards(ft.aggs[0], ft.cores[0]).is_some());
        assert!(ft.net.port_towards(ft.aggs[0], ft.cores[1]).is_some());
        assert!(ft.net.port_towards(ft.aggs[0], ft.cores[2]).is_none());
        // Core 0 peers with agg 0 of every pod.
        for p in 0..4 {
            assert!(ft.net.port_towards(ft.cores[0], ft.aggs[p * 2]).is_some());
            assert!(ft
                .net
                .port_towards(ft.cores[0], ft.aggs[p * 2 + 1])
                .is_none());
        }
    }

    #[test]
    fn fat_tree_k8_scale() {
        let ft = fat_tree(
            1,
            8,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        assert_eq!(ft.hosts.len(), 128);
        assert_eq!(ft.cores.len(), 16);
        assert_eq!(ft.net.node_count(), 128 + 32 + 32 + 16);
        let plan = ft.shard_plan(8);
        assert_eq!(plan.shard_count(), 8);
    }

    #[test]
    fn shard_plans_keep_pods_together() {
        let ft = fat_tree(
            1,
            4,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        let plan = ft.shard_plan(2);
        for i in 0..ft.hosts.len() {
            let pod = ft.pod_of(i);
            assert_eq!(
                plan.owner_of(ft.hosts[i]),
                plan.owner_of(ft.edges[pod * 2]),
                "host {i} must share a shard with its pod's switches"
            );
        }

        let ls = leaf_spine(
            1,
            2,
            4,
            4,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        let plan = ls.shard_plan(2);
        for i in 0..ls.hosts.len() {
            assert_eq!(
                plan.owner_of(ls.hosts[i]),
                plan.owner_of(ls.leaf_of(i)),
                "host {i} must share a shard with its leaf"
            );
        }
    }

    #[test]
    #[should_panic(expected = "1..=k shards")]
    fn fat_tree_plan_rejects_too_many_shards() {
        let ft = fat_tree(
            1,
            4,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
        let _ = ft.shard_plan(5);
    }

    #[test]
    fn dumbbell_shape() {
        let d = dumbbell(
            1,
            Rate::from_gbps(40),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            Box::new(NullAgent),
            Box::new(NullAgent),
            cfg,
            cfg(),
        );
        assert_eq!(d.net.node_count(), 4);
        assert_eq!(d.net.port_towards(d.s1, d.s2), Some(d.bottleneck_port));
    }

    #[test]
    #[should_panic(expected = "at least two hosts")]
    fn star_needs_two_hosts() {
        let _ = star(
            1,
            1,
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| Box::new(NullAgent),
            cfg,
            cfg,
        );
    }
}
