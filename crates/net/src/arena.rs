//! Pooled per-switch ring storage for egress FIFO queues.
//!
//! Every switch port's FIFO used to own a private heap `VecDeque`, so a
//! 16-port leaf touched 16 scattered allocations on its forwarding hot
//! path. A [`RingArena`] packs all of a node's FIFO slots into one
//! contiguous `Vec` owned by the [`crate::node::Node`]; each pooled port
//! holds only a `(offset, capacity)` window plus cursor state
//! ([`PooledRing`]), so a switch's queues share cache lines and the arena
//! moves with the node across shards (plain owned data: `Send` for free,
//! no `unsafe`).
//!
//! Capacity gets a thin slack margin over the MTU-packet estimate, so a
//! queue held at byte capacity by tail drop still fits the window (one
//! slot short would route every enqueue through the overflow exactly when
//! the port is hottest); workloads of tiny packets can exceed that slot
//! count while staying under the byte capacity, so each ring keeps an
//! overflow `VecDeque` that is only touched when the window is full —
//! FIFO order is preserved by routing *every* enqueue to the overflow
//! while it is non-empty and refilling the ring from its front after
//! dequeues.
//!
//! Slots are plain `(bytes, Packet)` pairs — exactly one cache line each
//! (const-asserted) — not `Option`s: occupancy is fully determined by the
//! ring's `head`/`len` cursors, and the `Option` discriminant would push
//! the slot to 72 bytes, straddling two lines and nearly doubling the
//! memory traffic of a saturated port. Drained slots simply keep their
//! stale payload until overwritten.

use crate::ids::{FlowId, NodeId};
use crate::packet::Packet;
use std::collections::VecDeque;

const _: () = assert!(
    std::mem::size_of::<(u64, Packet)>() == 64,
    "a pooled ring slot must be exactly one cache line"
);

/// One node's pooled ring storage: the concatenated slot windows of all
/// its pooled ports.
pub struct RingArena {
    pub(crate) slots: Vec<(u64, Packet)>,
    /// Live entries across every ring's overflow deque. The ring windows
    /// themselves are fixed-size (bounded by construction); the overflow
    /// deques are the only unbounded growth on the switch data path, so
    /// the memory guard meters exactly them.
    overflow_live: u64,
    /// Admission ceiling on `overflow_live`; `u64::MAX` disarms the
    /// guard. Crossing it latches `overflow_breached` without perturbing
    /// queueing, so an armed-but-untriggered ceiling is observation-only.
    overflow_ceiling: u64,
    /// Sticky flag: the overflow ceiling was crossed at some spill.
    overflow_breached: bool,
}

impl Default for RingArena {
    fn default() -> Self {
        RingArena {
            slots: Vec::new(),
            overflow_live: 0,
            overflow_ceiling: u64::MAX,
            overflow_breached: false,
        }
    }
}

impl RingArena {
    /// An empty arena (hosts and standalone bench ports never grow one).
    pub fn new() -> Self {
        RingArena::default()
    }

    /// Append a `cap`-slot window and return its offset. Windows are only
    /// ever appended, so previously handed-out offsets stay valid.
    pub(crate) fn alloc(&mut self, cap: usize) -> usize {
        let off = self.slots.len();
        // Filler payload: never read (head/len track occupancy), just
        // keeps the storage initialized without `unsafe`.
        self.slots.resize(
            off + cap,
            (0, Packet::data(FlowId(0), NodeId(0), NodeId(0), 0, 0)),
        );
        off
    }

    /// Arm (or, with `None`, disarm) the ceiling on live overflow-deque
    /// entries across this node's rings.
    pub fn set_overflow_ceiling(&mut self, ceiling: Option<u64>) {
        self.overflow_ceiling = ceiling.unwrap_or(u64::MAX);
        self.overflow_breached = false;
    }

    /// The latched `(live, ceiling)` pair once a spill has crossed the
    /// ceiling, if any. `live` reports the current count — the fail-fast
    /// contract stops the run within a few events of the breach.
    pub fn overflow_breach(&self) -> Option<(u64, u64)> {
        if self.overflow_breached {
            Some((self.overflow_live, self.overflow_ceiling))
        } else {
            None
        }
    }
}

/// A single-class FIFO whose slots live in a shared [`RingArena`] window
/// instead of a private allocation. Byte/packet backlog is tracked here so
/// backlog queries never touch the arena.
pub struct PooledRing {
    /// First slot of this ring's window in the arena.
    off: usize,
    /// Window size in slots.
    cap: usize,
    /// In-window index of the oldest occupied slot.
    head: usize,
    /// Occupied slots.
    len: usize,
    /// Queued wire bytes (ring + overflow).
    bytes: u64,
    /// Spill queue for slot counts beyond `cap`; non-empty only while the
    /// ring window is full.
    overflow: VecDeque<(u64, Packet)>,
}

impl PooledRing {
    /// A ring over `arena[off .. off + cap]`.
    pub(crate) fn new(off: usize, cap: usize) -> Self {
        debug_assert!(cap > 0, "pooled ring needs at least one slot");
        PooledRing {
            off,
            cap,
            head: 0,
            len: 0,
            bytes: 0,
            overflow: VecDeque::new(),
        }
    }

    /// Arena index of in-window position `i` (`i < 2 * cap` always, since
    /// `head < cap` and `len <= cap`): a conditional subtract, which beats
    /// both `%` (a divide) and a power-of-two mask (which would force
    /// oversized windows — footprint is what pooling is about).
    #[inline]
    fn slot_at(&self, i: usize) -> usize {
        self.off + if i >= self.cap { i - self.cap } else { i }
    }

    #[inline]
    pub(crate) fn enqueue(&mut self, arena: &mut RingArena, bytes: u64, item: Packet) {
        self.bytes += bytes;
        // Invariant: a non-empty overflow implies a full window (enqueue
        // spills only at `len == cap`; dequeue refills until the window is
        // full or the overflow is drained). So `len < cap` alone proves
        // the overflow is empty — the fast path never touches the deque.
        if self.len < self.cap {
            debug_assert!(
                self.overflow.is_empty(),
                "overflow behind a non-full window"
            );
            arena.slots[self.slot_at(self.head + self.len)] = (bytes, item);
            self.len += 1;
        } else {
            // Window full: everything goes to the overflow so arrival
            // order survives.
            self.overflow.push_back((bytes, item));
            arena.overflow_live += 1;
            if arena.overflow_live > arena.overflow_ceiling {
                arena.overflow_breached = true;
            }
        }
    }

    #[inline]
    pub(crate) fn dequeue(&mut self, arena: &mut RingArena) -> Option<(u64, Packet)> {
        if self.len == 0 {
            debug_assert!(self.overflow.is_empty(), "overflow without a full ring");
            return None;
        }
        let (bytes, item) = arena.slots[self.off + self.head].clone();
        self.head = if self.head + 1 == self.cap {
            0
        } else {
            self.head + 1
        };
        self.len -= 1;
        self.bytes -= bytes;
        // Refill from the spill queue so the ring window always holds the
        // oldest packets (the FIFO prefix). The overflow can only be
        // non-empty when the window *was* full (see the enqueue
        // invariant), so a register test on `len` screens out the common
        // case before the deque is ever touched.
        if self.len + 1 == self.cap && !self.overflow.is_empty() {
            while self.len < self.cap {
                let Some((b, p)) = self.overflow.pop_front() else {
                    break;
                };
                arena.overflow_live -= 1;
                arena.slots[self.slot_at(self.head + self.len)] = (b, p);
                self.len += 1;
            }
        }
        Some((bytes, item))
    }

    #[inline]
    pub(crate) fn backlog_bytes(&self) -> u64 {
        self.bytes
    }

    #[inline]
    pub(crate) fn backlog_pkts(&self) -> u64 {
        (self.len + self.overflow.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, NodeId};

    fn pkt(seq: u64) -> Packet {
        Packet::data(FlowId(1), NodeId(0), NodeId(1), seq, 1460)
    }

    #[test]
    fn preserves_fifo_order() {
        let mut arena = RingArena::new();
        let off = arena.alloc(4);
        let mut r = PooledRing::new(off, 4);
        for i in 0..4u64 {
            r.enqueue(&mut arena, 100 + i, pkt(i));
        }
        for i in 0..4u64 {
            let (b, p) = r.dequeue(&mut arena).unwrap();
            assert_eq!((b, p.seq()), (100 + i, i));
        }
        assert!(r.dequeue(&mut arena).is_none());
        assert_eq!(r.backlog_bytes(), 0);
    }

    #[test]
    fn overflow_keeps_fifo_order() {
        // Window of 2, 6 packets: 4 spill to the overflow. Interleave
        // dequeues so the refill path runs with a wrapped head.
        let mut arena = RingArena::new();
        let off = arena.alloc(2);
        let mut r = PooledRing::new(off, 2);
        for i in 0..6u64 {
            r.enqueue(&mut arena, 100, pkt(i));
        }
        assert_eq!(r.backlog_pkts(), 6);
        assert_eq!(r.backlog_bytes(), 600);
        let mut out = Vec::new();
        for _ in 0..3 {
            out.push(r.dequeue(&mut arena).unwrap().1.seq());
        }
        for i in 6..8u64 {
            r.enqueue(&mut arena, 100, pkt(i));
        }
        while let Some((_, p)) = r.dequeue(&mut arena) {
            out.push(p.seq());
        }
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(r.backlog_pkts(), 0);
    }

    #[test]
    fn two_rings_share_one_arena_without_interference() {
        let mut arena = RingArena::new();
        let off_a = arena.alloc(4);
        let off_b = arena.alloc(4);
        let mut a = PooledRing::new(off_a, 4);
        let mut b = PooledRing::new(off_b, 4);
        for i in 0..3u64 {
            a.enqueue(&mut arena, 10, pkt(i));
            b.enqueue(&mut arena, 20, pkt(100 + i));
        }
        assert_eq!(a.backlog_bytes(), 30);
        assert_eq!(b.backlog_bytes(), 60);
        for i in 0..3u64 {
            assert_eq!(a.dequeue(&mut arena).unwrap().1.seq(), i);
            assert_eq!(b.dequeue(&mut arena).unwrap().1.seq(), 100 + i);
        }
        assert_eq!(a.backlog_pkts(), 0);
        assert_eq!(b.backlog_pkts(), 0);
        assert_eq!(a.backlog_bytes(), 0);
        assert_eq!(b.backlog_bytes(), 0);
    }

    #[test]
    fn overflow_ceiling_latches_breach_without_perturbing_fifo() {
        let mut arena = RingArena::new();
        let off = arena.alloc(2);
        let mut r = PooledRing::new(off, 2);
        arena.set_overflow_ceiling(Some(1));
        for i in 0..4u64 {
            r.enqueue(&mut arena, 100, pkt(i));
        }
        // 2 spilled with a ceiling of 1: breached, FIFO order intact.
        assert!(arena.overflow_breach().is_some());
        let mut out = Vec::new();
        while let Some((_, p)) = r.dequeue(&mut arena) {
            out.push(p.seq());
        }
        assert_eq!(out, (0..4).collect::<Vec<_>>());
        // Disarming resets the latch; re-spilling under MAX never trips.
        arena.set_overflow_ceiling(None);
        for i in 0..4u64 {
            r.enqueue(&mut arena, 100, pkt(i));
        }
        assert!(arena.overflow_breach().is_none());
    }
}
