//! Conservative parallel execution: partition a [`Network`] into shards,
//! run them on worker threads, and keep replay byte-identical to the
//! serial engine.
//!
//! # Model
//!
//! A [`ShardPlan`] assigns every node to one shard. Each shard is a full
//! `Network` engine — its own event queue, timer wheel, and forked
//! telemetry subscriber — whose `nodes` vector keeps *placeholders* in the
//! slots it does not own, so node indices stay global and the hot paths
//! need no translation. A packet whose next hop lives on another shard is
//! buffered in the sender's outbox and delivered through a mailbox at the
//! next window barrier.
//!
//! # Conservative lookahead
//!
//! The engine uses classic conservative PDES windows: with `L` the minimum
//! propagation delay over all links that cross a shard boundary, every
//! cross-shard arrival sent from a window starting at `W` lands at
//! `≥ W + L`. All shards therefore process their local events with
//! `time < min(W + L, epoch end)` in parallel, exchange outboxes at a
//! barrier, agree on the next global minimum event time, and jump there
//! (idle stretches cost one barrier round, not simulated time).
//!
//! # Determinism
//!
//! Event order inside each shard is the canonical `(time, tag)` order of
//! the serial engine (see the `network` module docs: tags are derived from
//! the *pushing node*, not from a global counter, so they are identical
//! under any partitioning). Mailbox append order may race; delivery order
//! does not depend on it because the receiving queue re-sorts by
//! `(time, tag)`. Fault-plan entries bound each epoch: at a fault's
//! timestamp the worker threads are joined, stragglers are drained in
//! global key order, the fault is applied across shards (including a
//! global ECMP route rebuild), and the next epoch starts. The result —
//! flow records, port statistics, telemetry aggregates, monitor samples —
//! is byte-identical to a serial run of the same seed; `CONCURRENCY.md`
//! carries the full argument and `tests/shard_equivalence.rs` in
//! `ecnsharp-experiments` pins it in CI.

use crate::ids::NodeId;
use crate::network::{route_tables, Event, Network, OutMsg};
use crate::node::Node;
use ecnsharp_sim::supervise::{ProgressGuard, ShardDiag, SimError, Supervision};
use ecnsharp_sim::SimTime;
use ecnsharp_telemetry::ShardSubscriber;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::fault::FaultAction;

/// A node-to-shard assignment for [`Network::run_sharded_until_idle`].
///
/// Construct one with [`ShardPlan::new`] from an `owner` vector (`owner[i]`
/// = shard of node `i`), or use the topology helpers
/// ([`crate::topology::Star::shard_plan`],
/// [`crate::topology::LeafSpine::shard_plan`],
/// [`crate::topology::FatTree::shard_plan`]) that cut along natural fabric
/// boundaries.
///
/// ```
/// use ecnsharp_net::ShardPlan;
///
/// // Nodes 0 and 2 on shard 0, nodes 1 and 3 on shard 1.
/// let plan = ShardPlan::new(vec![0, 1, 0, 1]);
/// assert_eq!(plan.shard_count(), 2);
/// assert_eq!(plan.owner_of(ecnsharp_net::NodeId(3)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShardPlan {
    owner: Arc<Vec<u32>>,
    shards: u32,
}

impl ShardPlan {
    /// Validate and wrap an owner map. Shard ids must form a contiguous
    /// `0..=max` range with every shard owning at least one node.
    ///
    /// # Panics
    ///
    /// On an empty map or a shard id with no nodes.
    pub fn new(owner: Vec<u32>) -> Self {
        assert!(!owner.is_empty(), "a shard plan needs at least one node");
        let shards = owner.iter().copied().max().unwrap() + 1;
        let mut population = vec![0u64; shards as usize];
        for &s in &owner {
            population[s as usize] += 1;
        }
        for (s, &n) in population.iter().enumerate() {
            assert!(n > 0, "shard {s} owns no nodes (ids must be contiguous)");
        }
        ShardPlan {
            owner: Arc::new(owner),
            shards,
        }
    }

    /// Number of shards (= worker threads).
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning `node`.
    pub fn owner_of(&self, node: NodeId) -> u32 {
        self.owner[node.0]
    }

    /// The full owner map, one entry per node.
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }
}

impl<S: ShardSubscriber> Network<S> {
    /// Run the network to completion on `plan.shard_count()` worker
    /// threads, producing **byte-identical results to
    /// [`Network::run_until_idle`]** for the same seed: flow records, port
    /// statistics, queue-monitor samples, and merged telemetry aggregates
    /// all match the serial engine exactly (`steps()` too). Returns the
    /// final simulation time.
    ///
    /// Must be called on a freshly built network (`steps() == 0`):
    /// topology, routes, fault plans, scheduled flows and monitors are
    /// installed first, then the run is sharded once. Packet tracing
    /// ([`Network::enable_trace`]) is serial-only.
    ///
    /// The subscriber must implement
    /// [`ShardSubscriber`] — the
    /// order-insensitive fork/merge contract; order-sensitive sinks like
    /// `JsonlWriter` are rejected at compile time.
    ///
    /// # Panics
    ///
    /// If the network already ran (`steps() > 0`), if `plan` does not
    /// cover exactly this network's nodes, if a cross-shard link has zero
    /// propagation delay (no conservative lookahead), or if packet tracing
    /// is enabled.
    ///
    /// ```
    /// use ecnsharp_net::{topology, FlowCmd, FlowId, Network, NullAgent, PortConfig, ShardPlan};
    /// use ecnsharp_net::{Agent, Ctx, Packet};
    /// use ecnsharp_sim::{Duration, Rate, SimTime};
    /// use ecnsharp_aqm::DropTail;
    ///
    /// /// Sends its whole flow as one packet; completes on the echoed ACK.
    /// struct OneShot;
    /// impl Agent for OneShot {
    ///     fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
    ///         if pkt.flags().ack {
    ///             ctx.flow_done(pkt.flow, 0);
    ///         } else {
    ///             ctx.send(Packet::ack(pkt.flow, pkt.dst, pkt.src, pkt.seq_end()));
    ///         }
    ///     }
    ///     fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
    ///     fn on_flow_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: FlowCmd) {
    ///         ctx.send(Packet::data(cmd.flow, cmd.src, cmd.dst, 0, cmd.size));
    ///     }
    /// }
    ///
    /// let cfg = || PortConfig::fifo(1 << 20, Box::new(DropTail::new()));
    /// let star = topology::star(
    ///     7, 4, Rate::from_gbps(10), Duration::from_micros(1),
    ///     |_| Box::new(OneShot), cfg, cfg,
    /// );
    /// let mut net = star.net;
    /// net.schedule_flow(SimTime::ZERO, FlowCmd {
    ///     flow: FlowId(1), src: star.hosts[0], dst: star.hosts[3],
    ///     size: 4000, class: 0, extra_delay: Duration::ZERO,
    /// });
    ///
    /// // Hosts 0/1 on shard 0; hosts 2/3 and the switch on shard 1.
    /// let plan = ShardPlan::new(vec![0, 0, 1, 1, 1]);
    /// net.run_sharded_until_idle(&plan);
    /// assert_eq!(net.records().len(), 1);
    /// assert_eq!(net.unfinished_flows(), 0);
    /// ```
    pub fn run_sharded_until_idle(&mut self, plan: &ShardPlan) -> SimTime {
        match self.try_run_sharded_until_idle(plan) {
            Ok(t) => t,
            // A tripped guard through the infallible entry point is fatal
            // by contract; fallible callers use try_run_sharded_until_idle.
            Err(e) => panic!("run_sharded_until_idle: {e}"),
        }
    }

    /// Fallible sharded run under this network's [`Supervision`]: like
    /// [`Network::run_sharded_until_idle`], but a tripped guard —
    /// livelock inside a window, a stalled barrier exchange, a memory
    /// ceiling, or a panicking worker — returns its [`SimError`] instead
    /// of hanging or unwinding. With supervision disarmed the run cannot
    /// fail and is the exact unsupervised execution.
    ///
    /// On `Err` the network is **poisoned**: nodes have been moved into
    /// shard engines that were abandoned mid-window, so the value must be
    /// dropped (sweep supervisors build a fresh network per attempt).
    pub fn try_run_sharded_until_idle(&mut self, plan: &ShardPlan) -> Result<SimTime, SimError> {
        assert_eq!(
            plan.owner.len(),
            self.nodes.len(),
            "shard plan covers {} nodes but the network has {}",
            plan.owner.len(),
            self.nodes.len()
        );
        assert_eq!(
            self.steps, 0,
            "sharded runs must start from a fresh network (steps() == 0)"
        );
        #[cfg(feature = "packet-trace")]
        assert!(
            self.tracer.is_none(),
            "packet tracing is serial-only; drop enable_trace or run serially"
        );
        if plan.shard_count() == 1 {
            return self.try_run_until_idle();
        }
        let sup = self.supervision();
        let owner = plan.owner.clone();
        let n_shards = plan.shard_count();
        let n_nodes = self.nodes.len();

        // ── split ─────────────────────────────────────────────────────
        debug_assert!(self.pending.is_empty() && self.records.is_empty());
        let mut shards: Vec<Network<S>> = (0..n_shards)
            .map(|i| {
                let sub = self.subscriber().fork_shard(i);
                self.shard_shell(i as u32, owner.clone(), sub)
            })
            .collect();
        // Owned nodes move to their shard; every other slot gets an
        // inert placeholder so indices stay global.
        for (i, node) in std::mem::take(&mut self.nodes).into_iter().enumerate() {
            let own = owner[i] as usize;
            let mut slot = Some(node);
            for (s, shard) in shards.iter_mut().enumerate() {
                shard.nodes.push(if s == own {
                    slot.take().unwrap()
                } else {
                    Node::switch()
                });
            }
        }
        // Distribute the pre-run event backlog by each event's owner,
        // preserving the canonical (time, tag) keys. `drain_entries`
        // rejects armed timers, but none can exist at steps() == 0. The
        // re-push is split bookkeeping, not simulation work: its count is
        // backed out of the merged perf below so `events_pushed` matches
        // the serial run.
        let mut split_pushes = 0u64;
        for (at, tag, ev) in self.events.drain_entries() {
            let s = match &ev {
                Event::Arrive { node, .. }
                | Event::TxDone { node, .. }
                | Event::Timer { node, .. }
                | Event::NicSend { node, .. }
                | Event::LivelockDrill { node } => owner[node.0],
                Event::FlowStart(cmd) => owner[cmd.src.0],
                Event::Sample { id } => owner[self.monitors[*id].node.0],
            };
            shards[s as usize].events.schedule_tagged(at, tag, ev);
            split_pushes += 1;
        }
        // Arm each shard's guards after its nodes and backlog are in
        // place (ceilings attach to the queue and the owned arenas).
        if !sup.is_disarmed() {
            for shard in &mut shards {
                shard.set_supervision(sup);
            }
        }
        // The global setup-tag counter continues across fault boundaries
        // so fault-triggered pushes get the same tags as a serial run.
        let mut setup_k = self.setup_k;
        let mut fault_steps = 0u64;
        // Serial runs advance the clock through every fault application,
        // even past the last packet event; mirror that for `now()` parity.
        let mut last_fault_at = SimTime::ZERO;

        // ── epochs: parallel windows bounded by fault times ───────────
        loop {
            let fault = self.fault_queue.get(self.next_fault).copied();
            let end = fault.map_or(u64::MAX, |(at, _, _)| at.as_nanos());
            let la = lookahead_nanos(&shards, &owner);
            run_windows(&mut shards, la, end, &sup)?;
            let Some((at, ftag, _)) = fault else { break };
            // Stragglers strictly before the fault's global key (usually
            // none: the windows stop at `end` and fault tags sort below
            // every same-time runtime tag).
            drain_serial(&mut shards, (at, ftag));
            // Apply every fault at this instant, in tag order, exactly as
            // the serial engine interleaves them.
            while let Some(&(fat, _, action)) = self.fault_queue.get(self.next_fault) {
                if fat != at {
                    break;
                }
                self.next_fault += 1;
                fault_steps += 1;
                last_fault_at = fat;
                apply_fault_sharded(&mut shards, &owner, fat, action, &mut setup_k);
            }
        }

        // ── merge ─────────────────────────────────────────────────────
        self.nodes = (0..n_nodes).map(|_| Node::switch()).collect();
        let mut max_now = self.now();
        let mut keyed_records = Vec::new();
        for (s, mut shard) in shards.into_iter().enumerate() {
            max_now = max_now.max(shard.now());
            add_queue_perf(&mut self.carry, &shard.events.perf());
            add_queue_perf(&mut self.carry, &shard.carry);
            self.steps += shard.steps;
            self.flows_failed += shard.flows_failed;
            self.no_route_drops += shard.no_route_drops;
            for i in 0..n_nodes {
                if owner[i] == s as u32 {
                    self.nodes[i] = std::mem::replace(&mut shard.nodes[i], Node::switch());
                    self.tag_k[i] = shard.tag_k[i];
                }
            }
            for id in 0..self.monitors.len() {
                if owner[self.monitors[id].node.0] == s as u32 {
                    std::mem::swap(&mut self.monitors[id], &mut shard.monitors[id]);
                }
            }
            self.pending.append(&mut shard.pending);
            keyed_records.extend(
                std::mem::take(&mut shard.record_keys)
                    .into_iter()
                    .zip(std::mem::take(&mut shard.records)),
            );
            // Ascending shard order: the merge contract of ShardSubscriber.
            let sub = shard.into_subscriber();
            self.subscriber_mut().merge_shard(sub);
        }
        // Back out the backlog-redistribution pushes: counted once on the
        // serial queue at schedule time and once more on the shard queues
        // at split time, so the merged total would exceed a serial run's.
        self.carry.pushed -= split_pushes;
        // Records in exact serial order: the provenance key (finish, tag
        // of the completing event, sub-index) is the serial processing
        // order by construction.
        keyed_records.sort_unstable_by_key(|r| r.0);
        for (key, record) in keyed_records {
            self.record_keys.push(key);
            self.records.push(record);
        }
        self.steps += fault_steps;
        self.setup_k = setup_k;
        self.events.advance_now(max_now.max(last_fault_at));
        Ok(self.now())
    }
}

/// Minimum propagation delay (ns) over all links crossing a shard
/// boundary — the conservative lookahead. `None` when no link crosses
/// (fully independent shards). Panics on a zero-delay cross link: it
/// would force zero-width windows.
fn lookahead_nanos<S: ShardSubscriber>(shards: &[Network<S>], owner: &[u32]) -> Option<u64> {
    let mut min: Option<u64> = None;
    for (i, &o) in owner.iter().enumerate() {
        for p in &shards[o as usize].nodes[i].ports {
            if owner[p.peer.0] != o {
                let d = p.delay.as_nanos();
                assert!(
                    d > 0,
                    "cross-shard link {}–{} has zero propagation delay: \
                     no conservative lookahead (keep zero-delay links inside one shard)",
                    i,
                    p.peer.0
                );
                min = Some(min.map_or(d, |m| m.min(d)));
            }
        }
    }
    min
}

/// One epoch's parallel phase: barrier-synchronized conservative windows
/// until every shard's next event is at or past `end` (ns).
///
/// With `sup` disarmed this is the exact unsupervised protocol (and
/// cannot fail). Armed, each worker carries a livelock [`ProgressGuard`]
/// into its window bodies, runs them under `catch_unwind` so a panicking
/// shard becomes [`SimError::WorkerPanic`] instead of deadlocking the
/// others at the barrier, and every worker runs the **barrier-stall
/// detector**: the conservative protocol guarantees the global minimum
/// next-event time `m` strictly increases every healthy round (all local
/// events below the window bound are consumed inside the window; every
/// cross-shard arrival lands at `≥ m + lookahead`), so a repeated `m` is
/// already pathological and a small round budget trips it. All workers
/// compute the same `m` sequence between the same barriers, so they trip
/// the detector — and observe a peer's failure flag — at the *same*
/// aligned point, which is what lets every thread leave the barrier
/// protocol together instead of hanging.
fn run_windows<S: ShardSubscriber>(
    shards: &mut [Network<S>],
    la: Option<u64>,
    end: u64,
    sup: &Supervision,
) -> Result<(), SimError> {
    let n = shards.len();
    let mailboxes: Vec<Mutex<Vec<OutMsg>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let barrier = Barrier::new(n);
    if sup.is_disarmed() {
        std::thread::scope(|scope| {
            for (i, shard) in shards.iter_mut().enumerate() {
                let (mailboxes, slots, barrier) = (&mailboxes, &slots, &barrier);
                scope.spawn(move || {
                    let next = |sh: &mut Network<S>| {
                        sh.events.peek_time().map_or(u64::MAX, |t| t.as_nanos())
                    };
                    slots[i].store(next(shard), Ordering::Release);
                    barrier.wait();
                    loop {
                        // Every thread computes the same minimum from the same
                        // slot values (stable between the publishing barrier
                        // and the next flush barrier), so all make the same
                        // break/window decision — no coordinator needed.
                        let m = slots
                            .iter()
                            .map(|s| s.load(Ordering::Acquire))
                            .min()
                            .unwrap();
                        if m >= end {
                            break;
                        }
                        let hi = match la {
                            Some(l) => end.min(m.saturating_add(l)),
                            None => end,
                        };
                        shard.run_events_before(SimTime::from_nanos(hi));
                        for msg in shard.outbox.drain(..) {
                            mailboxes[msg.shard as usize].lock().unwrap().push(msg);
                        }
                        barrier.wait(); // outboxes flushed
                        for msg in mailboxes[i].lock().unwrap().drain(..) {
                            shard.events.schedule_tagged(
                                msg.at,
                                msg.tag,
                                Event::Arrive {
                                    node: msg.node,
                                    pkt: msg.pkt,
                                },
                            );
                        }
                        slots[i].store(next(shard), Ordering::Release);
                        barrier.wait(); // next-event times published
                    }
                });
            }
        });
        return Ok(());
    }

    // ── supervised protocol ───────────────────────────────────────────
    // The drill freezes window processing so `m` never advances; without
    // a stall budget that would spin forever, so the drill force-arms the
    // detector at its default budget.
    let stall_budget = match (sup.stall_rounds, sup.inject_stall) {
        (Some(b), _) => Some(b),
        (None, true) => Some(ecnsharp_sim::supervise::DEFAULT_STALL_ROUNDS),
        (None, false) => None,
    };
    let failed = AtomicBool::new(false);
    let first_err: Mutex<Option<SimError>> = Mutex::new(None);
    let stall_diags: Mutex<Vec<ShardDiag>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, shard) in shards.iter_mut().enumerate() {
            let (mailboxes, slots, barrier) = (&mailboxes, &slots, &barrier);
            let (failed, first_err, stall_diags) = (&failed, &first_err, &stall_diags);
            scope.spawn(move || {
                let next =
                    |sh: &mut Network<S>| sh.events.peek_time().map_or(u64::MAX, |t| t.as_nanos());
                let mut guard = sup.livelock_budget.map(ProgressGuard::new);
                // Stall detector state: same inputs on every worker, so
                // the counters advance in lockstep across threads.
                let mut last_m = u64::MAX;
                let mut frozen = 0u64;
                slots[i].store(next(shard), Ordering::Release);
                barrier.wait();
                loop {
                    let m = slots
                        .iter()
                        .map(|s| s.load(Ordering::Acquire))
                        .min()
                        .unwrap_or(u64::MAX);
                    if m >= end {
                        break;
                    }
                    if m == last_m {
                        frozen += 1;
                    } else {
                        last_m = m;
                        frozen = 0;
                    }
                    if let Some(b) = stall_budget {
                        if frozen > b {
                            // Deterministic trip: every worker sees the
                            // same frozen count this round, so all record
                            // their diagnostic and break together.
                            let mut diags = match stall_diags.lock() {
                                Ok(g) => g,
                                Err(p) => p.into_inner(),
                            };
                            diags.push(ShardDiag {
                                shard: i as u32,
                                clock_ns: next(shard),
                                pending: shard.events.len() as u64,
                                oldest_key: shard.events.peek_key().map(|(t, k)| (t.as_nanos(), k)),
                            });
                            break;
                        }
                    }
                    let hi = match la {
                        Some(l) => end.min(m.saturating_add(l)),
                        None => end,
                    };
                    // The drill skips processing entirely (freezing `m`);
                    // otherwise run the supervised window body, converting
                    // a panic into a structured error instead of letting
                    // it strand the other workers at the barrier.
                    let res = if sup.inject_stall {
                        Ok(())
                    } else {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            shard.try_run_events_before(SimTime::from_nanos(hi), &mut guard)
                        }))
                        .unwrap_or_else(|p| {
                            Err(SimError::WorkerPanic {
                                msg: panic_payload_message(p.as_ref()),
                            })
                        })
                    };
                    if let Err(e) = res {
                        let mut slot = match first_err.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        slot.get_or_insert(e);
                        failed.store(true, Ordering::Release);
                    }
                    for msg in shard.outbox.drain(..) {
                        let mut mb = match mailboxes[msg.shard as usize].lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        mb.push(msg);
                    }
                    barrier.wait(); // outboxes flushed, failure flags published
                    if failed.load(Ordering::Acquire) {
                        // Aligned exit: every worker is at this same point
                        // (same barrier count), so all leave together and
                        // nobody waits on a barrier that can't fill.
                        break;
                    }
                    let drained: Vec<OutMsg> = {
                        let mut mb = match mailboxes[i].lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        std::mem::take(&mut *mb)
                    };
                    for msg in drained {
                        shard.events.schedule_tagged(
                            msg.at,
                            msg.tag,
                            Event::Arrive {
                                node: msg.node,
                                pkt: msg.pkt,
                            },
                        );
                    }
                    slots[i].store(next(shard), Ordering::Release);
                    barrier.wait(); // next-event times published
                }
            });
        }
    });
    let err = match first_err.into_inner() {
        Ok(e) => e,
        Err(p) => p.into_inner(),
    };
    if let Some(e) = err {
        return Err(e);
    }
    let mut diags = match stall_diags.into_inner() {
        Ok(d) => d,
        Err(p) => p.into_inner(),
    };
    if !diags.is_empty() {
        diags.sort_unstable_by_key(|d| d.shard);
        let budget = stall_budget.unwrap_or(0);
        return Err(SimError::BarrierStall {
            rounds: budget + 1,
            budget,
            shards: diags,
        });
    }
    Ok(())
}

/// Stringify a caught panic payload (the common `&str`/`String` cases).
fn panic_payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Serially process every queued event with key strictly below `bound`,
/// across all shards in global `(time, tag)` order, delivering cross-shard
/// sends immediately.
fn drain_serial<S: ShardSubscriber>(shards: &mut [Network<S>], bound: (SimTime, u64)) {
    loop {
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (i, sh) in shards.iter_mut().enumerate() {
            if let Some(k) = sh.events.peek_key() {
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        match best {
            Some((i, k)) if k < bound => {
                shards[i].step();
                deliver_outbox(shards, i);
            }
            _ => break,
        }
    }
}

/// Move shard `from`'s buffered cross-shard arrivals into their
/// destination queues (used outside the parallel phase, where direct
/// access replaces the mailboxes).
fn deliver_outbox<S: ShardSubscriber>(shards: &mut [Network<S>], from: usize) {
    let msgs = std::mem::take(&mut shards[from].outbox);
    for msg in msgs {
        shards[msg.shard as usize].events.schedule_tagged(
            msg.at,
            msg.tag,
            Event::Arrive {
                node: msg.node,
                pkt: msg.pkt,
            },
        );
    }
}

/// Apply one fault-plan action across shards, mirroring the serial
/// `apply_fault_at` semantics: port state flips on the owning shards, the
/// ECMP rebuild runs on the *global* adjacency, and link-up kicks draw
/// their tags from the threaded global setup counter.
fn apply_fault_sharded<S: ShardSubscriber>(
    shards: &mut [Network<S>],
    owner: &[u32],
    at: SimTime,
    action: FaultAction,
    setup_k: &mut u64,
) {
    match action {
        FaultAction::LinkDown { a, b } => set_link_sharded(shards, owner, at, a, b, false, setup_k),
        FaultAction::LinkUp { a, b } => set_link_sharded(shards, owner, at, a, b, true, setup_k),
        FaultAction::SetLinkRate { a, b, rate } => {
            let (pa, pb) = cross_ports(shards, owner, a, b);
            shards[owner[a.0] as usize].nodes[a.0].ports[pa].rate = rate;
            shards[owner[b.0] as usize].nodes[b.0].ports[pb].rate = rate;
        }
        FaultAction::SetLinkDelay { a, b, delay } => {
            let (pa, pb) = cross_ports(shards, owner, a, b);
            shards[owner[a.0] as usize].nodes[a.0].ports[pa].delay = delay;
            shards[owner[b.0] as usize].nodes[b.0].ports[pb].delay = delay;
        }
    }
}

/// Port indices of the `a`↔`b` link, each looked up on its owner's shard.
fn cross_ports<S: ShardSubscriber>(
    shards: &[Network<S>],
    owner: &[u32],
    a: NodeId,
    b: NodeId,
) -> (usize, usize) {
    let pa = shards[owner[a.0] as usize]
        .port_towards(a, b)
        .unwrap_or_else(|| panic!("no link between {a} and {b}"));
    let pb = shards[owner[b.0] as usize]
        .port_towards(b, a)
        .unwrap_or_else(|| panic!("no link between {b} and {a}"));
    (pa, pb)
}

/// Cross-shard [`Network::set_link_up_at`]: same transition semantics,
/// with the route rebuild computed from the global adjacency and written
/// back to each node's owning shard.
fn set_link_sharded<S: ShardSubscriber>(
    shards: &mut [Network<S>],
    owner: &[u32],
    at: SimTime,
    a: NodeId,
    b: NodeId,
    up: bool,
    setup_k: &mut u64,
) {
    let (sa, sb) = (owner[a.0] as usize, owner[b.0] as usize);
    let (pa, pb) = cross_ports(shards, owner, a, b);
    let changed = shards[sa].nodes[a.0].ports[pa].link_up != up
        || shards[sb].nodes[b.0].ports[pb].link_up != up;
    if !changed {
        return;
    }
    shards[sa].nodes[a.0].ports[pa].link_up = up;
    shards[sb].nodes[b.0].ports[pb].link_up = up;
    shards[sa].emit_link_state(at, a, b, up);
    if shards[0].routes_built {
        let n = owner.len();
        let adj: Vec<Vec<(usize, NodeId)>> = (0..n)
            .map(|i| {
                shards[owner[i] as usize].nodes[i]
                    .ports
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.link_up)
                    .map(|(pi, p)| (pi, p.peer))
                    .collect()
            })
            .collect();
        let hosts: Vec<bool> = (0..n)
            .map(|i| shards[owner[i] as usize].nodes[i].is_host())
            .collect();
        let tables = route_tables(&adj, &hosts);
        for (i, table) in tables.into_iter().enumerate() {
            let sh = &mut shards[owner[i] as usize];
            sh.nodes[i].routes = table;
            sh.nodes[i].rebuild_flat_routes();
        }
    }
    if up {
        // Serial order: kick a's port, then b's, threading the global
        // setup counter through each owning shard so the kicked events'
        // tags match a serial run tag-for-tag.
        for (s, node, port) in [(sa, a, pa), (sb, b, pb)] {
            let sh = &mut shards[s];
            sh.setup_k = *setup_k;
            sh.kick(at, node, port);
            *setup_k = sh.setup_k;
            deliver_outbox(shards, s);
        }
    }
}

/// Accumulate `q` into `carry`, field by field.
fn add_queue_perf(carry: &mut ecnsharp_sim::queue::QueuePerf, q: &ecnsharp_sim::queue::QueuePerf) {
    carry.pushed += q.pushed;
    carry.popped += q.popped;
    carry.peak_pending += q.peak_pending;
    carry.timers_armed += q.timers_armed;
    carry.timers_cancelled += q.timers_cancelled;
    carry.timers_fired += q.timers_fired;
    carry.timers_stale_suppressed += q.timers_stale_suppressed;
    carry.heap_spills += q.heap_spills;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, Ctx, FlowCmd};
    use crate::fault::FaultPlan;
    use crate::packet::Packet;
    use crate::port::PortConfig;
    use crate::topology;
    use ecnsharp_aqm::DropTail;
    use ecnsharp_sim::{Duration, Rate};

    /// Sends its flow as back-to-back MTU packets immediately, counts the
    /// echoed per-packet ACKs, and completes on the last one. Stateless
    /// congestion control keeps the test about the engine, not transport.
    struct Blaster {
        want: std::collections::BTreeMap<u64, u64>,
    }

    impl Agent for Blaster {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            if pkt.flags().ack {
                let left = self.want.get_mut(&pkt.flow.0).expect("known flow");
                *left -= 1;
                if *left == 0 {
                    ctx.flow_done(pkt.flow, 0);
                }
            } else {
                ctx.send(Packet::ack(pkt.flow, pkt.dst, pkt.src, pkt.seq_end()));
            }
        }
        fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
        fn on_flow_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: FlowCmd) {
            let mut seq = 0;
            let mut pkts = 0;
            while seq < cmd.size {
                let bytes = 1460.min(cmd.size - seq);
                ctx.send(Packet::data(cmd.flow, cmd.src, cmd.dst, seq, bytes));
                seq += bytes;
                pkts += 1;
            }
            self.want.insert(cmd.flow.0, pkts);
        }
    }

    fn cfg() -> PortConfig {
        PortConfig::fifo(60_000, Box::new(DropTail::new()))
    }

    /// 2 spines × 2 leaves × 4 hosts, all-to-all short flows plus an
    /// optional fault plan. Returns a fingerprint of everything that must
    /// be shard-invariant.
    fn run(shards: Option<&ShardPlan>, faults: bool) -> String {
        let ls = topology::leaf_spine(
            42,
            2,
            2,
            4,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| {
                Box::new(Blaster {
                    want: Default::default(),
                })
            },
            cfg,
            cfg,
        );
        let mut net = ls.net;
        if faults {
            net.install_fault_plan(
                FaultPlan::new()
                    .flap(
                        ls.leaves[0],
                        ls.spines[0],
                        SimTime::from_micros(3),
                        Duration::from_micros(15),
                        Duration::from_micros(10),
                        SimTime::from_micros(200),
                    )
                    .at(
                        SimTime::from_micros(40),
                        crate::fault::FaultAction::SetLinkRate {
                            a: ls.leaves[1],
                            b: ls.spines[1],
                            rate: Rate::from_gbps(1),
                        },
                    ),
            );
        }
        let n = ls.hosts.len() as u64;
        for f in 0..3 * n {
            let (src, dst) = ((f % n) as usize, ((f * 5 + 3) % n) as usize);
            if src == dst {
                continue;
            }
            net.schedule_flow(
                SimTime::from_nanos(137 * f),
                FlowCmd {
                    flow: crate::ids::FlowId(f),
                    src: ls.hosts[src],
                    dst: ls.hosts[dst],
                    size: 1460 * (1 + f % 7),
                    class: 0,
                    extra_delay: Duration::ZERO,
                },
            );
        }
        match shards {
            Some(plan) => net.run_sharded_until_idle(plan),
            None => net.run_until_idle(),
        };
        fingerprint(&net)
    }

    /// Everything that must be shard-invariant, as one comparable string.
    fn fingerprint<S: ShardSubscriber>(net: &Network<S>) -> String {
        let mut out = format!("now={:?} steps={} perf={:?}\n", net.now(), net.steps(), {
            // Queue counters are mode-dependent (documented); blank them.
            let mut p = net.perf();
            p.events_pushed = 0;
            p.events_popped = 0;
            p.peak_pending = 0;
            p
        });
        for node in 0..net.node_count() {
            let n = crate::ids::NodeId(node);
            for port in 0..net.nodes[node].ports.len() {
                out.push_str(&format!("{node}.{port} {:?}\n", net.port_stats(n, port)));
            }
        }
        out.push_str(&format!("records={:?}\n", net.records()));
        out
    }

    /// A k=4 fat-tree (16 hosts, 4 pods) with cross-pod flows that
    /// traverse the core; pod-granular shard plans from
    /// [`topology::FatTree::shard_plan`].
    fn run_ft(shards: Option<&ShardPlan>) -> String {
        let ft = topology::fat_tree(
            7,
            4,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| {
                Box::new(Blaster {
                    want: Default::default(),
                })
            },
            cfg,
            cfg,
        );
        let mut net = ft.net;
        let n = ft.hosts.len() as u64;
        for f in 0..2 * n {
            let (src, dst) = ((f % n) as usize, ((f * 7 + 5) % n) as usize);
            if src == dst {
                continue;
            }
            net.schedule_flow(
                SimTime::from_nanos(211 * f),
                FlowCmd {
                    flow: crate::ids::FlowId(f),
                    src: ft.hosts[src],
                    dst: ft.hosts[dst],
                    size: 1460 * (1 + f % 5),
                    class: 0,
                    extra_delay: Duration::ZERO,
                },
            );
        }
        match shards {
            Some(plan) => net.run_sharded_until_idle(plan),
            None => net.run_until_idle(),
        };
        fingerprint(&net)
    }

    #[test]
    fn fat_tree_sharded_matches_serial() {
        // Same seed and shape → same node ids, so a throwaway instance
        // can supply the plans.
        let plan_of = |n_shards| {
            topology::fat_tree(
                7,
                4,
                Rate::from_gbps(10),
                Rate::from_gbps(10),
                Duration::from_micros(1),
                |_| Box::new(crate::agent::NullAgent),
                cfg,
                cfg,
            )
            .shard_plan(n_shards)
        };
        let serial = run_ft(None);
        assert_eq!(serial, run_ft(Some(&plan_of(2))), "2 shards");
        assert_eq!(serial, run_ft(Some(&plan_of(4))), "4 shards");
    }

    /// Hosts follow their leaf; leaves pair with a spine each.
    fn plan_for(n_shards: u32) -> ShardPlan {
        // Node order from `leaf_spine`: 8 hosts, then leaves [8, 9], then
        // spines [10, 11].
        let owner: Vec<u32> = (0..12)
            .map(|i| {
                let pod = match i {
                    0..=3 => 0, // hosts of leaf 0
                    4..=7 => 1, // hosts of leaf 1
                    8 => 0,     // leaf 0
                    9 => 1,     // leaf 1
                    10 => 0,    // spine 0
                    _ => 1,     // spine 1
                };
                pod % n_shards
            })
            .collect();
        ShardPlan::new(owner)
    }

    /// Four shards: each leaf's hosts, then leaves, then spines.
    fn plan_4way() -> ShardPlan {
        ShardPlan::new(vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 3, 3])
    }

    #[test]
    fn sharded_run_matches_serial_exactly() {
        let serial = run(None, false);
        assert_eq!(serial, run(Some(&plan_for(2)), false), "2 shards");
        assert_eq!(serial, run(Some(&plan_4way()), false), "4 shards");
        assert!(serial.contains("records="), "fingerprint sane");
    }

    #[test]
    fn sharded_run_matches_serial_under_faults() {
        let serial = run(None, true);
        assert_eq!(serial, run(Some(&plan_for(2)), true), "2 shards + faults");
        assert_eq!(serial, run(Some(&plan_4way()), true), "4 shards + faults");
    }

    #[test]
    fn single_shard_plan_falls_back_to_serial() {
        let serial = run(None, true);
        assert_eq!(serial, run(Some(&plan_for(1)), true));
    }

    #[test]
    #[should_panic(expected = "owns no nodes")]
    fn plan_rejects_gaps() {
        let _ = ShardPlan::new(vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "zero propagation delay")]
    fn zero_delay_cross_link_is_rejected() {
        let mut net = Network::new(1);
        let a = net.add_host(Box::new(crate::agent::NullAgent));
        let b = net.add_host(Box::new(crate::agent::NullAgent));
        net.connect(a, cfg(), b, cfg(), Rate::from_gbps(10), Duration::ZERO);
        net.compute_routes();
        net.run_sharded_until_idle(&ShardPlan::new(vec![0, 1]));
    }
}
