//! The network: owns every node and link, runs the event loop, and records
//! flow completions.
//!
//! Central-dispatch design: a single `Event` enum is matched in
//! [`Network::step`]; there is no shared mutable state between components,
//! so runs are deterministic and the borrow checker stays happy without
//! `Rc<RefCell>`.
//!
//! # Canonical event tags
//!
//! Events are ordered by `(time, tag)` where the tag is **content-derived**
//! rather than a global push counter: an event pushed while node `g`'s
//! event was being processed gets `tag = (g + 1) << 40 | k`, with `k` that
//! node's private push counter. Pushes outside any node's event (topology
//! setup, scheduled flows, fault application) share the reserved base `0`
//! and one setup counter. Because a node's tag sequence depends only on
//! the events *that node* processes, the global `(time, tag)` order is
//! identical no matter how the network is partitioned into shards — this
//! is the determinism contract the sharded engine (see [`crate::shard`]
//! and `CONCURRENCY.md`) is built on.

use crate::agent::{Action, Agent, Ctx, FlowCmd, FlowOutcome, FlowRecord};
use crate::fault::{FaultAction, FaultPlan};
use crate::ids::{FlowId, NodeId};
use crate::node::{Node, NodeKind};
use crate::port::{EgressPort, PortConfig, PortStats};
use crate::trace::TraceKind;
#[cfg(feature = "packet-trace")]
use crate::trace::Tracer;
use ecnsharp_sim::supervise::{MemBreach, MemComponent, ProgressGuard, SimError, Supervision};
use ecnsharp_sim::{hash_mix, DetMap, Duration, EventQueue, Rate, Rng, SimTime, TimerToken};
#[cfg(feature = "telemetry")]
use ecnsharp_telemetry::{
    AlphaUpdated, CwndUpdated, FlowCompleted, LinkStateChanged, Meta, PacketDropped, RtoFired,
    TransportEvent,
};
use ecnsharp_telemetry::{DropReason, NoopSubscriber, Subscriber};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Bit position splitting a canonical tag into `(pusher + 1, k)`. 24 bits
/// of pusher (16M nodes) over 40 bits of per-node counter (1T pushes per
/// node) — both far beyond any simulated fabric.
pub(crate) const TAG_SHIFT: u32 = 40;

/// `cur_node` sentinel: pushes not attributable to a node's event
/// (topology setup, `schedule_flow`, fault application) draw tags from the
/// shared setup counter under pusher base `0`.
pub(crate) const SETUP_CTX: usize = usize::MAX;

/// Aggregate engine counters of one run, cheap enough to maintain
/// unconditionally and only assembled when asked for — reading them cannot
/// perturb the simulation (asserted by the determinism regression test in
/// `ecnsharp-experiments`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Events scheduled into the queue over the run.
    pub events_pushed: u64,
    /// Events popped (processed) over the run.
    pub events_popped: u64,
    /// Peak number of simultaneously pending events.
    pub peak_pending: u64,
    /// Packets handed to a wire, summed over every port (hop-counted: one
    /// packet crossing three links counts three times).
    pub packets_forwarded: u64,
    /// CE marks applied, summed over every port.
    pub ce_marks: u64,
    /// Packets dropped (tail, AQM, fault), summed over every port.
    pub drops: u64,
    /// Cancellable timer arms (including re-arms) on the engine's wheel.
    pub timers_armed: u64,
    /// Live timers explicitly cancelled before firing.
    pub timers_cancelled: u64,
    /// Timers that reached their deadline and were delivered.
    pub timers_fired: u64,
    /// Live timers displaced by a re-arm — stale events the legacy
    /// epoch-filtering path would have pushed through the queue.
    pub timers_stale_suppressed: u64,
    /// Events scheduled beyond both calendar horizons, falling back to
    /// the event queue's `BinaryHeap` (see `QueuePerf::heap_spills`).
    pub heap_spills: u64,
    /// Flows aborted by their sender (graceful degradation after
    /// `max_rto_retries` consecutive timeouts).
    pub flows_failed: u64,
    /// Packets discarded at a switch because no up link led towards their
    /// destination (counted separately from port `drops`: these packets
    /// never entered an egress queue).
    pub no_route_drops: u64,
    /// Wire drops from the independent per-packet fault injector, summed
    /// over every port (subset of `drops`).
    pub fault_drops: u64,
    /// Wire drops from packet corruption (checksum fail), summed over
    /// every port (subset of `drops`).
    pub corrupt_drops: u64,
    /// Wire drops from the Gilbert–Elliott burst-loss process, summed over
    /// every port (subset of `drops`).
    pub burst_drops: u64,
}

/// A queue-length sample series attached to one port.
#[derive(Debug, Clone)]
pub struct QueueMonitor {
    /// Observed node.
    pub node: NodeId,
    /// Observed port.
    pub port: usize,
    /// Sampling period.
    pub interval: Duration,
    /// Stop sampling at this time.
    pub until: SimTime,
    /// `(time, backlog bytes, backlog packets)` samples.
    pub samples: Vec<(SimTime, u64, u64)>,
}

pub(crate) enum Event {
    /// Packet finished its wire journey and arrives at `node`.
    Arrive {
        node: NodeId,
        pkt: crate::packet::Packet,
    },
    /// `node`'s `port` finished serializing its current packet.
    TxDone { node: NodeId, port: usize },
    /// Agent timer.
    Timer { node: NodeId, key: u64 },
    /// Deliver a flow command to its source agent.
    FlowStart(FlowCmd),
    /// A packet emerges from a host's artificial processing delay and
    /// enters the NIC queue.
    NicSend {
        node: NodeId,
        pkt: crate::packet::Packet,
    },
    /// Take a queue-monitor sample.
    Sample { id: usize },
    /// Livelock drill: reschedules itself at the same instant forever so
    /// the [`ProgressGuard`] has a deterministic zero-delay cycle to trip
    /// on (see [`Network::inject_livelock_at`]). Attributed to `node` for
    /// tag purposes; carries no payload.
    LivelockDrill { node: NodeId },
}

/// A cross-shard packet arrival, buffered in the sending shard's outbox
/// during a window and delivered into the receiving shard's queue at the
/// window barrier. The tag was assigned by the sender, so delivery order
/// within the receiver is canonical regardless of mailbox append order.
pub(crate) struct OutMsg {
    /// Destination shard (the owner of `node`).
    pub(crate) shard: u32,
    /// Arrival time (≥ send-window end + lookahead by construction).
    pub(crate) at: SimTime,
    /// Canonical tag assigned by the sending shard.
    pub(crate) tag: u64,
    /// Receiving node.
    pub(crate) node: NodeId,
    /// The packet on the wire.
    pub(crate) pkt: crate::packet::Packet,
}

/// The simulated network, generic over an attached telemetry
/// [`Subscriber`]. The default [`NoopSubscriber`] has `ENABLED = false`,
/// so every emission site compiles away and `Network::new` behaves
/// exactly as before telemetry existed; [`Network::with_subscriber`]
/// attaches a live subscriber (statically dispatched — attaching a
/// different subscriber type monomorphises a separate event loop).
pub struct Network<S: Subscriber = NoopSubscriber> {
    /// Attached telemetry subscriber (zero-sized for the no-op).
    sub: S,
    /// Scratch buffer for transport events surfaced through [`Ctx`]
    /// (drained after every agent callback; reused across calls).
    #[cfg(feature = "telemetry")]
    scratch_events: Vec<TransportEvent>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) events: EventQueue<Event>,
    /// Network seed: drives the ECMP salt and every port's fault dice.
    pub(crate) seed: u64,
    ecmp_salt: u64,
    /// Flows started but not yet completed: flow → (cmd, start time).
    pub(crate) pending: BTreeMap<FlowId, (FlowCmd, SimTime)>,
    /// Live cancellable timers: `(node, key)` → wheel token plus the armed
    /// `(time, tag)` (the key under which the pending event is queued).
    /// A [`DetMap`] because this is re-hashed on every RTO re-arm (one per
    /// ACK): keyed lookup only — never iterate it.
    pub(crate) timer_tokens: DetMap<(NodeId, u64), (TimerToken, SimTime, u64)>,
    pub(crate) records: Vec<FlowRecord>,
    /// Provenance key of each record, aligned with `records`: `(finish,
    /// tag of the completing event, index among that event's records)`.
    /// This is the exact serial processing order, so shard merges can
    /// reproduce it with a key-ordered merge.
    pub(crate) record_keys: Vec<(SimTime, u64, u32)>,
    pub(crate) monitors: Vec<QueueMonitor>,
    scratch: Vec<Action>,
    pub(crate) steps: u64,
    /// Pending fault-plan events as `(at, tag, action)`, sorted by
    /// `(at, tag)`; `next_fault` is the cursor of the first unapplied one.
    /// Faults live outside the event queue so the sharded runner can use
    /// them as epoch boundaries, but they interleave with events at their
    /// exact `(time, tag)` position either way.
    pub(crate) fault_queue: Vec<(SimTime, u64, FaultAction)>,
    pub(crate) next_fault: usize,
    /// Has `compute_routes` run at least once? Link up/down transitions
    /// only trigger a route rebuild after the initial computation.
    pub(crate) routes_built: bool,
    pub(crate) flows_failed: u64,
    pub(crate) no_route_drops: u64,
    // ── sharding state (serial runs: identity values) ─────────────────
    /// Which shard this engine instance is (0 when serial).
    pub(crate) my_shard: u32,
    /// Global node → owning shard map; `None` when serial (everything
    /// local). Shared read-only across all shards of a run.
    pub(crate) owner: Option<Arc<Vec<u32>>>,
    /// Cross-shard arrivals produced in the current window.
    pub(crate) outbox: Vec<OutMsg>,
    /// Per-node canonical tag counters (`k` of `(g+1)<<40 | k`).
    pub(crate) tag_k: Vec<u64>,
    /// Shared setup/fault tag counter (pusher base 0).
    pub(crate) setup_k: u64,
    /// Node whose event is being processed ([`SETUP_CTX`] outside one).
    pub(crate) cur_node: usize,
    /// Tag of the event being processed (record provenance).
    cur_tag: u64,
    /// Records already pushed by the event being processed.
    rec_sub: u32,
    /// Queue perf counters inherited from merged shard queues.
    pub(crate) carry: ecnsharp_sim::queue::QueuePerf,
    // ── run supervision (disarmed by default: zero cost) ──────────────
    /// Watchdog/budget configuration (see [`Supervision`]). Applied to
    /// the queue and node arenas by [`Network::set_supervision`].
    pub(crate) supervision: Supervision,
    /// `supervision` has at least one memory ceiling armed — gates the
    /// per-event breach poll so disarmed runs skip it entirely.
    pub(crate) mem_armed: bool,
    /// First guard trip of the run, latched until read by the fallible
    /// entry points. Agent callbacks ([`Ctx::report_mem_breach`]) and the
    /// per-event breach poll both land here.
    pub(crate) tripped: Option<SimError>,
    #[cfg(feature = "packet-trace")]
    pub(crate) tracer: Option<Tracer>,
}

impl Network {
    /// Create an empty network with a deterministic seed (drives ECMP salt
    /// and fault-injection dice). Telemetry is detached: the
    /// [`NoopSubscriber`]'s emission sites fold away at compile time.
    pub fn new(seed: u64) -> Self {
        Self::with_subscriber(seed, NoopSubscriber)
    }
}

impl<S: Subscriber> Network<S> {
    /// Like [`Network::new`], with `sub` attached to every emission site.
    /// Attaching (or not) never perturbs the simulation: two runs with the
    /// same seed produce identical schedules regardless of the subscriber
    /// (asserted by the determinism tests in `ecnsharp-experiments`).
    pub fn with_subscriber(seed: u64, sub: S) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let ecmp_salt = rng.next_u64();
        Network {
            sub,
            #[cfg(feature = "telemetry")]
            scratch_events: Vec::new(),
            nodes: Vec::new(),
            events: EventQueue::new(),
            seed,
            ecmp_salt,
            pending: BTreeMap::new(),
            timer_tokens: DetMap::default(),
            records: Vec::new(),
            record_keys: Vec::new(),
            monitors: Vec::new(),
            scratch: Vec::new(),
            steps: 0,
            fault_queue: Vec::new(),
            next_fault: 0,
            routes_built: false,
            flows_failed: 0,
            no_route_drops: 0,
            my_shard: 0,
            owner: None,
            outbox: Vec::new(),
            tag_k: Vec::new(),
            setup_k: 0,
            cur_node: SETUP_CTX,
            cur_tag: 0,
            rec_sub: 0,
            carry: Default::default(),
            supervision: Supervision::default(),
            mem_armed: false,
            tripped: None,
            #[cfg(feature = "packet-trace")]
            tracer: None,
        }
    }

    /// Next canonical event tag for the current push context (see the
    /// module docs): node-attributed when inside [`Self::step`], the
    /// shared setup counter otherwise.
    #[inline]
    pub(crate) fn next_tag(&mut self) -> u64 {
        if self.cur_node == SETUP_CTX {
            let t = self.setup_k;
            self.setup_k += 1;
            t
        } else {
            let k = &mut self.tag_k[self.cur_node];
            let t = ((self.cur_node as u64 + 1) << TAG_SHIFT) | *k;
            *k += 1;
            t
        }
    }

    /// Schedule `ev` at `at` under the next canonical tag.
    #[inline]
    fn push_event(&mut self, at: SimTime, ev: Event) {
        let tag = self.next_tag();
        if self.cur_node == SETUP_CTX {
            // Setup tags sort below same-time runtime tags, so a push at
            // `now` into a network that already popped runtime events at
            // this instant (re-injection between runs, manual link-up
            // kicks) legally lands below the strict pop-order watermark.
            self.events.rewind_order_watermark();
        }
        self.events.schedule_tagged(at, tag, ev);
    }

    /// An empty engine for shard `idx` of this network's run: same seed,
    /// salt, and monitor/route configuration, fresh queue and counters,
    /// `sub` attached. Nodes start empty — the splitter moves owned nodes
    /// in and fills the rest with placeholders.
    pub(crate) fn shard_shell(&self, idx: u32, owner: Arc<Vec<u32>>, sub: S) -> Network<S> {
        Network {
            sub,
            #[cfg(feature = "telemetry")]
            scratch_events: Vec::new(),
            nodes: Vec::new(),
            events: EventQueue::new(),
            seed: self.seed,
            ecmp_salt: self.ecmp_salt,
            pending: BTreeMap::new(),
            timer_tokens: DetMap::default(),
            records: Vec::new(),
            record_keys: Vec::new(),
            monitors: self.monitors.clone(),
            scratch: Vec::new(),
            steps: 0,
            fault_queue: Vec::new(),
            next_fault: 0,
            routes_built: self.routes_built,
            flows_failed: 0,
            no_route_drops: 0,
            my_shard: idx,
            owner: Some(owner),
            outbox: Vec::new(),
            tag_k: self.tag_k.clone(),
            setup_k: 0,
            cur_node: SETUP_CTX,
            cur_tag: 0,
            rec_sub: 0,
            carry: Default::default(),
            supervision: self.supervision,
            mem_armed: false,
            tripped: None,
            #[cfg(feature = "packet-trace")]
            tracer: None,
        }
    }

    /// The attached telemetry subscriber.
    pub fn subscriber(&self) -> &S {
        &self.sub
    }

    /// The attached telemetry subscriber, mutably.
    pub fn subscriber_mut(&mut self) -> &mut S {
        &mut self.sub
    }

    /// Consume the network and return the subscriber (to read out
    /// aggregates after a run).
    pub fn into_subscriber(self) -> S {
        self.sub
    }

    /// Install a [`Supervision`] configuration: arms the livelock guard
    /// for the `try_run_*` entry points and applies the memory ceilings
    /// to the event queue and every node's ring arena.
    ///
    /// Call **after** topology construction — nodes added later start
    /// with an unbounded arena. Re-installing clears any latched trip.
    pub fn set_supervision(&mut self, sup: Supervision) {
        self.supervision = sup;
        self.events.set_mem_ceiling(sup.event_ceiling);
        for n in &mut self.nodes {
            n.arena.set_overflow_ceiling(sup.ring_overflow_ceiling);
        }
        self.mem_armed = sup.event_ceiling.is_some() || sup.ring_overflow_ceiling.is_some();
        self.tripped = None;
    }

    /// The installed [`Supervision`] configuration.
    pub fn supervision(&self) -> Supervision {
        self.supervision
    }

    /// Drill: schedule a self-rescheduling zero-delay event at `at`,
    /// attributed to node 0. The cycle spins forever, so **only inject
    /// with the livelock guard armed** — it exists to prove the guard
    /// trips ([`SimError::Livelock`]) and for the CI livelock drill.
    pub fn inject_livelock_at(&mut self, at: SimTime) {
        self.push_event(at, Event::LivelockDrill { node: NodeId(0) });
    }

    /// Enable packet tracing with a bounded ring of `capacity` events
    /// (optionally restricted to `flow`). Disabled by default.
    #[cfg(feature = "packet-trace")]
    pub fn enable_trace(&mut self, capacity: usize, flow: Option<FlowId>) {
        let mut t = Tracer::new(capacity);
        t.flow_filter = flow;
        self.tracer = Some(t);
    }

    /// The tracer, if enabled.
    #[cfg(feature = "packet-trace")]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    #[inline]
    fn trace(&mut self, at: SimTime, node: NodeId, kind: TraceKind, pkt: &crate::packet::Packet) {
        #[cfg(feature = "packet-trace")]
        if let Some(t) = self.tracer.as_mut() {
            t.record(at, node, kind, pkt);
        }
        #[cfg(not(feature = "packet-trace"))]
        let _ = (at, node, kind, pkt);
    }

    // ── topology construction ──────────────────────────────────────────

    /// Add a host running `agent`; returns its id.
    pub fn add_host(&mut self, agent: Box<dyn Agent>) -> NodeId {
        self.nodes.push(Node::host(agent));
        self.tag_k.push(0);
        NodeId(self.nodes.len() - 1)
    }

    /// Add a switch; returns its id.
    pub fn add_switch(&mut self) -> NodeId {
        self.nodes.push(Node::switch());
        self.tag_k.push(0);
        NodeId(self.nodes.len() - 1)
    }

    /// Connect `a` and `b` with a full-duplex link of `rate`/`delay`,
    /// installing `cfg_a` as `a`'s egress port config and `cfg_b` as `b`'s.
    /// Returns `(a_port, b_port)` indices.
    pub fn connect(
        &mut self,
        a: NodeId,
        cfg_a: PortConfig,
        b: NodeId,
        cfg_b: PortConfig,
        rate: Rate,
        delay: Duration,
    ) -> (usize, usize) {
        assert_ne!(a, b, "self-links are not supported");
        let pa = self.nodes[a.0].ports.len();
        let pb = self.nodes[b.0].ports.len();
        let mut port_a = EgressPort::new(b, pb, rate, delay, cfg_a);
        port_a.owner = a;
        port_a.owner_port = pa as u64;
        port_a.seed_dice(hash_mix(self.seed ^ ((a.0 as u64 + 1) << 24) ^ pa as u64));
        // Switch FIFOs migrate onto the node's shared ring arena so all
        // of a switch's queues live in one contiguous block; hosts keep
        // their inline NIC FIFO (one port, nothing to pool).
        let na = &mut self.nodes[a.0];
        if !na.is_host() {
            port_a.pool_ring(&mut na.arena);
        }
        na.ports.push(port_a);
        let mut port_b = EgressPort::new(a, pa, rate, delay, cfg_b);
        port_b.owner = b;
        port_b.owner_port = pb as u64;
        port_b.seed_dice(hash_mix(self.seed ^ ((b.0 as u64 + 1) << 24) ^ pb as u64));
        let nb = &mut self.nodes[b.0];
        if !nb.is_host() {
            port_b.pool_ring(&mut nb.arena);
        }
        nb.ports.push(port_b);
        (pa, pb)
    }

    /// Compute shortest-path ECMP routes from every node to every host,
    /// over the links currently up. Call once after the topology is fully
    /// built; link up/down transitions re-run it automatically afterwards.
    pub fn compute_routes(&mut self) {
        self.routes_built = true;
        // Adjacency over up links: for each node, (port index, peer).
        let adj: Vec<Vec<(usize, NodeId)>> = self
            .nodes
            .iter()
            .map(|node| {
                node.ports
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.link_up)
                    .map(|(i, p)| (i, p.peer))
                    .collect()
            })
            .collect();
        let hosts: Vec<bool> = self.nodes.iter().map(|n| n.is_host()).collect();
        let tables = route_tables(&adj, &hosts);
        for (node, routes) in self.nodes.iter_mut().zip(tables) {
            node.routes = routes;
            node.rebuild_flat_routes();
        }
    }

    // ── fault injection ────────────────────────────────────────────────

    /// Install `plan`: every event joins the fault list with a canonical
    /// setup tag, so fault timing shares the deterministic `(time, tag)`
    /// total order with packets and timers — and, because setup tags sort
    /// below every runtime tag, a fault always applies before same-time
    /// packet events, on serial and sharded runs alike. May be called more
    /// than once; plans accumulate.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for ev in plan.events {
            let tag = self.next_tag();
            self.fault_queue.push((ev.at, tag, ev.action));
        }
        assert_eq!(
            self.next_fault, 0,
            "fault plans must be installed before the run starts"
        );
        self.fault_queue
            .sort_unstable_by_key(|&(at, tag, _)| (at, tag));
    }

    /// Set the `a`↔`b` link's state (both directions). Idempotent: setting
    /// the current state is a no-op (no spurious route rebuild). On a real
    /// transition, routes are rebuilt (if [`Self::compute_routes`] ever
    /// ran) so ECMP fails over; on an up transition both egress ports are
    /// kicked so backlogged packets resume immediately.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId, up: bool) {
        let at = self.now();
        self.set_link_up_at(at, a, b, up);
    }

    /// [`Self::set_link_up`] at an explicit time `at >= now`: fault
    /// application runs *between* queue pops, so the transition time comes
    /// from the fault list, not from the queue clock.
    pub(crate) fn set_link_up_at(&mut self, at: SimTime, a: NodeId, b: NodeId, up: bool) {
        let pa = self
            .port_towards(a, b)
            .unwrap_or_else(|| panic!("no link between {a} and {b}"));
        let pb = self
            .port_towards(b, a)
            .unwrap_or_else(|| panic!("no link between {b} and {a}"));
        let changed =
            self.nodes[a.0].ports[pa].link_up != up || self.nodes[b.0].ports[pb].link_up != up;
        if !changed {
            return;
        }
        self.nodes[a.0].ports[pa].link_up = up;
        self.nodes[b.0].ports[pb].link_up = up;
        self.emit_link_state(at, a, b, up);
        if self.routes_built {
            self.compute_routes();
        }
        if up {
            self.kick(at, a, pa);
            self.kick(at, b, pb);
        }
    }

    /// Emit a [`LinkStateChanged`] telemetry event (also used by the
    /// sharded fault path, where the transition spans two engines and the
    /// event is attributed to `a`'s owner).
    pub(crate) fn emit_link_state(&mut self, at: SimTime, a: NodeId, b: NodeId, up: bool) {
        let _ = (at, a, b, up);
        emit!(
            &mut self.sub,
            on_link_state_changed,
            Meta {
                at,
                node: a.0 as u64,
            },
            LinkStateChanged {
                node_a: a.0 as u64,
                node_b: b.0 as u64,
                up,
            }
        );
    }

    /// Is the `a`↔`b` link currently up?
    pub fn link_is_up(&self, a: NodeId, b: NodeId) -> bool {
        let pa = self
            .port_towards(a, b)
            .unwrap_or_else(|| panic!("no link between {a} and {b}"));
        self.nodes[a.0].ports[pa].link_up
    }

    pub(crate) fn apply_fault_at(&mut self, at: SimTime, action: FaultAction) {
        match action {
            FaultAction::LinkDown { a, b } => self.set_link_up_at(at, a, b, false),
            FaultAction::LinkUp { a, b } => self.set_link_up_at(at, a, b, true),
            FaultAction::SetLinkRate { a, b, rate } => {
                let pa = self
                    .port_towards(a, b)
                    .unwrap_or_else(|| panic!("no link between {a} and {b}"));
                let pb = self
                    .port_towards(b, a)
                    .unwrap_or_else(|| panic!("no link between {b} and {a}"));
                // An in-flight serialization keeps its old tx_time; the new
                // rate applies from the next packet.
                self.nodes[a.0].ports[pa].rate = rate;
                self.nodes[b.0].ports[pb].rate = rate;
            }
            FaultAction::SetLinkDelay { a, b, delay } => {
                let pa = self
                    .port_towards(a, b)
                    .unwrap_or_else(|| panic!("no link between {a} and {b}"));
                let pb = self
                    .port_towards(b, a)
                    .unwrap_or_else(|| panic!("no link between {b} and {a}"));
                self.nodes[a.0].ports[pa].delay = delay;
                self.nodes[b.0].ports[pb].delay = delay;
            }
        }
    }

    // ── accessors ──────────────────────────────────────────────────────

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of egress ports on `node`.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.nodes[node.0].ports.len()
    }

    /// Statistics of `node`'s `port`.
    pub fn port_stats(&self, node: NodeId, port: usize) -> PortStats {
        self.nodes[node.0].ports[port].stats()
    }

    /// Current backlog of `node`'s `port` in (bytes, packets).
    pub fn backlog(&self, node: NodeId, port: usize) -> (u64, u64) {
        let p = &self.nodes[node.0].ports[port];
        (p.backlog_bytes(), p.backlog_pkts())
    }

    /// Cumulative transmitted payload bytes per class on `node`'s `port`.
    pub fn tx_payload_per_class(&self, node: NodeId, port: usize) -> Vec<u64> {
        self.nodes[node.0].ports[port]
            .tx_payload_per_class()
            .to_vec()
    }

    /// The egress port of `node` facing `peer`, if any.
    pub fn port_towards(&self, node: NodeId, peer: NodeId) -> Option<usize> {
        self.nodes[node.0].ports.iter().position(|p| p.peer == peer)
    }

    /// Downcast access to the AQM on `node`'s `port`, for schemes that opt
    /// into [`ecnsharp_aqm::Aqm::as_any`]. White-box equivalence tests use
    /// this to read e.g. ECN♯'s `MarkStats` after a run.
    pub fn aqm_as_any(&self, node: NodeId, port: usize) -> Option<&dyn std::any::Any> {
        self.nodes[node.0].ports[port].aqm_as_any()
    }

    /// Completed-flow records so far.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Drain completed-flow records.
    pub fn take_records(&mut self) -> Vec<FlowRecord> {
        self.record_keys.clear();
        std::mem::take(&mut self.records)
    }

    /// Flows started but not yet finished.
    pub fn unfinished_flows(&self) -> usize {
        self.pending.len()
    }

    /// Events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Finished queue monitors (valid after the run passes their window).
    pub fn monitors(&self) -> &[QueueMonitor] {
        &self.monitors
    }

    /// Engine performance counters accumulated so far: event-queue traffic
    /// plus per-port packet/mark/drop totals. Assembled on demand; calling
    /// this (or not) has no effect on the simulation.
    pub fn perf(&self) -> PerfCounters {
        let q = self.events.perf();
        // `carry` holds queue traffic accumulated in per-shard queues
        // before a sharded merge; zero on never-sharded networks. Queue
        // counters are NOT comparable between serial and sharded runs of
        // the same scenario (the split re-pushes pending events and
        // `peak_pending` sums per-shard peaks) — port-level packet/mark/
        // drop totals below are exact either way.
        let mut c = PerfCounters {
            events_pushed: q.pushed + self.carry.pushed,
            events_popped: q.popped + self.carry.popped,
            peak_pending: q.peak_pending + self.carry.peak_pending,
            timers_armed: q.timers_armed + self.carry.timers_armed,
            timers_cancelled: q.timers_cancelled + self.carry.timers_cancelled,
            timers_fired: q.timers_fired + self.carry.timers_fired,
            timers_stale_suppressed: q.timers_stale_suppressed + self.carry.timers_stale_suppressed,
            heap_spills: q.heap_spills + self.carry.heap_spills,
            flows_failed: self.flows_failed,
            no_route_drops: self.no_route_drops,
            ..PerfCounters::default()
        };
        for node in &self.nodes {
            for p in &node.ports {
                let s = p.stats();
                c.packets_forwarded += s.dequeued;
                c.ce_marks += s.total_marks();
                c.drops += s.total_drops();
                c.fault_drops += s.fault_drops;
                c.corrupt_drops += s.corrupt_drops;
                c.burst_drops += s.burst_drops;
            }
        }
        c
    }

    // ── driving ────────────────────────────────────────────────────────

    /// Schedule `cmd` to start at `at`.
    pub fn schedule_flow(&mut self, at: SimTime, cmd: FlowCmd) {
        self.push_event(at, Event::FlowStart(cmd));
    }

    /// Attach a queue monitor sampling `(node, port)` every `interval`
    /// during `[from, until]`; returns its index into [`Self::monitors`].
    pub fn add_queue_monitor(
        &mut self,
        node: NodeId,
        port: usize,
        interval: Duration,
        from: SimTime,
        until: SimTime,
    ) -> usize {
        assert!(!interval.is_zero());
        let id = self.monitors.len();
        self.monitors.push(QueueMonitor {
            node,
            port,
            interval,
            until,
            samples: Vec::new(),
        });
        self.push_event(from, Event::Sample { id });
        id
    }

    /// The `(time, tag)` key of the next step — the minimum over the event
    /// queue and the fault list. `None` when both are exhausted.
    pub(crate) fn next_key(&mut self) -> Option<(SimTime, u64)> {
        let ev = self.events.peek_key();
        let fault = self
            .fault_queue
            .get(self.next_fault)
            .map(|&(at, tag, _)| (at, tag));
        match (ev, fault) {
            (Some(e), Some(f)) => Some(e.min(f)),
            (e, f) => e.or(f),
        }
    }

    /// Process events until the queue is empty or `deadline` is passed.
    /// Returns the time of the last processed event.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some((t, _)) = self.next_key() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now()
    }

    /// Process events until nothing is left (all flows done, all timers
    /// fired, all faults applied).
    ///
    /// Infallible wrapper over [`Network::try_run_until_idle`]: with
    /// supervision disarmed (the default) it cannot fail; a tripped
    /// guard under armed supervision is treated as fatal.
    pub fn run_until_idle(&mut self) -> SimTime {
        match self.try_run_until_idle() {
            Ok(t) => t,
            // A tripped guard through the infallible entry point is fatal
            // by contract; fallible callers use try_run_until_idle.
            Err(e) => panic!("run_until_idle: {e}"),
        }
    }

    /// Process events until nothing is left, under this network's
    /// [`Supervision`] (see [`Network::set_supervision`]).
    ///
    /// With supervision disarmed this is the exact unsupervised loop.
    /// Armed, every processed event feeds the livelock [`ProgressGuard`]
    /// and polls the latched memory-budget flags; the first trip stops
    /// the run with its [`SimError`]. Armed-but-untriggered runs are
    /// byte-identical to unsupervised ones — the guards only observe.
    pub fn try_run_until_idle(&mut self) -> Result<SimTime, SimError> {
        if self.supervision.is_disarmed() {
            while self.step() {}
            // A transport-level budget (armed through `TcpConfig`, not
            // `Supervision`) can still latch a breach; surface it at
            // end-of-run rather than pay a per-event check here.
            return match self.tripped.take() {
                Some(e) => Err(e),
                None => Ok(self.now()),
            };
        }
        let mut guard = self.supervision.livelock_budget.map(ProgressGuard::new);
        while self.step() {
            if let Some(e) = self.tripped.take() {
                return Err(e);
            }
            if let Some(g) = guard.as_mut() {
                if g.on_event(self.events.now().as_nanos()) {
                    let g = *g;
                    return Err(self.livelock_error(&g));
                }
            }
        }
        match self.tripped.take() {
            Some(e) => Err(e),
            None => Ok(self.now()),
        }
    }

    /// Assemble the [`SimError::Livelock`] diagnostic for a tripped
    /// guard: current instant, queue depth, and oldest pending key.
    #[cold]
    fn livelock_error(&mut self, g: &ProgressGuard) -> SimError {
        SimError::Livelock {
            time_ns: self.events.now().as_nanos(),
            events_at_instant: g.events_at_instant(),
            budget: g.budget(),
            pending: self.events.len() as u64,
            oldest_key: self.events.peek_key().map(|(t, k)| (t.as_nanos(), k)),
        }
    }

    /// Process queued events with `time < hi` — the body of one
    /// conservative parallel window. Faults are untouched: sharded runs
    /// apply them cross-shard at epoch boundaries, outside the windows.
    pub(crate) fn run_events_before(&mut self, hi: SimTime) {
        while let Some((t, _)) = self.events.peek_key() {
            if t >= hi {
                break;
            }
            self.step_queued();
        }
    }

    /// Supervised window body: [`Network::run_events_before`] with the
    /// livelock guard and memory-budget polling threaded in. The guard
    /// lives with the caller (one per shard worker) so a zero-delay cycle
    /// inside a window — which would otherwise spin without ever reaching
    /// the barrier — trips exactly like its serial counterpart.
    pub(crate) fn try_run_events_before(
        &mut self,
        hi: SimTime,
        guard: &mut Option<ProgressGuard>,
    ) -> Result<(), SimError> {
        while let Some((t, _)) = self.events.peek_key() {
            if t >= hi {
                break;
            }
            self.step_queued();
            if let Some(e) = self.tripped.take() {
                return Err(e);
            }
            if let Some(g) = guard.as_mut() {
                if g.on_event(self.events.now().as_nanos()) {
                    let g = *g;
                    return Err(self.livelock_error(&g));
                }
            }
        }
        Ok(())
    }

    /// Process a single event or due fault. Returns `false` when both the
    /// queue and the fault list are exhausted.
    pub fn step(&mut self) -> bool {
        // Interleave faults by the same global (time, tag) order as queued
        // events. Fault tags come from the setup range, which sorts below
        // every runtime tag, so a fault wins ties at its own timestamp.
        if let Some(&(at, tag, action)) = self.fault_queue.get(self.next_fault) {
            let due = match self.events.peek_key() {
                Some(key) => (at, tag) < key,
                None => true,
            };
            if due {
                self.next_fault += 1;
                self.steps += 1;
                self.events.advance_now(at);
                self.apply_fault_at(at, action);
                return true;
            }
        }
        self.step_queued()
    }

    /// Pop and process one queued event (never a fault). Returns `false`
    /// on an empty queue.
    fn step_queued(&mut self) -> bool {
        let Some((now, tag, ev)) = self.events.pop_keyed() else {
            return false;
        };
        self.steps += 1;
        // Tag context for everything this event pushes: `cur_node` selects
        // the per-node counter (canonical across shard counts), `cur_tag`
        // keys any flow records the event completes.
        self.cur_tag = tag;
        self.rec_sub = 0;
        match ev {
            Event::Arrive { node, pkt } => {
                self.cur_node = node.0;
                self.trace(now, node, TraceKind::Arrive, &pkt);
                self.on_arrive(now, node, pkt);
            }
            Event::TxDone { node, port } => {
                self.cur_node = node.0;
                self.nodes[node.0].ports[port].busy = false;
                self.kick(now, node, port);
            }
            Event::Timer { node, key } => {
                self.cur_node = node.0;
                // A wheel-armed timer that fires is spent: drop its token
                // so a later cancel/re-arm for the key starts fresh, and
                // hand it back so the wheel can free the drained cell's
                // marker. (One-shot `SetTimer` events share the variant
                // and have no token; the remove is then a no-op.)
                if let Some((tok, _, _)) = self.timer_tokens.remove(&(node, key)) {
                    self.events.timer_fired(tok);
                }
                self.agent_callback(now, node, |agent, ctx| {
                    agent.on_timer(ctx, key);
                })
            }
            Event::FlowStart(cmd) => {
                let src = cmd.src;
                self.cur_node = src.0;
                self.pending.insert(cmd.flow, (cmd.clone(), now));
                self.agent_callback(now, src, |agent, ctx| {
                    agent.on_flow_cmd(ctx, cmd);
                });
            }
            Event::NicSend { node, pkt } => {
                self.cur_node = node.0;
                self.trace(now, node, TraceKind::Enqueue, &pkt);
                let n = &mut self.nodes[node.0];
                n.ports[0].enqueue(now, pkt, &mut n.arena, &mut self.sub);
                self.kick(now, node, 0);
            }
            Event::Sample { id } => {
                self.cur_node = self.monitors[id].node.0;
                let m = &self.monitors[id];
                let (bytes, pkts) = self.backlog(m.node, m.port);
                let m = &mut self.monitors[id];
                m.samples.push((now, bytes, pkts));
                let next = now + m.interval;
                if next <= m.until {
                    self.push_event(next, Event::Sample { id });
                }
            }
            Event::LivelockDrill { node } => {
                self.cur_node = node.0;
                self.push_event(now, Event::LivelockDrill { node });
            }
        }
        if self.mem_armed {
            self.poll_mem_breach(now);
        }
        self.cur_node = SETUP_CTX;
        true
    }

    /// Poll the latched memory-breach flags after one event (only when a
    /// ceiling is armed). All arena mutations of an event belong to its
    /// `cur_node`, so attribution is exact; the breach converts into the
    /// run's first [`SimError::MemBudgetExceeded`].
    #[inline]
    fn poll_mem_breach(&mut self, now: SimTime) {
        if self.tripped.is_some() {
            return;
        }
        let node = (self.cur_node != SETUP_CTX).then_some(self.cur_node as u32);
        if let Some((live, ceiling)) = self.events.mem_breach() {
            self.tripped = Some(SimError::MemBudgetExceeded {
                breach: MemBreach {
                    component: MemComponent::EventQueue,
                    live,
                    ceiling,
                    node,
                },
                time_ns: now.as_nanos(),
            });
            return;
        }
        if self.cur_node != SETUP_CTX {
            if let Some((live, ceiling)) = self.nodes[self.cur_node].arena.overflow_breach() {
                self.tripped = Some(SimError::MemBudgetExceeded {
                    breach: MemBreach {
                        component: MemComponent::RingOverflow,
                        live,
                        ceiling,
                        node,
                    },
                    time_ns: now.as_nanos(),
                });
            }
        }
    }

    fn on_arrive(&mut self, now: SimTime, node: NodeId, pkt: crate::packet::Packet) {
        match &self.nodes[node.0].kind {
            NodeKind::Host { .. } => {
                debug_assert_eq!(pkt.dst, node, "packet delivered to wrong host");
                self.agent_callback(now, node, |agent, ctx| {
                    agent.on_packet(ctx, pkt);
                });
            }
            NodeKind::Switch => {
                // Forwarding uses the flattened route mirror: two
                // contiguous-array reads instead of a Vec<Vec<_>> chase.
                let sw = &self.nodes[node.0];
                let hops = match sw.route_off.get(pkt.dst.0..pkt.dst.0 + 2) {
                    Some(w) => &sw.route_hops[w[0] as usize..w[1] as usize],
                    None => panic!(
                        "switch {node} has no route to {} — did you call compute_routes()?",
                        pkt.dst
                    ),
                };
                if hops.is_empty() {
                    // Every link towards the destination is down: the
                    // packet is lost in the fabric. Counted apart from port
                    // drops — it never entered an egress queue, so byte
                    // conservation is untouched.
                    self.no_route_drops += 1;
                    emit!(
                        &mut self.sub,
                        on_packet_dropped,
                        Meta {
                            at: now,
                            node: node.0 as u64,
                        },
                        PacketDropped {
                            // Sentinel: the packet never reached a port.
                            port: u64::MAX,
                            flow: pkt.flow.0,
                            seq: pkt.seq(),
                            payload: pkt.payload(),
                            wire_bytes: pkt.wire_bytes(),
                            reason: DropReason::NoRoute,
                        }
                    );
                    self.trace(now, node, TraceKind::Drop(DropReason::NoRoute), &pkt);
                    return;
                }
                let port = if hops.len() == 1 {
                    hops[0] as usize
                } else {
                    // Flow-consistent ECMP: all packets of a flow take the
                    // same path; different flows spread across the fan.
                    // Fan-outs are powers of two in every standard fabric,
                    // where the reduction is a mask instead of a 64-bit
                    // division (same result either way).
                    let h = hash_mix(pkt.flow.0 ^ self.ecmp_salt);
                    let n = hops.len() as u64;
                    let idx = if n.is_power_of_two() {
                        h & (n - 1)
                    } else {
                        h % n
                    };
                    hops[idx as usize] as usize
                };
                self.trace(now, node, TraceKind::Enqueue, &pkt);
                let n = &mut self.nodes[node.0];
                n.ports[port].enqueue(now, pkt, &mut n.arena, &mut self.sub);
                self.kick(now, node, port);
            }
        }
    }

    /// Start transmitting on `(node, port)` if idle and backlogged.
    pub(crate) fn kick(&mut self, now: SimTime, node: NodeId, port: usize) {
        let sub = &mut self.sub;
        let n = &mut self.nodes[node.0];
        let p = &mut n.ports[port];
        if p.busy || !p.link_up {
            return;
        }
        if let Some(tx) = p.next_tx_dice(now, &mut n.arena, sub) {
            p.busy = true;
            let peer = p.peer;
            let delay = p.delay;
            // Clone only if this packet will actually be recorded — the
            // common (untraced) path moves the packet straight into the
            // Arrive event without copying.
            #[cfg(feature = "packet-trace")]
            let traced_pkt = self.tracer.is_some().then(|| tx.pkt.clone());
            // Draw both tags before routing: TxDone then Arrive, always in
            // that order, so the pusher's counter advances identically
            // whether the arrival stays local or crosses a shard boundary.
            let tx_tag = self.next_tag();
            let arr_tag = self.next_tag();
            self.events
                .schedule_tagged(now + tx.tx_time, tx_tag, Event::TxDone { node, port });
            let at = now + tx.tx_time + delay;
            match &self.owner {
                Some(owner) if owner[peer.0] != self.my_shard => self.outbox.push(OutMsg {
                    shard: owner[peer.0],
                    at,
                    tag: arr_tag,
                    node: peer,
                    pkt: tx.pkt,
                }),
                _ => self.events.schedule_tagged(
                    at,
                    arr_tag,
                    Event::Arrive {
                        node: peer,
                        pkt: tx.pkt,
                    },
                ),
            }
            #[cfg(feature = "packet-trace")]
            if let Some(pkt) = traced_pkt {
                self.trace(now, node, TraceKind::TxStart, &pkt);
            }
        }
    }

    /// Run `f` on the agent of host `node`, then apply the actions it
    /// requested.
    fn agent_callback(
        &mut self,
        now: SimTime,
        node: NodeId,
        f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>),
    ) {
        let mut actions = std::mem::take(&mut self.scratch);
        debug_assert!(actions.is_empty());
        #[cfg(feature = "telemetry")]
        let mut tevents = std::mem::take(&mut self.scratch_events);
        {
            let NodeKind::Host { agent } = &mut self.nodes[node.0].kind else {
                panic!("agent callback on a switch ({node})");
            };
            let mut ctx = Ctx {
                now,
                node,
                actions: &mut actions,
                #[cfg(feature = "telemetry")]
                events: if S::ENABLED { Some(&mut tevents) } else { None },
            };
            f(agent.as_mut(), &mut ctx);
        }
        // Forward transport events (cwnd/alpha/RTO) surfaced by the agent.
        #[cfg(feature = "telemetry")]
        {
            if S::ENABLED {
                let meta = Meta {
                    at: now,
                    node: node.0 as u64,
                };
                for ev in tevents.drain(..) {
                    match ev {
                        TransportEvent::Cwnd {
                            flow,
                            cwnd_bytes,
                            ssthresh_bytes,
                        } => self.sub.on_cwnd_updated(
                            &meta,
                            &CwndUpdated {
                                flow,
                                cwnd_bytes,
                                ssthresh_bytes,
                            },
                        ),
                        TransportEvent::Alpha { flow, alpha } => self
                            .sub
                            .on_alpha_updated(&meta, &AlphaUpdated { flow, alpha }),
                        TransportEvent::Rto { flow, streak } => {
                            self.sub.on_rto_fired(&meta, &RtoFired { flow, streak })
                        }
                    }
                }
            }
            self.scratch_events = tevents;
        }
        for action in actions.drain(..) {
            match action {
                Action::Send(pkt, delay) => {
                    if delay.is_zero() {
                        let n = &mut self.nodes[node.0];
                        n.ports[0].enqueue(now, pkt, &mut n.arena, &mut self.sub);
                        self.kick(now, node, 0);
                    } else {
                        self.push_event(now + delay, Event::NicSend { node, pkt });
                    }
                }
                Action::SetTimer(at, key) => {
                    self.push_event(at.max(now), Event::Timer { node, key });
                }
                Action::ArmTimer(at, key) => {
                    // Entry API: one tree descent per arm instead of a
                    // get + insert pair (this is the per-ACK hot path).
                    use std::collections::hash_map::Entry;
                    let at = at.max(now);
                    let tag = self.next_tag();
                    match self.timer_tokens.entry((node, key)) {
                        Entry::Occupied(mut o) => {
                            let prev = Some(o.get().0);
                            let tok = self.events.rearm_timer_tagged(
                                prev,
                                at,
                                tag,
                                Event::Timer { node, key },
                            );
                            *o.get_mut() = (tok, at, tag);
                        }
                        Entry::Vacant(v) => {
                            let tok = self.events.rearm_timer_tagged(
                                None,
                                at,
                                tag,
                                Event::Timer { node, key },
                            );
                            v.insert((tok, at, tag));
                        }
                    }
                }
                Action::CancelTimer(key) => {
                    if let Some((tok, _, _)) = self.timer_tokens.remove(&(node, key)) {
                        self.events.cancel_timer(tok);
                    }
                }
                Action::FlowDone(flow, timeouts) => {
                    if let Some((cmd, start)) = self.pending.remove(&flow) {
                        emit!(
                            &mut self.sub,
                            on_flow_completed,
                            Meta {
                                at: now,
                                node: node.0 as u64,
                            },
                            FlowCompleted {
                                flow: flow.0,
                                bytes: cmd.size,
                                fct_ns: now.saturating_since(start).as_nanos(),
                                completed: true,
                            }
                        );
                        self.record_keys.push((now, self.cur_tag, self.rec_sub));
                        self.rec_sub += 1;
                        self.records.push(FlowRecord {
                            flow,
                            src: cmd.src,
                            dst: cmd.dst,
                            size: cmd.size,
                            start,
                            finish: now,
                            class: cmd.class,
                            timeouts,
                            outcome: FlowOutcome::Completed,
                        });
                    }
                }
                Action::FlowFailed(flow, timeouts) => {
                    if let Some((cmd, start)) = self.pending.remove(&flow) {
                        self.flows_failed += 1;
                        emit!(
                            &mut self.sub,
                            on_flow_completed,
                            Meta {
                                at: now,
                                node: node.0 as u64,
                            },
                            FlowCompleted {
                                flow: flow.0,
                                bytes: cmd.size,
                                fct_ns: now.saturating_since(start).as_nanos(),
                                completed: false,
                            }
                        );
                        self.record_keys.push((now, self.cur_tag, self.rec_sub));
                        self.rec_sub += 1;
                        self.records.push(FlowRecord {
                            flow,
                            src: cmd.src,
                            dst: cmd.dst,
                            size: cmd.size,
                            start,
                            finish: now,
                            class: cmd.class,
                            timeouts,
                            outcome: FlowOutcome::Failed,
                        });
                    }
                }
                Action::MemBreach { live, ceiling } => {
                    // Transport-owned budget (e.g. receiver reassembly
                    // state, armed through `TcpConfig`): latch the run's
                    // first breach; the fallible entry points convert it
                    // into an early `Err`.
                    if self.tripped.is_none() {
                        self.tripped = Some(SimError::MemBudgetExceeded {
                            breach: MemBreach {
                                component: MemComponent::TransportOoo,
                                live,
                                ceiling,
                                node: Some(node.0 as u32),
                            },
                            time_ns: now.as_nanos(),
                        });
                    }
                }
            }
        }
        self.scratch = actions;
    }
}

/// ECMP next-hop tables for every node towards every host, from an
/// up-link adjacency list (`adj[u]` = `(port index, peer)` pairs) and a
/// host mask. Shared by [`Network::compute_routes`] and the sharded
/// engine's global route recompute at fault boundaries — both must
/// produce bit-identical tables for replay to be shard-invariant.
pub(crate) fn route_tables(adj: &[Vec<(usize, NodeId)>], hosts: &[bool]) -> Vec<Vec<Vec<usize>>> {
    let n = adj.len();
    let mut tables = vec![vec![Vec::new(); n]; n];
    for dst in 0..n {
        if !hosts[dst] {
            continue;
        }
        // BFS distances from dst (links are symmetric).
        let mut dist = vec![usize::MAX; n];
        dist[dst] = 0;
        let mut queue = std::collections::VecDeque::from([dst]);
        while let Some(u) = queue.pop_front() {
            for &(_, peer) in &adj[u] {
                if dist[peer.0] == usize::MAX {
                    dist[peer.0] = dist[u] + 1;
                    queue.push_back(peer.0);
                }
            }
        }
        // Next hops: ports whose peer is strictly closer to dst.
        for u in 0..n {
            if u == dst || dist[u] == usize::MAX {
                continue;
            }
            tables[u][dst] = adj[u]
                .iter()
                .filter(|&&(_, peer)| dist[peer.0] + 1 == dist[u])
                .map(|&(i, _)| i)
                .collect();
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{EchoAgent, NullAgent};
    use crate::packet::Packet;
    use ecnsharp_aqm::DropTail;

    /// host A -- switch -- host B, 10 Gbps, 1 us links.
    fn two_hosts() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let a = net.add_host(Box::new(NullAgent));
        let b = net.add_host(Box::new(EchoAgent));
        let s = net.add_switch();
        let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
        net.connect(
            a,
            cfg(),
            s,
            cfg(),
            Rate::from_gbps(10),
            Duration::from_micros(1),
        );
        net.connect(
            b,
            cfg(),
            s,
            cfg(),
            Rate::from_gbps(10),
            Duration::from_micros(1),
        );
        net.compute_routes();
        (net, a, b, s)
    }

    /// Inject a raw packet send from a host (test helper). Uses the setup
    /// tag range, like any other before-the-run push.
    fn inject(net: &mut Network, from: NodeId, pkt: Packet) {
        let at = net.now();
        net.push_event(at, Event::NicSend { node: from, pkt });
    }

    #[test]
    fn packet_crosses_switch_with_correct_latency() {
        let (mut net, a, b, s) = two_hosts();
        let pkt = Packet::data(FlowId(1), a, b, 0, 1460);
        inject(&mut net, a, pkt);
        net.run_until_idle();
        // Data a->s->b, then echo ACK b->s->a.
        let stats_a_nic = net.port_stats(a, 0);
        assert_eq!(stats_a_nic.dequeued, 1);
        let sw_to_b = net.port_towards(s, b).unwrap();
        assert_eq!(net.port_stats(s, sw_to_b).dequeued, 1);
        let stats_b_nic = net.port_stats(b, 0);
        assert_eq!(stats_b_nic.dequeued, 1, "echo ACK sent");
        // End time: data 2 hops (1230.4ns tx + 1000ns prop each) +
        // ack 2 hops (67.2ns tx + 1000ns prop each) ≈ 6.6 us.
        let t = net.now().as_nanos();
        assert!(t > 6_000 && t < 7_500, "total time {t}ns");
    }

    #[test]
    fn store_and_forward_serialization() {
        let (mut net, a, b, _s) = two_hosts();
        // Two back-to-back MTU packets: second arrives one tx_time later.
        inject(&mut net, a, Packet::data(FlowId(1), a, b, 0, 1460));
        inject(&mut net, a, Packet::data(FlowId(1), a, b, 1460, 1460));
        net.run_until_idle();
        // NIC serialized both: busy time = 2 * 1230.4ns; last arrival at
        // ~ 2*1230 + 1230 + 2*1000 (the second pkt waits for the first at
        // the NIC, then crosses switch). Just sanity-check ordering ran.
        assert_eq!(net.port_stats(a, 0).dequeued, 2);
        assert_eq!(net.port_stats(b, 0).dequeued, 2);
    }

    #[test]
    fn flow_records_capture_fct() {
        struct OneShot;
        impl Agent for OneShot {
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
                if pkt.flags().ack {
                    ctx.flow_done(pkt.flow, 0);
                }
            }
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
            fn on_flow_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: FlowCmd) {
                ctx.send(Packet::data(cmd.flow, cmd.src, cmd.dst, 0, cmd.size));
            }
        }
        let mut net = Network::new(2);
        let a = net.add_host(Box::new(OneShot));
        let b = net.add_host(Box::new(EchoAgent));
        let s = net.add_switch();
        let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
        net.connect(
            a,
            cfg(),
            s,
            cfg(),
            Rate::from_gbps(10),
            Duration::from_micros(1),
        );
        net.connect(
            b,
            cfg(),
            s,
            cfg(),
            Rate::from_gbps(10),
            Duration::from_micros(1),
        );
        net.compute_routes();
        net.schedule_flow(
            SimTime::from_micros(10),
            FlowCmd {
                flow: FlowId(7),
                src: a,
                dst: b,
                size: 1460,
                class: 0,
                extra_delay: Duration::ZERO,
            },
        );
        net.run_until_idle();
        assert_eq!(net.records().len(), 1);
        let r = &net.records()[0];
        assert_eq!(r.flow, FlowId(7));
        assert_eq!(r.size, 1460);
        assert_eq!(r.start, SimTime::from_micros(10));
        let fct_us = r.fct().as_micros_f64();
        assert!(fct_us > 4.0 && fct_us < 8.0, "fct {fct_us}us");
        assert_eq!(net.unfinished_flows(), 0);
    }

    #[test]
    fn extra_delay_inflates_rtt() {
        struct DelayedSender;
        impl Agent for DelayedSender {
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
                if pkt.flags().ack {
                    ctx.flow_done(pkt.flow, 0);
                }
            }
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
            fn on_flow_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: FlowCmd) {
                let p = Packet::data(cmd.flow, cmd.src, cmd.dst, 0, cmd.size);
                ctx.send_delayed(p, cmd.extra_delay);
            }
        }
        let mut net = Network::new(3);
        let a = net.add_host(Box::new(DelayedSender));
        let b = net.add_host(Box::new(EchoAgent));
        let s = net.add_switch();
        let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
        net.connect(
            a,
            cfg(),
            s,
            cfg(),
            Rate::from_gbps(10),
            Duration::from_micros(1),
        );
        net.connect(
            b,
            cfg(),
            s,
            cfg(),
            Rate::from_gbps(10),
            Duration::from_micros(1),
        );
        net.compute_routes();
        net.schedule_flow(
            SimTime::ZERO,
            FlowCmd {
                flow: FlowId(1),
                src: a,
                dst: b,
                size: 1460,
                class: 0,
                extra_delay: Duration::from_micros(100),
            },
        );
        net.run_until_idle();
        let fct = net.records()[0].fct().as_micros_f64();
        assert!(fct > 104.0 && fct < 112.0, "fct {fct}us");
    }

    #[test]
    fn ecmp_spreads_flows_but_not_packets() {
        // a -- s1 -- {s2,s3} -- s4 -- b : two equal-cost paths.
        let mut net = Network::new(4);
        let a = net.add_host(Box::new(NullAgent));
        let b = net.add_host(Box::new(NullAgent));
        let s1 = net.add_switch();
        let s2 = net.add_switch();
        let s3 = net.add_switch();
        let s4 = net.add_switch();
        let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
        let r = Rate::from_gbps(10);
        let d = Duration::from_micros(1);
        net.connect(a, cfg(), s1, cfg(), r, d);
        net.connect(s1, cfg(), s2, cfg(), r, d);
        net.connect(s1, cfg(), s3, cfg(), r, d);
        net.connect(s2, cfg(), s4, cfg(), r, d);
        net.connect(s3, cfg(), s4, cfg(), r, d);
        net.connect(s4, cfg(), b, cfg(), r, d);
        net.compute_routes();
        // 200 flows, 3 packets each.
        for f in 0..200u64 {
            for k in 0..3 {
                inject(&mut net, a, Packet::data(FlowId(f), a, b, k * 1460, 1460));
            }
        }
        net.run_until_idle();
        let v2 = net
            .port_stats(s1, net.port_towards(s1, s2).unwrap())
            .dequeued;
        let v3 = net
            .port_stats(s1, net.port_towards(s1, s3).unwrap())
            .dequeued;
        assert_eq!(v2 + v3, 600);
        // Both paths used, roughly evenly.
        assert!(v2 > 150 && v3 > 150, "v2={v2} v3={v3}");
        // Flow-consistency: each flow's 3 packets all on one path ⇒ both
        // counters divisible by 3.
        assert_eq!(v2 % 3, 0);
        assert_eq!(v3 % 3, 0);
        assert_eq!(net.port_stats(b, 0).enqueued, 0, "b sent nothing");
    }

    #[test]
    fn queue_monitor_samples() {
        // Monitor the sender's NIC: 20 back-to-back packets queue there
        // (the switch port drains at its arrival rate and never backlogs).
        let (mut net, a, b, _s) = two_hosts();
        let _ = b;
        net.add_queue_monitor(
            a,
            0,
            Duration::from_micros(1),
            SimTime::ZERO,
            SimTime::from_micros(20),
        );
        for k in 0..20u64 {
            inject(&mut net, a, Packet::data(FlowId(k), a, b, 0, 1460));
        }
        net.run_until_idle();
        let m = &net.monitors()[0];
        assert_eq!(m.samples.len(), 21);
        assert!(m.samples.iter().any(|&(_, bytes, _)| bytes > 0));
        // Times are evenly spaced.
        assert_eq!(m.samples[1].0 - m.samples[0].0, Duration::from_micros(1));
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let (mut net, a, b, _s) = two_hosts();
            let _ = seed;
            for f in 0..50u64 {
                inject(&mut net, a, Packet::data(FlowId(f), a, b, 0, 1460));
            }
            net.run_until_idle();
            (net.now(), net.steps())
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    #[cfg(feature = "packet-trace")]
    fn tracing_records_packet_lifecycle() {
        let (mut net, a, b, _s) = two_hosts();
        net.enable_trace(1000, Some(FlowId(3)));
        inject(&mut net, a, Packet::data(FlowId(2), a, b, 0, 1460)); // filtered out
        inject(&mut net, a, Packet::data(FlowId(3), a, b, 0, 1460));
        net.run_until_idle();
        let t = net.tracer().unwrap();
        assert!(t.observed >= 3, "observed {}", t.observed);
        let kinds: Vec<crate::trace::TraceKind> = t.events().map(|e| e.kind).collect();
        assert!(kinds.contains(&crate::trace::TraceKind::Enqueue));
        assert!(kinds.contains(&crate::trace::TraceKind::TxStart));
        assert!(kinds.contains(&crate::trace::TraceKind::Arrive));
        assert!(t.events().all(|e| e.flow == FlowId(3)), "filter leaked");
    }

    /// a -- s1 -- {s2,s3} -- s4 -- b : two equal-cost paths (failover rig).
    fn diamond() -> (Network, NodeId, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut net = Network::new(4);
        let a = net.add_host(Box::new(NullAgent));
        let b = net.add_host(Box::new(NullAgent));
        let s1 = net.add_switch();
        let s2 = net.add_switch();
        let s3 = net.add_switch();
        let s4 = net.add_switch();
        let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
        let r = Rate::from_gbps(10);
        let d = Duration::from_micros(1);
        net.connect(a, cfg(), s1, cfg(), r, d);
        net.connect(s1, cfg(), s2, cfg(), r, d);
        net.connect(s1, cfg(), s3, cfg(), r, d);
        net.connect(s2, cfg(), s4, cfg(), r, d);
        net.connect(s3, cfg(), s4, cfg(), r, d);
        net.connect(s4, cfg(), b, cfg(), r, d);
        net.compute_routes();
        (net, a, b, s1, s2, s3, s4)
    }

    #[test]
    fn ecmp_fails_over_around_downed_link_and_recovers() {
        let (mut net, a, b, s1, s2, s3, s4) = diamond();
        net.set_link_up(s1, s2, false);
        assert!(!net.link_is_up(s1, s2));
        for f in 0..100u64 {
            inject(&mut net, a, Packet::data(FlowId(f), a, b, 0, 1460));
        }
        net.run_until_idle();
        let v2 = net
            .port_stats(s1, net.port_towards(s1, s2).unwrap())
            .dequeued;
        let v3 = net
            .port_stats(s1, net.port_towards(s1, s3).unwrap())
            .dequeued;
        assert_eq!(v2, 0, "downed link must carry nothing");
        assert_eq!(v3, 100, "all traffic fails over to the surviving path");
        let delivered = net
            .port_stats(s4, net.port_towards(s4, b).unwrap())
            .dequeued;
        assert_eq!(delivered, 100, "nothing was lost");
        // Bring the link back: ECMP spreads across both paths again.
        net.set_link_up(s1, s2, true);
        for f in 0..100u64 {
            inject(&mut net, a, Packet::data(FlowId(f), a, b, 0, 1460));
        }
        net.run_until_idle();
        let v2 = net
            .port_stats(s1, net.port_towards(s1, s2).unwrap())
            .dequeued;
        assert!(v2 > 0, "restored link carries traffic again");
    }

    #[test]
    fn unreachable_destination_drops_are_counted_not_fatal() {
        // Down both diamond arms: b is unreachable from s1 but the run
        // must terminate with counted no-route drops, not a hang or panic.
        let (mut net, a, b, s1, s2, s3, _s4) = diamond();
        net.set_link_up(s1, s2, false);
        net.set_link_up(s1, s3, false);
        for f in 0..10u64 {
            inject(&mut net, a, Packet::data(FlowId(f), a, b, 0, 1460));
        }
        net.run_until_idle();
        assert_eq!(net.perf().no_route_drops, 10);
        assert_eq!(net.port_stats(b, 0).enqueued, 0);
    }

    #[test]
    fn fault_plan_flap_replays_identically() {
        let run = || {
            let (mut net, a, b, s1, s2, _s3, s4) = diamond();
            net.install_fault_plan(crate::fault::FaultPlan::new().flap(
                s1,
                s2,
                SimTime::from_micros(5),
                Duration::from_micros(20),
                Duration::from_micros(10),
                SimTime::from_micros(300),
            ));
            for f in 0..200u64 {
                let t = SimTime::from_nanos(f * 1_000);
                net.push_event(
                    t,
                    Event::NicSend {
                        node: a,
                        pkt: Packet::data(FlowId(f), a, b, 0, 1460),
                    },
                );
            }
            net.run_until_idle();
            let v2 = net
                .port_stats(s1, net.port_towards(s1, s2).unwrap())
                .dequeued;
            let delivered = net
                .port_stats(s4, net.port_towards(s4, b).unwrap())
                .dequeued;
            (net.now(), net.steps(), v2, delivered)
        };
        let one = run();
        assert_eq!(one, run(), "flap schedule must be replay-identical");
        assert!(one.2 > 0, "flapping link still carried some traffic");
        assert_eq!(one.3, 200, "flaps delay but do not lose routed packets");
    }

    #[test]
    fn link_rate_and_delay_degradation_apply() {
        // Degrade the a–s link before any traffic: 10 Gbps → 1 Gbps and
        // 1 us → 100 us one-way.
        let (mut net, a, b, s) = two_hosts();
        net.install_fault_plan(
            crate::fault::FaultPlan::new()
                .at(
                    SimTime::ZERO,
                    crate::fault::FaultAction::SetLinkRate {
                        a,
                        b: s,
                        rate: Rate::from_gbps(1),
                    },
                )
                .at(
                    SimTime::ZERO,
                    crate::fault::FaultAction::SetLinkDelay {
                        a,
                        b: s,
                        delay: Duration::from_micros(100),
                    },
                ),
        );
        inject(&mut net, a, Packet::data(FlowId(1), a, b, 0, 1460));
        net.run_until_idle();
        // Data tx 12304 ns + 100 us prop on the first hop alone dwarfs the
        // original ~6.6 us round trip.
        let t = net.now().as_nanos();
        assert!(t > 110_000, "degraded path too fast: {t}ns");
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_routes_panic() {
        let mut net = Network::new(5);
        let a = net.add_host(Box::new(NullAgent));
        let b = net.add_host(Box::new(NullAgent));
        let s = net.add_switch();
        let cfg = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
        net.connect(
            a,
            cfg(),
            s,
            cfg(),
            Rate::from_gbps(10),
            Duration::from_micros(1),
        );
        net.connect(
            b,
            cfg(),
            s,
            cfg(),
            Rate::from_gbps(10),
            Duration::from_micros(1),
        );
        // compute_routes() deliberately not called.
        inject(&mut net, a, Packet::data(FlowId(1), a, b, 0, 100));
        net.run_until_idle();
    }
}
