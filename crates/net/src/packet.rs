//! The simulated packet.
//!
//! Payload bytes are counted, not stored — a packet-level simulator only
//! needs sizes, sequence numbers and flags. Wire size accounts for IP+TCP
//! headers and per-frame Ethernet overhead (header, FCS, preamble, IFG) so
//! that goodput comes out a few percent below line rate, as on real links
//! (the paper's DWRR experiment reports ≈9.6 Gbps goodput on a 10 Gbps
//! port).

use crate::ids::{FlowId, NodeId};
use ecnsharp_sim::{bytes, SimTime};

/// ECN codepoint of a packet (RFC 3168, ECT(0)/ECT(1) folded together).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ecn {
    /// Not ECN-capable transport.
    NotEct,
    /// ECN-capable, not marked.
    Ect,
    /// Congestion experienced.
    Ce,
}

impl Ecn {
    /// Is the packet ECN-capable (markable)?
    #[inline]
    pub fn is_ect(self) -> bool {
        !matches!(self, Ecn::NotEct)
    }

    /// Has the packet been marked?
    #[inline]
    pub fn is_ce(self) -> bool {
        matches!(self, Ecn::Ce)
    }
}

/// TCP-ish control flags (only the ones the simulation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Connection-open request.
    pub syn: bool,
    /// Final segment of the flow.
    pub fin: bool,
    /// Carries a (cumulative) acknowledgement.
    pub ack: bool,
    /// ECN-Echo: the receiver has seen CE (DCTCP echoes per-packet).
    pub ece: bool,
}

/// A simulated packet.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// First payload byte's offset within the flow (data packets).
    pub seq: u64,
    /// Cumulative acknowledgement (valid when `flags.ack`).
    pub ack: u64,
    /// Payload bytes carried.
    pub payload: u64,
    /// Control flags.
    pub flags: Flags,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// Service class for multi-queue schedulers (0 = default/highest).
    pub class: u8,
    /// Timestamp option: senders stamp data packets with their send time;
    /// receivers echo it in the triggered ACK, giving the sender clean RTT
    /// samples even across retransmissions.
    pub ts: SimTime,
    /// Scratch: when this packet entered the egress queue of the hop it is
    /// currently traversing. Set by the port at enqueue; only meaningful
    /// inside a port.
    pub enqueued_at: SimTime,
}

impl Packet {
    /// A data segment.
    pub fn data(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, payload: u64) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq,
            ack: 0,
            payload,
            flags: Flags::default(),
            ecn: Ecn::Ect,
            class: 0,
            ts: SimTime::ZERO,
            enqueued_at: SimTime::ZERO,
        }
    }

    /// A pure acknowledgement from `src` to `dst` acking `ack` bytes.
    pub fn ack(flow: FlowId, src: NodeId, dst: NodeId, ack: u64) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq: 0,
            ack,
            payload: 0,
            flags: Flags {
                ack: true,
                ..Flags::default()
            },
            ecn: Ecn::Ect,
            class: 0,
            ts: SimTime::ZERO,
            enqueued_at: SimTime::ZERO,
        }
    }

    /// Bytes that occupy buffer space and serialization time at a port:
    /// payload + IP/TCP headers + Ethernet framing, floored at the minimum
    /// Ethernet frame (64 B on the wire + 20 B preamble/IFG).
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        (self.payload + bytes::HDR + bytes::ETH_OVERHEAD).max(84)
    }

    /// IP-level size (payload + headers) — what byte-counted buffer
    /// thresholds like Eq. 1's `K` conventionally refer to.
    #[inline]
    pub fn ip_bytes(&self) -> u64 {
        self.payload + bytes::HDR
    }

    /// Sequence number one past the last payload byte (or `seq` itself for
    /// empty segments; SYN/FIN consume one virtual byte like real TCP so
    /// they can be acknowledged).
    #[inline]
    pub fn seq_end(&self) -> u64 {
        self.seq + self.payload + (self.flags.syn as u64) + (self.flags.fin as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_of_full_segment() {
        let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, bytes::MSS);
        assert_eq!(p.wire_bytes(), 1460 + 40 + 38);
        assert_eq!(p.ip_bytes(), 1500);
    }

    #[test]
    fn ack_padded_to_min_frame() {
        let p = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 1000);
        assert_eq!(p.wire_bytes(), 84);
        assert!(p.flags.ack);
        assert_eq!(p.payload, 0);
    }

    #[test]
    fn seq_end_counts_syn_fin() {
        let mut p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 100, 50);
        assert_eq!(p.seq_end(), 150);
        p.flags.syn = true;
        assert_eq!(p.seq_end(), 151);
        p.flags.fin = true;
        assert_eq!(p.seq_end(), 152);
    }

    #[test]
    fn ecn_predicates() {
        assert!(!Ecn::NotEct.is_ect());
        assert!(Ecn::Ect.is_ect());
        assert!(Ecn::Ce.is_ect());
        assert!(Ecn::Ce.is_ce());
        assert!(!Ecn::Ect.is_ce());
    }

    #[test]
    fn goodput_overhead_ratio() {
        // MSS payload per 1538 wire bytes => ~94.9% goodput at line rate,
        // matching the ~9.6/10 Gbps the paper reports.
        let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, bytes::MSS);
        let eff = p.payload as f64 / p.wire_bytes() as f64;
        assert!(eff > 0.94 && eff < 0.96, "{eff}");
    }
}
