//! The simulated packet.
//!
//! Payload bytes are counted, not stored — a packet-level simulator only
//! needs sizes, sequence numbers and flags. Wire size accounts for IP+TCP
//! headers and per-frame Ethernet overhead (header, FCS, preamble, IFG) so
//! that goodput comes out a few percent below line rate, as on real links
//! (the paper's DWRR experiment reports ≈9.6 Gbps goodput on a 10 Gbps
//! port).
//!
//! # Layout
//!
//! `Packet` is copied on every hop (port ring → wire event → next ring),
//! so its size is a first-order cache cost at fig9 scale. The struct is
//! packed to fit one cache line: `seq`/`ack`/`payload` are `u32`
//! (per-flow byte offsets — flows are capped at 4 GiB, two orders above
//! the largest figure workload, checked by the constructors), and the
//! four control flags, the ECN codepoint and the service class share one
//! 16-bit flag word. A compile-time assertion pins `size_of::<Packet>()`
//! at ≤ 64 bytes so a field addition cannot silently spill to two lines.

use crate::ids::{FlowId, NodeId};
use ecnsharp_sim::{bytes, SimTime};

/// One cache line: the packed [`Packet`] must never outgrow it.
const _: () = assert!(std::mem::size_of::<Packet>() <= 64);

/// ECN codepoint of a packet (RFC 3168, ECT(0)/ECT(1) folded together).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ecn {
    /// Not ECN-capable transport.
    NotEct,
    /// ECN-capable, not marked.
    Ect,
    /// Congestion experienced.
    Ce,
}

impl Ecn {
    /// Is the packet ECN-capable (markable)?
    #[inline]
    pub fn is_ect(self) -> bool {
        !matches!(self, Ecn::NotEct)
    }

    /// Has the packet been marked?
    #[inline]
    pub fn is_ce(self) -> bool {
        matches!(self, Ecn::Ce)
    }
}

/// TCP-ish control flags (only the ones the simulation needs). This is a
/// *view*: [`Packet::flags`] unpacks the flag word into one, and the
/// per-flag setters on `Packet` write back into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Connection-open request.
    pub syn: bool,
    /// Final segment of the flow.
    pub fin: bool,
    /// Carries a (cumulative) acknowledgement.
    pub ack: bool,
    /// ECN-Echo: the receiver has seen CE (DCTCP echoes per-packet).
    pub ece: bool,
}

// Flag-word layout: four control bits, two ECN bits, class byte on top.
const FW_SYN: u16 = 1 << 0;
const FW_FIN: u16 = 1 << 1;
const FW_ACK: u16 = 1 << 2;
const FW_ECE: u16 = 1 << 3;
const FW_ECN_SHIFT: u16 = 4;
const FW_ECN_MASK: u16 = 0b11 << FW_ECN_SHIFT;
const FW_CLASS_SHIFT: u16 = 8;

/// A simulated packet, packed into a single cache line (≤ 64 bytes,
/// compile-time asserted).
///
/// Byte offsets (`seq`, `ack`, `payload`) are stored as `u32` — the
/// constructors check the 4 GiB-per-flow invariant — and read back as
/// `u64` through accessors so arithmetic at the call sites stays in the
/// wide domain. Flags, the ECN codepoint and the service class share a
/// private flag word behind accessors.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// First payload byte's offset within the flow (data packets).
    seq: u32,
    /// Cumulative acknowledgement (valid when `flags().ack`).
    ack: u32,
    /// Payload bytes carried.
    payload: u32,
    /// Packed syn/fin/ack/ece + ECN codepoint + service class.
    fw: u16,
    /// Timestamp option: senders stamp data packets with their send time;
    /// receivers echo it in the triggered ACK, giving the sender clean RTT
    /// samples even across retransmissions.
    pub ts: SimTime,
    /// Scratch: when this packet entered the egress queue of the hop it is
    /// currently traversing. Set by the port at enqueue; only meaningful
    /// inside a port.
    pub enqueued_at: SimTime,
}

/// Check the 4 GiB per-flow byte-offset invariant on narrow stores.
#[inline]
fn narrow(v: u64, what: &str) -> u32 {
    debug_assert!(v <= u32::MAX as u64, "packet {what} {v} exceeds 4 GiB");
    let _ = what;
    v as u32
}

impl Packet {
    /// A data segment.
    pub fn data(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, payload: u64) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq: narrow(seq, "seq"),
            ack: 0,
            payload: narrow(payload, "payload"),
            fw: (Ecn::Ect as u16) << FW_ECN_SHIFT,
            ts: SimTime::ZERO,
            enqueued_at: SimTime::ZERO,
        }
    }

    /// A pure acknowledgement from `src` to `dst` acking `ack` bytes.
    pub fn ack(flow: FlowId, src: NodeId, dst: NodeId, ack: u64) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq: 0,
            ack: narrow(ack, "ack"),
            payload: 0,
            fw: FW_ACK | (Ecn::Ect as u16) << FW_ECN_SHIFT,
            ts: SimTime::ZERO,
            enqueued_at: SimTime::ZERO,
        }
    }

    /// First payload byte's offset within the flow.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq as u64
    }

    /// Cumulative acknowledgement (valid when `flags().ack`).
    #[inline]
    pub fn ack_no(&self) -> u64 {
        self.ack as u64
    }

    /// Payload bytes carried.
    #[inline]
    pub fn payload(&self) -> u64 {
        self.payload as u64
    }

    /// Control flags, unpacked from the flag word.
    #[inline]
    pub fn flags(&self) -> Flags {
        Flags {
            syn: self.fw & FW_SYN != 0,
            fin: self.fw & FW_FIN != 0,
            ack: self.fw & FW_ACK != 0,
            ece: self.fw & FW_ECE != 0,
        }
    }

    /// Set/clear the SYN flag.
    #[inline]
    pub fn set_syn(&mut self, v: bool) {
        self.set_bit(FW_SYN, v);
    }

    /// Set/clear the FIN flag.
    #[inline]
    pub fn set_fin(&mut self, v: bool) {
        self.set_bit(FW_FIN, v);
    }

    /// Set/clear the ACK flag.
    #[inline]
    pub fn set_ack_flag(&mut self, v: bool) {
        self.set_bit(FW_ACK, v);
    }

    /// Set/clear the ECN-Echo flag.
    #[inline]
    pub fn set_ece(&mut self, v: bool) {
        self.set_bit(FW_ECE, v);
    }

    #[inline]
    fn set_bit(&mut self, bit: u16, v: bool) {
        if v {
            self.fw |= bit;
        } else {
            self.fw &= !bit;
        }
    }

    /// ECN codepoint.
    #[inline]
    pub fn ecn(&self) -> Ecn {
        match (self.fw & FW_ECN_MASK) >> FW_ECN_SHIFT {
            0 => Ecn::NotEct,
            1 => Ecn::Ect,
            _ => Ecn::Ce,
        }
    }

    /// Overwrite the ECN codepoint (AQM marking, sender codepoint setup).
    #[inline]
    pub fn set_ecn(&mut self, e: Ecn) {
        self.fw = (self.fw & !FW_ECN_MASK) | ((e as u16) << FW_ECN_SHIFT);
    }

    /// Service class for multi-queue schedulers (0 = default/highest).
    #[inline]
    pub fn class(&self) -> u8 {
        (self.fw >> FW_CLASS_SHIFT) as u8
    }

    /// Set the service class.
    #[inline]
    pub fn set_class(&mut self, c: u8) {
        self.fw = (self.fw & 0xff) | ((c as u16) << FW_CLASS_SHIFT);
    }

    /// Bytes that occupy buffer space and serialization time at a port:
    /// payload + IP/TCP headers + Ethernet framing, floored at the minimum
    /// Ethernet frame (64 B on the wire + 20 B preamble/IFG).
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        (self.payload as u64 + bytes::HDR + bytes::ETH_OVERHEAD).max(84)
    }

    /// IP-level size (payload + headers) — what byte-counted buffer
    /// thresholds like Eq. 1's `K` conventionally refer to.
    #[inline]
    pub fn ip_bytes(&self) -> u64 {
        self.payload as u64 + bytes::HDR
    }

    /// Sequence number one past the last payload byte (or `seq` itself for
    /// empty segments; SYN/FIN consume one virtual byte like real TCP so
    /// they can be acknowledged).
    #[inline]
    pub fn seq_end(&self) -> u64 {
        self.seq as u64
            + self.payload as u64
            + (self.fw & FW_SYN != 0) as u64
            + (self.fw & FW_FIN != 0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_of_full_segment() {
        let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, bytes::MSS);
        assert_eq!(p.wire_bytes(), 1460 + 40 + 38);
        assert_eq!(p.ip_bytes(), 1500);
    }

    #[test]
    fn ack_padded_to_min_frame() {
        let p = Packet::ack(FlowId(1), NodeId(1), NodeId(0), 1000);
        assert_eq!(p.wire_bytes(), 84);
        assert!(p.flags().ack);
        assert_eq!(p.payload(), 0);
        assert_eq!(p.ack_no(), 1000);
    }

    #[test]
    fn seq_end_counts_syn_fin() {
        let mut p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 100, 50);
        assert_eq!(p.seq_end(), 150);
        p.set_syn(true);
        assert_eq!(p.seq_end(), 151);
        p.set_fin(true);
        assert_eq!(p.seq_end(), 152);
    }

    #[test]
    fn ecn_predicates() {
        assert!(!Ecn::NotEct.is_ect());
        assert!(Ecn::Ect.is_ect());
        assert!(Ecn::Ce.is_ect());
        assert!(Ecn::Ce.is_ce());
        assert!(!Ecn::Ect.is_ce());
    }

    #[test]
    fn flag_word_round_trips() {
        let mut p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 100);
        assert_eq!(p.flags(), Flags::default());
        assert_eq!(p.ecn(), Ecn::Ect);
        assert_eq!(p.class(), 0);
        p.set_ece(true);
        p.set_class(3);
        p.set_ecn(Ecn::Ce);
        assert!(p.flags().ece && !p.flags().syn);
        assert_eq!(p.ecn(), Ecn::Ce);
        assert_eq!(p.class(), 3);
        p.set_ece(false);
        p.set_ecn(Ecn::NotEct);
        assert!(!p.flags().ece);
        assert_eq!(p.ecn(), Ecn::NotEct);
        assert_eq!(p.class(), 3, "class survives flag churn");
    }

    #[test]
    fn packet_fits_one_cache_line() {
        assert!(std::mem::size_of::<Packet>() <= 64);
    }

    #[test]
    fn goodput_overhead_ratio() {
        // MSS payload per 1538 wire bytes => ~94.9% goodput at line rate,
        // matching the ~9.6/10 Gbps the paper reports.
        let p = Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, bytes::MSS);
        let eff = p.payload() as f64 / p.wire_bytes() as f64;
        assert!(eff > 0.94 && eff < 0.96, "{eff}");
    }
}
