//! Deterministic fault injection: scheduled link-state changes (flaps,
//! rate/latency degradation) and a seeded Gilbert–Elliott burst-loss
//! model.
//!
//! A [`FaultPlan`] is a list of `(time, action)` pairs installed into a
//! [`crate::Network`] with [`crate::Network::install_fault_plan`]; the
//! network replays it through its ordinary event queue, so fault timing is
//! part of the same `(time, seq)` total order as every packet and timer —
//! runs with the same seed and the same plan are byte-identical.
//! [`GilbertElliott`] lives inside an egress port (see
//! [`crate::PortConfig::with_ge`]) and burns exactly two dice draws per
//! transmitted packet, so enabling it shifts the dice stream by a fixed,
//! replayable amount.

use crate::ids::NodeId;
use ecnsharp_sim::{Duration, Rate, SimTime};

/// Validate a probability knob at construction time: finite and in
/// `[0, 1]`. `NaN` fails the range check (all comparisons with `NaN` are
/// false) and is rejected like any other out-of-range value.
pub(crate) fn validate_p(name: &str, p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "{name} must be a probability in [0, 1], got {p}"
    );
    p
}

/// A two-state Markov (Gilbert–Elliott) packet-loss process: a *good*
/// state with loss probability [`GilbertElliott::loss_good`] and a *bad*
/// state with [`GilbertElliott::loss_bad`], switching per packet with
/// probabilities `p_gb` (good→bad) and `p_bg` (bad→good). Losses cluster
/// into bursts of mean length `1 / p_bg` packets — the loss pattern link
/// errors and shallow-buffer overflow actually produce, unlike the
/// independent per-packet coin of `fault_drop_p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-packet probability of switching good → bad.
    pub p_gb: f64,
    /// Per-packet probability of switching bad → good.
    pub p_bg: f64,
    /// Drop probability while in the bad state.
    pub loss_bad: f64,
    /// Drop probability while in the good state.
    pub loss_good: f64,
    /// Current chain state (starts good).
    in_bad: bool,
}

impl GilbertElliott {
    /// Build a model from explicit transition and loss probabilities.
    pub fn new(p_gb: f64, p_bg: f64, loss_bad: f64, loss_good: f64) -> Self {
        GilbertElliott {
            p_gb: validate_p("p_gb", p_gb),
            p_bg: validate_p("p_bg", p_bg),
            loss_bad: validate_p("loss_bad", loss_bad),
            loss_good: validate_p("loss_good", loss_good),
            in_bad: false,
        }
    }

    /// Parameterize from a target long-run loss rate and a mean burst
    /// length (in packets): `p_bg = 1/mean_burst_len`, `p_gb` solved so
    /// the stationary bad-state probability equals `mean_loss`, with the
    /// bad state dropping everything and the good state nothing.
    pub fn from_mean_loss(mean_loss: f64, mean_burst_len: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&mean_loss),
            "mean_loss must be in [0, 1), got {mean_loss}"
        );
        assert!(
            mean_burst_len >= 1.0,
            "mean_burst_len must be >= 1 packet, got {mean_burst_len}"
        );
        if mean_loss <= 0.0 {
            return GilbertElliott::new(0.0, 1.0, 0.0, 0.0);
        }
        let p_bg = 1.0 / mean_burst_len;
        let p_gb = (mean_loss * p_bg / (1.0 - mean_loss)).min(1.0);
        GilbertElliott::new(p_gb, p_bg, 1.0, 0.0)
    }

    /// Stationary probability of the bad state, `p_gb / (p_gb + p_bg)`.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_gb + self.p_bg;
        if denom > 0.0 {
            self.p_gb / denom
        } else {
            0.0
        }
    }

    /// Long-run mean loss rate implied by the parameters.
    pub fn mean_loss(&self) -> f64 {
        let bad = self.stationary_bad();
        bad * self.loss_bad + (1.0 - bad) * self.loss_good
    }

    /// Advance the chain by one packet and decide its fate; `true` means
    /// drop. Always consumes exactly two uniform draws from `dice` — one
    /// for the state transition, one for the loss decision — so the dice
    /// stream's alignment never depends on the chain's current state.
    #[inline]
    pub fn roll(&mut self, mut dice: impl FnMut() -> f64) -> bool {
        let transition = dice();
        if self.in_bad {
            if transition < self.p_bg {
                self.in_bad = false;
            }
        } else if transition < self.p_gb {
            self.in_bad = true;
        }
        let loss = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        let fate = dice();
        loss > 0.0 && fate < loss
    }
}

/// One thing a fault plan can do to the network. Link actions apply to
/// both directions of the `a`↔`b` link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Take the link down: queued and newly arriving packets wait (or tail
    /// drop); routes are rebuilt so ECMP fails over where an alternative
    /// path exists.
    LinkDown {
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
    },
    /// Bring the link back up: routes are rebuilt and both egress ports
    /// are kicked so backlogged packets resume immediately.
    LinkUp {
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
    },
    /// Degrade (or restore) the link's serialization rate.
    SetLinkRate {
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
        /// New rate for both directions.
        rate: Rate,
    },
    /// Change the link's one-way propagation delay (latency degradation).
    SetLinkDelay {
        /// One end of the link.
        a: NodeId,
        /// The other end.
        b: NodeId,
        /// New propagation delay for both directions.
        delay: Duration,
    },
}

/// A scheduled fault: apply `action` at simulation time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault takes effect.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// An ordered schedule of fault events. Built with the fluent [`at`] /
/// [`flap`] combinators and installed once via
/// [`crate::Network::install_fault_plan`].
///
/// [`at`]: FaultPlan::at
/// [`flap`]: FaultPlan::flap
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The scheduled events, in insertion order. Events at equal times
    /// apply in insertion order (the network assigns them queue sequence
    /// numbers as they are installed).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `action` at `at`.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Flap the `a`↔`b` link: starting at `first_down`, take it down for
    /// `down_time` out of every `period`, until `until` (exclusive).
    pub fn flap(
        mut self,
        a: NodeId,
        b: NodeId,
        first_down: SimTime,
        period: Duration,
        down_time: Duration,
        until: SimTime,
    ) -> Self {
        assert!(!period.is_zero(), "flap period must be non-zero");
        assert!(
            down_time < period,
            "down_time {down_time} must be shorter than the flap period {period}"
        );
        let mut t = first_down;
        while t < until {
            self = self.at(t, FaultAction::LinkDown { a, b });
            self = self.at(t + down_time, FaultAction::LinkUp { a, b });
            t = t + period;
        }
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnsharp_sim::Rng;

    #[test]
    fn ge_from_mean_loss_hits_target_rate() {
        let mut ge = GilbertElliott::from_mean_loss(0.01, 8.0);
        assert!((ge.mean_loss() - 0.01).abs() < 1e-12);
        let mut rng = Rng::seed_from_u64(7);
        let n = 200_000;
        let mut drops = 0u64;
        for _ in 0..n {
            if ge.roll(|| rng.f64()) {
                drops += 1;
            }
        }
        let observed = drops as f64 / n as f64;
        assert!(
            (observed - 0.01).abs() < 0.003,
            "observed loss {observed} far from 1%"
        );
    }

    #[test]
    fn ge_losses_cluster_into_bursts() {
        let mut ge = GilbertElliott::from_mean_loss(0.02, 10.0);
        let mut rng = Rng::seed_from_u64(11);
        let mut bursts = Vec::new();
        let mut run = 0u64;
        for _ in 0..300_000 {
            if ge.roll(|| rng.f64()) {
                run += 1;
            } else if run > 0 {
                bursts.push(run);
                run = 0;
            }
        }
        let mean_burst = bursts.iter().sum::<u64>() as f64 / bursts.len() as f64;
        // Target mean burst is 10 packets (p_bg = 0.1); allow generous
        // statistical slack but rule out the memoryless value of ~1.02
        // that independent 2% drops would give.
        assert!(
            mean_burst > 5.0 && mean_burst < 15.0,
            "mean burst {mean_burst}"
        );
    }

    #[test]
    fn ge_roll_is_seed_deterministic_and_draw_exact() {
        let seq = |seed: u64| {
            let mut ge = GilbertElliott::from_mean_loss(0.05, 4.0);
            let mut rng = Rng::seed_from_u64(seed);
            let mut draws = 0u64;
            let fates: Vec<bool> = (0..1_000)
                .map(|_| {
                    ge.roll(|| {
                        draws += 1;
                        rng.f64()
                    })
                })
                .collect();
            (fates, draws)
        };
        let (f1, d1) = seq(42);
        let (f2, d2) = seq(42);
        assert_eq!(f1, f2, "same seed must replay identically");
        assert_eq!(d1, 2_000, "exactly two draws per packet");
        assert_eq!(d2, 2_000);
    }

    #[test]
    fn ge_zero_loss_never_drops() {
        let mut ge = GilbertElliott::from_mean_loss(0.0, 8.0);
        let mut rng = Rng::seed_from_u64(3);
        assert!((0..10_000).all(|_| !ge.roll(|| rng.f64())));
    }

    #[test]
    #[should_panic(expected = "probability in [0, 1]")]
    fn ge_rejects_out_of_range() {
        let _ = GilbertElliott::new(1.5, 0.1, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "probability in [0, 1]")]
    fn ge_rejects_nan() {
        let _ = GilbertElliott::new(f64::NAN, 0.1, 1.0, 0.0);
    }

    #[test]
    fn flap_builder_alternates_down_up() {
        let (a, b) = (NodeId(3), NodeId(5));
        let plan = FaultPlan::new().flap(
            a,
            b,
            SimTime::from_micros(100),
            Duration::from_micros(200),
            Duration::from_micros(50),
            SimTime::from_micros(500),
        );
        // Flap cycles start at 100 and 300 us (500 is excluded).
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                at: SimTime::from_micros(100),
                action: FaultAction::LinkDown { a, b },
            }
        );
        assert_eq!(
            plan.events[1],
            FaultEvent {
                at: SimTime::from_micros(150),
                action: FaultAction::LinkUp { a, b },
            }
        );
        assert_eq!(plan.events[2].at, SimTime::from_micros(300));
        assert_eq!(plan.events[3].at, SimTime::from_micros(350));
        // Every down has a matching up inside the window.
        let downs = plan
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::LinkDown { .. }))
            .count();
        let ups = plan.len() - downs;
        assert_eq!(downs, ups);
    }

    #[test]
    #[should_panic(expected = "shorter than the flap period")]
    fn flap_rejects_down_time_longer_than_period() {
        let _ = FaultPlan::new().flap(
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
            Duration::from_micros(100),
            Duration::from_micros(100),
            SimTime::from_millis(1),
        );
    }
}
