//! Egress ports: the buffered, AQM-policed, scheduler-ordered transmit side
//! of every link attachment. The queueing behaviour the whole paper is
//! about lives here.

use crate::arena::{PooledRing, RingArena};
use crate::fault::{validate_p, GilbertElliott};
use crate::ids::NodeId;
use crate::packet::{Ecn, Packet};
use ecnsharp_aqm::{Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState};
use ecnsharp_sched::{Dequeued, Fifo, Scheduler};
use ecnsharp_sim::{Duration, Rate, Rng, SimTime};
use ecnsharp_telemetry::Subscriber;
#[cfg(feature = "telemetry")]
use ecnsharp_telemetry::{
    CeMarked, DropReason, EpisodeEntered, EpisodeExited, MarkSite, Meta, PacketDropped,
    PacketEnqueued, SojournSampled,
};

/// The scheduler slot of a port. Almost every port in every experiment is
/// a plain FIFO, and its enqueue/dequeue/backlog calls sit on the
/// per-packet hot path — so the FIFO case is stored inline and statically
/// dispatched, with a boxed trait object as the escape hatch for the
/// multi-class schedulers (DWRR in §5.4).
pub enum PortSched {
    /// Inline single-queue FIFO (static dispatch, private ring).
    Fifo(Fifo<Packet>),
    /// Single-queue FIFO whose slots live in the owning node's shared
    /// [`RingArena`] (switch ports; see [`crate::arena`]).
    Pooled(PooledRing),
    /// Any other scheduler, behind the [`Scheduler`] trait.
    Dyn(Box<dyn Scheduler<Packet>>),
}

impl PortSched {
    #[inline]
    fn classes(&self) -> usize {
        match self {
            PortSched::Fifo(_) | PortSched::Pooled(_) => 1,
            PortSched::Dyn(s) => s.classes(),
        }
    }

    #[inline]
    fn enqueue(&mut self, arena: &mut RingArena, class: usize, bytes: u64, item: Packet) {
        match self {
            PortSched::Fifo(f) => f.enqueue(class, bytes, item),
            PortSched::Pooled(r) => {
                debug_assert_eq!(class, 0, "pooled FIFO has a single class");
                r.enqueue(arena, bytes, item);
            }
            PortSched::Dyn(s) => s.enqueue(class, bytes, item),
        }
    }

    #[inline]
    fn dequeue(&mut self, arena: &mut RingArena) -> Option<Dequeued<Packet>> {
        match self {
            PortSched::Fifo(f) => f.dequeue(),
            PortSched::Pooled(r) => r.dequeue(arena).map(|(bytes, item)| Dequeued {
                class: 0,
                bytes,
                item,
            }),
            PortSched::Dyn(s) => s.dequeue(),
        }
    }

    #[inline]
    fn backlog_bytes(&self) -> u64 {
        match self {
            PortSched::Fifo(f) => Scheduler::backlog_bytes(f),
            PortSched::Pooled(r) => r.backlog_bytes(),
            PortSched::Dyn(s) => s.backlog_bytes(),
        }
    }

    #[inline]
    fn backlog_pkts(&self) -> u64 {
        match self {
            PortSched::Fifo(f) => Scheduler::backlog_pkts(f),
            PortSched::Pooled(r) => r.backlog_pkts(),
            PortSched::Dyn(s) => s.backlog_pkts(),
        }
    }
}

/// Slots a port's ring window gets in its node's arena: one buffer's
/// worth of MTU packets, the same pre-sizing the inline FIFO uses.
pub(crate) fn ring_slots(capacity_bytes: u64) -> usize {
    (capacity_bytes / 1538).clamp(16, 4096) as usize
}

/// Window size for a *pooled* ring: the MTU-packet estimate plus a thin
/// slack margin. The slack matters — a queue held at byte capacity by tail
/// drop packs slightly more sub-MTU packets than `ring_slots` predicts,
/// and a window that is even one slot too small routes every enqueue
/// through the overflow deque exactly when the port is hottest (each
/// packet then gets copied twice). The margin stays thin on purpose:
/// window footprint is the whole point of pooling, and a saturated ring
/// walks its entire window cyclically.
pub(crate) fn pooled_ring_slots(capacity_bytes: u64) -> usize {
    let est = ring_slots(capacity_bytes);
    est + est / 8 + 8
}

/// Static configuration of an egress port.
pub struct PortConfig {
    /// Buffer capacity in wire bytes (tail drop beyond it).
    pub capacity_bytes: u64,
    /// AQM policy instance.
    pub aqm: Box<dyn Aqm>,
    /// Packet scheduler instance.
    pub sched: PortSched,
    /// Probability of dropping an outgoing packet on the wire (fault
    /// injection; 0.0 disables). Deterministically seeded by the network.
    pub fault_drop_p: f64,
    /// Probability of corrupting an outgoing packet on the wire — the
    /// receiver's checksum fails and the packet is dropped, counted
    /// separately from `fault_drop_p` (0.0 disables).
    pub corrupt_p: f64,
    /// Optional Gilbert–Elliott burst-loss process applied to outgoing
    /// packets (`None` disables).
    pub ge: Option<GilbertElliott>,
}

impl PortConfig {
    /// A FIFO port with the given buffer and AQM, no fault injection.
    pub fn fifo(capacity_bytes: u64, aqm: Box<dyn Aqm>) -> Self {
        // Pre-size for a buffer's worth of MTU packets (wire MTU ≈ 1538 B)
        // so steady-state queueing never grows the deque.
        let pkts = ring_slots(capacity_bytes);
        PortConfig {
            capacity_bytes,
            aqm,
            sched: PortSched::Fifo(Fifo::with_capacity(pkts)),
            fault_drop_p: 0.0,
            corrupt_p: 0.0,
            ge: None,
        }
    }

    /// Replace the scheduler (e.g. DWRR for the §5.4 experiment).
    pub fn with_sched(mut self, sched: Box<dyn Scheduler<Packet>>) -> Self {
        self.sched = PortSched::Dyn(sched);
        self
    }

    /// Enable random wire drops with probability `p` (fault injection).
    /// Panics unless `p` is a probability in `[0, 1]` (NaN rejected).
    pub fn with_fault_drop(mut self, p: f64) -> Self {
        self.fault_drop_p = validate_p("fault_drop_p", p);
        self
    }

    /// Enable wire corruption (checksum-fail → drop) with probability `p`.
    /// Panics unless `p` is a probability in `[0, 1]` (NaN rejected).
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt_p = validate_p("corrupt_p", p);
        self
    }

    /// Attach a Gilbert–Elliott burst-loss process to the wire.
    pub fn with_ge(mut self, ge: GilbertElliott) -> Self {
        self.ge = Some(ge);
        self
    }
}

/// Counters exposed per port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Packets admitted to the queue.
    pub enqueued: u64,
    /// Packets handed to the wire.
    pub dequeued: u64,
    /// Packets refused because the buffer was full.
    pub tail_drops: u64,
    /// Packets dropped by the AQM at enqueue.
    pub aqm_enq_drops: u64,
    /// Packets dropped by the AQM at dequeue.
    pub aqm_deq_drops: u64,
    /// Packets dropped by fault injection on the wire.
    pub fault_drops: u64,
    /// Packets corrupted on the wire (checksum fail at the receiver).
    pub corrupt_drops: u64,
    /// Packets lost to the Gilbert–Elliott burst-loss process.
    pub burst_drops: u64,
    /// CE marks applied at enqueue.
    pub enq_marks: u64,
    /// CE marks applied at dequeue.
    pub deq_marks: u64,
}

impl PortStats {
    /// All drops combined.
    pub fn total_drops(&self) -> u64 {
        self.tail_drops
            + self.aqm_enq_drops
            + self.aqm_deq_drops
            + self.fault_drops
            + self.corrupt_drops
            + self.burst_drops
    }

    /// All CE marks combined.
    pub fn total_marks(&self) -> u64 {
        self.enq_marks + self.deq_marks
    }
}

/// The egress side of a link attachment.
pub struct EgressPort {
    /// Peer node on the other end of the wire.
    pub peer: NodeId,
    /// Peer's port index (its ingress identity; informational).
    pub peer_port: usize,
    /// Serialization rate.
    pub rate: Rate,
    /// Propagation delay to the peer.
    pub delay: Duration,
    pub(crate) capacity_bytes: u64,
    pub(crate) aqm: Box<dyn Aqm>,
    pub(crate) sched: PortSched,
    pub(crate) fault_drop_p: f64,
    pub(crate) corrupt_p: f64,
    pub(crate) ge: Option<GilbertElliott>,
    /// Is the attached link up? A downed port neither transmits nor
    /// appears in route computation; queued packets wait for the link to
    /// come back (or tail-drop new arrivals meanwhile).
    pub(crate) link_up: bool,
    /// Is a packet currently being serialized?
    pub(crate) busy: bool,
    pub(crate) stats: PortStats,
    /// Cumulative transmitted *payload* bytes per service class (goodput
    /// accounting for the scheduling experiments).
    pub(crate) tx_payload_per_class: Vec<u64>,
    /// Wire bytes admitted to the queue (strict-invariants accounting).
    pub(crate) accounted_in_bytes: u64,
    /// Wire bytes removed from the queue — transmitted or dropped after
    /// admission (strict-invariants accounting).
    pub(crate) accounted_out_bytes: u64,
    /// Node this port belongs to (telemetry event identity; set by
    /// [`crate::Network::connect`], `NodeId(0)` for standalone ports).
    pub(crate) owner: NodeId,
    /// Index of this port within its owner (telemetry event identity).
    pub(crate) owner_port: u64,
    /// Fault-injection dice stream owned by this port, seeded from the
    /// network seed and the port's identity at [`crate::Network::connect`]
    /// time. Per-port streams (rather than one network-global RNG) make
    /// fault outcomes a pure function of the port's own traffic, which is
    /// what lets a sharded run consume dice identically to a serial run.
    pub(crate) dice: Rng,
}

/// Outcome of asking a port for its next transmission.
pub(crate) struct TxStart {
    /// The packet to put on the wire.
    pub pkt: Packet,
    /// Serialization time at this port's rate.
    pub tx_time: Duration,
}

impl EgressPort {
    pub(crate) fn new(
        peer: NodeId,
        peer_port: usize,
        rate: Rate,
        delay: Duration,
        cfg: PortConfig,
    ) -> Self {
        // Pre-size the per-class goodput counters so the dequeue path never
        // reallocates them.
        let classes = cfg.sched.classes();
        EgressPort {
            peer,
            peer_port,
            rate,
            delay,
            capacity_bytes: cfg.capacity_bytes,
            aqm: cfg.aqm,
            sched: cfg.sched,
            fault_drop_p: cfg.fault_drop_p,
            corrupt_p: cfg.corrupt_p,
            ge: cfg.ge,
            link_up: true,
            busy: false,
            stats: PortStats::default(),
            tx_payload_per_class: vec![0; classes],
            accounted_in_bytes: 0,
            accounted_out_bytes: 0,
            owner: NodeId(0),
            owner_port: 0,
            dice: Rng::seed_from_u64(0),
        }
    }

    /// (Re)seed the port's fault-injection dice stream.
    pub(crate) fn seed_dice(&mut self, seed: u64) {
        self.dice = Rng::seed_from_u64(seed);
    }

    /// Migrate an inline-FIFO port onto the owning node's shared
    /// [`RingArena`]. Called at [`crate::Network::connect`] time (the
    /// queue is necessarily empty); ports with a [`PortSched::Dyn`]
    /// scheduler keep their own storage.
    pub(crate) fn pool_ring(&mut self, arena: &mut RingArena) {
        if let PortSched::Fifo(f) = &self.sched {
            debug_assert_eq!(
                Scheduler::backlog_pkts(f),
                0,
                "ring pooling requires an empty queue"
            );
            let cap = pooled_ring_slots(self.capacity_bytes);
            let off = arena.alloc(cap);
            self.sched = PortSched::Pooled(PooledRing::new(off, cap));
        }
    }

    /// [`Self::next_tx`] drawing dice from the port's own seeded stream.
    ///
    /// Ports without any fault knob never consume dice (the injector
    /// short-circuits on `p > 0.0` / `ge.is_some()`), so the common
    /// fault-free path skips the stream entirely.
    pub(crate) fn next_tx_dice<S: Subscriber>(
        &mut self,
        now: SimTime,
        arena: &mut RingArena,
        sub: &mut S,
    ) -> Option<TxStart> {
        if self.fault_drop_p > 0.0 || self.corrupt_p > 0.0 || self.ge.is_some() {
            let mut rng = std::mem::replace(&mut self.dice, Rng::seed_from_u64(0));
            let tx = self.next_tx(now, || rng.f64(), arena, sub);
            self.dice = rng;
            tx
        } else {
            // Never called: every dice site is behind a knob checked above.
            self.next_tx(now, || 0.0, arena, sub)
        }
    }

    /// Port statistics so far.
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Queued wire bytes.
    pub fn backlog_bytes(&self) -> u64 {
        self.sched.backlog_bytes()
    }

    /// Queued packets.
    pub fn backlog_pkts(&self) -> u64 {
        self.sched.backlog_pkts()
    }

    /// AQM scheme name (for reports).
    pub fn aqm_name(&self) -> &'static str {
        self.aqm.name()
    }

    /// Downcast access to the AQM's internals, for schemes that opt into
    /// [`ecnsharp_aqm::Aqm::as_any`] (white-box equivalence assertions).
    pub fn aqm_as_any(&self) -> Option<&dyn std::any::Any> {
        self.aqm.as_any()
    }

    /// Cumulative transmitted payload bytes per service class (classes the
    /// port never served read as 0).
    pub fn tx_payload_per_class(&self) -> &[u64] {
        &self.tx_payload_per_class
    }

    fn queue_state(&self) -> QueueState {
        QueueState {
            backlog_bytes: self.sched.backlog_bytes(),
            backlog_pkts: self.sched.backlog_pkts(),
            capacity_bytes: self.capacity_bytes,
            drain_rate: self.rate,
        }
    }

    fn view(pkt: &Packet) -> PacketView {
        PacketView {
            bytes: pkt.wire_bytes(),
            ect: pkt.ecn().is_ect(),
            enqueued_at: pkt.enqueued_at,
        }
    }

    /// Telemetry metadata stamp for an event at `at` on this port.
    #[cfg(feature = "telemetry")]
    #[inline]
    fn meta(&self, at: SimTime) -> Meta {
        Meta {
            at,
            node: self.owner.0 as u64,
        }
    }

    /// A [`PacketDropped`] event for `pkt` with the given reason.
    #[cfg(feature = "telemetry")]
    #[inline]
    fn drop_ev(&self, pkt: &Packet, reason: DropReason) -> PacketDropped {
        PacketDropped {
            port: self.owner_port,
            flow: pkt.flow.0,
            seq: pkt.seq(),
            payload: pkt.payload(),
            wire_bytes: pkt.wire_bytes(),
            reason,
        }
    }

    /// Forward any pending ECN♯ episode entry/exit from the AQM to the
    /// subscriber. Polled after every AQM decision.
    #[cfg(feature = "telemetry")]
    #[inline]
    fn emit_episode<S: Subscriber>(&mut self, now: SimTime, sub: &mut S) {
        if !S::ENABLED {
            return;
        }
        if let Some(tr) = self.aqm.take_episode_transition() {
            let meta = self.meta(now);
            if tr.entered {
                sub.on_episode_entered(
                    &meta,
                    &EpisodeEntered {
                        port: self.owner_port,
                    },
                );
            } else {
                sub.on_episode_exited(
                    &meta,
                    &EpisodeExited {
                        port: self.owner_port,
                        marks: tr.marks,
                    },
                );
            }
        }
    }

    #[cfg(not(feature = "telemetry"))]
    #[inline]
    fn emit_episode<S: Subscriber>(&mut self, _now: SimTime, _sub: &mut S) {}

    /// Admit `pkt` to the queue (tail-drop capacity check, then AQM).
    /// Returns `true` when the packet was queued. Telemetry events
    /// (enqueue, drops, marks) are delivered to `sub`.
    pub(crate) fn enqueue<S: Subscriber>(
        &mut self,
        now: SimTime,
        mut pkt: Packet,
        arena: &mut RingArena,
        sub: &mut S,
    ) -> bool {
        let wire = pkt.wire_bytes();
        let backlog = self.sched.backlog_bytes();
        if backlog + wire > self.capacity_bytes {
            self.stats.tail_drops += 1;
            emit!(
                sub,
                on_packet_dropped,
                self.meta(now),
                self.drop_ev(&pkt, DropReason::Tail)
            );
            return false;
        }
        pkt.enqueued_at = now;
        let verdict = self
            .aqm
            .on_enqueue(now, &self.queue_state(), &Self::view(&pkt));
        self.emit_episode(now, sub);
        match verdict {
            EnqueueVerdict::Drop => {
                self.stats.aqm_enq_drops += 1;
                emit!(
                    sub,
                    on_packet_dropped,
                    self.meta(now),
                    self.drop_ev(&pkt, DropReason::AqmEnqueue)
                );
                return false;
            }
            EnqueueVerdict::AdmitMark => {
                debug_assert!(pkt.ecn().is_ect());
                pkt.set_ecn(Ecn::Ce);
                self.stats.enq_marks += 1;
                emit!(
                    sub,
                    on_ce_marked,
                    self.meta(now),
                    CeMarked {
                        port: self.owner_port,
                        flow: pkt.flow.0,
                        seq: pkt.seq(),
                        site: MarkSite::Enqueue,
                    }
                );
            }
            EnqueueVerdict::Admit => {}
        }
        emit!(
            sub,
            on_packet_enqueued,
            self.meta(now),
            PacketEnqueued {
                port: self.owner_port,
                flow: pkt.flow.0,
                seq: pkt.seq(),
                payload: pkt.payload(),
                wire_bytes: wire,
                backlog_bytes: backlog,
                marked: pkt.ecn() == Ecn::Ce,
            }
        );
        let class = (pkt.class() as usize).min(self.sched.classes() - 1);
        self.sched.enqueue(arena, class, wire, pkt);
        self.stats.enqueued += 1;
        if cfg!(feature = "strict-invariants") {
            self.accounted_in_bytes += wire;
            ecnsharp_sim::invariant!(
                self.accounted_in_bytes == self.accounted_out_bytes + self.sched.backlog_bytes(),
                "byte conservation broken after enqueue: in={} out={} backlog={}",
                self.accounted_in_bytes,
                self.accounted_out_bytes,
                self.sched.backlog_bytes()
            );
        }
        true
    }

    /// Pull the next transmittable packet, applying dequeue-time AQM and
    /// fault injection. `dice` supplies deterministic uniform randoms for
    /// the fault injector. Returns `None` when the queue is empty.
    /// Telemetry events (sojourn samples, marks, wire drops, episode
    /// transitions) are delivered to `sub`.
    pub(crate) fn next_tx<S: Subscriber>(
        &mut self,
        now: SimTime,
        mut dice: impl FnMut() -> f64,
        arena: &mut RingArena,
        sub: &mut S,
    ) -> Option<TxStart> {
        loop {
            let d = self.sched.dequeue(arena)?;
            let mut pkt = d.item;
            if cfg!(feature = "strict-invariants") {
                self.accounted_out_bytes += d.bytes;
                ecnsharp_sim::invariant!(
                    self.accounted_in_bytes
                        == self.accounted_out_bytes + self.sched.backlog_bytes(),
                    "byte conservation broken after dequeue: in={} out={} backlog={}",
                    self.accounted_in_bytes,
                    self.accounted_out_bytes,
                    self.sched.backlog_bytes()
                );
                ecnsharp_sim::invariant!(
                    now >= pkt.enqueued_at,
                    "negative sojourn: dequeued at {now} but enqueued at {}",
                    pkt.enqueued_at
                );
            }
            let verdict = self
                .aqm
                .on_dequeue(now, &self.queue_state(), &Self::view(&pkt));
            self.emit_episode(now, sub);
            match verdict {
                DequeueVerdict::Drop => {
                    self.stats.aqm_deq_drops += 1;
                    emit!(
                        sub,
                        on_packet_dropped,
                        self.meta(now),
                        self.drop_ev(&pkt, DropReason::AqmDequeue)
                    );
                    continue;
                }
                DequeueVerdict::Mark => {
                    debug_assert!(pkt.ecn().is_ect());
                    pkt.set_ecn(Ecn::Ce);
                    self.stats.deq_marks += 1;
                    emit!(
                        sub,
                        on_ce_marked,
                        self.meta(now),
                        CeMarked {
                            port: self.owner_port,
                            flow: pkt.flow.0,
                            seq: pkt.seq(),
                            site: MarkSite::Dequeue,
                        }
                    );
                }
                DequeueVerdict::Pass => {}
            }
            emit!(
                sub,
                on_sojourn_sampled,
                self.meta(now),
                SojournSampled {
                    port: self.owner_port,
                    flow: pkt.flow.0,
                    sojourn_ns: now.saturating_since(pkt.enqueued_at).as_nanos(),
                    backlog_bytes: self.sched.backlog_bytes(),
                }
            );
            self.stats.dequeued += 1;
            let class = d.class;
            // Pre-sized in `new()` to the scheduler's class count; the
            // resize only fires if a scheduler dequeues an out-of-range
            // class it never advertised.
            if self.tx_payload_per_class.len() <= class {
                self.tx_payload_per_class.resize(class + 1, 0);
            }
            self.tx_payload_per_class[class] += pkt.payload();
            if self.fault_drop_p > 0.0 && dice() < self.fault_drop_p {
                self.stats.fault_drops += 1;
                emit!(
                    sub,
                    on_packet_dropped,
                    self.meta(now),
                    self.drop_ev(&pkt, DropReason::Fault)
                );
                continue;
            }
            if self.corrupt_p > 0.0 && dice() < self.corrupt_p {
                self.stats.corrupt_drops += 1;
                emit!(
                    sub,
                    on_packet_dropped,
                    self.meta(now),
                    self.drop_ev(&pkt, DropReason::Corrupt)
                );
                continue;
            }
            if let Some(ge) = self.ge.as_mut() {
                if ge.roll(&mut dice) {
                    self.stats.burst_drops += 1;
                    emit!(
                        sub,
                        on_packet_dropped,
                        self.meta(now),
                        self.drop_ev(&pkt, DropReason::Burst)
                    );
                    continue;
                }
            }
            let tx_time = self.rate.tx_time(d.bytes);
            return Some(TxStart { pkt, tx_time });
        }
    }

    /// Bench-support wrapper around the crate-private [`Self::enqueue`]
    /// (the `telemetry_noop` and `cache_pressure` bench groups drive the
    /// port hot path in isolation). Not part of the public API surface.
    #[doc(hidden)]
    pub fn bench_enqueue<S: Subscriber>(
        &mut self,
        now: SimTime,
        pkt: Packet,
        arena: &mut RingArena,
        sub: &mut S,
    ) -> bool {
        self.enqueue(now, pkt, arena, sub)
    }

    /// Bench-support wrapper around the crate-private [`Self::next_tx`]:
    /// returns the transmitted packet and its serialization time.
    #[doc(hidden)]
    pub fn bench_next_tx<S: Subscriber>(
        &mut self,
        now: SimTime,
        dice: impl FnMut() -> f64,
        arena: &mut RingArena,
        sub: &mut S,
    ) -> Option<(Packet, Duration)> {
        self.next_tx(now, dice, arena, sub)
            .map(|t| (t.pkt, t.tx_time))
    }

    /// Bench-support wrapper around the crate-private [`Self::pool_ring`]:
    /// migrates this port's FIFO onto `arena`. Not part of the public API
    /// surface.
    #[doc(hidden)]
    pub fn bench_pool_ring(&mut self, arena: &mut RingArena) {
        self.pool_ring(arena);
    }
}

/// Bench-support constructor for a standalone port not owned by a
/// [`crate::Network`]. Not part of the public API surface.
#[doc(hidden)]
pub fn bench_port(cfg: PortConfig) -> EgressPort {
    EgressPort::new(
        NodeId(0),
        0,
        Rate::from_gbps(10),
        Duration::from_micros(1),
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;
    use ecnsharp_aqm::{DctcpRed, DropTail, Tcn};
    use ecnsharp_telemetry::NoopSubscriber;

    fn pooled(cfg: PortConfig) -> (EgressPort, RingArena) {
        let mut p = port(cfg);
        let mut arena = RingArena::new();
        p.pool_ring(&mut arena);
        (p, arena)
    }

    fn port(cfg: PortConfig) -> EgressPort {
        EgressPort::new(
            NodeId(1),
            0,
            Rate::from_gbps(10),
            Duration::from_micros(1),
            cfg,
        )
    }

    fn pkt(payload: u64) -> Packet {
        Packet::data(FlowId(1), NodeId(0), NodeId(2), 0, payload)
    }

    #[test]
    fn pooled_port_matches_fifo_behaviour() {
        // The pooled ring must be observationally identical to the inline
        // FIFO: same admissions, same tail drops, same dequeue order.
        let (mut p, mut arena) = pooled(PortConfig::fifo(4_000, Box::new(DropTail::new())));
        assert!(matches!(p.sched, PortSched::Pooled(_)));
        assert!(p.enqueue(SimTime::ZERO, pkt(1460), &mut arena, &mut NoopSubscriber));
        assert!(p.enqueue(SimTime::ZERO, pkt(1460), &mut arena, &mut NoopSubscriber));
        assert!(!p.enqueue(SimTime::ZERO, pkt(1460), &mut arena, &mut NoopSubscriber));
        assert_eq!(p.stats().tail_drops, 1);
        assert_eq!(p.backlog_pkts(), 2);
        assert_eq!(p.backlog_bytes(), 3076);
        let a = p
            .next_tx(SimTime::ZERO, || 1.0, &mut arena, &mut NoopSubscriber)
            .unwrap();
        // 1538 B at 10 Gbps, same as the inline-FIFO tx_time test.
        assert_eq!(a.tx_time, Duration::from_nanos(1230));
        assert!(p
            .next_tx(SimTime::ZERO, || 1.0, &mut arena, &mut NoopSubscriber)
            .is_some());
        assert!(p
            .next_tx(SimTime::ZERO, || 1.0, &mut arena, &mut NoopSubscriber)
            .is_none());
        assert_eq!(p.backlog_bytes(), 0);
    }

    #[test]
    fn pooled_port_marks_at_enqueue_like_fifo() {
        let (mut p, mut arena) = pooled(PortConfig::fifo(
            1_000_000,
            Box::new(DctcpRed::with_threshold(3_500)),
        ));
        for _ in 0..3 {
            assert!(p.enqueue(SimTime::ZERO, pkt(1460), &mut arena, &mut NoopSubscriber));
        }
        assert_eq!(p.stats().enq_marks, 1);
        let mut last = None;
        while let Some(tx) = p.next_tx(SimTime::ZERO, || 1.0, &mut arena, &mut NoopSubscriber) {
            last = Some(tx.pkt.ecn());
        }
        assert_eq!(last, Some(Ecn::Ce), "marked packet dequeues last");
    }

    #[test]
    fn tail_drop_at_capacity() {
        let mut p = port(PortConfig::fifo(4_000, Box::new(DropTail::new())));
        assert!(p.enqueue(
            SimTime::ZERO,
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber
        )); // 1538 wire
        assert!(p.enqueue(
            SimTime::ZERO,
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber
        )); // 3076
        assert!(!p.enqueue(
            SimTime::ZERO,
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber
        )); // would be 4614 > 4000
        assert_eq!(p.stats().tail_drops, 1);
        assert_eq!(p.backlog_pkts(), 2);
    }

    #[test]
    fn dctcp_red_marks_at_enqueue() {
        let mut p = port(PortConfig::fifo(
            1_000_000,
            Box::new(DctcpRed::with_threshold(3_500)),
        ));
        assert!(p.enqueue(
            SimTime::ZERO,
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber
        )); // occupancy 1538
        assert!(p.enqueue(
            SimTime::ZERO,
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber
        )); // occupancy 3076
            // Third packet pushes occupancy to 4614 > 3500: marked.
        assert!(p.enqueue(
            SimTime::ZERO,
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber
        ));
        assert_eq!(p.stats().enq_marks, 1);
        // The marked packet is the last one out.
        let mut dice = || 1.0;
        let a = p
            .next_tx(
                SimTime::ZERO,
                &mut dice,
                &mut RingArena::new(),
                &mut NoopSubscriber,
            )
            .unwrap();
        let b = p
            .next_tx(
                SimTime::ZERO,
                &mut dice,
                &mut RingArena::new(),
                &mut NoopSubscriber,
            )
            .unwrap();
        let c = p
            .next_tx(
                SimTime::ZERO,
                &mut dice,
                &mut RingArena::new(),
                &mut NoopSubscriber,
            )
            .unwrap();
        assert_eq!(a.pkt.ecn(), Ecn::Ect);
        assert_eq!(b.pkt.ecn(), Ecn::Ect);
        assert_eq!(c.pkt.ecn(), Ecn::Ce);
    }

    #[test]
    fn tcn_marks_at_dequeue_based_on_sojourn() {
        let mut p = port(PortConfig::fifo(
            1_000_000,
            Box::new(Tcn::new(Duration::from_micros(100))),
        ));
        assert!(p.enqueue(
            SimTime::from_micros(0),
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber
        ));
        // Dequeued 150 us later: sojourn above threshold, marked.
        let tx = p
            .next_tx(
                SimTime::from_micros(150),
                &mut || 1.0,
                &mut RingArena::new(),
                &mut NoopSubscriber,
            )
            .unwrap();
        assert_eq!(tx.pkt.ecn(), Ecn::Ce);
        assert_eq!(p.stats().deq_marks, 1);
        // Fast path: no mark.
        assert!(p.enqueue(
            SimTime::from_micros(200),
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber
        ));
        let tx = p
            .next_tx(
                SimTime::from_micros(250),
                &mut || 1.0,
                &mut RingArena::new(),
                &mut NoopSubscriber,
            )
            .unwrap();
        assert_eq!(tx.pkt.ecn(), Ecn::Ect);
    }

    #[test]
    fn tx_time_uses_wire_bytes() {
        let mut p = port(PortConfig::fifo(1_000_000, Box::new(DropTail::new())));
        p.enqueue(
            SimTime::ZERO,
            pkt(1460),
            &mut RingArena::new(),
            &mut NoopSubscriber,
        );
        let tx = p
            .next_tx(
                SimTime::ZERO,
                &mut || 1.0,
                &mut RingArena::new(),
                &mut NoopSubscriber,
            )
            .unwrap();
        // 1538 B at 10 Gbps = 1230.4 ns
        assert_eq!(tx.tx_time, Duration::from_nanos(1230));
    }

    #[test]
    fn fault_injection_drops_deterministically() {
        let cfg = PortConfig::fifo(1_000_000, Box::new(DropTail::new())).with_fault_drop(0.5);
        let mut p = port(cfg);
        for _ in 0..4 {
            p.enqueue(
                SimTime::ZERO,
                pkt(1460),
                &mut RingArena::new(),
                &mut NoopSubscriber,
            );
        }
        // Dice alternating below/above p: drop, keep, drop, keep.
        let seq = [0.1, 0.9, 0.2, 0.8];
        let mut i = 0;
        let mut dice = || {
            let v = seq[i];
            i += 1;
            v
        };
        let tx = p.next_tx(
            SimTime::ZERO,
            &mut dice,
            &mut RingArena::new(),
            &mut NoopSubscriber,
        );
        assert!(tx.is_some());
        assert_eq!(p.stats().fault_drops, 1);
        let tx = p.next_tx(
            SimTime::ZERO,
            &mut dice,
            &mut RingArena::new(),
            &mut NoopSubscriber,
        );
        assert!(tx.is_some());
        assert_eq!(p.stats().fault_drops, 2);
        assert!(p
            .next_tx(
                SimTime::ZERO,
                &mut || 1.0,
                &mut RingArena::new(),
                &mut NoopSubscriber
            )
            .is_none());
    }

    #[test]
    fn empty_queue_yields_none() {
        let mut p = port(PortConfig::fifo(1_000, Box::new(DropTail::new())));
        assert!(p
            .next_tx(
                SimTime::ZERO,
                || 1.0,
                &mut RingArena::new(),
                &mut NoopSubscriber
            )
            .is_none());
    }

    #[test]
    fn stats_totals() {
        let s = PortStats {
            tail_drops: 1,
            aqm_enq_drops: 2,
            aqm_deq_drops: 3,
            fault_drops: 4,
            corrupt_drops: 7,
            burst_drops: 9,
            enq_marks: 5,
            deq_marks: 6,
            ..PortStats::default()
        };
        assert_eq!(s.total_drops(), 26);
        assert_eq!(s.total_marks(), 11);
    }

    #[test]
    #[should_panic(expected = "fault_drop_p must be a probability")]
    fn fault_drop_rejects_out_of_range() {
        let _ = PortConfig::fifo(1_000, Box::new(DropTail::new())).with_fault_drop(1.5);
    }

    #[test]
    #[should_panic(expected = "fault_drop_p must be a probability")]
    fn fault_drop_rejects_nan() {
        let _ = PortConfig::fifo(1_000, Box::new(DropTail::new())).with_fault_drop(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "corrupt_p must be a probability")]
    fn corrupt_rejects_negative() {
        let _ = PortConfig::fifo(1_000, Box::new(DropTail::new())).with_corrupt(-0.1);
    }

    #[test]
    fn corruption_counted_separately_from_fault_drops() {
        let cfg = PortConfig::fifo(1_000_000, Box::new(DropTail::new()))
            .with_fault_drop(0.25)
            .with_corrupt(0.25);
        let mut p = port(cfg);
        for _ in 0..3 {
            p.enqueue(
                SimTime::ZERO,
                pkt(1460),
                &mut RingArena::new(),
                &mut NoopSubscriber,
            );
        }
        // Packet 1: fault draw 0.1 < 0.25 → fault drop (no corrupt draw).
        // Packet 2: fault 0.9, corrupt 0.1 < 0.25 → corrupt drop.
        // Packet 3: fault 0.9, corrupt 0.9 → transmitted.
        let seq = [0.1, 0.9, 0.1, 0.9, 0.9];
        let mut i = 0;
        let mut dice = || {
            let v = seq[i];
            i += 1;
            v
        };
        let tx = p.next_tx(
            SimTime::ZERO,
            &mut dice,
            &mut RingArena::new(),
            &mut NoopSubscriber,
        );
        assert!(tx.is_some());
        assert_eq!(i, 5, "fault-dropped packet must not consume a corrupt draw");
        assert_eq!(p.stats().fault_drops, 1);
        assert_eq!(p.stats().corrupt_drops, 1);
        assert_eq!(p.stats().burst_drops, 0);
    }

    #[test]
    fn ge_burst_drops_counted_and_draw_exact() {
        // Always-bad GE chain: every packet dropped as a burst loss, and
        // each surviving/attempted packet costs exactly two draws.
        let ge = GilbertElliott::new(1.0, 0.0, 1.0, 0.0);
        let cfg = PortConfig::fifo(1_000_000, Box::new(DropTail::new())).with_ge(ge);
        let mut p = port(cfg);
        for _ in 0..3 {
            p.enqueue(
                SimTime::ZERO,
                pkt(1460),
                &mut RingArena::new(),
                &mut NoopSubscriber,
            );
        }
        let mut draws = 0u64;
        let tx = p.next_tx(
            SimTime::ZERO,
            || {
                draws += 1;
                0.0
            },
            &mut RingArena::new(),
            &mut NoopSubscriber,
        );
        assert!(tx.is_none(), "all packets lost to the burst");
        assert_eq!(p.stats().burst_drops, 3);
        assert_eq!(draws, 6, "two draws per packet");
        assert_eq!(p.stats().fault_drops, 0);
        assert_eq!(p.stats().corrupt_drops, 0);
    }

    #[test]
    fn byte_conservation_holds_with_wire_drops() {
        // All wire-loss classes fire after dequeue accounting, so the
        // strict-invariants byte-conservation check must hold throughout
        // (under the default build the invariant! calls are debug_asserts —
        // the test still exercises the same code path).
        let ge = GilbertElliott::new(0.5, 0.5, 1.0, 0.0);
        let cfg = PortConfig::fifo(1_000_000, Box::new(DropTail::new()))
            .with_fault_drop(0.3)
            .with_corrupt(0.3)
            .with_ge(ge);
        let mut p = port(cfg);
        let mut rng = ecnsharp_sim::Rng::seed_from_u64(99);
        let mut sent = 0u64;
        let mut dropped = 0u64;
        for _ in 0..50 {
            assert!(p.enqueue(
                SimTime::ZERO,
                pkt(1460),
                &mut RingArena::new(),
                &mut NoopSubscriber
            ));
            while let Some(_tx) = p.next_tx(
                SimTime::ZERO,
                || rng.f64(),
                &mut RingArena::new(),
                &mut NoopSubscriber,
            ) {
                sent += 1;
            }
        }
        dropped += p.stats().fault_drops + p.stats().corrupt_drops + p.stats().burst_drops;
        assert_eq!(sent + dropped, 50, "every admitted packet is accounted");
        assert!(dropped > 0, "seeded run should see some wire loss");
        assert_eq!(p.backlog_pkts(), 0);
    }

    #[test]
    fn same_seed_same_fault_drops() {
        // The fault_drop_p wire-loss path is driven entirely by the seeded
        // dice: identical seeds must produce identical drop counts.
        let run = |seed: u64| {
            let cfg = PortConfig::fifo(1_000_000, Box::new(DropTail::new())).with_fault_drop(0.3);
            let mut p = port(cfg);
            let mut rng = ecnsharp_sim::Rng::seed_from_u64(seed);
            for _ in 0..100 {
                assert!(p.enqueue(
                    SimTime::ZERO,
                    pkt(1460),
                    &mut RingArena::new(),
                    &mut NoopSubscriber
                ));
                while p
                    .next_tx(
                        SimTime::ZERO,
                        || rng.f64(),
                        &mut RingArena::new(),
                        &mut NoopSubscriber,
                    )
                    .is_some()
                {}
            }
            p.stats().fault_drops
        };
        let a = run(7);
        assert!(a > 0, "p=0.3 over 100 packets must drop some");
        assert_eq!(a, run(7), "same seed, same drops");
        assert_ne!(a, run(8), "different seed takes a different drop path");
    }
}
