//! Identifier newtypes for nodes, ports and flows.

use core::fmt;

/// Index of a node (host or switch) within a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a port within its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

/// Globally unique flow identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(PortId(1).to_string(), "p1");
        assert_eq!(FlowId(42).to_string(), "f42");
    }

    #[test]
    // This test exists precisely to exercise the Hash impl; iteration
    // order is never observed.
    #[allow(clippy::disallowed_types)]
    fn hashable_and_ordered() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(FlowId(1), "a");
        assert_eq!(m[&FlowId(1)], "a");
        assert!(NodeId(1) < NodeId(2));
    }
}
