//! Property tests over topologies: any leaf-spine dimensioning yields full
//! connectivity, and injected packets reach their destinations across ECMP
//! fans.

use ecnsharp_aqm::DropTail;
use ecnsharp_net::topology::{leaf_spine, star};
use ecnsharp_net::{Agent, Ctx, FlowCmd, FlowId, Packet, PortConfig};
use ecnsharp_sim::{Duration, Rate, SimTime};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts packets delivered to this host.
struct CountingAgent(Arc<AtomicU64>);

impl Agent for CountingAgent {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _key: u64) {}
    fn on_flow_cmd(&mut self, ctx: &mut Ctx<'_>, cmd: FlowCmd) {
        // Send `size` as a count of MTU packets towards dst.
        for k in 0..cmd.size {
            ctx.send(Packet::data(cmd.flow, cmd.src, cmd.dst, k * 1460, 1460));
        }
    }
}

fn cfg() -> PortConfig {
    PortConfig::fifo(10_000_000, Box::new(DropTail::new()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every host pair in any leaf-spine fabric is mutually reachable and
    /// no packet is lost with ample buffers.
    #[test]
    fn leaf_spine_full_connectivity(
        spines in 1usize..4,
        leaves in 1usize..4,
        hosts_per_leaf in 1usize..4,
        seed in 0u64..50,
    ) {
        let counters: Vec<Arc<AtomicU64>> =
            (0..leaves * hosts_per_leaf).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let c2 = counters.clone();
        let mut topo = leaf_spine(
            seed,
            spines,
            leaves,
            hosts_per_leaf,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |i| Box::new(CountingAgent(c2[i].clone())),
            cfg,
            cfg,
        );
        let n = topo.hosts.len();
        if n < 2 {
            return Ok(());
        }
        // Every host sends 2 packets to every other host.
        let mut flow = 0u64;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                flow += 1;
                topo.net.schedule_flow(
                    SimTime::from_micros(flow),
                    FlowCmd {
                        flow: FlowId(flow),
                        src: topo.hosts[i],
                        dst: topo.hosts[j],
                        size: 2, // interpreted as packet count by the agent
                        class: 0,
                        extra_delay: Duration::ZERO,
                    },
                );
            }
        }
        topo.net.run_until_idle();
        for (i, c) in counters.iter().enumerate() {
            let expected = 2 * (n as u64 - 1);
            prop_assert_eq!(
                c.load(Ordering::Relaxed),
                expected,
                "host {} received wrong packet count", i
            );
        }
    }

    /// ECMP consistency at fabric scale: with multiple spines, all uplinks
    /// see traffic when enough flows cross the fabric.
    #[test]
    fn ecmp_uses_all_spines(spines in 2usize..5, seed in 0u64..20) {
        let counters: Vec<Arc<AtomicU64>> =
            (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let c2 = counters.clone();
        let mut topo = leaf_spine(
            seed, spines, 2, 2,
            Rate::from_gbps(10), Rate::from_gbps(10), Duration::from_micros(1),
            |i| Box::new(CountingAgent(c2[i].clone())),
            cfg, cfg,
        );
        // 120 cross-leaf flows, one packet each.
        for f in 0..120u64 {
            topo.net.schedule_flow(
                SimTime::from_micros(f),
                FlowCmd {
                    flow: FlowId(f),
                    src: topo.hosts[(f % 2) as usize],        // leaf 0
                    dst: topo.hosts[2 + (f % 2) as usize],    // leaf 1
                    size: 1,
                    class: 0,
                    extra_delay: Duration::ZERO,
                },
            );
        }
        topo.net.run_until_idle();
        let leaf0 = topo.leaves[0];
        let mut used = 0;
        for &spine in &topo.spines {
            let port = topo.net.port_towards(leaf0, spine).unwrap();
            if topo.net.port_stats(leaf0, port).dequeued > 0 {
                used += 1;
            }
        }
        prop_assert!(used >= 2, "only {used}/{spines} spines carried traffic");
    }
}

/// Stars of any size deliver everything (switch fan-out/fan-in paths).
#[test]
fn star_all_to_one_delivery() {
    for n in [2usize, 3, 8, 32] {
        let counters: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let c2 = counters.clone();
        let mut topo = star(
            1,
            n,
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |i| Box::new(CountingAgent(c2[i].clone())),
            cfg,
            cfg,
        );
        let dst = topo.hosts[n - 1];
        for (i, &h) in topo.hosts[..n - 1].iter().enumerate() {
            topo.net.schedule_flow(
                SimTime::from_micros(i as u64),
                FlowCmd {
                    flow: FlowId(i as u64),
                    src: h,
                    dst,
                    size: 5,
                    class: 0,
                    extra_delay: Duration::ZERO,
                },
            );
        }
        topo.net.run_until_idle();
        assert_eq!(
            counters[n - 1].load(Ordering::Relaxed),
            5 * (n as u64 - 1),
            "star n={n}"
        );
    }
}
