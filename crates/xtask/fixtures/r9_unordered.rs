//! Seeded R9 violations: hash-order iteration feeding results, and a
//! panicking float comparator where `total_cmp` gives a total order.

use std::collections::HashMap;

/// Hash iteration order leaks straight into the returned Vec.
pub fn flow_ids(m: &HashMap<u64, u64>) -> Vec<u64> { m.keys().copied().collect() }

/// Panics on NaN and under-orders floats; use `f64::total_cmp`.
pub fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}

/// A `PartialOrd` impl mentioning `partial_cmp` must stay silent.
pub fn forward(a: &f64, b: &f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(b)
}
