//! Clean fixture: every waivable rule (R1/R3/R4/R5/R7/R8/R9/R10)
//! present but properly waived, plus look-alike tokens that must NOT
//! trigger (`Instantaneous`, `should_panic`, tuple field access,
//! strings, comments). Every waiver below suppresses a live finding —
//! the selftest also strips the code and asserts they all go stale.

// lint: allow(hash-collections) membership-only, never iterated
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;

/// Times host execution of a figure binary, not simulated time.
// lint: allow(wall-clock) host-side harness timing
pub fn host_elapsed(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_nanos() as u64
}

/// Process-wide call counter, reviewed: order-insensitive telemetry.
// lint: allow(shared-state) order-insensitive host-side counter
static CALLS: AtomicU64 = AtomicU64::new(0);

/// Membership probe against a waived map; head is caller-guaranteed.
pub fn checked_head(
    queue: &[u64],
    // lint: allow(hash-collections) membership-only, never iterated
    lookup: &HashMap<u64, u64>,
) -> u64 {
    let _ = CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let _present = lookup.contains_key(&0);
    // lint: allow(hot-path-panic) caller guarantees non-empty
    let head = queue.first().unwrap();
    *head
}

/// Comparing against a sentinel NaN-free constant, reviewed and waived.
pub fn is_disabled(p: f64) -> bool {
    // lint: allow(float-cmp) 0.0 is an exact sentinel, never computed
    p == 0.0
}

/// Reviewed float sort: inputs are probabilities in [0,1], never NaN.
pub fn sorted(mut xs: Vec<f64>) -> Vec<f64> {
    // lint: allow(unordered-iteration) no NaN by construction lint: allow(hot-path-panic) no NaN by construction
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}

/// Shard-local immutable config handle, audited: never crosses threads.
pub struct Handle {
    // lint: allow(non-send-type) shard-local cache, never crosses threads
    pub cache: Rc<u64>,
}

/// Fixture-only knob read outside `env.rs`, waived to prove R10 waives.
pub fn knob() -> Option<String> {
    // lint: allow(env-read) fixture demonstrates the waiver path
    std::env::var("ECNSHARP_FIXTURE").ok()
}

/// Near-misses that must stay silent: `Instantaneous` is not `Instant`,
/// `should_panic` is not `panic!`, `"Instant::now"` is a string, and
/// `pair.0 == other.0` compares integers.
pub fn near_misses(pair: (u64, u64), other: (u64, u64)) -> bool {
    let _s = "Instant::now and thread_rng live in strings";
    pair.0 == other.0
}
