//! Clean fixture: every waivable rule present but properly waived, plus
//! look-alike tokens that must NOT trigger (`Instantaneous`,
//! `should_panic`, tuple field access, strings, comments).

use std::collections::HashMap; // lint: allow(hash-collections) membership-only, never iterated

/// Times host execution of a figure binary, not simulated time.
/// lint: allow(wall-clock) host-side harness timing
pub fn host_elapsed(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_nanos() as u64 // lint: allow(wall-clock) host-side harness timing
}

/// Length is checked by the caller; waiver documents it.
// lint: allow(hash-collections) membership-only, never iterated
pub fn checked_head(queue: &[u64], lookup: &HashMap<u64, u64>) -> u64 {
    // lint: allow(hash-collections) membership-only, never iterated
    let _present = lookup.contains_key(&0);
    // lint: allow(hot-path-panic) caller guarantees non-empty
    let head = queue.first().unwrap();
    *head
}

/// Comparing against a sentinel NaN-free constant, reviewed and waived.
pub fn is_disabled(p: f64) -> bool {
    // lint: allow(float-cmp) 0.0 is an exact sentinel, never computed
    p == 0.0
}

/// Near-misses that must stay silent: `Instantaneous` is not `Instant`,
/// `should_panic` is not `panic!`, `"Instant::now"` is a string, and
/// `pair.0 == other.0` compares integers.
pub fn near_misses(pair: (u64, u64), other: (u64, u64)) -> bool {
    let _s = "Instant::now and thread_rng live in strings";
    pair.0 == other.0
}
