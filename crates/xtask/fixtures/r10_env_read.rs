//! Seeded R10 violation: a knob read outside the crate's blessed
//! `env.rs` module scatters configuration and dodges the strict exit-2
//! validation path.

/// Reads a knob directly instead of delegating to `env.rs`.
pub fn scale() -> Option<String> {
    std::env::var("ECNSHARP_SCALE").ok()
}
