// Seeded R6 violation: a crate root missing the mandatory
// #![forbid(unsafe_code)] and #![warn(missing_docs)] inner attributes.

pub fn undocumented() {}
