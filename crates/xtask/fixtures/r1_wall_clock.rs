//! Seeded R1 violation: wall-clock time in a sim-facing crate.

/// Reads the host clock, which differs run to run: the event queue's
/// `SimTime` is the only legal clock in simulation code.
pub fn measure() -> std::time::Instant {
    std::time::Instant::now()
}

/// `SystemTime` is just as illegal.
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
