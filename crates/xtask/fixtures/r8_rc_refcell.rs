//! Seeded R8 violation: `Rc`/`RefCell` in a public type of a shard
//! boundary crate is not `Send`, so a sharded `Network` cannot move it
//! across worker threads.

use std::cell::RefCell;
use std::rc::Rc;

/// A sharded engine cannot move this across worker threads.
pub struct ConnCache {
    /// Shared mutable per-connection scratch.
    pub scratch: Rc<RefCell<Vec<u64>>>,
}

/// Returning a non-`Send` handle from a public API leaks it too.
pub fn shared_scratch() -> Rc<Vec<u64>> {
    Rc::new(Vec::new())
}

/// Private types may use `Rc` internally without tripping the rule.
struct InternalOnly {
    _scratch: Rc<u64>,
}
