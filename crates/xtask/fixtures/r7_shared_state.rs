//! Seeded R7 violations: process-global mutable state silently couples
//! shards — a sharded engine cannot replay one shard in isolation.

use std::sync::atomic::AtomicU64;
use std::sync::{Mutex, OnceLock};

/// Hidden cross-shard accumulator.
pub static TOTAL_PACKETS: AtomicU64 = AtomicU64::new(0);

/// Hidden cross-shard cache behind a lock.
static ROUTE_CACHE: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Lazily initialised global configuration.
static CONFIG: OnceLock<u64> = OnceLock::new();

/// The classic.
static mut RAW_COUNTER: u64 = 0;

/// A `'static` lifetime bound is NOT a static item and must stay silent.
pub fn borrow(s: &'static str) -> &'static str {
    s
}
