//! Seeded R4 violation: panic-capable calls on the per-packet hot path.

/// An unwrap in a dequeue loop aborts the entire figure run on the first
/// malformed state instead of surfacing a typed error.
pub fn head(queue: &[u64]) -> u64 {
    let first = queue.first().unwrap();
    let second = queue.get(1).expect("second element");
    if *first > *second {
        panic!("inverted queue");
    }
    *first
}
