//! Seeded R3 violation: default-hasher collections in sim-facing
//! production code iterate in nondeterministic order.

use std::collections::HashMap;
use std::collections::HashSet;

/// Iterating this map reorders flow processing between runs.
pub fn tally(flows: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    let mut seen = HashSet::new();
    for &f in flows {
        if seen.insert(f) {
            *m.entry(f).or_insert(0) += 1;
        }
    }
    m
}
