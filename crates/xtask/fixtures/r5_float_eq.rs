//! Seeded R5 violation: exact equality on floating-point expressions.

/// Marking probabilities are continuous; exact comparison is always a
/// latent bug.
pub fn saturated(p: f64) -> bool {
    p == 1.0
}

/// The cast form is just as wrong.
pub fn same_load(bytes: u64, target: f64) -> bool {
    bytes as f64 != target
}
