//! Seeded R11 violations: a waiver with no live finding under it rots
//! the inventory; unknown slugs are rejected outright.

/// Nothing here touches a hash collection any more; the waiver is stale.
// lint: allow(hash-collections) was needed before the BTreeMap refactor
pub fn sum(xs: &[u64]) -> u64 {
    xs.iter().sum()
}

/// Typo'd slug: never valid.
// lint: allow(no-such-rule) fat-fingered slug
pub fn id(x: u64) -> u64 {
    x
}
