//! Seeded R2 violation: ambient OS-seeded randomness. Unwaivable — every
//! random draw must flow through the seeded `ecnsharp_sim::Rng`.

/// Draws from an ambient generator whose seed comes from the OS.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rand::random::<f64>() + rng.gen::<f64>()
}
