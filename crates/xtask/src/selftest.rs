//! Lint self-test: proves every rule R1-R11 actually fires on a seeded
//! violation, that waivers suppress as documented, that stale waivers
//! are rejected, and that a seeded violation drives the whole `lint`
//! entry point to a non-zero exit.
//!
//! The seeded violations live as real files under `crates/xtask/fixtures/`
//! (excluded from the workspace walk) so they are reviewable and cannot
//! drift out of sync with the engine.

use crate::rules::{analyze_file, check_file, check_lib_headers, Rule};
use crate::{classify, lint_workspace, FileClass};
use std::fs;
use std::path::Path;

/// One fixture expectation: linting `fixture` as if it lived at
/// `pretend_path` must produce at least one `expect` violation.
struct Case {
    fixture: &'static str,
    pretend_path: &'static str,
    expect: Rule,
}

const CASES: [Case; 11] = [
    Case {
        fixture: "r1_wall_clock.rs",
        pretend_path: "crates/sim/src/seeded.rs",
        expect: Rule::WallClock,
    },
    Case {
        fixture: "r2_thread_rng.rs",
        pretend_path: "crates/workload/src/seeded.rs",
        expect: Rule::NondeterministicRng,
    },
    Case {
        fixture: "r3_hash_map.rs",
        pretend_path: "crates/net/src/seeded.rs",
        expect: Rule::HashCollections,
    },
    Case {
        fixture: "r4_unwrap.rs",
        pretend_path: "crates/core/src/seeded.rs",
        expect: Rule::HotPathPanic,
    },
    Case {
        fixture: "r5_float_eq.rs",
        pretend_path: "crates/stats/src/seeded.rs",
        expect: Rule::FloatCmp,
    },
    Case {
        fixture: "r6_missing_headers.rs",
        pretend_path: "crates/sim/src/lib.rs",
        expect: Rule::LintHeaders,
    },
    Case {
        fixture: "r7_shared_state.rs",
        pretend_path: "crates/sched/src/seeded.rs",
        expect: Rule::SharedState,
    },
    Case {
        fixture: "r8_rc_refcell.rs",
        pretend_path: "crates/transport/src/seeded.rs",
        expect: Rule::NonSendType,
    },
    Case {
        fixture: "r9_unordered.rs",
        pretend_path: "crates/aqm/src/seeded.rs",
        expect: Rule::UnorderedIteration,
    },
    Case {
        fixture: "r10_env_read.rs",
        pretend_path: "crates/experiments/src/seeded.rs",
        expect: Rule::EnvOutsideEnvModule,
    },
    Case {
        fixture: "r11_stale_waiver.rs",
        pretend_path: "crates/net/src/seeded.rs",
        expect: Rule::StaleWaiver,
    },
];

/// Run the full self-test. `Err` carries a human-readable report of the
/// first failed expectation.
pub fn run(workspace_root: &Path) -> Result<(), String> {
    let fixtures = workspace_root.join("crates/xtask/fixtures");

    for case in &CASES {
        let src = fs::read_to_string(fixtures.join(case.fixture))
            .map_err(|e| format!("fixture {} unreadable: {e}", case.fixture))?;
        let violations = if case.expect == Rule::LintHeaders {
            check_lib_headers(case.pretend_path, &src)
        } else {
            let class = classify(case.pretend_path)
                .ok_or_else(|| format!("{}: pretend path not classifiable", case.fixture))?;
            check_file(case.pretend_path, &src, &class)
        };
        if !violations.iter().any(|v| v.rule == case.expect) {
            return Err(format!(
                "fixture {} (as {}) did not trigger {} — got: {:?}",
                case.fixture,
                case.pretend_path,
                case.expect,
                violations.iter().map(|v| v.rule).collect::<Vec<_>>()
            ));
        }
    }

    // Waivers must suppress every waivable rule — and every waiver in
    // the fixture must come back marked used (no stale residue).
    let waived = fs::read_to_string(fixtures.join("clean_waivers.rs"))
        .map_err(|e| format!("fixture clean_waivers.rs unreadable: {e}"))?;
    let class = FileClass {
        sim_facing: true,
        hot_path: true,
        test_file: false,
        harness: true,
        boundary: true,
    };
    let report = analyze_file("crates/core/src/seeded.rs", &waived, &class);
    if !report.violations.is_empty() {
        return Err(format!(
            "waivered fixture must be clean, got:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        ));
    }
    let waivable: Vec<&str> = crate::rules::known_slugs();
    for slug in &waivable {
        if !report.waivers.iter().any(|w| w.slug == *slug && w.used) {
            return Err(format!(
                "clean_waivers.rs must exercise every waivable slug; `{slug}` missing or unused"
            ));
        }
    }

    // Stale-waiver rejection: the same fixture with its violations
    // deleted must flip every waiver into an R11 finding.
    let stale_only: String = waived
        .lines()
        .filter(|l| l.trim_start().starts_with("//"))
        .collect::<Vec<_>>()
        .join("\n");
    let stale_report = analyze_file("crates/core/src/seeded.rs", &stale_only, &class);
    let stale_count = stale_report
        .violations
        .iter()
        .filter(|v| v.rule == Rule::StaleWaiver)
        .count();
    if stale_count < waivable.len() {
        return Err(format!(
            "deleting the violations must leave every waiver stale (R11): \
             expected >= {}, got {stale_count}",
            waivable.len()
        ));
    }

    // End-to-end: a seeded violation in a scratch workspace tree drives
    // the same walk `cargo xtask lint` uses to a non-empty finding set
    // (i.e. a non-zero process exit).
    let scratch =
        std::env::temp_dir().join(format!("ecnsharp-lint-selftest-{}", std::process::id()));
    let sim_src = scratch.join("crates/sim/src");
    fs::create_dir_all(&sim_src).map_err(|e| format!("scratch dir: {e}"))?;
    let result = (|| -> Result<(), String> {
        fs::write(
            sim_src.join("lib.rs"),
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\
             //! Seeded violation.\npub fn t() -> u128 { std::time::Instant::now().elapsed().as_nanos() }\n\
             /// Seeded violation #2.\npub fn u() -> std::time::SystemTime { std::time::SystemTime::now() }\n",
        )
        .map_err(|e| format!("scratch write: {e}"))?;
        let violations = lint_workspace(&scratch).map_err(|e| format!("scratch walk: {e}"))?;
        if violations
            .iter()
            .filter(|v| v.rule == Rule::WallClock)
            .count()
            < 2
        {
            return Err(format!(
                "end-to-end walk over the scratch tree missed the seeded R1 violations: {violations:?}"
            ));
        }
        Ok(())
    })();
    let _ = fs::remove_dir_all(&scratch);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ALL_RULES;
    use crate::workspace_root;

    #[test]
    fn every_rule_has_a_fixture() {
        let covered: Vec<Rule> = CASES.iter().map(|c| c.expect).collect();
        for rule in ALL_RULES {
            assert!(covered.contains(&rule), "no fixture for {rule}");
        }
    }

    #[test]
    fn selftest_runs_green() {
        run(&workspace_root()).unwrap();
    }
}
