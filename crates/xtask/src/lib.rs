//! # xtask
//!
//! Workspace automation for the ECN♯ reproduction. The interesting part
//! is a custom source-level static-analysis pass (`cargo xtask lint`)
//! enforcing the simulator's determinism contract:
//!
//! | rule | scope | enforces |
//! |------|-------|----------|
//! | R1 `wall-clock` | sim-facing crates | no `std::time::Instant`/`SystemTime` |
//! | R2 (unwaivable) | whole workspace | no `thread_rng`/`rand::random`/`OsRng` |
//! | R3 `hash-collections` | sim-facing, non-test | no default-hasher `HashMap`/`HashSet` |
//! | R4 `hot-path-panic` | AQM/marker/port/queue hot paths | no `.unwrap()`/`.expect()`/`panic!` family |
//! | R5 `float-cmp` | whole workspace | no `==`/`!=` on float expressions |
//! | R6 (unwaivable) | every crate root | `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//!
//! Waive a finding with `// lint: allow(<slug>) <reason>` on the line or
//! the line above. `cargo xtask selftest` proves each rule fires on a
//! seeded violation fixture (see `fixtures/`), and `cargo xtask ci` chains
//! fmt → clippy → lint → selftest → build → tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod rules;
pub mod scan;
pub mod selftest;

pub use rules::{check_file, check_lib_headers, Rule, Violation};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How the linter treats one file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Crate participates in simulation results (R1/R3 apply).
    pub sim_facing: bool,
    /// File is on the per-packet hot path (R4 applies).
    pub hot_path: bool,
    /// Whole file is test/bench code (R3/R4 relaxed).
    pub test_file: bool,
}

/// Crates whose code feeds simulation results: wall-clock and iteration-
/// order nondeterminism here silently breaks reproducibility.
pub const SIM_FACING_CRATES: [&str; 10] = [
    "sim",
    "net",
    "transport",
    "aqm",
    "core",
    "sched",
    "workload",
    "stats",
    "tofino",
    "telemetry",
];

/// Files on the per-packet hot path, where a panic aborts a whole figure
/// run: every AQM decision site, the marker state machine, the scheduler
/// dequeue loop, the egress port, the event queue itself, and the
/// telemetry subscribers (invoked per event when attached).
pub const HOT_PATH_PREFIXES: [&str; 8] = [
    "crates/aqm/src/",
    "crates/core/src/",
    "crates/sched/src/",
    "crates/telemetry/src/",
    "crates/net/src/port.rs",
    "crates/net/src/fault.rs",
    "crates/sim/src/queue.rs",
    "crates/sim/src/wheel.rs",
];

/// Classify a workspace-relative path (forward slashes). Returns `None`
/// for files the linter skips entirely (the fixtures, generated output).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.starts_with("crates/xtask/fixtures/") {
        return None;
    }
    let sim_facing = SIM_FACING_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/")));
    let hot_path = HOT_PATH_PREFIXES.iter().any(|p| rel.starts_with(p));
    let test_file = rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/");
    Some(FileClass {
        sim_facing,
        hot_path,
        test_file,
    })
}

/// Walk the workspace and lint every Rust source file, including the R6
/// crate-root header check.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    for rel in &files {
        let Some(class) = classify(rel) else { continue };
        let source = fs::read_to_string(root.join(rel))?;
        violations.extend(check_file(rel, &source, &class));
        if rel.ends_with("/src/lib.rs") || rel == "src/lib.rs" {
            violations.extend(check_lib_headers(rel, &source));
        }
    }
    Ok(violations)
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "results", "fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// The workspace root, derived from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let c = classify("crates/core/src/marker.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file);
        let c = classify("crates/net/src/network.rs").unwrap();
        assert!(c.sim_facing && !c.hot_path);
        let c = classify("crates/net/src/port.rs").unwrap();
        assert!(c.hot_path);
        let c = classify("crates/net/src/fault.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file);
        let c = classify("crates/sim/src/wheel.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file);
        let c = classify("crates/telemetry/src/hist.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file);
        let c = classify("crates/experiments/src/bin/all.rs").unwrap();
        assert!(!c.sim_facing && !c.hot_path);
        let c = classify("crates/net/tests/topology_prop.rs").unwrap();
        assert!(c.sim_facing && c.test_file);
        assert!(classify("crates/xtask/fixtures/r1_wall_clock.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn workspace_is_lint_clean() {
        let violations = lint_workspace(&workspace_root()).expect("walk workspace");
        assert!(
            violations.is_empty(),
            "workspace must be lint-clean:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn selftest_passes() {
        selftest::run(&workspace_root()).expect("selftest");
    }
}
