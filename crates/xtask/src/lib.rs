//! # xtask
//!
//! Workspace automation for the ECN♯ reproduction. The interesting part
//! is a custom source-level static-analysis pass (`cargo xtask lint`)
//! enforcing the simulator's determinism + shard-safety contract:
//!
//! | rule | scope | enforces |
//! |------|-------|----------|
//! | R1 `wall-clock` | sim-facing crates | no `std::time::Instant`/`SystemTime` |
//! | R2 (unwaivable) | whole workspace | no `thread_rng`/`rand::random`/`OsRng` |
//! | R3 `hash-collections` | sim-facing, non-test | no default-hasher `HashMap`/`HashSet` |
//! | R4 `hot-path-panic` | AQM/marker/port/queue hot paths | no `.unwrap()`/`.expect()`/`panic!` family |
//! | R5 `float-cmp` | whole workspace | no `==`/`!=` on float expressions |
//! | R6 (unwaivable) | every crate root | `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | R7 `shared-state` | sim-facing + harness | no `static mut` / interior-mutability `static`s |
//! | R8 `non-send-type` | boundary crates | no `Rc`/`RefCell`/`Cell` in public types |
//! | R9 `unordered-iteration` | sim-facing + harness | no hash-collection iteration into results; no `partial_cmp().unwrap()` comparators |
//! | R10 `env-read` | sim-facing + harness | `std::env::var` only in the crate's `env.rs` |
//! | R11 (unwaivable) | whole workspace | every waiver suppresses a live finding |
//!
//! Waive a finding with `// lint: allow(<slug>) <reason>` on the line or
//! the line above; R11 fails the lint when a waiver goes stale. The
//! waiver inventory is budgeted in `WAIVERS.budget` at the workspace
//! root — the lint fails when the per-slug counts drift from the file,
//! so waiver growth is always an explicit, reviewed diff.
//! `cargo xtask selftest` proves each rule fires on a seeded violation
//! fixture (see `fixtures/`), `cargo xtask lint --json` emits the
//! machine-readable violation + waiver inventory, and `cargo xtask ci`
//! chains fmt → clippy → lint → selftest → build → tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod rules;
pub mod scan;
pub mod selftest;

pub use rules::{analyze_file, check_file, check_lib_headers, FileReport, Rule, Violation, Waiver};

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How the linter treats one file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Crate participates in simulation results (R1/R3 apply).
    pub sim_facing: bool,
    /// File is on the per-packet hot path (R4 applies).
    pub hot_path: bool,
    /// Whole file is test/bench code (R3/R4 relaxed).
    pub test_file: bool,
    /// Sweep-harness code (`crates/experiments`): R7/R9/R10 apply even
    /// though results-shaping happens host-side.
    pub harness: bool,
    /// Shard-boundary crate whose public types a sharded `Network` moves
    /// across threads (R8 applies).
    pub boundary: bool,
}

/// Crates whose code feeds simulation results: wall-clock and iteration-
/// order nondeterminism here silently breaks reproducibility.
pub const SIM_FACING_CRATES: [&str; 10] = [
    "sim",
    "net",
    "transport",
    "aqm",
    "core",
    "sched",
    "workload",
    "stats",
    "tofino",
    "telemetry",
];

/// Crates whose public types sit on the future shard boundary: the
/// sharded engine (ROADMAP item 1) moves these across worker threads, so
/// they must stay `Send` (R8 + the per-crate static assertions).
pub const BOUNDARY_CRATES: [&str; 6] = ["core", "sim", "net", "aqm", "sched", "transport"];

/// Files on the per-packet hot path, where a panic aborts a whole figure
/// run: every AQM decision site, the marker state machine, the scheduler
/// dequeue loop, the egress port and its pooled ring arena, the event
/// queue itself, the telemetry subscribers (invoked per event when
/// attached), and the run-supervision guards (`ProgressGuard::on_event`
/// runs per popped event on supervised runs; a panicking watchdog would
/// defeat its own purpose).
pub const HOT_PATH_PREFIXES: [&str; 10] = [
    "crates/aqm/src/",
    "crates/core/src/",
    "crates/sched/src/",
    "crates/telemetry/src/",
    "crates/net/src/port.rs",
    "crates/net/src/arena.rs",
    "crates/net/src/fault.rs",
    "crates/sim/src/queue.rs",
    "crates/sim/src/wheel.rs",
    "crates/sim/src/supervise.rs",
];

/// Classify a workspace-relative path (forward slashes). Returns `None`
/// for files the linter skips entirely (the fixtures, generated output).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.starts_with("crates/xtask/fixtures/") {
        return None;
    }
    let sim_facing = SIM_FACING_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/")));
    let boundary = BOUNDARY_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/")));
    let harness = rel.starts_with("crates/experiments/");
    let hot_path = HOT_PATH_PREFIXES.iter().any(|p| rel.starts_with(p));
    let test_file = rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/");
    Some(FileClass {
        sim_facing,
        hot_path,
        test_file,
        harness,
        boundary,
    })
}

/// Everything one workspace lint pass learned: surviving violations plus
/// the full waiver inventory (used waivers included, for the report).
#[derive(Debug, Clone, Default)]
pub struct WorkspaceReport {
    /// Violations that survived waiver resolution, walk order.
    pub violations: Vec<Violation>,
    /// Every waiver declared anywhere in the workspace.
    pub waivers: Vec<Waiver>,
}

impl WorkspaceReport {
    /// Per-slug counts of *used* waivers, for the budget check.
    pub fn waiver_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for w in self.waivers.iter().filter(|w| w.used) {
            *counts.entry(w.slug.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Render the machine-readable report (`cargo xtask lint --json`):
    /// violations, waiver inventory, and per-slug counts. Hand-rolled
    /// JSON — the workspace takes no serialization dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"excerpt\": {}}}",
                json_str(v.rule.id()),
                json_str(&v.path),
                v.line,
                json_str(&v.message),
                json_str(&v.excerpt)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"slug\": {}, \"reason\": {}, \"used\": {}}}",
                json_str(&w.path),
                w.line,
                json_str(&w.slug),
                json_str(&w.reason),
                w.used
            ));
        }
        if !self.waivers.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"waiver_counts\": {");
        let counts = self.waiver_counts();
        for (i, (slug, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_str(slug), n));
        }
        if !counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "}},\n  \"violation_count\": {},\n  \"waiver_count\": {}\n}}\n",
            self.violations.len(),
            self.waivers.len()
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walk the workspace and lint every Rust source file (rules + the R6
/// crate-root header check), returning the full report.
pub fn analyze_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = WorkspaceReport::default();
    for rel in &files {
        let Some(class) = classify(rel) else { continue };
        let source = fs::read_to_string(root.join(rel))?;
        let file_report = analyze_file(rel, &source, &class);
        report.violations.extend(file_report.violations);
        report.waivers.extend(file_report.waivers);
        if rel.ends_with("/src/lib.rs") || rel == "src/lib.rs" {
            report.violations.extend(check_lib_headers(rel, &source));
        }
    }
    Ok(report)
}

/// Walk the workspace and lint every Rust source file, returning only
/// the surviving violations.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    analyze_workspace(root).map(|r| r.violations)
}

/// Name of the waiver budget file at the workspace root.
pub const WAIVER_BUDGET_FILE: &str = "WAIVERS.budget";

/// Compare the report's per-slug used-waiver counts against the
/// committed `WAIVERS.budget`. Any drift — growth *or* shrinkage — is an
/// error, so the budget file is always an exact inventory and changing
/// it is a reviewed part of the same diff.
pub fn check_waiver_budget(root: &Path, report: &WorkspaceReport) -> Result<(), String> {
    let path = root.join(WAIVER_BUDGET_FILE);
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("{WAIVER_BUDGET_FILE} unreadable at workspace root: {e}"))?;
    let mut budget: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(slug), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "{WAIVER_BUDGET_FILE}:{}: expected `<slug> <count>`, got `{line}`",
                idx + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|e| format!("{WAIVER_BUDGET_FILE}:{}: bad count `{count}`: {e}", idx + 1))?;
        if Rule::for_slug(slug).is_none() {
            return Err(format!(
                "{WAIVER_BUDGET_FILE}:{}: unknown slug `{slug}`",
                idx + 1
            ));
        }
        if budget.insert(slug.to_string(), count).is_some() {
            return Err(format!(
                "{WAIVER_BUDGET_FILE}:{}: duplicate slug `{slug}`",
                idx + 1
            ));
        }
    }

    let actual = report.waiver_counts();
    let mut drift = Vec::new();
    for slug in rules::known_slugs() {
        let budgeted = budget.get(slug).copied().unwrap_or(0);
        let counted = actual.get(slug).copied().unwrap_or(0);
        if budgeted != counted {
            drift.push(format!(
                "  {slug}: budget {budgeted}, workspace has {counted}"
            ));
        }
    }
    if drift.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "waiver counts drifted from {WAIVER_BUDGET_FILE} (update it in the same diff):\n{}",
            drift.join("\n")
        ))
    }
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "results", "fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// The workspace root, derived from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let c = classify("crates/core/src/marker.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file && c.boundary && !c.harness);
        let c = classify("crates/net/src/network.rs").unwrap();
        assert!(c.sim_facing && !c.hot_path && c.boundary);
        let c = classify("crates/net/src/port.rs").unwrap();
        assert!(c.hot_path);
        let c = classify("crates/net/src/fault.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file);
        let c = classify("crates/sim/src/wheel.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file && c.boundary);
        let c = classify("crates/sim/src/supervise.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file && c.boundary);
        let c = classify("crates/telemetry/src/hist.rs").unwrap();
        assert!(c.sim_facing && c.hot_path && !c.test_file && !c.boundary);
        let c = classify("crates/workload/src/synth.rs").unwrap();
        assert!(
            c.sim_facing && !c.boundary,
            "workload is not a boundary crate"
        );
        let c = classify("crates/experiments/src/bin/all.rs").unwrap();
        assert!(!c.sim_facing && !c.hot_path && c.harness && !c.boundary);
        let c = classify("crates/experiments/tests/race_harness.rs").unwrap();
        assert!(c.harness && c.test_file);
        let c = classify("crates/net/tests/topology_prop.rs").unwrap();
        assert!(c.sim_facing && c.test_file);
        let c = classify("crates/xtask/src/main.rs").unwrap();
        assert!(!c.sim_facing && !c.harness && !c.boundary);
        assert!(classify("crates/xtask/fixtures/r1_wall_clock.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn workspace_is_lint_clean() {
        let violations = lint_workspace(&workspace_root()).expect("walk workspace");
        assert!(
            violations.is_empty(),
            "workspace must be lint-clean:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn workspace_waiver_budget_is_exact() {
        let root = workspace_root();
        let report = analyze_workspace(&root).expect("walk workspace");
        check_waiver_budget(&root, &report).expect("waiver budget");
    }

    #[test]
    fn json_report_round_trips_basic_structure() {
        let report = WorkspaceReport {
            violations: vec![Violation {
                rule: Rule::WallClock,
                path: "crates/sim/src/a.rs".into(),
                line: 3,
                message: "uses \"Instant\"".into(),
                excerpt: "let t = Instant::now();".into(),
            }],
            waivers: vec![Waiver {
                path: "crates/stats/src/hist.rs".into(),
                line: 162,
                slug: "float-cmp".into(),
                reason: "bucket boundary".into(),
                used: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"R1\""));
        assert!(json.contains("\\\"Instant\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"slug\": \"float-cmp\""));
        assert!(json.contains("\"float-cmp\": 1"));
        assert!(json.contains("\"violation_count\": 1"));
        let empty = WorkspaceReport::default().to_json();
        assert!(empty.contains("\"violations\": []"));
        assert!(empty.contains("\"waiver_counts\": {}"));
    }

    #[test]
    fn budget_rejects_drift_and_garbage() {
        let report = WorkspaceReport::default();
        let scratch = std::env::temp_dir().join(format!(
            "ecnsharp-budget-test-{}-{}",
            std::process::id(),
            line!()
        ));
        fs::create_dir_all(&scratch).unwrap();
        // Missing file.
        assert!(check_waiver_budget(&scratch, &report).is_err());
        // Exact (all zeros / comments only).
        fs::write(scratch.join(WAIVER_BUDGET_FILE), "# none\n").unwrap();
        assert!(check_waiver_budget(&scratch, &report).is_ok());
        // Budget says 2, workspace has 0 — shrinkage is drift too.
        fs::write(scratch.join(WAIVER_BUDGET_FILE), "float-cmp 2\n").unwrap();
        let err = check_waiver_budget(&scratch, &report).unwrap_err();
        assert!(err.contains("budget 2, workspace has 0"), "{err}");
        // Unknown slug.
        fs::write(scratch.join(WAIVER_BUDGET_FILE), "no-such-slug 1\n").unwrap();
        assert!(check_waiver_budget(&scratch, &report).is_err());
        // Malformed line.
        fs::write(scratch.join(WAIVER_BUDGET_FILE), "float-cmp two\n").unwrap();
        assert!(check_waiver_budget(&scratch, &report).is_err());
        let _ = fs::remove_dir_all(&scratch);
    }

    #[test]
    fn selftest_passes() {
        selftest::run(&workspace_root()).expect("selftest");
    }
}
