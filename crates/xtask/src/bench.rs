//! `cargo xtask bench` — the standing benchmark harness.
//!
//! Runs the six `ecnsharp-bench` targets (`engine`, `aqm_cost`,
//! `figures`, `shard_scaling`, `cache_pressure`, `supervision_cost`) with
//! `ECNSHARP_BENCH_JSON` pointed at a scratch file, then
//! collates the criterion shim's JSON-lines into `BENCH_sim.json` at the
//! workspace root: median ns/iter, derived events/sec and ns/event, wall
//! seconds per quick-scale figure, and a machine fingerprint. The file is
//! committed as the perf baseline; `cargo xtask bench-diff old new`
//! compares two of them.
//!
//! Everything is hand-rolled JSON (one bench entry per line) so the
//! workspace stays registry-free and the file diffs cleanly in review.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

/// One collated benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark group (e.g. `event_queue`).
    pub group: String,
    /// Benchmark id within the group (e.g. `push_pop_10k`).
    pub bench: String,
    /// Median wall nanoseconds per iteration.
    pub median_ns: u64,
    /// Minimum wall nanoseconds per iteration, when the shim emitted it.
    /// Co-tenant interference is strictly additive, so the minimum is the
    /// robust statistic for the paired same-run gates; committed
    /// `BENCH_sim.json` baselines predating the field parse as `None`.
    pub min_ns: Option<u64>,
    /// Timed samples taken.
    pub samples: u64,
    /// Logical elements processed per iteration, when annotated.
    pub elements: Option<u64>,
    /// Bytes processed per iteration, when annotated.
    pub bytes: Option<u64>,
}

/// Medians below this many nanoseconds are dominated by clock quantization
/// and harness overhead, and rates derived from them are garbage (a 33 ns
/// median over 100 elements reads as three billion events/sec — the
/// `aqm_per_packet` entries used to report exactly that). Below the floor
/// the derived fields render as `null` and comparisons skip the entry.
pub const MEASUREMENT_FLOOR_NS: u64 = 1_000;

impl BenchEntry {
    /// Elements per second (events/sec for the engine benches). `None`
    /// when unannotated or the median is below [`MEASUREMENT_FLOOR_NS`].
    pub fn rate_per_sec(&self) -> Option<f64> {
        match (self.elements, self.median_ns) {
            (Some(n), m) if m >= MEASUREMENT_FLOOR_NS => Some(n as f64 * 1e9 / m as f64),
            _ => None,
        }
    }

    /// Nanoseconds per element (ns/event for the engine benches). `None`
    /// when unannotated or the median is below [`MEASUREMENT_FLOOR_NS`].
    pub fn ns_per_element(&self) -> Option<f64> {
        if self.median_ns < MEASUREMENT_FLOOR_NS {
            return None;
        }
        self.elements
            .filter(|&n| n > 0)
            .map(|n| self.median_ns as f64 / n as f64)
    }

    fn to_json_line(&self) -> String {
        let mut s = format!(
            "    {{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"samples\":{}",
            self.group, self.bench, self.median_ns, self.samples
        );
        match self.elements {
            Some(n) => match (self.rate_per_sec(), self.ns_per_element()) {
                (Some(rate), Some(ns)) => {
                    let _ = write!(
                        s,
                        ",\"elements\":{n},\"events_per_sec\":{rate:.0},\"ns_per_event\":{ns:.2}"
                    );
                }
                _ => {
                    let _ = write!(
                        s,
                        ",\"elements\":{n},\"events_per_sec\":null,\"ns_per_event\":null"
                    );
                }
            },
            None => s.push_str(",\"elements\":null"),
        }
        match self.bytes {
            Some(n) => {
                let _ = write!(s, ",\"bytes\":{n}");
            }
            None => s.push_str(",\"bytes\":null"),
        }
        let _ = write!(s, ",\"wall_secs\":{:.6}}}", self.median_ns as f64 / 1e9);
        s
    }
}

// ── minimal JSON-line field extraction (registry-free, format is ours) ──

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Parse one shim-emitted (or BENCH_sim.json) bench line.
pub fn parse_bench_line(line: &str) -> Option<BenchEntry> {
    Some(BenchEntry {
        group: json_str_field(line, "group")?,
        bench: json_str_field(line, "bench")?,
        median_ns: json_u64_field(line, "median_ns")?,
        min_ns: json_u64_field(line, "min_ns"),
        samples: json_u64_field(line, "samples").unwrap_or(0),
        elements: json_u64_field(line, "elements"),
        bytes: json_u64_field(line, "bytes"),
    })
}

/// Parse every bench entry out of a `BENCH_sim.json` (or raw JSON-lines)
/// file body.
pub fn parse_bench_file(body: &str) -> Vec<BenchEntry> {
    body.lines().filter_map(parse_bench_line).collect()
}

// ── machine fingerprint ────────────────────────────────────────────────

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn rustc_version() -> String {
    Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Render the collated `BENCH_sim.json` body. Deliberately carries no
/// timestamp: two runs on the same machine and tree diff clean.
pub fn render_bench_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"machine\": {{\"cpu\": \"{}\", \"cores\": {}, \"rustc\": \"{}\"}},",
        cpu_model().escape_default(),
        cores(),
        rustc_version().escape_default()
    );
    out.push_str("  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&e.to_json_line());
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn cargo() -> Command {
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()))
}

/// Run the standing benches and write `BENCH_sim.json` at `root`.
/// Returns false on any failure.
pub fn run(root: &Path) -> bool {
    let scratch: PathBuf = root.join("target").join("bench_raw.jsonl");
    let _ = std::fs::create_dir_all(scratch.parent().expect("target dir"));
    let _ = std::fs::remove_file(&scratch);
    for target in [
        "engine",
        "aqm_cost",
        "figures",
        "shard_scaling",
        "cache_pressure",
        "supervision_cost",
    ] {
        println!("bench: running `cargo bench -p ecnsharp-bench --bench {target}` ...");
        let status = cargo()
            .args(["bench", "-p", "ecnsharp-bench", "--bench", target])
            .env("ECNSHARP_BENCH_JSON", &scratch)
            .current_dir(root)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("bench: `{target}` failed ({s})");
                return false;
            }
            Err(e) => {
                eprintln!("bench: could not launch cargo: {e}");
                return false;
            }
        }
    }
    let raw = match std::fs::read_to_string(&scratch) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench: no shim output at {}: {e}", scratch.display());
            return false;
        }
    };
    let entries = parse_bench_file(&raw);
    if entries.is_empty() {
        eprintln!("bench: shim output parsed to zero entries");
        return false;
    }
    let out_path = root.join("BENCH_sim.json");
    let body = render_bench_json(&entries);
    if let Err(e) = std::fs::write(&out_path, body) {
        eprintln!("bench: could not write {}: {e}", out_path.display());
        return false;
    }
    println!(
        "\nbench: wrote {} ({} entries)",
        out_path.display(),
        entries.len()
    );
    for e in &entries {
        match e.rate_per_sec() {
            Some(r) => println!(
                "  {}/{}: {} ns median, {:.2} M/s",
                e.group,
                e.bench,
                e.median_ns,
                r / 1e6
            ),
            None => println!("  {}/{}: {} ns median", e.group, e.bench, e.median_ns),
        }
    }
    true
}

/// `cargo xtask bench-diff old.json new.json` — per-bench comparison.
pub fn diff(old_path: &str, new_path: &str) -> bool {
    let read = |p: &str| -> Option<Vec<BenchEntry>> {
        match std::fs::read_to_string(p) {
            Ok(s) => Some(parse_bench_file(&s)),
            Err(e) => {
                eprintln!("bench-diff: cannot read {p}: {e}");
                None
            }
        }
    };
    let (Some(old), Some(new)) = (read(old_path), read(new_path)) else {
        return false;
    };
    if old.is_empty() || new.is_empty() {
        eprintln!("bench-diff: no bench entries parsed");
        return false;
    }
    println!(
        "{:<34} {:>14} {:>14} {:>9}",
        "bench", "old ns", "new ns", "speedup"
    );
    let mut matched = 0usize;
    for n in &new {
        let Some(o) = old
            .iter()
            .find(|o| o.group == n.group && o.bench == n.bench)
        else {
            println!(
                "{:<34} {:>14} {:>14} {:>9}",
                format!("{}/{}", n.group, n.bench),
                "-",
                n.median_ns,
                "new"
            );
            continue;
        };
        matched += 1;
        let speedup = if n.median_ns > 0 {
            o.median_ns as f64 / n.median_ns as f64
        } else {
            f64::INFINITY
        };
        println!(
            "{:<34} {:>14} {:>14} {:>8.2}x",
            format!("{}/{}", n.group, n.bench),
            o.median_ns,
            n.median_ns,
            speedup
        );
    }
    for o in &old {
        if !new.iter().any(|n| n.group == o.group && n.bench == o.bench) {
            println!(
                "{:<34} {:>14} {:>14} {:>9}",
                format!("{}/{}", o.group, o.bench),
                o.median_ns,
                "-",
                "gone"
            );
        }
    }
    println!(
        "\nbench-diff: {matched} matched entr{}",
        if matched == 1 { "y" } else { "ies" }
    );
    true
}

/// `cargo xtask bench-diff --check` — the perf regression gate. Re-runs
/// the `engine`, `shard_scaling`, `cache_pressure`, and
/// `supervision_cost` bench targets and
/// compares their medians against the committed `BENCH_sim.json`; any bench slower than
/// the baseline by more than its group budget fails the gate. Entries
/// whose median (on either side) sits below [`MEASUREMENT_FLOOR_NS`] are
/// skipped: sub-floor medians are quantization noise, not signal. The
/// [`PAIRED_GATES`] groups are gated on their same-run pair ratio
/// instead of against the committed baseline.
pub fn check(root: &Path) -> bool {
    let baseline_path = root.join("BENCH_sim.json");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => parse_bench_file(&s),
        Err(e) => {
            eprintln!(
                "bench-diff --check: cannot read {}: {e}",
                baseline_path.display()
            );
            return false;
        }
    };
    if baseline.is_empty() {
        eprintln!("bench-diff --check: baseline parsed to zero entries");
        return false;
    }
    let scratch: PathBuf = root.join("target").join("bench_check.jsonl");
    let _ = std::fs::create_dir_all(scratch.parent().expect("target dir"));
    let _ = std::fs::remove_file(&scratch);
    for target in [
        "engine",
        "shard_scaling",
        "cache_pressure",
        "supervision_cost",
    ] {
        println!(
            "bench-diff --check: running `cargo bench -p ecnsharp-bench --bench {target}` ..."
        );
        let status = cargo()
            .args(["bench", "-p", "ecnsharp-bench", "--bench", target])
            .env("ECNSHARP_BENCH_JSON", &scratch)
            .current_dir(root)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("bench-diff --check: {target} bench failed ({s})");
                return false;
            }
            Err(e) => {
                eprintln!("bench-diff --check: could not launch cargo: {e}");
                return false;
            }
        }
    }
    let fresh = match std::fs::read_to_string(&scratch) {
        Ok(s) => parse_bench_file(&s),
        Err(e) => {
            eprintln!(
                "bench-diff --check: no shim output at {}: {e}",
                scratch.display()
            );
            return false;
        }
    };
    check_entries(&baseline, &fresh)
}

/// Per-group regression budget. The `telemetry_noop` group carries the
/// zero-cost-observability claim (OBSERVABILITY.md): with only the no-op
/// subscriber attached, the port fast path must stay within measurement
/// noise of the committed baseline, so it is held to 3% where ordinary
/// engine groups get the routine 25%.
pub fn max_regression_for(group: &str) -> f64 {
    match group {
        "telemetry_noop" => 1.03,
        // Armed-but-untriggered watchdogs are one branch and a counter
        // per popped event; like the no-op subscriber, they carry a
        // zero-cost-when-quiet claim (DESIGN.md "Run supervision") and
        // are held to measurement noise. Applied to the same-run
        // armed-vs-off pair ratio ([`PAIRED_GATES`]), not to the
        // committed baseline.
        "supervision_cost" => 1.03,
        // Whole-simulation wall times (seconds per sample, 5 samples):
        // noisier than the microbenches, so the budget is wider. The
        // group still gates the sharded engine against gross slowdowns.
        "shard_scaling" => 1.50,
        // Mixed group: one whole-simulation leaf-spine run (noisy, like
        // shard_scaling) next to copy/ring microbenches — sized for its
        // noisiest member so the working-set bench can gate the pooled
        // rings without flaking.
        "cache_pressure" => 1.40,
        _ => 1.25,
    }
}

/// Paired same-run zero-cost gates: `(group, off bench, armed bench)`.
/// These groups skip the entry-vs-committed-baseline comparison — on a
/// shared box, co-tenant bursts move a whole-simulation median far past
/// any honest zero-cost budget, and binary layout alone drifts absolute
/// numbers across commits. Instead the two benches of the pair, measured
/// seconds apart in the same run, are compared to *each other* on
/// per-sample minima (interference is strictly additive, so the minimum
/// is the stable statistic), holding the armed side within the group
/// budget of the off side.
const PAIRED_GATES: [(&str, &str, &str); 1] = [(
    "supervision_cost",
    "dctcp_10mb_guards_off",
    "dctcp_10mb_guards_armed",
)];

/// The comparison half of [`check`], split out for unit testing: `true`
/// iff no fresh entry regressed beyond its group's budget
/// ([`max_regression_for`]) against its baseline counterpart, and every
/// [`PAIRED_GATES`] pair present in `fresh` holds its same-run ratio.
pub fn check_entries(baseline: &[BenchEntry], fresh: &[BenchEntry]) -> bool {
    let mut ok = true;
    let mut compared = 0usize;
    for n in fresh {
        if PAIRED_GATES.iter().any(|(g, _, _)| *g == n.group) {
            continue; // gated as a same-run pair below
        }
        let Some(o) = baseline
            .iter()
            .find(|o| o.group == n.group && o.bench == n.bench)
        else {
            println!(
                "  {}/{}: new bench, no baseline — skipped",
                n.group, n.bench
            );
            continue;
        };
        if n.median_ns < MEASUREMENT_FLOOR_NS || o.median_ns < MEASUREMENT_FLOOR_NS {
            println!(
                "  {}/{}: median below {MEASUREMENT_FLOOR_NS} ns floor — skipped",
                n.group, n.bench
            );
            continue;
        }
        compared += 1;
        let budget = max_regression_for(&n.group);
        let ratio = n.median_ns as f64 / o.median_ns as f64;
        if ratio > budget {
            eprintln!(
                "  {}/{}: REGRESSION {:.2}x, budget {:.2}x (baseline {} ns, now {} ns)",
                n.group, n.bench, ratio, budget, o.median_ns, n.median_ns
            );
            ok = false;
        } else {
            println!(
                "  {}/{}: ok ({:.2}x baseline, budget {:.2}x, {} ns -> {} ns)",
                n.group, n.bench, ratio, budget, o.median_ns, n.median_ns
            );
        }
    }
    for (group, off_name, armed_name) in PAIRED_GATES {
        let off = fresh
            .iter()
            .find(|e| e.group == group && e.bench == off_name);
        let armed = fresh
            .iter()
            .find(|e| e.group == group && e.bench == armed_name);
        let (off, armed) = match (off, armed) {
            (Some(o), Some(a)) => (o, a),
            (None, None) => continue, // group not in this run
            _ => {
                eprintln!(
                    "  {group}: paired gate needs both {off_name} and {armed_name} — bench names diverged?"
                );
                ok = false;
                continue;
            }
        };
        let off_ns = off.min_ns.unwrap_or(off.median_ns);
        let armed_ns = armed.min_ns.unwrap_or(armed.median_ns);
        if off_ns < MEASUREMENT_FLOOR_NS || armed_ns < MEASUREMENT_FLOOR_NS {
            println!("  {group}: below {MEASUREMENT_FLOOR_NS} ns floor — skipped");
            continue;
        }
        compared += 1;
        let budget = max_regression_for(group);
        let ratio = armed_ns as f64 / off_ns as f64;
        if ratio > budget {
            eprintln!(
                "  {group}: PAIR REGRESSION {ratio:.2}x, budget {budget:.2}x (same-run min {off_ns} ns off, {armed_ns} ns armed)"
            );
            ok = false;
        } else {
            println!(
                "  {group}: ok (armed {ratio:.2}x off, budget {budget:.2}x, same-run min {off_ns} ns -> {armed_ns} ns)"
            );
        }
    }
    if compared == 0 {
        eprintln!("bench-diff --check: nothing compared — group/bench names diverged?");
        return false;
    }
    if ok {
        println!("bench-diff --check: {compared} benches within budget of baseline");
    } else {
        eprintln!("bench-diff --check: perf regression vs BENCH_sim.json");
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_line() {
        let line = r#"{"group":"event_queue","bench":"push_pop_10k","median_ns":697502,"samples":20,"elements":10000,"bytes":null}"#;
        let e = parse_bench_line(line).expect("parses");
        assert_eq!(e.group, "event_queue");
        assert_eq!(e.bench, "push_pop_10k");
        assert_eq!(e.median_ns, 697_502);
        assert_eq!(e.samples, 20);
        assert_eq!(e.elements, Some(10_000));
        assert_eq!(e.bytes, None);
        let rate = e.rate_per_sec().expect("has elements");
        assert!((rate - 14_336_876.0).abs() < 1_000.0, "{rate}");
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let entries = vec![
            BenchEntry {
                group: "event_queue".into(),
                bench: "push_pop_10k".into(),
                median_ns: 700_000,
                min_ns: None,
                samples: 20,
                elements: Some(10_000),
                bytes: None,
            },
            BenchEntry {
                group: "figures_quick".into(),
                bench: "fig2".into(),
                median_ns: 3_000_000_000,
                min_ns: None,
                samples: 10,
                elements: None,
                bytes: None,
            },
        ];
        let body = render_bench_json(&entries);
        assert!(body.contains("\"machine\""));
        assert!(body.contains("\"events_per_sec\""));
        assert!(body.contains("\"wall_secs\""));
        let parsed = parse_bench_file(&body);
        assert_eq!(parsed, entries);
    }

    #[test]
    fn sub_floor_medians_yield_null_rates() {
        let e = BenchEntry {
            group: "aqm_per_packet".into(),
            bench: "dctcp_red".into(),
            median_ns: 33,
            min_ns: None,
            samples: 100,
            elements: Some(100),
            bytes: None,
        };
        assert_eq!(e.rate_per_sec(), None, "33 ns median is noise");
        assert_eq!(e.ns_per_element(), None);
        let line = e.to_json_line();
        assert!(
            line.contains("\"events_per_sec\":null,\"ns_per_event\":null"),
            "{line}"
        );
        // And the null round-trips: elements survive, derived fields stay
        // absent rather than parsing as garbage digits.
        let parsed = parse_bench_line(&line).expect("parses");
        assert_eq!(parsed.elements, Some(100));
        assert_eq!(parsed.median_ns, 33);
    }

    fn entry(group: &str, bench: &str, median_ns: u64) -> BenchEntry {
        BenchEntry {
            group: group.into(),
            bench: bench.into(),
            median_ns,
            min_ns: None,
            samples: 20,
            elements: Some(10_000),
            bytes: None,
        }
    }

    #[test]
    fn check_passes_within_budget_and_fails_beyond() {
        let base = vec![entry("event_queue", "push_pop_10k", 100_000)];
        assert!(check_entries(
            &base,
            &[entry("event_queue", "push_pop_10k", 120_000)]
        ));
        assert!(!check_entries(
            &base,
            &[entry("event_queue", "push_pop_10k", 130_000)]
        ));
    }

    #[test]
    fn telemetry_noop_group_holds_the_3_percent_line() {
        assert!((max_regression_for("telemetry_noop") - 1.03).abs() < 1e-9);
        assert!((max_regression_for("supervision_cost") - 1.03).abs() < 1e-9);
        assert!((max_regression_for("event_queue") - 1.25).abs() < 1e-9);
        assert!((max_regression_for("shard_scaling") - 1.50).abs() < 1e-9);
        assert!((max_regression_for("cache_pressure") - 1.40).abs() < 1e-9);
        let base = vec![entry("telemetry_noop", "port_churn_40k_noop", 100_000)];
        // +2% is within the tight budget; +5% would pass the engine budget
        // but must fail here.
        assert!(check_entries(
            &base,
            &[entry("telemetry_noop", "port_churn_40k_noop", 102_000)]
        ));
        assert!(!check_entries(
            &base,
            &[entry("telemetry_noop", "port_churn_40k_noop", 105_000)]
        ));
    }

    #[test]
    fn supervision_pair_gate_compares_same_run_minima_not_baseline() {
        let mut off = entry("supervision_cost", "dctcp_10mb_guards_off", 6_000_000);
        off.min_ns = Some(6_000_000);
        let mut armed = entry("supervision_cost", "dctcp_10mb_guards_armed", 8_000_000);
        // Median blown out by a co-tenant burst; the min tells the truth.
        armed.min_ns = Some(6_100_000);
        // The committed baseline has no say: the pair passes on its
        // same-run ratio even though no supervision_cost baseline exists.
        let base = vec![entry("event_queue", "push_pop_10k", 100_000)];
        let fresh = vec![
            entry("event_queue", "push_pop_10k", 100_000),
            off.clone(),
            armed.clone(),
        ];
        assert!(check_entries(&base, &fresh));
        // A >3% min-to-min gap fails even with an innocuous median.
        armed.min_ns = Some(6_300_000);
        armed.median_ns = 6_300_000;
        assert!(!check_entries(&base, &[off.clone(), armed]));
        // Half a pair is a wiring error, not a skip.
        assert!(!check_entries(&base, &[off]));
    }

    #[test]
    fn check_skips_sub_floor_entries_but_needs_one_comparison() {
        let base = vec![
            entry("aqm_per_packet", "dctcp_red", 33),
            entry("event_queue", "push_pop_10k", 100_000),
        ];
        // The 33 ns entry "regresses" 10x but is noise; the real entry holds.
        let fresh = vec![
            entry("aqm_per_packet", "dctcp_red", 330),
            entry("event_queue", "push_pop_10k", 100_000),
        ];
        assert!(check_entries(&base, &fresh));
        // All entries sub-floor → nothing compared → fail loudly.
        assert!(!check_entries(
            &[entry("aqm_per_packet", "dctcp_red", 33)],
            &[entry("aqm_per_packet", "dctcp_red", 33)],
        ));
    }

    #[test]
    fn ignores_non_bench_lines() {
        let body = "{\n  \"machine\": {\"cpu\": \"x\", \"cores\": 4, \"rustc\": \"y\"},\n  \"benches\": [\n  ]\n}\n";
        assert!(parse_bench_file(body).is_empty());
    }
}
