//! The determinism + shard-safety lint rules (R1-R11) and the per-file
//! checking engine.
//!
//! Every rule reports [`Violation`]s carrying the rule id, a waiver slug
//! (where waiving is permitted), and the offending location. A waiver is
//! a comment `// lint: allow(<slug>) <reason>` on the violating line or
//! the line directly above it. The engine tracks which waivers actually
//! suppressed something: a waiver that no longer matches a live finding
//! is itself a violation (R11), so the waiver inventory can never rot.

use crate::scan::{find_keyword, find_word, has_word, scan_lines, waivers_with_reasons};
use crate::FileClass;
use std::fmt;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no wall-clock (`std::time::Instant` / `SystemTime`) in
    /// sim-facing crates.
    WallClock,
    /// R2: no ambient randomness (`thread_rng`, `rand::random`, `OsRng`).
    NondeterministicRng,
    /// R3: no default-hasher `HashMap`/`HashSet` in sim-facing production
    /// code.
    HashCollections,
    /// R4: no `.unwrap()`/`.expect()`/`panic!`-family in AQM/marker/port
    /// hot paths without a waiver.
    HotPathPanic,
    /// R5: no `==`/`!=` on floating-point expressions.
    FloatCmp,
    /// R6: every crate's `lib.rs` forbids unsafe code and warns on
    /// missing docs.
    LintHeaders,
    /// R7: no mutable `static`s and no `static` items with interior
    /// mutability (`Mutex`/`RwLock`/`Atomic*`/`OnceLock`/…) in sim-facing
    /// or harness code — hidden cross-shard coupling.
    SharedState,
    /// R8: no `Rc`/`RefCell`/`Cell` in the public types of the shard
    /// boundary crates (`core`/`sim`/`net`/`aqm`/`sched`/`transport`) —
    /// these types must stay `Send` for the sharded engine.
    NonSendType,
    /// R9: no unordered-collection iteration (`drain`/`retain`/
    /// `into_iter`/…) feeding results, and no `partial_cmp(..).unwrap()`
    /// float sort comparators.
    UnorderedIteration,
    /// R10: every `std::env::var` read lives in the crate's blessed
    /// `env.rs` module (the strict-knob policy, enforced).
    EnvOutsideEnvModule,
    /// R11: a declared waiver must suppress a live violation; stale or
    /// unknown waivers fail the lint.
    StaleWaiver,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 11] = [
    Rule::WallClock,
    Rule::NondeterministicRng,
    Rule::HashCollections,
    Rule::HotPathPanic,
    Rule::FloatCmp,
    Rule::LintHeaders,
    Rule::SharedState,
    Rule::NonSendType,
    Rule::UnorderedIteration,
    Rule::EnvOutsideEnvModule,
    Rule::StaleWaiver,
];

impl Rule {
    /// Short rule id used in reports ("R1".."R11").
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "R1",
            Rule::NondeterministicRng => "R2",
            Rule::HashCollections => "R3",
            Rule::HotPathPanic => "R4",
            Rule::FloatCmp => "R5",
            Rule::LintHeaders => "R6",
            Rule::SharedState => "R7",
            Rule::NonSendType => "R8",
            Rule::UnorderedIteration => "R9",
            Rule::EnvOutsideEnvModule => "R10",
            Rule::StaleWaiver => "R11",
        }
    }

    /// Waiver slug accepted in `lint: allow(<slug>)` comments; `None`
    /// when the rule cannot be waived.
    pub fn waiver_slug(self) -> Option<&'static str> {
        match self {
            Rule::WallClock => Some("wall-clock"),
            Rule::NondeterministicRng => None,
            Rule::HashCollections => Some("hash-collections"),
            Rule::HotPathPanic => Some("hot-path-panic"),
            Rule::FloatCmp => Some("float-cmp"),
            Rule::LintHeaders => None,
            Rule::SharedState => Some("shared-state"),
            Rule::NonSendType => Some("non-send-type"),
            Rule::UnorderedIteration => Some("unordered-iteration"),
            Rule::EnvOutsideEnvModule => Some("env-read"),
            Rule::StaleWaiver => None,
        }
    }

    /// The rule a waiver slug belongs to, if any.
    pub fn for_slug(slug: &str) -> Option<Rule> {
        ALL_RULES
            .into_iter()
            .find(|r| r.waiver_slug() == Some(slug))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One reported lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}\n    | {}",
            self.rule, self.path, self.line, self.message, self.excerpt
        )
    }
}

/// One waiver declaration found in a file, with its usage status.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number of the declaring comment.
    pub line: usize,
    /// The `lint: allow(<slug>)` slug.
    pub slug: String,
    /// Free-text justification following the slug.
    pub reason: String,
    /// Whether the waiver suppressed at least one live violation.
    pub used: bool,
}

/// Everything the engine learned about one file: surviving violations
/// (including R11 stale-waiver findings) plus the full waiver inventory.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    /// Violations that survived waiver resolution.
    pub violations: Vec<Violation>,
    /// Every waiver declared in the file, used or not.
    pub waivers: Vec<Waiver>,
}

/// Check one file's source against every applicable rule, resolving
/// waivers and flagging stale ones (R11).
pub fn analyze_file(path: &str, source: &str, class: &FileClass) -> FileReport {
    let lines = scan_lines(source);
    let raw: Vec<&str> = source.lines().collect();

    // Waiver inventory, indexed per line for resolution.
    let mut waivers: Vec<Waiver> = Vec::new();
    let per_line: Vec<Vec<usize>> = lines
        .iter()
        .enumerate()
        .map(|(idx, l)| {
            waivers_with_reasons(&l.comment)
                .into_iter()
                .map(|(slug, reason)| {
                    waivers.push(Waiver {
                        path: path.to_string(),
                        line: idx + 1,
                        slug,
                        reason,
                        used: false,
                    });
                    waivers.len() - 1
                })
                .collect()
        })
        .collect();

    // Candidate violations before waiver resolution.
    let mut candidates: Vec<Violation> = Vec::new();
    let mut push = |rule: Rule, idx: usize, message: String| {
        candidates.push(Violation {
            rule,
            path: path.to_string(),
            line: idx + 1,
            message,
            excerpt: raw.get(idx).map_or(String::new(), |s| s.trim().to_string()),
        });
    };

    for (idx, l) in lines.iter().enumerate() {
        let in_test = class.test_file || l.in_test;
        let code = l.code.as_str();

        // ── R1: wall clock ────────────────────────────────────────────
        if class.sim_facing {
            for word in ["Instant", "SystemTime"] {
                if has_word(code, word) {
                    push(
                        Rule::WallClock,
                        idx,
                        format!(
                            "`{word}` is wall-clock time; simulations must use \
                             `SimTime` from the event queue"
                        ),
                    );
                }
            }
        }

        // ── R2: ambient randomness (workspace-wide, unwaivable) ───────
        for word in ["thread_rng", "OsRng", "from_entropy"] {
            if has_word(code, word) {
                push(
                    Rule::NondeterministicRng,
                    idx,
                    format!("`{word}` draws OS entropy; all randomness must flow through the seeded `ecnsharp_sim::Rng`"),
                );
            }
        }
        if code.contains("rand::random") {
            push(
                Rule::NondeterministicRng,
                idx,
                "`rand::random` draws from an ambient generator; use the seeded `ecnsharp_sim::Rng`".to_string(),
            );
        }

        // ── R3: default-hasher collections ────────────────────────────
        if class.sim_facing && !in_test {
            for word in ["HashMap", "HashSet"] {
                if has_word(code, word) {
                    push(
                        Rule::HashCollections,
                        idx,
                        format!(
                            "`{word}` iterates in nondeterministic order; use \
                             BTreeMap/BTreeSet/Vec or waive with \
                             `// lint: allow(hash-collections) <reason>`"
                        ),
                    );
                }
            }
        }

        // ── R4: panics in hot paths ───────────────────────────────────
        if class.hot_path && !in_test {
            let panicky: [(&str, bool); 6] = [
                (".unwrap()", false),
                (".expect(", false),
                ("panic!", true),
                ("unreachable!", true),
                ("todo!", true),
                ("unimplemented!", true),
            ];
            for (tok, word_check) in panicky {
                let hit = if word_check {
                    let bare = tok.trim_end_matches('!');
                    find_word(code, bare)
                        .map(|p| code[p + bare.len()..].starts_with('!'))
                        .unwrap_or(false)
                } else {
                    code.contains(tok)
                };
                if hit {
                    push(
                        Rule::HotPathPanic,
                        idx,
                        format!(
                            "`{tok}` can abort the per-packet hot path; return a \
                             typed error, use an invariant!, or waive with \
                             `// lint: allow(hot-path-panic) <reason>`",
                            tok = tok.trim_start_matches('.')
                        ),
                    );
                }
            }
        }

        // ── R5: float equality ────────────────────────────────────────
        for op_pos in float_eq_positions(code) {
            push(
                Rule::FloatCmp,
                idx,
                format!(
                    "`{}` on a floating-point expression; compare with an \
                     epsilon or restructure",
                    &code[op_pos..op_pos + 2]
                ),
            );
        }

        // ── R7: shared mutable state (sim-facing + harness) ───────────
        if (class.sim_facing || class.harness) && !in_test {
            if let Some(pos) = find_keyword(code, "static") {
                // Only item declarations: `static X:` / `pub static X` /
                // `static mut` — not `impl Trait + 'static` (excluded by
                // the keyword scan) or `extern` blocks (none here).
                let decl = static_decl_snippet(&lines, idx, pos);
                if let Some(problem) = shared_state_problem(&decl) {
                    push(
                        Rule::SharedState,
                        idx,
                        format!(
                            "{problem}; process-global mutable state couples \
                             shards — pass state explicitly, or waive with \
                             `// lint: allow(shared-state) <reason>`"
                        ),
                    );
                }
            }
        }

        // ── R8: non-Send types on the shard boundary ──────────────────
        if class.boundary && !in_test {
            for word in ["Rc", "RefCell", "Cell"] {
                if has_word(code, word) && (l.in_pub_type || has_word(code, "pub")) {
                    push(
                        Rule::NonSendType,
                        idx,
                        format!(
                            "`{word}` in a public type of a shard-boundary crate \
                             is not `Send`; a sharded `Network` cannot move it \
                             across threads — use owned state or atomics, or \
                             waive with `// lint: allow(non-send-type) <reason>`"
                        ),
                    );
                }
            }
        }

        // ── R9: unordered iteration / float sort comparators ──────────
        if (class.sim_facing || class.harness) && !in_test {
            let unordered = has_word(code, "HashMap") || has_word(code, "HashSet");
            if unordered {
                for method in [
                    ".drain(",
                    ".retain(",
                    ".into_iter()",
                    ".iter()",
                    ".keys()",
                    ".values()",
                ] {
                    if code.contains(method) {
                        push(
                            Rule::UnorderedIteration,
                            idx,
                            format!(
                                "`{method}` on a default-hasher collection feeds \
                                 results in nondeterministic order; collect \
                                 through a BTreeMap/Vec first",
                                method = method.trim_start_matches('.')
                            ),
                        );
                    }
                }
            }
            if code.contains(".partial_cmp(")
                && (code.contains(".unwrap()")
                    || code.contains(".expect(")
                    || code.contains("sort_by"))
            {
                push(
                    Rule::UnorderedIteration,
                    idx,
                    "`partial_cmp(..).unwrap()` comparators panic on NaN and \
                     under-order floats; use `f64::total_cmp` for a \
                     deterministic total order"
                        .to_string(),
                );
            }
        }

        // ── R10: env reads outside the blessed env module ─────────────
        if (class.sim_facing || class.harness) && !in_test && !is_env_module(path) {
            for pat in ["env::var", "env::vars", "env::var_os"] {
                if code.contains(pat) {
                    push(
                        Rule::EnvOutsideEnvModule,
                        idx,
                        format!(
                            "`{pat}` outside the crate's blessed `env.rs` module; \
                             all knob reads live in one strict module (exit-2 on \
                             bad values) so configuration cannot scatter"
                        ),
                    );
                    break;
                }
            }
        }
    }

    // ── waiver resolution ─────────────────────────────────────────────
    // A waiver on line L suppresses matching violations on L and L+1;
    // every matching waiver is marked used (duplicated adjacent waivers
    // both count as intentional).
    let mut violations: Vec<Violation> = Vec::new();
    for v in candidates {
        let Some(slug) = v.rule.waiver_slug() else {
            violations.push(v);
            continue;
        };
        let idx = v.line - 1;
        let mut suppressed = false;
        for cover in [Some(idx), idx.checked_sub(1)].into_iter().flatten() {
            for &w in &per_line[cover] {
                if waivers[w].slug == slug {
                    waivers[w].used = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            violations.push(v);
        }
    }

    // ── R11: stale / unknown waivers ──────────────────────────────────
    for w in &waivers {
        if Rule::for_slug(&w.slug).is_none() {
            violations.push(Violation {
                rule: Rule::StaleWaiver,
                path: path.to_string(),
                line: w.line,
                message: format!(
                    "unknown waiver slug `{}`; valid slugs: {}",
                    w.slug,
                    known_slugs().join(", ")
                ),
                excerpt: raw
                    .get(w.line - 1)
                    .map_or(String::new(), |s| s.trim().to_string()),
            });
        } else if !w.used {
            violations.push(Violation {
                rule: Rule::StaleWaiver,
                path: path.to_string(),
                line: w.line,
                message: format!(
                    "stale waiver `lint: allow({})` suppresses nothing here; \
                     delete it (waivers must map 1:1 to live findings)",
                    w.slug
                ),
                excerpt: raw
                    .get(w.line - 1)
                    .map_or(String::new(), |s| s.trim().to_string()),
            });
        }
    }
    violations.sort_by_key(|v| (v.line, v.rule));

    FileReport {
        violations,
        waivers,
    }
}

/// Check one file's source, returning only the surviving violations.
pub fn check_file(path: &str, source: &str, class: &FileClass) -> Vec<Violation> {
    analyze_file(path, source, class).violations
}

/// Every waivable slug, in rule order.
pub fn known_slugs() -> Vec<&'static str> {
    ALL_RULES
        .into_iter()
        .filter_map(Rule::waiver_slug)
        .collect()
}

/// Is this file a crate's blessed environment-knob module (R10)?
fn is_env_module(path: &str) -> bool {
    path.ends_with("/env.rs") || path == "env.rs"
}

/// Join the code text of a `static` declaration from the keyword through
/// its initializer `=` (or terminating `;`), capped at a few lines — the
/// type portion is what R7 inspects.
fn static_decl_snippet(lines: &[crate::scan::ScannedLine], idx: usize, pos: usize) -> String {
    let mut snippet = String::new();
    for (k, l) in lines.iter().enumerate().skip(idx).take(8) {
        let code = if k == idx { &l.code[pos..] } else { &l.code };
        snippet.push_str(code);
        snippet.push(' ');
        if code.contains('=') || code.contains(';') {
            break;
        }
    }
    snippet
}

/// Why a `static` declaration is shared mutable state, if it is.
fn shared_state_problem(decl: &str) -> Option<&'static str> {
    if find_word(decl, "mut").is_some() {
        return Some("`static mut` is shared mutable state");
    }
    for ty in [
        "Mutex",
        "RwLock",
        "OnceLock",
        "OnceCell",
        "LazyLock",
        "RefCell",
        "Cell",
        "UnsafeCell",
        "lazy_static",
    ] {
        if has_word(decl, ty) {
            return Some("`static` with interior mutability is shared mutable state");
        }
    }
    // Atomic* family by prefix: AtomicU64, AtomicUsize, AtomicBool, …
    let b = decl.as_bytes();
    let mut from = 0;
    while let Some(p) = decl[from..].find("Atomic") {
        let start = from + p;
        if start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_') {
            return Some("`static` atomic is shared mutable state");
        }
        from = start + 1;
    }
    None
}

/// R6: check a crate's `lib.rs` for the mandatory inner attributes.
pub fn check_lib_headers(path: &str, source: &str) -> Vec<Violation> {
    let lines = scan_lines(source);
    let mut missing = Vec::new();
    for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
        let present = lines
            .iter()
            .any(|l| l.code.replace(' ', "").contains(&attr.replace(' ', "")));
        if !present {
            missing.push(attr);
        }
    }
    missing
        .into_iter()
        .map(|attr| Violation {
            rule: Rule::LintHeaders,
            path: path.to_string(),
            line: 1,
            message: format!("crate root is missing the mandatory `{attr}` attribute"),
            excerpt: source.lines().next().unwrap_or("").trim().to_string(),
        })
        .collect()
}

/// Byte positions of `==`/`!=` operators whose operands look
/// floating-point (float literal, `f32`/`f64` token, or `as f..` cast).
fn float_eq_positions(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        // Compare raw bytes: slicing `code` here would panic when the
        // window straddles a multibyte character (e.g. 'µ' in a string).
        let two = &b[i..i + 2];
        if (two == b"==" || two == b"!=")
            && (i == 0 || !matches!(b[i - 1], b'=' | b'<' | b'>' | b'!'))
            && (i + 2 >= b.len() || b[i + 2] != b'=')
        {
            let left = operand_before(code, i);
            let right = operand_after(code, i + 2);
            if looks_float(&left) || looks_float(&right) {
                out.push(i);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Scan backwards from the operator to approximate the left operand.
fn operand_before(code: &str, op: usize) -> String {
    let b = code.as_bytes();
    let mut depth = 0i32;
    let mut start = op;
    while start > 0 {
        let c = b[start - 1];
        match c {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b',' | b';' | b'{' | b'}' | b'&' | b'|' | b'<' | b'>' | b'=' | b'!' if depth == 0 => {
                break
            }
            _ => {}
        }
        start -= 1;
    }
    code[start..op].to_string()
}

/// Scan forwards from the operator to approximate the right operand.
fn operand_after(code: &str, from: usize) -> String {
    let b = code.as_bytes();
    let mut depth = 0i32;
    let mut end = from;
    while end < b.len() {
        let c = b[end];
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b',' | b';' | b'{' | b'}' | b'&' | b'|' | b'<' | b'>' | b'=' | b'!' if depth == 0 => {
                break
            }
            _ => {}
        }
        end += 1;
    }
    code[from..end].to_string()
}

/// Does an operand snippet look like a floating-point expression?
fn looks_float(operand: &str) -> bool {
    // Substring on purpose: catches `as f64`, `f64::` paths and the
    // `_f64` naming convention alike.
    if operand.contains("f64") || operand.contains("f32") {
        return true;
    }
    // Float literal: digit '.' digit, not preceded by an identifier
    // character or another dot (which would be tuple/field access).
    let b = operand.as_bytes();
    for i in 0..b.len() {
        if b[i] == b'.'
            && i > 0
            && b[i - 1].is_ascii_digit()
            && i + 1 < b.len()
            && b[i + 1].is_ascii_digit()
        {
            // Walk back over the integer part to its first digit.
            let mut j = i - 1;
            while j > 0 && b[j - 1].is_ascii_digit() {
                j -= 1;
            }
            let prev = if j == 0 { None } else { Some(b[j - 1]) };
            let is_field_access =
                matches!(prev, Some(c) if c == b'.' || c.is_ascii_alphanumeric() || c == b'_');
            if !is_field_access {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_class() -> FileClass {
        FileClass {
            sim_facing: true,
            hot_path: false,
            test_file: false,
            harness: false,
            boundary: false,
        }
    }

    fn hot_class() -> FileClass {
        FileClass {
            hot_path: true,
            ..sim_class()
        }
    }

    fn boundary_class() -> FileClass {
        FileClass {
            boundary: true,
            ..sim_class()
        }
    }

    fn harness_class() -> FileClass {
        FileClass {
            sim_facing: false,
            hot_path: false,
            test_file: false,
            harness: true,
            boundary: false,
        }
    }

    fn rules_of(v: &[Violation]) -> Vec<Rule> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn r1_fires_on_instant_but_not_instantaneous() {
        let v = check_file("x.rs", "let t = std::time::Instant::now();", &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::WallClock]);
        let ok = check_file("x.rs", "let r = MarkReason::Instantaneous;", &sim_class());
        assert!(ok.is_empty());
    }

    #[test]
    fn r1_waivable() {
        let src = "// lint: allow(wall-clock) host-side timing\nlet t = Instant::now();";
        assert!(check_file("x.rs", src, &sim_class()).is_empty());
    }

    #[test]
    fn r2_fires_everywhere_and_is_unwaivable() {
        let src = "let x = rand::thread_rng();";
        let class = FileClass {
            sim_facing: false,
            hot_path: false,
            test_file: false,
            harness: false,
            boundary: false,
        };
        let v = check_file("x.rs", src, &class);
        assert!(rules_of(&v).contains(&Rule::NondeterministicRng));
    }

    #[test]
    fn r3_respects_waiver_and_test_code() {
        let v = check_file("x.rs", "use std::collections::HashMap;", &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::HashCollections]);
        let waived =
            "use std::collections::HashMap; // lint: allow(hash-collections) membership only";
        assert!(check_file("x.rs", waived, &sim_class()).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { use std::collections::HashSet; }";
        assert!(check_file("x.rs", test_src, &sim_class()).is_empty());
    }

    #[test]
    fn mid_file_test_modules_no_longer_shadow_later_production_code() {
        // The old engine treated everything below the first `#[cfg(test)]`
        // as test code; the region tracker scopes it to the module body.
        let src = "#[cfg(test)]\nmod tests { }\nuse std::collections::HashMap;";
        let v = check_file("x.rs", src, &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::HashCollections]);
    }

    #[test]
    fn r4_only_in_hot_paths() {
        let src = "let v = xs.last().unwrap();";
        assert!(check_file("x.rs", src, &sim_class()).is_empty());
        let v = check_file("x.rs", src, &hot_class());
        assert_eq!(rules_of(&v), vec![Rule::HotPathPanic]);
        let waived = "let v = xs.last().unwrap(); // lint: allow(hot-path-panic) len checked above";
        assert!(check_file("x.rs", waived, &hot_class()).is_empty());
    }

    #[test]
    fn r4_panic_word_boundary() {
        let src = "#[should_panic(expected = \"boom\")]";
        assert!(check_file("x.rs", src, &hot_class()).is_empty());
        let v = check_file("x.rs", "panic!(\"boom\");", &hot_class());
        assert_eq!(rules_of(&v), vec![Rule::HotPathPanic]);
    }

    #[test]
    fn r5_detects_float_eq_variants() {
        for src in [
            "if a == 1.0 { }",
            "if x as f64 == y { }",
            "let b = p != 0.25;",
            "if ratio_f64() == target_f64() { }",
        ] {
            let v = check_file("x.rs", src, &sim_class());
            assert_eq!(rules_of(&v), vec![Rule::FloatCmp], "src: {src}");
        }
    }

    #[test]
    fn r5_ignores_int_eq_and_tuple_access() {
        for src in [
            "if a == 1 { }",
            "assert!(pair.0 == other.0);",
            "if v[0].1 == w.1 { }",
            "let ge = a >= 1; let arrow = match x { _ => 2 };",
        ] {
            assert!(
                check_file("x.rs", src, &sim_class()).is_empty(),
                "src: {src}"
            );
        }
    }

    #[test]
    fn r5_ignores_strings_and_comments() {
        let src = "// a == 1.0 in prose\nlet s = \"x == 1.0\";";
        assert!(check_file("x.rs", src, &sim_class()).is_empty());
    }

    #[test]
    fn r5_survives_multibyte_chars_near_operators() {
        // The `==` scan window must not slice mid-character: 'µ' is two
        // bytes and used freely in duration-flavoured code and strings.
        let src = "let µs = 1; if µs == 2.0_f64 as i64 as f64 { }";
        let v = check_file("x.rs", src, &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::FloatCmp]);
        let benign = "let a = 1; // µ µ µ\nlet b = a == 1;";
        assert!(check_file("x.rs", benign, &sim_class()).is_empty());
    }

    #[test]
    fn r6_header_check() {
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(check_lib_headers("lib.rs", good).is_empty());
        let bad = "pub fn f() {}";
        let v = check_lib_headers("lib.rs", bad);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == Rule::LintHeaders));
    }

    #[test]
    fn r7_fires_on_interior_mutability_statics() {
        for src in [
            "static COUNT: AtomicU64 = AtomicU64::new(0);",
            "pub static CACHE: Mutex<Vec<u64>> = Mutex::new(Vec::new());",
            "static mut RAW: u64 = 0;",
            "static ONCE: OnceLock<Config> = OnceLock::new();",
        ] {
            let v = check_file("x.rs", src, &sim_class());
            assert_eq!(rules_of(&v), vec![Rule::SharedState], "src: {src}");
            let h = check_file("x.rs", src, &harness_class());
            assert_eq!(rules_of(&h), vec![Rule::SharedState], "harness src: {src}");
        }
    }

    #[test]
    fn r7_ignores_immutable_statics_and_lifetimes() {
        for src in [
            "static NAMES: [&str; 2] = [\"a\", \"b\"];",
            "pub const K: u64 = 65;",
            "fn f(s: &'static str) -> &'static Mutex<u8> { todo!() }",
            "let m: Mutex<u64> = Mutex::new(0);",
        ] {
            let v = check_file("x.rs", src, &sim_class());
            assert!(
                !rules_of(&v).contains(&Rule::SharedState),
                "src: {src} -> {v:?}"
            );
        }
    }

    #[test]
    fn r7_spans_multiline_declarations_and_is_waivable() {
        let src = "static BIG:\n    RwLock<Vec<u64>> = RwLock::new(Vec::new());";
        let v = check_file("x.rs", src, &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::SharedState]);
        let waived = "// lint: allow(shared-state) host-side accumulator, order-insensitive\n\
             static COUNT: AtomicU64 = AtomicU64::new(0);";
        assert!(check_file("x.rs", waived, &sim_class()).is_empty());
    }

    #[test]
    fn r8_fires_on_rc_refcell_in_pub_types_of_boundary_crates() {
        let in_struct = "pub struct Shard {\n    cache: Rc<Config>,\n}";
        let v = check_file("x.rs", in_struct, &boundary_class());
        assert_eq!(rules_of(&v), vec![Rule::NonSendType]);
        let in_sig = "pub fn shared() -> RefCell<u64> { RefCell::new(0) }";
        let v = check_file("x.rs", in_sig, &boundary_class());
        assert_eq!(rules_of(&v), vec![Rule::NonSendType]);
    }

    #[test]
    fn r8_ignores_private_types_and_non_boundary_crates() {
        let private = "struct Internal {\n    cache: Rc<Config>,\n}";
        assert!(check_file("x.rs", private, &boundary_class()).is_empty());
        let in_struct = "pub struct Shard {\n    cache: Rc<Config>,\n}";
        assert!(check_file("x.rs", in_struct, &sim_class()).is_empty());
    }

    #[test]
    fn r9_fires_on_unordered_iteration_and_float_comparators() {
        let drain = "let out: Vec<_> = HashMap::from(pairs).into_iter().collect();";
        let v = check_file("x.rs", drain, &sim_class());
        assert!(rules_of(&v).contains(&Rule::UnorderedIteration), "{v:?}");
        let cmp = "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        let v = check_file("x.rs", cmp, &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::UnorderedIteration]);
        let expect_cmp = "xs.sort_by(|a, b| a.partial_cmp(b).expect(\"NaN\"));";
        let v = check_file("x.rs", expect_cmp, &harness_class());
        assert_eq!(rules_of(&v), vec![Rule::UnorderedIteration]);
    }

    #[test]
    fn r9_ignores_ordered_collections_and_partial_cmp_impls() {
        for src in [
            "let out: Vec<_> = BTreeMap::from(pairs).into_iter().collect();",
            "xs.sort_by(f64::total_cmp);",
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }",
            "entries.retain(|e| e.live);",
        ] {
            let v = check_file("x.rs", src, &sim_class());
            assert!(
                !rules_of(&v).contains(&Rule::UnorderedIteration),
                "src: {src} -> {v:?}"
            );
        }
    }

    #[test]
    fn r10_fires_outside_env_module_only() {
        let src = "let v = std::env::var(\"ECNSHARP_SCALE\");";
        let v = check_file("crates/experiments/src/runner.rs", src, &harness_class());
        assert_eq!(rules_of(&v), vec![Rule::EnvOutsideEnvModule]);
        let ok = check_file("crates/experiments/src/env.rs", src, &harness_class());
        assert!(ok.is_empty(), "env.rs is the blessed module");
        let non_sim = check_file(
            "crates/xtask/src/main.rs",
            src,
            &FileClass {
                sim_facing: false,
                hot_path: false,
                test_file: false,
                harness: false,
                boundary: false,
            },
        );
        assert!(non_sim.is_empty(), "host tooling is out of scope");
    }

    #[test]
    fn r11_flags_stale_and_unknown_waivers() {
        let stale = "// lint: allow(hash-collections) nothing here uses one\nlet x = 1;";
        let v = check_file("x.rs", stale, &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::StaleWaiver]);
        assert!(v[0].message.contains("stale"), "{}", v[0].message);
        let unknown = "let x = 1; // lint: allow(no-such-rule) oops";
        let v = check_file("x.rs", unknown, &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::StaleWaiver]);
        assert!(v[0].message.contains("unknown"), "{}", v[0].message);
    }

    #[test]
    fn r11_used_waivers_are_inventoried_not_flagged() {
        let src = "use std::collections::HashMap; // lint: allow(hash-collections) membership";
        let report = analyze_file("x.rs", src, &sim_class());
        assert!(report.violations.is_empty());
        assert_eq!(report.waivers.len(), 1);
        assert!(report.waivers[0].used);
        assert_eq!(report.waivers[0].slug, "hash-collections");
        assert_eq!(report.waivers[0].reason, "membership");
    }

    #[test]
    fn r11_waiver_for_inapplicable_rule_is_stale() {
        // R1 does not apply outside sim-facing crates, so a wall-clock
        // waiver there suppresses nothing and must be deleted.
        let src = "// lint: allow(wall-clock) host-side timing\nlet t = Instant::now();";
        let v = check_file("x.rs", src, &harness_class());
        assert_eq!(rules_of(&v), vec![Rule::StaleWaiver]);
    }

    #[test]
    fn every_waivable_rule_has_a_distinct_slug() {
        let slugs = known_slugs();
        let mut dedup = slugs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(slugs.len(), dedup.len());
        for slug in slugs {
            assert!(Rule::for_slug(slug).is_some());
        }
    }
}
