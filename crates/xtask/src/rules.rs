//! The determinism lint rules (R1-R6) and the per-file checking engine.
//!
//! Every rule reports [`Violation`]s carrying the rule id, a waiver slug
//! (where waiving is permitted), and the offending location. A waiver is
//! a comment `// lint: allow(<slug>) <reason>` on the violating line or
//! the line directly above it.

use crate::scan::{find_word, has_word, scan_lines, waiver_slugs};
use crate::FileClass;
use std::fmt;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no wall-clock (`std::time::Instant` / `SystemTime`) in
    /// sim-facing crates.
    WallClock,
    /// R2: no ambient randomness (`thread_rng`, `rand::random`, `OsRng`).
    NondeterministicRng,
    /// R3: no default-hasher `HashMap`/`HashSet` in sim-facing production
    /// code.
    HashCollections,
    /// R4: no `.unwrap()`/`.expect()`/`panic!`-family in AQM/marker/port
    /// hot paths without a waiver.
    HotPathPanic,
    /// R5: no `==`/`!=` on floating-point expressions.
    FloatCmp,
    /// R6: every crate's `lib.rs` forbids unsafe code and warns on
    /// missing docs.
    LintHeaders,
}

impl Rule {
    /// Short rule id used in reports ("R1".."R6").
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "R1",
            Rule::NondeterministicRng => "R2",
            Rule::HashCollections => "R3",
            Rule::HotPathPanic => "R4",
            Rule::FloatCmp => "R5",
            Rule::LintHeaders => "R6",
        }
    }

    /// Waiver slug accepted in `lint: allow(<slug>)` comments; `None`
    /// when the rule cannot be waived.
    pub fn waiver_slug(self) -> Option<&'static str> {
        match self {
            Rule::WallClock => Some("wall-clock"),
            Rule::NondeterministicRng => None,
            Rule::HashCollections => Some("hash-collections"),
            Rule::HotPathPanic => Some("hot-path-panic"),
            Rule::FloatCmp => Some("float-cmp"),
            Rule::LintHeaders => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One reported lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}\n    | {}",
            self.rule, self.path, self.line, self.message, self.excerpt
        )
    }
}

/// Check one file's source against every applicable rule.
pub fn check_file(path: &str, source: &str, class: &FileClass) -> Vec<Violation> {
    let lines = scan_lines(source);
    let raw: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    // Waivers: slugs active on each line (declared there or the line above).
    let waivers: Vec<Vec<String>> = lines.iter().map(|l| waiver_slugs(&l.comment)).collect();
    let waived = |idx: usize, rule: Rule| -> bool {
        let Some(slug) = rule.waiver_slug() else {
            return false;
        };
        let mut active = waivers[idx].iter();
        if active.any(|s| s == slug) {
            return true;
        }
        idx > 0 && waivers[idx - 1].iter().any(|s| s == slug)
    };

    // Heuristic test-section detection: everything at or below the first
    // `#[cfg(test)]` is test code (the workspace convention keeps test
    // modules at the end of each file).
    let mut first_test_line = usize::MAX;
    for (i, l) in lines.iter().enumerate() {
        if l.code.contains("#[cfg(test)]") {
            first_test_line = i;
            break;
        }
    }

    let mut push = |rule: Rule, idx: usize, message: String| {
        out.push(Violation {
            rule,
            path: path.to_string(),
            line: idx + 1,
            message,
            excerpt: raw.get(idx).map_or(String::new(), |s| s.trim().to_string()),
        });
    };

    for (idx, l) in lines.iter().enumerate() {
        let in_test = class.test_file || idx >= first_test_line;
        let code = l.code.as_str();

        // ── R1: wall clock ────────────────────────────────────────────
        if class.sim_facing {
            for word in ["Instant", "SystemTime"] {
                if has_word(code, word) && !waived(idx, Rule::WallClock) {
                    push(
                        Rule::WallClock,
                        idx,
                        format!(
                            "`{word}` is wall-clock time; simulations must use \
                             `SimTime` from the event queue"
                        ),
                    );
                }
            }
        }

        // ── R2: ambient randomness (workspace-wide, unwaivable) ───────
        for word in ["thread_rng", "OsRng", "from_entropy"] {
            if has_word(code, word) {
                push(
                    Rule::NondeterministicRng,
                    idx,
                    format!("`{word}` draws OS entropy; all randomness must flow through the seeded `ecnsharp_sim::Rng`"),
                );
            }
        }
        if code.contains("rand::random") {
            push(
                Rule::NondeterministicRng,
                idx,
                "`rand::random` draws from an ambient generator; use the seeded `ecnsharp_sim::Rng`".to_string(),
            );
        }

        // ── R3: default-hasher collections ────────────────────────────
        if class.sim_facing && !in_test {
            for word in ["HashMap", "HashSet"] {
                if has_word(code, word) && !waived(idx, Rule::HashCollections) {
                    push(
                        Rule::HashCollections,
                        idx,
                        format!(
                            "`{word}` iterates in nondeterministic order; use \
                             BTreeMap/BTreeSet/Vec or waive with \
                             `// lint: allow(hash-collections) <reason>`"
                        ),
                    );
                }
            }
        }

        // ── R4: panics in hot paths ───────────────────────────────────
        if class.hot_path && !in_test {
            let panicky: [(&str, bool); 6] = [
                (".unwrap()", false),
                (".expect(", false),
                ("panic!", true),
                ("unreachable!", true),
                ("todo!", true),
                ("unimplemented!", true),
            ];
            for (tok, word_check) in panicky {
                let hit = if word_check {
                    let bare = tok.trim_end_matches('!');
                    find_word(code, bare)
                        .map(|p| code[p + bare.len()..].starts_with('!'))
                        .unwrap_or(false)
                } else {
                    code.contains(tok)
                };
                if hit && !waived(idx, Rule::HotPathPanic) {
                    push(
                        Rule::HotPathPanic,
                        idx,
                        format!(
                            "`{tok}` can abort the per-packet hot path; return a \
                             typed error, use an invariant!, or waive with \
                             `// lint: allow(hot-path-panic) <reason>`",
                            tok = tok.trim_start_matches('.')
                        ),
                    );
                }
            }
        }

        // ── R5: float equality ────────────────────────────────────────
        for op_pos in float_eq_positions(code) {
            if !waived(idx, Rule::FloatCmp) {
                push(
                    Rule::FloatCmp,
                    idx,
                    format!(
                        "`{}` on a floating-point expression; compare with an \
                         epsilon or restructure",
                        &code[op_pos..op_pos + 2]
                    ),
                );
            }
        }
    }

    out
}

/// R6: check a crate's `lib.rs` for the mandatory inner attributes.
pub fn check_lib_headers(path: &str, source: &str) -> Vec<Violation> {
    let lines = scan_lines(source);
    let mut missing = Vec::new();
    for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
        let present = lines
            .iter()
            .any(|l| l.code.replace(' ', "").contains(&attr.replace(' ', "")));
        if !present {
            missing.push(attr);
        }
    }
    missing
        .into_iter()
        .map(|attr| Violation {
            rule: Rule::LintHeaders,
            path: path.to_string(),
            line: 1,
            message: format!("crate root is missing the mandatory `{attr}` attribute"),
            excerpt: source.lines().next().unwrap_or("").trim().to_string(),
        })
        .collect()
}

/// Byte positions of `==`/`!=` operators whose operands look
/// floating-point (float literal, `f32`/`f64` token, or `as f..` cast).
fn float_eq_positions(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        // Compare raw bytes: slicing `code` here would panic when the
        // window straddles a multibyte character (e.g. 'µ' in a string).
        let two = &b[i..i + 2];
        if (two == b"==" || two == b"!=")
            && (i == 0 || !matches!(b[i - 1], b'=' | b'<' | b'>' | b'!'))
            && (i + 2 >= b.len() || b[i + 2] != b'=')
        {
            let left = operand_before(code, i);
            let right = operand_after(code, i + 2);
            if looks_float(&left) || looks_float(&right) {
                out.push(i);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Scan backwards from the operator to approximate the left operand.
fn operand_before(code: &str, op: usize) -> String {
    let b = code.as_bytes();
    let mut depth = 0i32;
    let mut start = op;
    while start > 0 {
        let c = b[start - 1];
        match c {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b',' | b';' | b'{' | b'}' | b'&' | b'|' | b'<' | b'>' | b'=' | b'!' if depth == 0 => {
                break
            }
            _ => {}
        }
        start -= 1;
    }
    code[start..op].to_string()
}

/// Scan forwards from the operator to approximate the right operand.
fn operand_after(code: &str, from: usize) -> String {
    let b = code.as_bytes();
    let mut depth = 0i32;
    let mut end = from;
    while end < b.len() {
        let c = b[end];
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b',' | b';' | b'{' | b'}' | b'&' | b'|' | b'<' | b'>' | b'=' | b'!' if depth == 0 => {
                break
            }
            _ => {}
        }
        end += 1;
    }
    code[from..end].to_string()
}

/// Does an operand snippet look like a floating-point expression?
fn looks_float(operand: &str) -> bool {
    // Substring on purpose: catches `as f64`, `f64::` paths and the
    // `_f64` naming convention alike.
    if operand.contains("f64") || operand.contains("f32") {
        return true;
    }
    // Float literal: digit '.' digit, not preceded by an identifier
    // character or another dot (which would be tuple/field access).
    let b = operand.as_bytes();
    for i in 0..b.len() {
        if b[i] == b'.'
            && i > 0
            && b[i - 1].is_ascii_digit()
            && i + 1 < b.len()
            && b[i + 1].is_ascii_digit()
        {
            // Walk back over the integer part to its first digit.
            let mut j = i - 1;
            while j > 0 && b[j - 1].is_ascii_digit() {
                j -= 1;
            }
            let prev = if j == 0 { None } else { Some(b[j - 1]) };
            let is_field_access =
                matches!(prev, Some(c) if c == b'.' || c.is_ascii_alphanumeric() || c == b'_');
            if !is_field_access {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_class() -> FileClass {
        FileClass {
            sim_facing: true,
            hot_path: false,
            test_file: false,
        }
    }

    fn hot_class() -> FileClass {
        FileClass {
            sim_facing: true,
            hot_path: true,
            test_file: false,
        }
    }

    fn rules_of(v: &[Violation]) -> Vec<Rule> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn r1_fires_on_instant_but_not_instantaneous() {
        let v = check_file("x.rs", "let t = std::time::Instant::now();", &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::WallClock]);
        let ok = check_file("x.rs", "let r = MarkReason::Instantaneous;", &sim_class());
        assert!(ok.is_empty());
    }

    #[test]
    fn r1_waivable() {
        let src = "// lint: allow(wall-clock) host-side timing\nlet t = Instant::now();";
        assert!(check_file("x.rs", src, &sim_class()).is_empty());
    }

    #[test]
    fn r2_fires_everywhere_and_is_unwaivable() {
        let src = "// lint: allow(nondeterministic-rng) nice try\nlet x = rand::thread_rng();";
        let class = FileClass {
            sim_facing: false,
            hot_path: false,
            test_file: false,
        };
        let v = check_file("x.rs", src, &class);
        assert!(rules_of(&v).contains(&Rule::NondeterministicRng));
    }

    #[test]
    fn r3_respects_waiver_and_test_code() {
        let v = check_file("x.rs", "use std::collections::HashMap;", &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::HashCollections]);
        let waived =
            "use std::collections::HashMap; // lint: allow(hash-collections) membership only";
        assert!(check_file("x.rs", waived, &sim_class()).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { use std::collections::HashSet; }";
        assert!(check_file("x.rs", test_src, &sim_class()).is_empty());
    }

    #[test]
    fn r4_only_in_hot_paths() {
        let src = "let v = xs.last().unwrap();";
        assert!(check_file("x.rs", src, &sim_class()).is_empty());
        let v = check_file("x.rs", src, &hot_class());
        assert_eq!(rules_of(&v), vec![Rule::HotPathPanic]);
        let waived = "let v = xs.last().unwrap(); // lint: allow(hot-path-panic) len checked above";
        assert!(check_file("x.rs", waived, &hot_class()).is_empty());
    }

    #[test]
    fn r4_panic_word_boundary() {
        let src = "#[should_panic(expected = \"boom\")]";
        assert!(check_file("x.rs", src, &hot_class()).is_empty());
        let v = check_file("x.rs", "panic!(\"boom\");", &hot_class());
        assert_eq!(rules_of(&v), vec![Rule::HotPathPanic]);
    }

    #[test]
    fn r5_detects_float_eq_variants() {
        for src in [
            "if a == 1.0 { }",
            "if x as f64 == y { }",
            "let b = p != 0.25;",
            "if ratio_f64() == target_f64() { }",
        ] {
            let v = check_file("x.rs", src, &sim_class());
            assert_eq!(rules_of(&v), vec![Rule::FloatCmp], "src: {src}");
        }
    }

    #[test]
    fn r5_ignores_int_eq_and_tuple_access() {
        for src in [
            "if a == 1 { }",
            "assert!(pair.0 == other.0);",
            "if v[0].1 == w.1 { }",
            "let ge = a >= 1; let arrow = match x { _ => 2 };",
        ] {
            assert!(
                check_file("x.rs", src, &sim_class()).is_empty(),
                "src: {src}"
            );
        }
    }

    #[test]
    fn r5_ignores_strings_and_comments() {
        let src = "// a == 1.0 in prose\nlet s = \"x == 1.0\";";
        assert!(check_file("x.rs", src, &sim_class()).is_empty());
    }

    #[test]
    fn r5_survives_multibyte_chars_near_operators() {
        // The `==` scan window must not slice mid-character: 'µ' is two
        // bytes and used freely in duration-flavoured code and strings.
        let src = "let µs = 1; if µs == 2.0_f64 as i64 as f64 { }";
        let v = check_file("x.rs", src, &sim_class());
        assert_eq!(rules_of(&v), vec![Rule::FloatCmp]);
        let benign = "let a = 1; // µ µ µ\nlet b = a == 1;";
        assert!(check_file("x.rs", benign, &sim_class()).is_empty());
    }

    #[test]
    fn r6_header_check() {
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(check_lib_headers("lib.rs", good).is_empty());
        let bad = "pub fn f() {}";
        let v = check_lib_headers("lib.rs", bad);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == Rule::LintHeaders));
    }
}
