//! Line-level preprocessing for the lint pass: a lightweight Rust lexer
//! that separates each line into *code text* (string/char literals and
//! comments blanked out) and *comment text* (where waivers live), plus a
//! region tracker that follows brace depth, `#[cfg(test)]`/`mod tests`
//! regions, and `pub struct`/`pub enum`/`pub union` bodies so rules can
//! scope themselves to production code and public type declarations.
//!
//! The lexer is deliberately approximate — it understands line comments,
//! nested block comments, string/raw-string/char literals and skips
//! lifetimes — which is exactly enough for word-boundary token matching
//! to be reliable on this workspace's sources.

/// One source line after lexing.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// The line with comments and literal contents replaced by spaces.
    pub code: String,
    /// Concatenated comment text of the line (line + block comments).
    pub comment: String,
    /// Brace depth at the start of the line (0 = file top level).
    pub depth: u32,
    /// Line belongs to a `#[cfg(test)]` item or a `mod tests { .. }`
    /// body (including the attribute/declaration lines themselves).
    pub in_test: bool,
    /// Line is inside the body of a `pub struct`/`pub enum`/`pub union`
    /// declaration (or is the declaration line itself).
    pub in_pub_type: bool,
}

/// Lexer state carried across lines.
#[derive(Debug, Clone, Copy, Default)]
struct LexState {
    /// Depth of nested `/* */` comments (rust block comments nest).
    block_comment_depth: u32,
    /// Inside a raw string: number of `#` in its delimiter, if any.
    raw_string_hashes: Option<u32>,
    /// Inside an ordinary `"…"` string that continues past a line break
    /// (multi-line literals and `\`-continuations).
    in_string: bool,
}

/// A brace-delimited region the tracker cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    /// `#[cfg(test)]` item body or `mod tests { .. }`.
    Test,
    /// `pub struct` / `pub enum` / `pub union` body.
    PubType,
}

/// Region-tracking state carried across lines (operates on lexed code
/// text, so braces in strings/comments are invisible to it).
#[derive(Debug, Clone, Default)]
struct RegionState {
    /// Current brace depth.
    depth: u32,
    /// Open regions as `(kind, body_depth)`: the region is live while
    /// `depth >= body_depth`.
    stack: Vec<(RegionKind, u32)>,
    /// A `#[cfg(test)]` attribute (or `mod tests` header) was seen and
    /// its item's opening brace is still pending; value is the depth the
    /// attribute appeared at.
    pending_test: Option<u32>,
    /// A `pub struct/enum/union` header was seen and its body brace is
    /// still pending; value is the depth the header appeared at.
    pending_pub_type: Option<u32>,
}

impl RegionState {
    fn test_active(&self) -> bool {
        self.pending_test.is_some() || self.stack.iter().any(|&(k, _)| k == RegionKind::Test)
    }

    fn pub_type_active(&self) -> bool {
        self.pending_pub_type.is_some() || self.stack.iter().any(|&(k, _)| k == RegionKind::PubType)
    }

    /// Advance over one line of lexed code text.
    fn advance(&mut self, code: &str) {
        // Header detection first: the braces that open these regions may
        // sit on the same line, and `{` consumes the pending marker.
        if has_cfg_test_attr(code) || is_mod_tests_header(code) {
            self.pending_test = Some(self.depth);
        }
        if is_pub_type_header(code) {
            self.pending_pub_type = Some(self.depth);
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if self.pending_test == Some(self.depth) {
                        self.pending_test = None;
                        self.pending_pub_type = None;
                        self.stack.push((RegionKind::Test, self.depth + 1));
                    } else if self.pending_pub_type == Some(self.depth) {
                        self.pending_pub_type = None;
                        self.stack.push((RegionKind::PubType, self.depth + 1));
                    }
                    self.depth += 1;
                }
                '}' => {
                    self.depth = self.depth.saturating_sub(1);
                    while matches!(self.stack.last(), Some(&(_, d)) if d > self.depth) {
                        self.stack.pop();
                    }
                }
                ';' => {
                    // A braceless item (e.g. `#[cfg(test)] use x;` or
                    // `mod tests;`) consumes its pending marker.
                    if self.pending_test == Some(self.depth) {
                        self.pending_test = None;
                    }
                    if self.pending_pub_type == Some(self.depth) {
                        self.pending_pub_type = None;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Does the code text carry a `#[cfg(test)]` attribute (whitespace
/// tolerated inside the brackets)?
fn has_cfg_test_attr(code: &str) -> bool {
    let squashed: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    squashed.contains("#[cfg(test)]")
}

/// Is this line a `mod tests` header (`mod tests {` / `pub mod tests`)?
fn is_mod_tests_header(code: &str) -> bool {
    let Some(pos) = find_word(code, "mod") else {
        return false;
    };
    let rest = code[pos + "mod".len()..].trim_start();
    rest.starts_with("tests") && {
        let after = &rest["tests".len()..];
        after.is_empty() || !after.starts_with(|c: char| c.is_alphanumeric() || c == '_')
    }
}

/// Is this line a `pub struct`/`pub enum`/`pub union` header? Handles
/// `pub(crate)`/`pub(super)` restricted visibility too.
fn is_pub_type_header(code: &str) -> bool {
    for kw in ["struct", "enum", "union"] {
        if let Some(pos) = find_word(code, kw) {
            let before = code[..pos].trim_end();
            if before.ends_with("pub") {
                return true;
            }
            if let Some(open) = before.rfind("pub") {
                // `pub(crate)` / `pub(in path)` between `pub` and the kw.
                let between = &before[open + "pub".len()..];
                let between = between.trim();
                if between.starts_with('(') && between.ends_with(')') {
                    return true;
                }
            }
        }
    }
    false
}

/// Lex a whole file into per-line code/comment views with region info.
pub fn scan_lines(source: &str) -> Vec<ScannedLine> {
    let mut state = LexState::default();
    let mut regions = RegionState::default();
    source
        .lines()
        .map(|line| {
            let mut scanned = scan_line(line, &mut state);
            scanned.depth = regions.depth;
            let test_before = regions.test_active();
            let pub_before = regions.pub_type_active();
            regions.advance(&scanned.code);
            // A header whose pending marker is consumed on its own line
            // (`pub struct W(u32);`, `#[cfg(test)] use x;`) still counts
            // for the line it appears on.
            scanned.in_test = test_before
                || regions.test_active()
                || has_cfg_test_attr(&scanned.code)
                || is_mod_tests_header(&scanned.code);
            scanned.in_pub_type =
                pub_before || regions.pub_type_active() || is_pub_type_header(&scanned.code);
            scanned
        })
        .collect()
}

fn scan_line(line: &str, state: &mut LexState) -> ScannedLine {
    let bytes: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0usize;

    while i < bytes.len() {
        // ── continue multi-line constructs ──────────────────────────────
        if state.block_comment_depth > 0 {
            if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                state.block_comment_depth -= 1;
                code.push_str("  ");
                i += 2;
            } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                state.block_comment_depth += 1;
                code.push_str("  ");
                i += 2;
            } else {
                comment.push(bytes[i]);
                code.push(' ');
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = state.raw_string_hashes {
            // Look for `"###...` with the right number of hashes.
            if bytes[i] == '"' {
                let mut ok = true;
                for k in 0..hashes as usize {
                    if bytes.get(i + 1 + k) != Some(&'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    state.raw_string_hashes = None;
                    for _ in 0..=hashes as usize {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    continue;
                }
            }
            code.push(' ');
            i += 1;
            continue;
        }
        if state.in_string {
            if bytes[i] == '\\' {
                // Escape: blank the backslash and (when present) the
                // escaped character; a trailing `\` continues the string
                // onto the next line.
                code.push(' ');
                i += 1;
                if i < bytes.len() {
                    code.push(' ');
                    i += 1;
                }
            } else if bytes[i] == '"' {
                state.in_string = false;
                code.push(' ');
                i += 1;
            } else {
                code.push(' ');
                i += 1;
            }
            continue;
        }

        let c = bytes[i];
        match c {
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments) — rest of line.
                comment.push_str(&bytes[i..].iter().collect::<String>());
                while i < bytes.len() {
                    code.push(' ');
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                state.block_comment_depth += 1;
                code.push_str("  ");
                i += 2;
            }
            '"' => {
                // Ordinary string literal: the shared `in_string` state
                // handles the contents, including continuation across
                // line breaks (multi-line literals).
                state.in_string = true;
                code.push(' ');
                i += 1;
            }
            'r' if bytes.get(i + 1) == Some(&'"')
                || (bytes.get(i + 1) == Some(&'#') && !is_ident_char_before(&bytes, i)) =>
            {
                // Raw string r"..." or r#"..."# (only when `r` starts a token).
                if is_ident_char_before(&bytes, i) {
                    code.push(c);
                    i += 1;
                    continue;
                }
                let mut hashes = 0u32;
                let mut j = i + 1;
                while bytes.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&'"') {
                    state.raw_string_hashes = Some(hashes);
                    for _ in i..=j {
                        code.push(' ');
                    }
                    i = j + 1;
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal or lifetime. `'\x'`, `'a'` are literals;
                // `'static` is a lifetime.
                if bytes.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to closing quote.
                    code.push(' ');
                    i += 1;
                    while i < bytes.len() && bytes[i] != '\'' {
                        code.push(' ');
                        i += 1;
                    }
                    if i < bytes.len() {
                        code.push(' ');
                        i += 1;
                    }
                } else if bytes.get(i + 2) == Some(&'\'') {
                    code.push_str("   ");
                    i += 3;
                } else {
                    code.push(c); // lifetime tick; harmless in code text
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }

    ScannedLine {
        code,
        comment,
        ..ScannedLine::default()
    }
}

fn is_ident_char_before(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Does `code` contain `word` as a standalone identifier (not a substring
/// of a longer identifier)?
pub fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

/// Find the byte offset of `word` as a standalone identifier in `code`.
pub fn find_word(code: &str, word: &str) -> Option<usize> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(b[start - 1]);
        let after_ok = end >= b.len() || !is_ident_byte(b[end]);
        if before_ok && after_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

/// [`find_word`] excluding matches directly preceded by a lifetime tick:
/// `'static` is a lifetime, `static X: …` is an item.
pub fn find_keyword(code: &str, word: &str) -> Option<usize> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || (!is_ident_byte(b[start - 1]) && b[start - 1] != b'\'');
        let after_ok = end >= b.len() || !is_ident_byte(b[end]);
        if before_ok && after_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Waiver slugs declared on a comment via `lint: allow(<slug>)`.
pub fn waiver_slugs(comment: &str) -> Vec<String> {
    waivers_with_reasons(comment)
        .into_iter()
        .map(|(slug, _)| slug)
        .collect()
}

/// Waiver declarations on a comment: `(slug, reason)` for every
/// `lint: allow(<slug>) <reason>` occurrence, in order. The reason runs
/// to the next waiver declaration or the end of the comment. Only
/// kebab-case slugs (`[a-z0-9-]+`) count as declarations, so prose that
/// merely quotes the syntax (e.g. a literal `<slug>` placeholder) is
/// not a waiver.
pub fn waivers_with_reasons(comment: &str) -> Vec<(String, String)> {
    const NEEDLE: &str = "lint: allow(";
    let mut out: Vec<(String, String)> = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(NEEDLE) {
        let after = &rest[pos + NEEDLE.len()..];
        let Some(close) = after.find(')') else { break };
        let slug = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let reason_end = tail.find(NEEDLE).unwrap_or(tail.len());
        let reason = tail[..reason_end].trim().to_string();
        if !slug.is_empty()
            && slug
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            out.push((slug, reason));
        }
        rest = &after[close..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments_but_keeps_them_as_comment_text() {
        let s = scan_lines("let x = 1; // HashMap here");
        assert!(!s[0].code.contains("HashMap"));
        assert!(s[0].comment.contains("HashMap"));
    }

    #[test]
    fn blanks_string_contents() {
        let s = scan_lines(r#"println!("Instant::now inside a string");"#);
        assert!(!s[0].code.contains("Instant"));
        assert!(s[0].code.contains("println!"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let src = "a /* outer /* inner */ still comment */ b\nc /* open\nclose */ d";
        let s = scan_lines(src);
        assert!(s[0].code.contains('a') && s[0].code.contains('b'));
        assert!(!s[0].code.contains("still"));
        assert!(s[1].code.contains('c') && !s[1].code.contains("open"));
        assert!(!s[2].code.contains("close") && s[2].code.contains('d'));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan_lines("let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!s[0].code.contains('x') || s[0].code.contains("fn f"));
        assert!(s[0].code.contains("&'a str") || s[0].code.contains("'a"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan_lines(r##"let q = r#"thread_rng in raw"#; let y = 2;"##);
        assert!(!s[0].code.contains("thread_rng"));
        assert!(s[0].code.contains("let y = 2"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("use std::time::Instant;", "Instant"));
        assert!(!has_word("MarkReason::Instantaneous", "Instant"));
        assert!(!has_word("should_panic", "panic"));
    }

    #[test]
    fn keyword_excludes_lifetimes() {
        assert!(find_keyword("static X: u32 = 0;", "static").is_some());
        assert!(find_keyword("fn f(v: &'static str) {}", "static").is_none());
        assert!(find_keyword("pub static mut Y: u32 = 0;", "static").is_some());
    }

    #[test]
    fn waiver_parsing() {
        let slugs = waiver_slugs("// lint: allow(hash-collections) membership only");
        assert_eq!(slugs, vec!["hash-collections".to_string()]);
        let two = waiver_slugs("lint: allow(a) and lint: allow(b)");
        assert_eq!(two, vec!["a".to_string(), "b".to_string()]);
        assert!(waiver_slugs("plain comment").is_empty());
    }

    #[test]
    fn waiver_reasons_are_captured() {
        let ws = waivers_with_reasons("// lint: allow(float-cmp) exact sentinel value");
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].0, "float-cmp");
        assert_eq!(ws[0].1, "exact sentinel value");
        let ws = waivers_with_reasons("lint: allow(a) first lint: allow(b) second");
        assert_eq!(
            ws,
            vec![
                ("a".to_string(), "first".to_string()),
                ("b".to_string(), "second".to_string())
            ]
        );
    }

    #[test]
    fn multiline_strings_do_not_leak_into_later_lines() {
        let src =
            "let s = \"first \\\n // lint: allow(hash-collections) not a waiver\";\nlet t = 1;";
        let s = scan_lines(src);
        assert!(
            s[1].comment.is_empty(),
            "string content is not comment text"
        );
        assert!(!s[1].code.contains("lint"), "string content is not code");
        assert!(s[2].code.contains("let t = 1"));
    }

    #[test]
    fn placeholder_slugs_are_not_waiver_declarations() {
        assert!(waivers_with_reasons("doc says `lint: allow(<slug>) <reason>`").is_empty());
        assert!(waivers_with_reasons("lint: allow() empty slug").is_empty());
        assert!(waivers_with_reasons("lint: allow(Uppercase) wrong case").is_empty());
    }

    #[test]
    fn brace_depth_is_tracked() {
        let s = scan_lines("fn f() {\n    if x {\n        y();\n    }\n}\nfn g() {}");
        assert_eq!(s[0].depth, 0);
        assert_eq!(s[1].depth, 1);
        assert_eq!(s[2].depth, 2);
        assert_eq!(s[3].depth, 2);
        assert_eq!(s[4].depth, 1);
        assert_eq!(s[5].depth, 0);
    }

    #[test]
    fn braces_in_strings_and_comments_do_not_count() {
        let s = scan_lines("let a = \"{{{\"; // }}}\nlet b = 2;");
        assert_eq!(s[1].depth, 0);
    }

    #[test]
    fn cfg_test_region_covers_module_body_only() {
        let src = "pub fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() {}\n\
                   }\n\
                   pub fn also_prod() {}";
        let s = scan_lines(src);
        assert!(!s[0].in_test, "production fn before the module");
        assert!(s[1].in_test, "the attribute line itself");
        assert!(s[2].in_test, "module header");
        assert!(s[3].in_test, "module body");
        assert!(s[4].in_test, "closing brace");
        assert!(!s[5].in_test, "production fn after the module");
    }

    #[test]
    fn mod_tests_without_attribute_is_a_test_region() {
        let s = scan_lines("mod tests {\n    fn t() {}\n}\nfn prod() {}");
        assert!(s[0].in_test && s[1].in_test && s[2].in_test);
        assert!(!s[3].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let s = scan_lines("#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() {}");
        assert!(s[0].in_test && s[1].in_test);
        assert!(!s[2].in_test, "pending marker consumed by the `;`");
    }

    #[test]
    fn cfg_test_fn_region() {
        let src = "#[cfg(test)]\nfn helper() {\n    work();\n}\nfn prod() {}";
        let s = scan_lines(src);
        assert!(s[0].in_test && s[1].in_test && s[2].in_test && s[3].in_test);
        assert!(!s[4].in_test);
    }

    #[test]
    fn mod_tests_lookalikes_stay_production() {
        for src in [
            "mod tests_helpers {}",
            "let mod_tests = 1;",
            "fn run_mod(tests: u32) {}",
        ] {
            let s = scan_lines(src);
            assert!(!s[0].in_test, "src: {src}");
        }
    }

    #[test]
    fn pub_type_regions() {
        let src = "pub struct Foo {\n    inner: u32,\n}\nstruct Private {\n    x: u32,\n}";
        let s = scan_lines(src);
        assert!(s[0].in_pub_type && s[1].in_pub_type && s[2].in_pub_type);
        assert!(!s[3].in_pub_type && !s[4].in_pub_type);
    }

    #[test]
    fn pub_crate_enum_counts_as_pub_type() {
        let s = scan_lines("pub(crate) enum E {\n    A,\n}");
        assert!(s[0].in_pub_type && s[1].in_pub_type);
    }

    #[test]
    fn tuple_struct_semicolon_closes_pending() {
        let s = scan_lines("pub struct Wrapper(u32);\nfn body() {\n    x();\n}");
        assert!(s[0].in_pub_type, "the declaration line itself");
        assert!(!s[1].in_pub_type && !s[2].in_pub_type);
    }

    use proptest::prelude::*;

    /// Fragment vocabulary for the lexer properties: line comments, block
    /// comments (nested, multi-line, stray closers), ordinary / raw /
    /// multi-line strings (including an unterminated one), char literals,
    /// lifetimes, braces, and region headers — the constructs the lexer
    /// has to keep straight across arbitrary interleavings.
    const FRAGMENTS: [&str; 16] = [
        "let a = 1; // trailing comment with HashMap",
        "let s = \"string with // fake comment and }\";",
        "/* one-line block */ let b = 2;",
        "/* open block with { brace",
        "nested /* inner */ still outer",
        "close */ let c = 3;",
        "let r = r#\"raw \"quote\" inside\"#;",
        "let q = r\"plain raw\";",
        "let ch = '{'; let lt: &'static str = \"x\";",
        "fn f() {",
        "}",
        "#[cfg(test)]",
        "mod tests {",
        "pub struct S {",
        "let multi = \"starts here \\",
        "let unterminated = \"no close",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Shape invariant: whatever state the lexer is dragged through,
        /// every line's code view has exactly as many chars as the source
        /// line (blanking substitutes, never deletes), the line count is
        /// preserved, and lexing is a pure function of the source.
        #[test]
        fn lexing_preserves_line_shape(
            picks in collection::vec(0usize..FRAGMENTS.len(), 1..40),
        ) {
            let src: String = picks
                .iter()
                .map(|&i| FRAGMENTS[i])
                .collect::<Vec<_>>()
                .join("\n");
            let scanned = scan_lines(&src);
            prop_assert_eq!(scanned.len(), src.lines().count());
            for (line, s) in src.lines().zip(&scanned) {
                prop_assert_eq!(
                    s.code.chars().count(),
                    line.chars().count(),
                    "line {:?} lexed to {:?}",
                    line,
                    s.code
                );
            }
            let again = scan_lines(&src);
            for (a, b) in scanned.iter().zip(&again) {
                prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }

        /// Concealment invariant: a marker that only ever appears inside
        /// comments or string literals (all fragments self-terminated)
        /// never surfaces in any line's code view, no matter how the
        /// fragments interleave.
        #[test]
        fn literal_and_comment_content_never_reaches_code(
            picks in collection::vec(0usize..6usize, 1..30),
        ) {
            const HIDDEN: [&str; 6] = [
                "// ZZMARKER in a line comment",
                "let s = \"ZZMARKER in a string\";",
                "/* ZZMARKER in a block */",
                "let r = r#\"ZZMARKER in a raw string\"#;",
                "/* spans\nZZMARKER mid-comment\nlines */",
                "let m = \"continues \\\nZZMARKER after break\";",
            ];
            let src: String = picks
                .iter()
                .map(|&i| HIDDEN[i])
                .collect::<Vec<_>>()
                .join("\n");
            for s in scan_lines(&src) {
                prop_assert!(
                    !s.code.contains("ZZMARKER"),
                    "leaked into code view: {:?}",
                    s.code
                );
            }
        }

        /// Waiver round-trip: any sequence of kebab-case declarations
        /// formatted with the documented syntax parses back exactly.
        #[test]
        fn waiver_declarations_round_trip(
            slugs in collection::vec(0usize..5usize, 1..4),
        ) {
            const WORDS: [&str; 5] =
                ["wall-clock", "hash-collections", "float-cmp", "env-read", "r9"];
            let mut comment = String::from("//");
            for (k, &i) in slugs.iter().enumerate() {
                comment.push_str(&format!(" lint: allow({}) reason number {k}", WORDS[i]));
            }
            let parsed = waivers_with_reasons(&comment);
            prop_assert_eq!(parsed.len(), slugs.len());
            for (k, (&i, (slug, reason))) in slugs.iter().zip(&parsed).enumerate() {
                prop_assert_eq!(slug.as_str(), WORDS[i]);
                prop_assert_eq!(reason.as_str(), format!("reason number {k}").as_str());
            }
        }
    }
}
