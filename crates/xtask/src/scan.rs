//! Line-level preprocessing for the lint pass: a lightweight Rust lexer
//! that separates each line into *code text* (string/char literals and
//! comments blanked out) and *comment text* (where waivers live).
//!
//! The lexer is deliberately approximate — it understands line comments,
//! nested block comments, string/raw-string/char literals and skips
//! lifetimes — which is exactly enough for word-boundary token matching
//! to be reliable on this workspace's sources.

/// One source line after lexing.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// The line with comments and literal contents replaced by spaces.
    pub code: String,
    /// Concatenated comment text of the line (line + block comments).
    pub comment: String,
}

/// Lexer state carried across lines.
#[derive(Debug, Clone, Copy, Default)]
struct LexState {
    /// Depth of nested `/* */` comments (rust block comments nest).
    block_comment_depth: u32,
    /// Inside a raw string: number of `#` in its delimiter, if any.
    raw_string_hashes: Option<u32>,
}

/// Lex a whole file into per-line code/comment views.
pub fn scan_lines(source: &str) -> Vec<ScannedLine> {
    let mut state = LexState::default();
    source
        .lines()
        .map(|line| scan_line(line, &mut state))
        .collect()
}

fn scan_line(line: &str, state: &mut LexState) -> ScannedLine {
    let bytes: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0usize;

    while i < bytes.len() {
        // ── continue multi-line constructs ──────────────────────────────
        if state.block_comment_depth > 0 {
            if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                state.block_comment_depth -= 1;
                code.push_str("  ");
                i += 2;
            } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                state.block_comment_depth += 1;
                code.push_str("  ");
                i += 2;
            } else {
                comment.push(bytes[i]);
                code.push(' ');
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = state.raw_string_hashes {
            // Look for `"###...` with the right number of hashes.
            if bytes[i] == '"' {
                let mut ok = true;
                for k in 0..hashes as usize {
                    if bytes.get(i + 1 + k) != Some(&'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    state.raw_string_hashes = None;
                    for _ in 0..=hashes as usize {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    continue;
                }
            }
            code.push(' ');
            i += 1;
            continue;
        }

        let c = bytes[i];
        match c {
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments) — rest of line.
                comment.push_str(&bytes[i..].iter().collect::<String>());
                while i < bytes.len() {
                    code.push(' ');
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                state.block_comment_depth += 1;
                code.push_str("  ");
                i += 2;
            }
            '"' => {
                // Ordinary string literal: skip to unescaped closing quote.
                code.push(' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == '\\' {
                        code.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '"' {
                        code.push(' ');
                        i += 1;
                        break;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                // Unterminated ordinary strings continuing across lines are
                // not used in this workspace; treat line end as terminator.
            }
            'r' if bytes.get(i + 1) == Some(&'"')
                || (bytes.get(i + 1) == Some(&'#') && !is_ident_char_before(&bytes, i)) =>
            {
                // Raw string r"..." or r#"..."# (only when `r` starts a token).
                if is_ident_char_before(&bytes, i) {
                    code.push(c);
                    i += 1;
                    continue;
                }
                let mut hashes = 0u32;
                let mut j = i + 1;
                while bytes.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&'"') {
                    state.raw_string_hashes = Some(hashes);
                    for _ in i..=j {
                        code.push(' ');
                    }
                    i = j + 1;
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal or lifetime. `'\x'`, `'a'` are literals;
                // `'static` is a lifetime.
                if bytes.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to closing quote.
                    code.push(' ');
                    i += 1;
                    while i < bytes.len() && bytes[i] != '\'' {
                        code.push(' ');
                        i += 1;
                    }
                    code.push(' ');
                    i += 1;
                } else if bytes.get(i + 2) == Some(&'\'') {
                    code.push_str("   ");
                    i += 3;
                } else {
                    code.push(c); // lifetime tick; harmless in code text
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }

    ScannedLine { code, comment }
}

fn is_ident_char_before(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Does `code` contain `word` as a standalone identifier (not a substring
/// of a longer identifier)?
pub fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

/// Find the byte offset of `word` as a standalone identifier in `code`.
pub fn find_word(code: &str, word: &str) -> Option<usize> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(b[start - 1]);
        let after_ok = end >= b.len() || !is_ident_byte(b[end]);
        if before_ok && after_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Waiver slugs declared on a comment via `lint: allow(<slug>)`.
pub fn waiver_slugs(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        let after = &rest[pos + "lint: allow(".len()..];
        if let Some(close) = after.find(')') {
            out.push(after[..close].trim().to_string());
            rest = &after[close..];
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments_but_keeps_them_as_comment_text() {
        let s = scan_lines("let x = 1; // HashMap here");
        assert!(!s[0].code.contains("HashMap"));
        assert!(s[0].comment.contains("HashMap"));
    }

    #[test]
    fn blanks_string_contents() {
        let s = scan_lines(r#"println!("Instant::now inside a string");"#);
        assert!(!s[0].code.contains("Instant"));
        assert!(s[0].code.contains("println!"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let src = "a /* outer /* inner */ still comment */ b\nc /* open\nclose */ d";
        let s = scan_lines(src);
        assert!(s[0].code.contains('a') && s[0].code.contains('b'));
        assert!(!s[0].code.contains("still"));
        assert!(s[1].code.contains('c') && !s[1].code.contains("open"));
        assert!(!s[2].code.contains("close") && s[2].code.contains('d'));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan_lines("let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!s[0].code.contains('x') || s[0].code.contains("fn f"));
        assert!(s[0].code.contains("&'a str") || s[0].code.contains("'a"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan_lines(r##"let q = r#"thread_rng in raw"#; let y = 2;"##);
        assert!(!s[0].code.contains("thread_rng"));
        assert!(s[0].code.contains("let y = 2"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("use std::time::Instant;", "Instant"));
        assert!(!has_word("MarkReason::Instantaneous", "Instant"));
        assert!(!has_word("should_panic", "panic"));
    }

    #[test]
    fn waiver_parsing() {
        let slugs = waiver_slugs("// lint: allow(hash-collections) membership only");
        assert_eq!(slugs, vec!["hash-collections".to_string()]);
        let two = waiver_slugs("lint: allow(a) and lint: allow(b)");
        assert_eq!(two, vec!["a".to_string(), "b".to_string()]);
        assert!(waiver_slugs("plain comment").is_empty());
    }
}
