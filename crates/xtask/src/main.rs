//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! - `lint` — run the determinism + shard-safety lint pass (R1-R11) over
//!   the workspace, including the `WAIVERS.budget` exact-count check;
//!   non-zero exit on any finding. `lint --json` prints the
//!   machine-readable violation + waiver inventory to stdout instead.
//! - `selftest` — prove each rule fires on its seeded fixture violation.
//! - `ci` — fmt-check → clippy → lint (+ JSON artifact) → selftest →
//!   release build → tests (default features, then `strict-invariants`)
//!   → race harness (release) → sharded-determinism gate (the
//!   serial-vs-sharded byte-equivalence suite under `strict-invariants`;
//!   see CONCURRENCY.md) → quick-scale chaos smoke run under
//!   `strict-invariants` → chaos fault drills (injected worker panic and
//!   injected barrier stall must each fail loudly with a structured
//!   JSONL error line and partial CSVs) → rustdoc gate
//!   (`cargo doc --no-deps` with `-Dwarnings`, then `cargo test --doc`).
//! - `bench` — run the standing `ecnsharp-bench` targets and collate
//!   `BENCH_sim.json` at the workspace root (see PERFORMANCE.md).
//! - `bench-diff <old> <new>` — compare two `BENCH_sim.json` files.
//! - `bench-diff --check` — rerun the `engine` bench target and fail if
//!   any engine bench regressed >25% against the committed baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::{Command, ExitCode};
// xtask is host-side tooling: timing CI steps with the wall clock is the
// whole point here. R1 only scopes to sim-facing crates so no lint
// waiver is needed (R11 would flag one as stale); clippy still needs
// the attribute.
#[allow(clippy::disallowed_methods)]
mod timing {
    /// Wall-clock seconds spent in `f`.
    pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let t0 = std::time::Instant::now();
        let out = f();
        (out, t0.elapsed().as_secs_f64())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.get(1).map(String::as_str) == Some("--json") => exit_for(lint_json()),
        Some("lint") => exit_for(lint()),
        Some("selftest") => exit_for(selftest()),
        Some("ci") => ci(),
        Some("bench") => exit_for(xtask::bench::run(&xtask::workspace_root())),
        Some("bench-diff") => match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("--check"), None) => exit_for(xtask::bench::check(&xtask::workspace_root())),
            (Some(old), Some(new)) => exit_for(xtask::bench::diff(old, new)),
            _ => {
                eprintln!(
                    "usage: cargo xtask bench-diff <old BENCH_sim.json> <new BENCH_sim.json>\n   \
                     or: cargo xtask bench-diff --check   (rerun engine benches, fail on >25% \
                     regression vs committed BENCH_sim.json)"
                );
                ExitCode::FAILURE
            }
        },
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "cargo xtask <command>\n\n\
         commands:\n  \
         lint        determinism + shard-safety lint (rules R1-R11) incl. the\n              \
         WAIVERS.budget check; `lint --json` prints the machine-\n              \
         readable violation + waiver inventory\n  \
         selftest    verify each lint rule fires on its seeded fixture\n  \
         ci          fmt-check -> clippy -> lint -> selftest -> build -> tests ->\n              \
         race harness -> sharded determinism -> chaos smoke -> chaos drills -> rustdoc gate\n  \
         bench       run engine/aqm_cost/figures benches, write BENCH_sim.json\n  \
         bench-diff  compare two BENCH_sim.json files (old new), or --check to\n              \
         rerun the engine benches and fail on >25% regression"
    );
}

fn exit_for(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint() -> bool {
    let root = xtask::workspace_root();
    let (result, secs) = timing::timed(|| xtask::analyze_workspace(&root));
    match result {
        Ok(report) if report.violations.is_empty() => {
            if let Err(e) = xtask::check_waiver_budget(&root, &report) {
                eprintln!("lint: {e}");
                return false;
            }
            println!(
                "lint: workspace clean (rules R1-R11, {} waiver(s) within budget, {secs:.2}s)",
                report.waivers.len()
            );
            true
        }
        Ok(report) => {
            for v in &report.violations {
                eprintln!("{v}");
            }
            eprintln!("\nlint: {} violation(s)", report.violations.len());
            false
        }
        Err(e) => {
            eprintln!("lint: walk failed: {e}");
            false
        }
    }
}

/// `lint --json`: print the machine-readable violation + waiver
/// inventory to stdout; exit non-zero on violations or budget drift
/// (the JSON is emitted either way, for CI artifact upload).
fn lint_json() -> bool {
    let root = xtask::workspace_root();
    match xtask::analyze_workspace(&root) {
        Ok(report) => {
            print!("{}", report.to_json());
            let budget_ok = match xtask::check_waiver_budget(&root, &report) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("lint: {e}");
                    false
                }
            };
            report.violations.is_empty() && budget_ok
        }
        Err(e) => {
            eprintln!("lint: walk failed: {e}");
            false
        }
    }
}

fn selftest() -> bool {
    match xtask::selftest::run(&xtask::workspace_root()) {
        Ok(()) => {
            println!(
                "selftest: every rule R1-R11 fires on its seeded violation; waivers \
                 suppress; stale waivers are rejected"
            );
            true
        }
        Err(e) => {
            eprintln!("selftest FAILED: {e}");
            false
        }
    }
}

/// One external CI step; `required` distinguishes hard failures from
/// steps skipped because the host lacks the component.
fn run_step(name: &str, mut cmd: Command, required: bool) -> Result<(), ()> {
    print!("ci: {name} ... ");
    let (status, secs) = timing::timed(|| cmd.status());
    match status {
        Ok(s) if s.success() => {
            println!("ok ({secs:.1}s)");
            Ok(())
        }
        Ok(s) => {
            println!("FAILED ({s})");
            Err(())
        }
        Err(e) if !required => {
            println!("skipped (unavailable: {e})");
            Ok(())
        }
        Err(e) => {
            println!("FAILED to launch: {e}");
            Err(())
        }
    }
}

fn cargo() -> Command {
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()))
}

/// Run the quick chaos sweep with a fault-injection drill armed and
/// assert the supervised failure contract: nonzero exit, a structured
/// JSONL error line on stderr containing `expect_err`, and partial CSVs
/// on disk (the surviving points still produce output).
fn chaos_drill(name: &str, envs: &[(&str, &str)], expect_err: &str) -> Result<(), ()> {
    print!("ci: {name} ... ");
    let tmp = std::env::temp_dir().join("ecnsharp-ci-chaos-drill");
    let _ = std::fs::remove_dir_all(&tmp);
    let mut c = cargo();
    c.args([
        "run",
        "--release",
        "-p",
        "ecnsharp-experiments",
        "--bin",
        "chaos",
    ]);
    c.env("ECNSHARP_SCALE", "quick");
    c.env("ECNSHARP_RESULTS", &tmp);
    for (k, v) in envs {
        c.env(k, v);
    }
    let (out, secs) = timing::timed(|| c.output());
    let out = match out {
        Ok(o) => o,
        Err(e) => {
            println!("FAILED to launch: {e}");
            return Err(());
        }
    };
    if out.status.success() {
        println!("FAILED (drill run exited 0; the injected fault never surfaced)");
        return Err(());
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    if !stderr.contains(expect_err) {
        println!("FAILED (stderr carries no {expect_err} JSONL line)");
        eprint!("{stderr}");
        return Err(());
    }
    for csv in ["chaos_fct.csv", "chaos_marks.csv", "chaos_aborts.csv"] {
        let path = tmp.join(csv);
        match std::fs::metadata(&path) {
            Ok(m) if m.len() > 0 => {}
            _ => {
                println!("FAILED (partial CSV {} missing or empty)", path.display());
                return Err(());
            }
        }
    }
    println!("ok ({secs:.1}s)");
    Ok(())
}

/// One named CI step, deferred so earlier failures short-circuit later work.
type CiStep<'a> = (&'a str, Box<dyn FnOnce() -> Result<(), ()>>);

fn ci() -> ExitCode {
    let root = xtask::workspace_root();
    let steps: Vec<CiStep> = vec![
        (
            "fmt --check",
            Box::new(|| {
                let mut c = cargo();
                c.args(["fmt", "--all", "--", "--check"]);
                // rustfmt is optional on minimal hosts; missing component
                // surfaces as a launch error handled by required=false at
                // the Command level, but cargo itself exists, so probe the
                // component first.
                let probe = cargo().args(["fmt", "--version"]).output();
                if !matches!(probe, Ok(ref o) if o.status.success()) {
                    println!("ci: fmt --check ... skipped (rustfmt not installed)");
                    return Ok(());
                }
                run_step("fmt --check", c, true)
            }),
        ),
        (
            "clippy",
            Box::new(|| {
                let probe = cargo().args(["clippy", "--version"]).output();
                if !matches!(probe, Ok(ref o) if o.status.success()) {
                    println!("ci: clippy ... skipped (clippy not installed)");
                    return Ok(());
                }
                let mut c = cargo();
                c.args(["clippy", "--workspace", "--all-targets"]);
                run_step("clippy (workspace deny-list)", c, true)
            }),
        ),
        (
            "xtask lint",
            Box::new(|| if lint() { Ok(()) } else { Err(()) }),
        ),
        (
            "lint json artifact",
            Box::new(|| {
                // Machine-readable inventory for CI artifact upload; the
                // pass/fail gate already ran in the previous step, so
                // this only fails if the report cannot be produced.
                let root = xtask::workspace_root();
                let report = match xtask::analyze_workspace(&root) {
                    Ok(r) => r,
                    Err(e) => {
                        println!("ci: lint json artifact ... FAILED ({e})");
                        return Err(());
                    }
                };
                let out = root.join("target/lint-report.json");
                if let Some(dir) = out.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                match std::fs::write(&out, report.to_json()) {
                    Ok(()) => {
                        println!("ci: lint json artifact ... ok ({})", out.display());
                        Ok(())
                    }
                    Err(e) => {
                        println!("ci: lint json artifact ... FAILED ({e})");
                        Err(())
                    }
                }
            }),
        ),
        (
            "xtask selftest",
            Box::new(|| if selftest() { Ok(()) } else { Err(()) }),
        ),
        (
            "build --release",
            Box::new(|| {
                let mut c = cargo();
                c.args(["build", "--release", "--workspace"]);
                run_step("build --release", c, true)
            }),
        ),
        (
            "test",
            Box::new(|| {
                let mut c = cargo();
                c.args(["test", "--workspace", "-q"]);
                run_step("test (default features)", c, true)
            }),
        ),
        (
            "test strict-invariants",
            Box::new(|| {
                let mut c = cargo();
                c.args([
                    "test",
                    "--workspace",
                    "--features",
                    "strict-invariants",
                    "-q",
                ]);
                run_step("test (strict-invariants)", c, true)
            }),
        ),
        (
            "race harness",
            Box::new(|| {
                // Shuffled-schedule determinism drill in release mode:
                // try_parallel_map + telemetry merges under randomized
                // worker interleavings must stay byte-identical
                // (ROADMAP item 1 pre-flight; see
                // crates/experiments/tests/race_harness.rs).
                let mut c = cargo();
                c.args([
                    "test",
                    "--release",
                    "-p",
                    "ecnsharp-experiments",
                    "--test",
                    "race_harness",
                    "-q",
                ]);
                run_step("race harness (release, shuffled schedules)", c, true)
            }),
        ),
        (
            "sharded determinism",
            Box::new(|| {
                // Conservative-PDES replay gate (CONCURRENCY.md): for the
                // same seed, sharded runs must be byte-identical to the
                // serial event loop — figure CSVs, chaos ledgers,
                // MarkStats — with invariant checks armed.
                let mut c = cargo();
                c.args([
                    "test",
                    "--release",
                    "-p",
                    "ecnsharp-experiments",
                    "--features",
                    "strict-invariants",
                    "--test",
                    "shard_equivalence",
                    "-q",
                ]);
                run_step("sharded determinism (strict-invariants, release)", c, true)
            }),
        ),
        (
            "build --no-default-features",
            Box::new(|| {
                // Telemetry compiled out entirely: the emission sites must
                // vanish cleanly, not just no-op (OBSERVABILITY.md).
                let mut c = cargo();
                c.args(["build", "--workspace", "--no-default-features"]);
                run_step("build (--no-default-features)", c, true)
            }),
        ),
        (
            "test --no-default-features",
            Box::new(|| {
                let mut c = cargo();
                c.args(["test", "--workspace", "--no-default-features", "-q"]);
                run_step("test (--no-default-features)", c, true)
            }),
        ),
        (
            "chaos smoke",
            Box::new(|| {
                // Crash-proof-runner drill: the quick chaos sweep under
                // strict-invariants, results to a temp dir so CI never
                // pollutes the tracked results/.
                let tmp = std::env::temp_dir().join("ecnsharp-ci-chaos");
                let mut c = cargo();
                c.args([
                    "run",
                    "--release",
                    "-p",
                    "ecnsharp-experiments",
                    "--features",
                    "strict-invariants",
                    "--bin",
                    "chaos",
                ]);
                c.env("ECNSHARP_SCALE", "quick");
                c.env("ECNSHARP_RESULTS", &tmp);
                run_step("chaos smoke (quick, strict-invariants)", c, true)
            }),
        ),
        (
            "chaos panic drill",
            Box::new(|| {
                // Crash-proof-runner drill: injecting a worker panic into
                // the first sweep point must fail the run loudly (nonzero
                // exit + a structured WorkerPanic JSONL line) while every
                // other point completes and partial CSVs land on disk.
                chaos_drill(
                    "chaos panic drill (ECNSHARP_INJECT_PANIC=worker)",
                    &[("ECNSHARP_INJECT_PANIC", "worker")],
                    "\"type\":\"WorkerPanic\"",
                )
            }),
        ),
        (
            "chaos stall drill",
            Box::new(|| {
                // Barrier-stall drill: freezing every shard's window
                // processing on the first point must trip the stall
                // detector into a structured BarrierStall diagnostic
                // instead of hanging the barrier — again with partial
                // CSVs and a nonzero exit.
                chaos_drill(
                    "chaos stall drill (ECNSHARP_INJECT_STALL=window, 2 shards)",
                    &[
                        ("ECNSHARP_INJECT_STALL", "window"),
                        ("ECNSHARP_SHARDS", "2"),
                        ("ECNSHARP_STALL_BUDGET", "4"),
                    ],
                    "\"type\":\"BarrierStall\"",
                )
            }),
        ),
        (
            "doc",
            Box::new(|| {
                let mut c = cargo();
                c.args(["doc", "--workspace", "--no-deps"]);
                c.env("RUSTDOCFLAGS", "-Dwarnings");
                run_step("doc --no-deps (-Dwarnings)", c, true)
            }),
        ),
        (
            "test --doc",
            Box::new(|| {
                let mut c = cargo();
                c.args(["test", "--workspace", "--doc", "-q"]);
                run_step("test --doc", c, true)
            }),
        ),
    ];

    std::env::set_current_dir(&root).ok();
    for (name, step) in steps {
        if step().is_err() {
            eprintln!("\nci: step `{name}` failed");
            return ExitCode::FAILURE;
        }
    }
    println!("\nci: all steps green");
    ExitCode::SUCCESS
}
