//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! - `lint` — run the determinism lint pass (R1-R6) over the workspace;
//!   non-zero exit on any finding.
//! - `selftest` — prove each rule fires on its seeded fixture violation.
//! - `ci` — fmt-check → clippy → lint → selftest → release build →
//!   tests (default features, then `strict-invariants`) → quick-scale
//!   chaos smoke run under `strict-invariants` → rustdoc gate
//!   (`cargo doc --no-deps` with `-Dwarnings`, then `cargo test --doc`).
//! - `bench` — run the standing `ecnsharp-bench` targets and collate
//!   `BENCH_sim.json` at the workspace root (see PERFORMANCE.md).
//! - `bench-diff <old> <new>` — compare two `BENCH_sim.json` files.
//! - `bench-diff --check` — rerun the `engine` bench target and fail if
//!   any engine bench regressed >25% against the committed baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::{Command, ExitCode};
// xtask is host-side tooling: timing CI steps with the wall clock is the
// whole point here, and both the custom lint (R1 scope) and clippy
// (waiver below) agree.
#[allow(clippy::disallowed_methods)] // lint: allow(wall-clock) host-side step timing
mod timing {
    /// Wall-clock seconds spent in `f`.
    pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let t0 = std::time::Instant::now(); // lint: allow(wall-clock) host-side step timing
        let out = f();
        (out, t0.elapsed().as_secs_f64())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => exit_for(lint()),
        Some("selftest") => exit_for(selftest()),
        Some("ci") => ci(),
        Some("bench") => exit_for(xtask::bench::run(&xtask::workspace_root())),
        Some("bench-diff") => match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("--check"), None) => exit_for(xtask::bench::check(&xtask::workspace_root())),
            (Some(old), Some(new)) => exit_for(xtask::bench::diff(old, new)),
            _ => {
                eprintln!(
                    "usage: cargo xtask bench-diff <old BENCH_sim.json> <new BENCH_sim.json>\n   \
                     or: cargo xtask bench-diff --check   (rerun engine benches, fail on >25% \
                     regression vs committed BENCH_sim.json)"
                );
                ExitCode::FAILURE
            }
        },
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "cargo xtask <command>\n\n\
         commands:\n  \
         lint        determinism lint pass (rules R1-R6) over the workspace\n  \
         selftest    verify each lint rule fires on its seeded fixture\n  \
         ci          fmt-check -> clippy -> lint -> selftest -> build -> tests ->\n              \
         chaos smoke -> rustdoc gate\n  \
         bench       run engine/aqm_cost/figures benches, write BENCH_sim.json\n  \
         bench-diff  compare two BENCH_sim.json files (old new), or --check to\n              \
         rerun the engine benches and fail on >25% regression"
    );
}

fn exit_for(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint() -> bool {
    let root = xtask::workspace_root();
    let (result, secs) = timing::timed(|| xtask::lint_workspace(&root));
    match result {
        Ok(violations) if violations.is_empty() => {
            println!("lint: workspace clean (rules R1-R6, {secs:.2}s)");
            true
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("\nlint: {} violation(s)", violations.len());
            false
        }
        Err(e) => {
            eprintln!("lint: walk failed: {e}");
            false
        }
    }
}

fn selftest() -> bool {
    match xtask::selftest::run(&xtask::workspace_root()) {
        Ok(()) => {
            println!("selftest: every rule R1-R6 fires on its seeded violation; waivers suppress");
            true
        }
        Err(e) => {
            eprintln!("selftest FAILED: {e}");
            false
        }
    }
}

/// One external CI step; `required` distinguishes hard failures from
/// steps skipped because the host lacks the component.
fn run_step(name: &str, mut cmd: Command, required: bool) -> Result<(), ()> {
    print!("ci: {name} ... ");
    let (status, secs) = timing::timed(|| cmd.status());
    match status {
        Ok(s) if s.success() => {
            println!("ok ({secs:.1}s)");
            Ok(())
        }
        Ok(s) => {
            println!("FAILED ({s})");
            Err(())
        }
        Err(e) if !required => {
            println!("skipped (unavailable: {e})");
            Ok(())
        }
        Err(e) => {
            println!("FAILED to launch: {e}");
            Err(())
        }
    }
}

fn cargo() -> Command {
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()))
}

/// One named CI step, deferred so earlier failures short-circuit later work.
type CiStep<'a> = (&'a str, Box<dyn FnOnce() -> Result<(), ()>>);

fn ci() -> ExitCode {
    let root = xtask::workspace_root();
    let steps: Vec<CiStep> = vec![
        (
            "fmt --check",
            Box::new(|| {
                let mut c = cargo();
                c.args(["fmt", "--all", "--", "--check"]);
                // rustfmt is optional on minimal hosts; missing component
                // surfaces as a launch error handled by required=false at
                // the Command level, but cargo itself exists, so probe the
                // component first.
                let probe = cargo().args(["fmt", "--version"]).output();
                if !matches!(probe, Ok(ref o) if o.status.success()) {
                    println!("ci: fmt --check ... skipped (rustfmt not installed)");
                    return Ok(());
                }
                run_step("fmt --check", c, true)
            }),
        ),
        (
            "clippy",
            Box::new(|| {
                let probe = cargo().args(["clippy", "--version"]).output();
                if !matches!(probe, Ok(ref o) if o.status.success()) {
                    println!("ci: clippy ... skipped (clippy not installed)");
                    return Ok(());
                }
                let mut c = cargo();
                c.args(["clippy", "--workspace", "--all-targets"]);
                run_step("clippy (workspace deny-list)", c, true)
            }),
        ),
        (
            "xtask lint",
            Box::new(|| if lint() { Ok(()) } else { Err(()) }),
        ),
        (
            "xtask selftest",
            Box::new(|| if selftest() { Ok(()) } else { Err(()) }),
        ),
        (
            "build --release",
            Box::new(|| {
                let mut c = cargo();
                c.args(["build", "--release", "--workspace"]);
                run_step("build --release", c, true)
            }),
        ),
        (
            "test",
            Box::new(|| {
                let mut c = cargo();
                c.args(["test", "--workspace", "-q"]);
                run_step("test (default features)", c, true)
            }),
        ),
        (
            "test strict-invariants",
            Box::new(|| {
                let mut c = cargo();
                c.args([
                    "test",
                    "--workspace",
                    "--features",
                    "strict-invariants",
                    "-q",
                ]);
                run_step("test (strict-invariants)", c, true)
            }),
        ),
        (
            "build --no-default-features",
            Box::new(|| {
                // Telemetry compiled out entirely: the emission sites must
                // vanish cleanly, not just no-op (OBSERVABILITY.md).
                let mut c = cargo();
                c.args(["build", "--workspace", "--no-default-features"]);
                run_step("build (--no-default-features)", c, true)
            }),
        ),
        (
            "test --no-default-features",
            Box::new(|| {
                let mut c = cargo();
                c.args(["test", "--workspace", "--no-default-features", "-q"]);
                run_step("test (--no-default-features)", c, true)
            }),
        ),
        (
            "chaos smoke",
            Box::new(|| {
                // Crash-proof-runner drill: the quick chaos sweep under
                // strict-invariants, results to a temp dir so CI never
                // pollutes the tracked results/.
                let tmp = std::env::temp_dir().join("ecnsharp-ci-chaos");
                let mut c = cargo();
                c.args([
                    "run",
                    "--release",
                    "-p",
                    "ecnsharp-experiments",
                    "--features",
                    "strict-invariants",
                    "--bin",
                    "chaos",
                ]);
                c.env("ECNSHARP_SCALE", "quick");
                c.env("ECNSHARP_RESULTS", &tmp);
                run_step("chaos smoke (quick, strict-invariants)", c, true)
            }),
        ),
        (
            "doc",
            Box::new(|| {
                let mut c = cargo();
                c.args(["doc", "--workspace", "--no-deps"]);
                c.env("RUSTDOCFLAGS", "-Dwarnings");
                run_step("doc --no-deps (-Dwarnings)", c, true)
            }),
        ),
        (
            "test --doc",
            Box::new(|| {
                let mut c = cargo();
                c.args(["test", "--workspace", "--doc", "-q"]);
                run_step("test --doc", c, true)
            }),
        ),
    ];

    std::env::set_current_dir(&root).ok();
    for (name, step) in steps {
        if step().is_err() {
            eprintln!("\nci: step `{name}` failed");
            return ExitCode::FAILURE;
        }
    }
    println!("\nci: all steps green");
    ExitCode::SUCCESS
}
