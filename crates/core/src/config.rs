//! ECN♯ configuration and the §3.4 rule-of-thumb.
//!
//! ECN♯ has three parameters (Table 2):
//!
//! | parameter      | role                                             |
//! |----------------|--------------------------------------------------|
//! | `ins_target`   | instantaneous sojourn-time marking threshold      |
//! | `pst_target`   | persistent-queueing sojourn target                |
//! | `pst_interval` | observation window before declaring persistence   |
//!
//! The rule-of-thumb (§3.4):
//! - `ins_target = λ × RTT_highpct` (Eq. 2 with a high-percentile RTT) so
//!   instantaneous marking never throttles the largest-RTT flows;
//! - `pst_interval ≈ RTT_highpct` — TCP needs one (worst-case) RTT to react
//!   to a mark, so shorter windows misclassify reaction lag as persistence;
//! - `pst_target ≥ λ × RTT_avg` — small enough to drain standing queues,
//!   conservative enough to tolerate MTU/offload-induced oscillation.

use ecnsharp_sim::Duration;

/// The three ECN♯ parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcnSharpConfig {
    /// Instantaneous marking threshold on sojourn time.
    pub ins_target: Duration,
    /// Sojourn target used by the persistent-queue detector.
    pub pst_target: Duration,
    /// Observation window for declaring persistent queueing; also the base
    /// spacing of conservative marks.
    pub pst_interval: Duration,
}

impl EcnSharpConfig {
    /// Construct an explicit configuration.
    ///
    /// # Panics
    /// If `pst_interval` is zero (the detector would declare persistence
    /// instantly) or `pst_target > ins_target` (persistent marking would be
    /// *more* aggressive than instantaneous marking, inverting the design).
    pub fn new(ins_target: Duration, pst_target: Duration, pst_interval: Duration) -> Self {
        assert!(!pst_interval.is_zero(), "pst_interval must be positive");
        assert!(
            pst_target <= ins_target,
            "pst_target ({pst_target}) must not exceed ins_target ({ins_target})"
        );
        EcnSharpConfig {
            ins_target,
            pst_target,
            pst_interval,
        }
    }

    /// §3.4 rule-of-thumb from RTT statistics: `λ`, the average base RTT and
    /// a high-percentile base RTT.
    ///
    /// ```
    /// use ecnsharp_core::EcnSharpConfig;
    /// use ecnsharp_sim::Duration;
    /// // The paper's testbed setting: RTTs 70–210 us, p90 ≈ 200 us,
    /// // average ≈ 85 us with λ=1 ⇒ ins 200 us, pst_target 85 us,
    /// // pst_interval 200 us.
    /// let c = EcnSharpConfig::rule_of_thumb(
    ///     1.0, Duration::from_micros(85), Duration::from_micros(200));
    /// assert_eq!(c.ins_target,   Duration::from_micros(200));
    /// assert_eq!(c.pst_target,   Duration::from_micros(85));
    /// assert_eq!(c.pst_interval, Duration::from_micros(200));
    /// ```
    pub fn rule_of_thumb(lambda: f64, rtt_avg: Duration, rtt_high_pct: Duration) -> Self {
        let ins = rtt_high_pct.mul_f64(lambda);
        let pst = rtt_avg.mul_f64(lambda).min(ins);
        EcnSharpConfig::new(ins, pst, rtt_high_pct)
    }

    /// The paper's testbed configuration (§5.2): ins 200 µs, pst_interval
    /// 200 µs, pst_target 85 µs.
    pub fn paper_testbed() -> Self {
        EcnSharpConfig::new(
            Duration::from_micros(200),
            Duration::from_micros(85),
            Duration::from_micros(200),
        )
    }

    /// Replace `pst_interval` (parameter-sensitivity sweeps, Fig. 12a).
    pub fn with_pst_interval(mut self, v: Duration) -> Self {
        assert!(!v.is_zero());
        self.pst_interval = v;
        self
    }

    /// Replace `pst_target` (parameter-sensitivity sweeps, Fig. 12b).
    pub fn with_pst_target(mut self, v: Duration) -> Self {
        assert!(v <= self.ins_target);
        self.pst_target = v;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_of_thumb_matches_paper_testbed() {
        let c = EcnSharpConfig::rule_of_thumb(
            1.0,
            Duration::from_micros(85),
            Duration::from_micros(200),
        );
        assert_eq!(c, EcnSharpConfig::paper_testbed());
    }

    #[test]
    fn rule_of_thumb_with_dctcp_lambda() {
        let c = EcnSharpConfig::rule_of_thumb(
            0.17,
            Duration::from_micros(100),
            Duration::from_micros(200),
        );
        assert_eq!(c.ins_target, Duration::from_micros(34));
        assert_eq!(c.pst_target, Duration::from_micros(17));
        assert_eq!(c.pst_interval, Duration::from_micros(200));
    }

    #[test]
    fn pst_target_clamped_to_ins_target() {
        // Degenerate stats (avg > high percentile) must still satisfy the
        // invariant pst_target <= ins_target.
        let c = EcnSharpConfig::rule_of_thumb(
            1.0,
            Duration::from_micros(300),
            Duration::from_micros(200),
        );
        assert_eq!(c.pst_target, c.ins_target);
    }

    #[test]
    #[should_panic(expected = "pst_interval must be positive")]
    fn zero_interval_rejected() {
        let _ = EcnSharpConfig::new(
            Duration::from_micros(200),
            Duration::from_micros(85),
            Duration::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_targets_rejected() {
        let _ = EcnSharpConfig::new(
            Duration::from_micros(85),
            Duration::from_micros(200),
            Duration::from_micros(200),
        );
    }

    #[test]
    fn sweep_builders() {
        let c = EcnSharpConfig::paper_testbed()
            .with_pst_interval(Duration::from_micros(150))
            .with_pst_target(Duration::from_micros(10));
        assert_eq!(c.pst_interval, Duration::from_micros(150));
        assert_eq!(c.pst_target, Duration::from_micros(10));
        assert_eq!(c.ins_target, Duration::from_micros(200));
    }
}
