//! Queue-length flavour of ECN♯.
//!
//! §3.2: "By nature, ECN♯ works with both queue length and sojourn time as
//! congestion signals." This variant drives the same Algorithm-1 state
//! machine with the instantaneous queue *occupancy* (bytes) compared against
//! byte thresholds derived via Equation 1, marking at **enqueue** like
//! DCTCP-RED. It exists to demonstrate signal-agnosticism and as an ablation
//! in the benches; the paper's deployed variant is the sojourn one
//! ([`crate::EcnSharp`]).

use crate::config::EcnSharpConfig;
use ecnsharp_aqm::{
    admit_mark_or_drop, params, Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState,
};
use ecnsharp_sim::{Rate, SimTime};

/// ECN♯ driven by queue length instead of sojourn time.
#[derive(Debug, Clone)]
pub struct EcnSharpQlen {
    /// Instantaneous marking threshold in bytes (Eq. 1).
    ins_target_bytes: u64,
    /// Persistent-queue byte target.
    pst_target_bytes: u64,
    /// Observation window / marking spacing (time, as in Algorithm 1).
    pst_interval: ecnsharp_sim::Duration,
    marking_state: bool,
    marking_count: u64,
    marking_next: SimTime,
    first_above_time: Option<SimTime>,
}

impl EcnSharpQlen {
    /// Build from a sojourn-time config and the port drain rate, converting
    /// the time targets into byte thresholds (`K = T × C`).
    pub fn from_config(cfg: EcnSharpConfig, drain_rate: Rate) -> Self {
        EcnSharpQlen {
            ins_target_bytes: params::sojourn_to_queue(cfg.ins_target, drain_rate),
            pst_target_bytes: params::sojourn_to_queue(cfg.pst_target, drain_rate),
            pst_interval: cfg.pst_interval,
            marking_state: false,
            marking_count: 0,
            marking_next: SimTime::ZERO,
            first_above_time: None,
        }
    }

    /// Build from explicit byte thresholds.
    pub fn with_thresholds(
        ins_target_bytes: u64,
        pst_target_bytes: u64,
        pst_interval: ecnsharp_sim::Duration,
    ) -> Self {
        assert!(!pst_interval.is_zero(), "pst_interval must be positive");
        assert!(pst_target_bytes <= ins_target_bytes);
        EcnSharpQlen {
            ins_target_bytes,
            pst_target_bytes,
            pst_interval,
            marking_state: false,
            marking_count: 0,
            marking_next: SimTime::ZERO,
            first_above_time: None,
        }
    }

    /// The instantaneous byte threshold.
    pub fn ins_target_bytes(&self) -> u64 {
        self.ins_target_bytes
    }

    /// The persistent byte target.
    pub fn pst_target_bytes(&self) -> u64 {
        self.pst_target_bytes
    }

    fn is_persistent(&mut self, now: SimTime, backlog: u64) -> bool {
        if backlog < self.pst_target_bytes {
            self.first_above_time = None;
            return false;
        }
        match self.first_above_time {
            None => {
                self.first_above_time = Some(now);
                false
            }
            Some(fat) => now > fat + self.pst_interval,
        }
    }

    fn should_persistent_mark(&mut self, now: SimTime, backlog: u64) -> bool {
        let detected = self.is_persistent(now, backlog);
        if self.marking_state {
            if !detected {
                self.marking_state = false;
                false
            } else if now > self.marking_next {
                self.marking_count += 1;
                self.marking_next += self
                    .pst_interval
                    .div_f64((self.marking_count as f64).sqrt());
                true
            } else {
                false
            }
        } else if detected {
            self.marking_state = true;
            self.marking_count = 1;
            self.marking_next = now + self.pst_interval;
            true
        } else {
            false
        }
    }
}

impl Aqm for EcnSharpQlen {
    fn name(&self) -> &'static str {
        "ECN#-qlen"
    }

    fn on_enqueue(&mut self, now: SimTime, q: &QueueState, pkt: &PacketView) -> EnqueueVerdict {
        let backlog = q.backlog_bytes + pkt.bytes;
        let ins = backlog > self.ins_target_bytes;
        let pst = self.should_persistent_mark(now, backlog);
        if ins || pst {
            admit_mark_or_drop(pkt.ect)
        } else {
            EnqueueVerdict::Admit
        }
    }

    fn on_dequeue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> DequeueVerdict {
        DequeueVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnsharp_sim::{Duration, Rate};

    fn qs(backlog: u64) -> QueueState {
        QueueState {
            backlog_bytes: backlog,
            backlog_pkts: backlog / 1500,
            capacity_bytes: 2_000_000,
            drain_rate: Rate::from_gbps(10),
        }
    }

    fn pv() -> PacketView {
        PacketView {
            bytes: 1500,
            ect: true,
            enqueued_at: SimTime::ZERO,
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn mk() -> EcnSharpQlen {
        // ins 250 KB, pst 106.25 KB, interval 200 us at 10 Gbps — derived
        // from the paper testbed config.
        EcnSharpQlen::from_config(crate::EcnSharpConfig::paper_testbed(), Rate::from_gbps(10))
    }

    #[test]
    fn thresholds_follow_eq1() {
        let m = mk();
        assert_eq!(m.ins_target_bytes(), 250_000);
        assert_eq!(m.pst_target_bytes(), 106_250);
    }

    #[test]
    fn instantaneous_mark_above_ins_bytes() {
        let mut m = mk();
        assert_eq!(m.on_enqueue(t(0), &qs(0), &pv()), EnqueueVerdict::Admit);
        assert_eq!(
            m.on_enqueue(t(1), &qs(300_000), &pv()),
            EnqueueVerdict::AdmitMark
        );
    }

    #[test]
    fn persistent_mark_after_interval_of_standing_queue() {
        let mut m = mk();
        // 150 KB standing queue: above pst (106 KB) but below ins (250 KB).
        assert_eq!(
            m.on_enqueue(t(0), &qs(150_000), &pv()),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            m.on_enqueue(t(100), &qs(150_000), &pv()),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            m.on_enqueue(t(200), &qs(150_000), &pv()),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            m.on_enqueue(t(201), &qs(150_000), &pv()),
            EnqueueVerdict::AdmitMark,
            "persistent mark after a full interval"
        );
    }

    #[test]
    fn drained_queue_resets() {
        let mut m = mk();
        m.on_enqueue(t(0), &qs(150_000), &pv());
        m.on_enqueue(t(201), &qs(150_000), &pv()); // marks, enters state
        assert_eq!(m.on_enqueue(t(250), &qs(0), &pv()), EnqueueVerdict::Admit);
        // Needs a fresh interval again.
        assert_eq!(
            m.on_enqueue(t(260), &qs(150_000), &pv()),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            m.on_enqueue(t(460), &qs(150_000), &pv()),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            m.on_enqueue(t(461), &qs(150_000), &pv()),
            EnqueueVerdict::AdmitMark
        );
    }

    #[test]
    fn explicit_thresholds_constructor() {
        let m = EcnSharpQlen::with_thresholds(100_000, 50_000, Duration::from_micros(100));
        assert_eq!(m.ins_target_bytes(), 100_000);
        assert_eq!(m.pst_target_bytes(), 50_000);
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_rejected() {
        let _ = EcnSharpQlen::with_thresholds(10, 20, Duration::from_micros(100));
    }
}
