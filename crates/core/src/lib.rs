//! # ecnsharp-core
//!
//! ECN♯ ("ECN-Sharp"), the AQM contributed by *Enabling ECN for Datacenter
//! Networks with RTT Variations* (Zhang, Bai, Chen — CoNEXT 2019).
//!
//! ## The problem
//!
//! ECN-based datacenter transports (DCTCP, DCQCN, …) mark packets at the
//! switch against a threshold derived from a **fixed** base RTT
//! (`K = λ·C·RTT`, Eq. 1). Base RTTs actually vary ~3× and more across flows
//! (load balancers, hypervisors, stack load — §2.2). Deriving the threshold
//! from a high-percentile RTT preserves throughput but lets flows with
//! *small* RTTs maintain a standing queue below the threshold — pure
//! queueing delay that inflates short-flow latency by 50%+ (§2.3). Deriving
//! it from a low-percentile RTT instead starves the large-RTT flows.
//!
//! ## The ECN♯ idea
//!
//! Keep the high-percentile instantaneous threshold (burst tolerance, full
//! throughput) **and** watch for queues that stay above a small
//! `pst_target` for a whole `pst_interval` — such standing queues cannot be
//! contributing throughput, so ECN♯ conservatively marks one packet per
//! (shrinking) interval until they drain. See [`EcnSharp`] for the exact
//! Algorithm-1 state machine and [`EcnSharpConfig`] for the §3.4
//! rule-of-thumb.
//!
//! ```
//! use ecnsharp_core::{EcnSharp, EcnSharpConfig, MarkReason};
//! use ecnsharp_sim::{Duration, SimTime};
//!
//! let mut m = EcnSharp::new(EcnSharpConfig::paper_testbed());
//! // A 300 us sojourn exceeds ins_target (200 us): instantaneous mark.
//! assert_eq!(
//!     m.decide(SimTime::from_micros(0), Duration::from_micros(300)),
//!     MarkReason::Instantaneous,
//! );
//! // A standing 100 us queue (above pst_target 85 us, below ins_target)
//! // is tolerated for one pst_interval (200 us)...
//! assert_eq!(
//!     m.decide(SimTime::from_micros(50), Duration::from_micros(100)),
//!     MarkReason::None,
//! );
//! // ...and conservatively marked once it persists.
//! assert_eq!(
//!     m.decide(SimTime::from_micros(251), Duration::from_micros(100)),
//!     MarkReason::Persistent,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod marker;
pub mod prob;
pub mod qlen;

pub use config::EcnSharpConfig;
pub use marker::{EcnSharp, MarkReason, MarkStats};
pub use prob::EcnSharpProb;
pub use qlen::EcnSharpQlen;

// Compile-time shard-safety proofs: markers sit on ports inside the
// `Network` a sharded engine (ROADMAP item 1) moves across worker
// threads. Lint rules R7/R8 guard the source text; these assertions
// guard the types themselves.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<EcnSharp>();
    assert_send_sync::<EcnSharpProb>();
    assert_send_sync::<EcnSharpQlen>();
    assert_send_sync::<EcnSharpConfig>();
};
