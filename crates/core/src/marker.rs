//! The ECN♯ marking algorithm (paper §3.2, Algorithm 1), sojourn-time
//! flavour — the variant the paper implements on Tofino and in ns-3.
//!
//! A dequeued packet is CE-marked when **either**
//!
//! 1. its sojourn time exceeds `ins_target` (instantaneous marking — burst
//!    tolerance and high throughput, inherited from current practice), or
//! 2. the persistent-congestion state machine
//!    ([`EcnSharp::should_persistent_mark`]) decides to mark — conservative
//!    marking that drains standing queues built by small-RTT flows without
//!    hurting throughput.
//!
//! Both conditions are evaluated for every packet: the persistent-state
//! machine must observe every dequeue to track `first_above_time`
//! correctly, even when the instantaneous check already marked the packet.

use crate::config::EcnSharpConfig;
use ecnsharp_aqm::{
    mark_or_drop, Aqm, DequeueVerdict, EnqueueVerdict, EpisodeTransition, PacketView, QueueState,
};
use ecnsharp_sim::{Duration, SimTime};

/// Why a packet was marked (exposed for the microscopic analyses of §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkReason {
    /// Not marked.
    None,
    /// Sojourn time above `ins_target`.
    Instantaneous,
    /// Persistent-queue conservative marking.
    Persistent,
    /// Both conditions fired on the same packet.
    Both,
}

/// Counters describing what the marker has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarkStats {
    /// Packets examined at dequeue.
    pub packets: u64,
    /// Marks caused by the instantaneous condition (alone or jointly).
    pub ins_marks: u64,
    /// Marks caused by the persistent condition (alone or jointly).
    pub pst_marks: u64,
    /// Persistent-congestion episodes entered.
    pub episodes: u64,
}

/// The ECN♯ AQM (sojourn-time signals).
#[derive(Debug, Clone)]
pub struct EcnSharp {
    cfg: EcnSharpConfig,
    // ── Algorithm 1 state (Table 2) ────────────────────────────────────
    /// `marking_state`: are we inside a conservative-marking episode?
    marking_state: bool,
    /// `marking_count`: marks issued in the current episode.
    marking_count: u64,
    /// `marking_next`: the next scheduled conservative mark.
    marking_next: SimTime,
    /// `first_above_time`: when the sojourn time first exceeded
    /// `pst_target` (None encodes the algorithm's `0`).
    first_above_time: Option<SimTime>,
    stats: MarkStats,
    /// Latest episode entry/exit, until the port layer collects it via
    /// [`Aqm::take_episode_transition`]. Entry and exit can never occur on
    /// the same packet, so one slot is enough.
    pending_transition: Option<EpisodeTransition>,
}

impl EcnSharp {
    /// Create from a configuration.
    pub fn new(cfg: EcnSharpConfig) -> Self {
        EcnSharp {
            cfg,
            marking_state: false,
            marking_count: 0,
            marking_next: SimTime::ZERO,
            first_above_time: None,
            stats: MarkStats::default(),
            pending_transition: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> EcnSharpConfig {
        self.cfg
    }

    /// Marking statistics so far.
    pub fn stats(&self) -> MarkStats {
        self.stats
    }

    /// Whether the conservative-marking episode is active (`marking_state`).
    pub fn in_marking_state(&self) -> bool {
        self.marking_state
    }

    /// Algorithm 1, `IsPersistentQueueBuildups`: has the sojourn time stayed
    /// at or above `pst_target` for a full `pst_interval`?
    fn is_persistent_queue_buildup(&mut self, now: SimTime, sojourn: Duration) -> bool {
        if sojourn < self.cfg.pst_target {
            // Queue expired: forget the episode start.
            self.first_above_time = None;
            return false;
        }
        match self.first_above_time {
            None => {
                self.first_above_time = Some(now);
                false
            }
            Some(fat) => now > fat + self.cfg.pst_interval,
        }
    }

    /// Algorithm 1, `ShouldPersistentMark`: run the conservative-marking
    /// state machine for one dequeued packet and return its decision.
    pub fn should_persistent_mark(&mut self, now: SimTime, sojourn: Duration) -> bool {
        let detected = self.is_persistent_queue_buildup(now, sojourn);
        let mark = if self.marking_state {
            if !detected {
                self.marking_state = false;
                self.pending_transition = Some(EpisodeTransition {
                    entered: false,
                    at: now,
                    marks: self.marking_count,
                });
                false
            } else if now > self.marking_next {
                // One more conservative mark; shrink the spacing so marking
                // intensifies while the queue refuses to drain.
                self.marking_count += 1;
                self.marking_next += self
                    .cfg
                    .pst_interval
                    .div_f64((self.marking_count as f64).sqrt());
                true
            } else {
                false
            }
        } else if detected {
            self.marking_state = true;
            self.marking_count = 1;
            self.marking_next = now + self.cfg.pst_interval;
            self.stats.episodes += 1;
            self.pending_transition = Some(EpisodeTransition {
                entered: true,
                at: now,
                marks: 1,
            });
            true
        } else {
            false
        };
        self.check_state_legality(now, mark);
        mark
    }

    /// Algorithm 1 state legality, verified after every transition (debug
    /// builds and `strict-invariants`; free otherwise).
    fn check_state_legality(&self, now: SimTime, mark: bool) {
        ecnsharp_sim::invariant!(
            !self.marking_state || self.marking_count >= 1,
            "in marking_state with marking_count == 0"
        );
        ecnsharp_sim::invariant!(
            !self.marking_state || self.first_above_time.is_some(),
            "in marking_state without a first_above_time"
        );
        ecnsharp_sim::invariant!(
            !mark || self.marking_state,
            "issued a conservative mark outside a marking episode"
        );
        if let Some(fat) = self.first_above_time {
            ecnsharp_sim::invariant!(
                fat <= now,
                "first_above_time {fat} is in the future (now {now})"
            );
        }
        if self.marking_state {
            ecnsharp_sim::invariant!(
                self.marking_next > SimTime::ZERO,
                "marking episode active but marking_next never scheduled"
            );
        }
    }

    /// Full per-packet decision: instantaneous OR persistent.
    pub fn decide(&mut self, now: SimTime, sojourn: Duration) -> MarkReason {
        self.stats.packets += 1;
        let ins = sojourn > self.cfg.ins_target;
        let pst = self.should_persistent_mark(now, sojourn);
        if ins {
            self.stats.ins_marks += 1;
        }
        if pst {
            self.stats.pst_marks += 1;
        }
        match (ins, pst) {
            (false, false) => MarkReason::None,
            (true, false) => MarkReason::Instantaneous,
            (false, true) => MarkReason::Persistent,
            (true, true) => MarkReason::Both,
        }
    }
}

impl Aqm for EcnSharp {
    fn name(&self) -> &'static str {
        "ECN#"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_enqueue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> EnqueueVerdict {
        EnqueueVerdict::Admit
    }

    fn on_dequeue(&mut self, now: SimTime, _q: &QueueState, pkt: &PacketView) -> DequeueVerdict {
        match self.decide(now, pkt.sojourn(now)) {
            MarkReason::None => DequeueVerdict::Pass,
            _ => mark_or_drop(pkt.ect),
        }
    }

    fn take_episode_transition(&mut self) -> Option<EpisodeTransition> {
        self.pending_transition.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn marker() -> EcnSharp {
        EcnSharp::new(EcnSharpConfig::paper_testbed()) // ins 200, pst 85, int 200 (us)
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }
    fn d(us: u64) -> Duration {
        Duration::from_micros(us)
    }

    #[test]
    fn instantaneous_marking_above_ins_target() {
        let mut m = marker();
        assert_eq!(m.decide(t(0), d(201)), MarkReason::Instantaneous);
        assert_eq!(
            m.decide(t(1), d(200)),
            MarkReason::None,
            "not strictly above"
        );
    }

    #[test]
    fn no_persistent_mark_below_pst_target() {
        let mut m = marker();
        for i in 0..10_000 {
            assert!(!m.should_persistent_mark(t(i), d(84)));
        }
        assert_eq!(m.stats().episodes, 0);
    }

    #[test]
    fn persistent_detection_needs_full_interval() {
        let mut m = marker();
        // sojourn 100 (>= pst_target 85, < ins 200) starting at t=0
        assert!(!m.should_persistent_mark(t(0), d(100))); // sets first_above_time
        assert!(!m.should_persistent_mark(t(100), d(100)));
        assert!(
            !m.should_persistent_mark(t(200), d(100)),
            "now == fat+interval is not >"
        );
        assert!(
            m.should_persistent_mark(t(201), d(100)),
            "first conservative mark"
        );
        assert!(m.in_marking_state());
    }

    #[test]
    fn first_mark_schedules_next_interval_away() {
        let mut m = marker();
        m.should_persistent_mark(t(0), d(100));
        assert!(m.should_persistent_mark(t(201), d(100)));
        // Next mark strictly after marking_next = 201 + 200 = 401.
        assert!(!m.should_persistent_mark(t(300), d(100)));
        assert!(!m.should_persistent_mark(t(401), d(100)));
        assert!(m.should_persistent_mark(t(402), d(100)));
    }

    #[test]
    fn marking_interval_shrinks_with_sqrt_count() {
        let mut m = marker();
        m.should_persistent_mark(t(0), d(100));
        let mut marks = vec![];
        for us in 1..3_000u64 {
            if m.should_persistent_mark(t(us), d(100)) {
                marks.push(us);
            }
        }
        assert!(marks.len() >= 4, "got {marks:?}");
        // Expected schedule: 201, then +200/sqrt(2) ≈ 342 (marking_next
        // 401+141=542? no: marking_next after first mark = 201+200 = 401;
        // second mark at 402 with count=2 bumps marking_next by
        // 200/sqrt(2)=141 → 542; third at 543 with count=3 bumps by
        // 200/sqrt(3)=115 → 657...). Gaps must be non-increasing.
        let gaps: Vec<u64> = marks.windows(2).map(|w| w[1] - w[0]).collect();
        for pair in gaps.windows(2) {
            // <= +1 tolerates microsecond rounding of the sqrt schedule.
            assert!(pair[1] <= pair[0] + 1, "gaps should shrink: {gaps:?}");
        }
    }

    #[test]
    fn queue_expiry_exits_marking_state() {
        let mut m = marker();
        m.should_persistent_mark(t(0), d(100));
        assert!(m.should_persistent_mark(t(201), d(100)));
        assert!(m.in_marking_state());
        // One packet below target ends the episode...
        assert!(!m.should_persistent_mark(t(250), d(10)));
        assert!(!m.in_marking_state());
        // ...and detection must again take a full interval.
        assert!(!m.should_persistent_mark(t(260), d(100)));
        assert!(!m.should_persistent_mark(t(460), d(100)));
        assert!(m.should_persistent_mark(t(461), d(100)));
    }

    #[test]
    fn decide_combines_reasons() {
        let mut m = marker();
        // Drive into marking state with sojourn above both thresholds.
        m.decide(t(0), d(300)); // Instantaneous (fat set)
        let r = m.decide(t(201), d(300));
        assert_eq!(r, MarkReason::Both);
        let s = m.stats();
        assert_eq!(s.ins_marks, 2);
        assert_eq!(s.pst_marks, 1);
        assert_eq!(s.episodes, 1);
        assert_eq!(s.packets, 2);
    }

    #[test]
    fn persistent_state_advances_even_when_ins_marks() {
        // Instantaneous marking must not blind the persistent detector.
        let mut m = marker();
        for us in (0..=400).step_by(50) {
            m.decide(t(us), d(500)); // all above ins_target
        }
        assert!(m.in_marking_state(), "episode must have been entered");
    }

    #[test]
    fn aqm_trait_marks_ect_and_drops_nonect() {
        use ecnsharp_aqm::{DequeueVerdict, QueueState};
        use ecnsharp_sim::Rate;
        let mut m = marker();
        let q = QueueState {
            backlog_bytes: 50_000,
            backlog_pkts: 33,
            capacity_bytes: 1_000_000,
            drain_rate: Rate::from_gbps(10),
        };
        let mk = |enq_us: u64, ect: bool| PacketView {
            bytes: 1500,
            ect,
            enqueued_at: t(enq_us),
        };
        // sojourn 300 us > ins_target
        assert_eq!(m.on_dequeue(t(300), &q, &mk(0, true)), DequeueVerdict::Mark);
        assert_eq!(
            m.on_dequeue(t(600), &q, &mk(300, false)),
            DequeueVerdict::Drop
        );
    }

    #[test]
    fn stats_start_zeroed() {
        let m = marker();
        assert_eq!(m.stats(), MarkStats::default());
    }

    /// The exact sqrt-shrink schedule across four consecutive marks, probed
    /// at 1 µs resolution. With `pst_interval` = 200 µs and `first_above_time`
    /// = 0: mark 1 fires at 201 (first t > fat + 200) and schedules
    /// marking_next = 401; mark 2 at 402 bumps by 200/√2 ≈ 141.42 µs
    /// (marking_next ≈ 542.42); mark 3 at 543 bumps by 200/√3 ≈ 115.47
    /// (≈ 657.89); mark 4 at 658.
    #[test]
    fn sqrt_shrink_schedule_exact_times() {
        let mut m = marker();
        m.should_persistent_mark(t(0), d(100)); // sets first_above_time = 0
        let mut marks = vec![];
        for us in 1..700u64 {
            if m.should_persistent_mark(t(us), d(100)) {
                marks.push(us);
            }
        }
        assert_eq!(marks, vec![201, 402, 543, 658]);
    }

    /// Exiting an episode resets `first_above_time`: re-entry needs another
    /// full `pst_interval` of high sojourn, and the episode counter reflects
    /// both episodes.
    #[test]
    fn episode_reentry_resets_first_above_time_and_counts() {
        let mut m = marker();
        m.should_persistent_mark(t(0), d(100));
        assert!(m.should_persistent_mark(t(201), d(100)));
        assert_eq!(m.stats().episodes, 1);
        // Sojourn collapse ends the episode and clears first_above_time.
        assert!(!m.should_persistent_mark(t(250), d(10)));
        assert!(!m.in_marking_state());
        // High again at t=300: detection restarts from scratch, so the
        // second episode's first mark cannot land before 300 + 200.
        assert!(!m.should_persistent_mark(t(300), d(100)));
        assert!(
            !m.should_persistent_mark(t(500), d(100)),
            "500 == fat+interval is not >"
        );
        assert!(m.should_persistent_mark(t(501), d(100)));
        assert_eq!(m.stats().episodes, 2);
        assert!(m.in_marking_state());
    }

    /// `MarkReason::Both` only when the two conditions fire on the *same*
    /// packet; adjacent packets where they fire separately report the
    /// individual reasons.
    #[test]
    fn both_path_requires_same_packet_coincidence() {
        let mut m = marker();
        // Persistent machinery sees high sojourn from t=0 but below
        // ins_target (200), so only Persistent can fire here.
        assert_eq!(m.decide(t(0), d(150)), MarkReason::None);
        assert_eq!(m.decide(t(201), d(150)), MarkReason::Persistent);
        // Instantaneous-only while the episode waits for marking_next (401).
        assert_eq!(m.decide(t(300), d(250)), MarkReason::Instantaneous);
        // At t=402 both fire together on one packet.
        assert_eq!(m.decide(t(402), d(250)), MarkReason::Both);
        let s = m.stats();
        assert_eq!((s.ins_marks, s.pst_marks, s.episodes), (2, 2, 1));
    }

    proptest! {
        /// Invariant: with sojourn permanently below pst_target (and
        /// ins_target), ECN# never marks anything.
        #[test]
        fn prop_never_marks_below_targets(
            times in proptest::collection::vec(0u64..1_000_000, 1..500),
        ) {
            let mut m = marker();
            let mut ts = times.clone();
            ts.sort_unstable();
            for us in ts {
                prop_assert_eq!(m.decide(t(us), d(84)), MarkReason::None);
            }
        }

        /// Invariant: marking_next is strictly increasing within an episode
        /// (conservative marks never bunch up).
        #[test]
        fn prop_marks_spaced_out(step in 1u64..50) {
            let mut m = marker();
            let mut last_mark: Option<u64> = None;
            let mut us = 0;
            for _ in 0..5_000 {
                us += step;
                if m.should_persistent_mark(t(us), d(100)) {
                    if let Some(prev) = last_mark {
                        // Marks must be separated by at least one step and
                        // the schedule is monotone.
                        prop_assert!(us > prev);
                    }
                    last_mark = Some(us);
                }
            }
            // With sojourn persistently above target, marking must happen.
            prop_assert!(last_mark.is_some());
        }

        /// Invariant: the detector requires a full pst_interval of
        /// continuously-high sojourn before the first mark of an episode.
        #[test]
        fn prop_first_mark_not_early(gap in 1u64..200) {
            let mut m = marker();
            let mut first_seen = None;
            let mut us = 0;
            for _ in 0..10_000 {
                if m.should_persistent_mark(t(us), d(100)) {
                    first_seen = Some(us);
                    break;
                }
                us += gap;
            }
            if let Some(first) = first_seen {
                // first_above_time was set at t=0; interval is 200 us.
                prop_assert!(first > 200, "marked at {first}us with gap {gap}");
            }
        }

        /// Determinism end-to-end: the same RNG seed drives the marker to
        /// bit-identical `MarkStats`, using the simulator's own seeded
        /// xoshiro RNG as the sojourn source (the workload shape the
        /// experiments actually produce).
        #[test]
        fn prop_same_seed_same_markstats(seed in 0u64..u64::MAX, n in 50usize..400) {
            let run = |seed: u64| {
                let mut rng = ecnsharp_sim::Rng::seed_from_u64(seed);
                let mut m = marker();
                let mut now = SimTime::ZERO;
                for _ in 0..n {
                    now += rng.exp_duration(Duration::from_micros(20));
                    let sojourn = rng.exp_duration(Duration::from_micros(120));
                    m.decide(now, sojourn);
                }
                m.stats()
            };
            prop_assert_eq!(run(seed), run(seed));
        }

        /// Determinism: identical inputs yield identical decision streams.
        #[test]
        fn prop_deterministic(
            sojourns in proptest::collection::vec(0u64..400, 1..300),
        ) {
            let run = |sjs: &[u64]| {
                let mut m = marker();
                sjs.iter()
                    .enumerate()
                    .map(|(i, &s)| m.decide(t(i as u64 * 10), d(s)))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(&sojourns), run(&sojourns));
        }
    }

    #[test]
    fn episode_transitions_are_reported_once() {
        let mut m = marker();
        assert_eq!(m.take_episode_transition(), None);
        // Drive into an episode: sojourn persistently above pst_target.
        m.should_persistent_mark(t(0), d(100));
        let mut entered_at = None;
        for us in 1..1_000 {
            m.should_persistent_mark(t(us), d(100));
            if let Some(tr) = m.take_episode_transition() {
                assert!(tr.entered, "first transition must be an entry");
                assert_eq!(tr.marks, 1);
                entered_at = Some(tr.at);
                break;
            }
        }
        assert!(entered_at.is_some(), "episode never entered");
        assert_eq!(m.take_episode_transition(), None, "transition is one-shot");
        // Queue drains: next call exits the episode and reports its marks.
        m.should_persistent_mark(t(2_000), d(10));
        let tr = m.take_episode_transition().expect("exit transition");
        assert!(!tr.entered);
        assert!(tr.marks >= 1);
        assert_eq!(tr.at, t(2_000));
    }
}
