//! ECN♯ with probabilistic instantaneous marking — the §3.5 extension.
//!
//! Rate-based transports like DCQCN require RED-style probabilistic
//! marking between two thresholds `Kmin`/`Kmax` for convergence and
//! fairness, rather than DCTCP's cut-off behaviour. §3.5 sketches the
//! combination: "change the original cut-off marking into probabilistic
//! marking, and keep the marking based on persistent congestion unchanged
//! since it is conducted in a probabilistic way." The paper leaves the
//! analysis to future work; this module implements the sketch.
//!
//! The instantaneous component marks a dequeued packet with probability
//! ramping linearly from 0 at `ins_min` sojourn to `max_p` at `ins_max`
//! (and 1 beyond `ins_max`); the persistent component is the unmodified
//! Algorithm-1 state machine.

use crate::config::EcnSharpConfig;
use crate::marker::EcnSharp;
use ecnsharp_aqm::{mark_or_drop, Aqm, DequeueVerdict, EnqueueVerdict, PacketView, QueueState};
use ecnsharp_sim::{Duration, Rng, SimTime};

/// ECN♯ with a DCQCN-compatible probabilistic instantaneous ramp.
pub struct EcnSharpProb {
    /// Sojourn time at which instantaneous marking starts.
    ins_min: Duration,
    /// Sojourn time at which the probability reaches `max_p` (beyond it,
    /// marking is certain).
    ins_max: Duration,
    /// Marking probability at `ins_max`.
    max_p: f64,
    /// The unmodified persistent-congestion machinery (we reuse the full
    /// marker but feed it only the persistent decision).
    persistent: EcnSharp,
    rng: Rng,
}

impl EcnSharpProb {
    /// Create from the ramp `[ins_min, ins_max] → [0, max_p]` and the
    /// persistent parameters of `cfg` (whose own `ins_target` is unused).
    pub fn new(
        cfg: EcnSharpConfig,
        ins_min: Duration,
        ins_max: Duration,
        max_p: f64,
        seed: u64,
    ) -> Self {
        assert!(ins_min < ins_max, "need ins_min < ins_max");
        assert!((0.0..=1.0).contains(&max_p));
        EcnSharpProb {
            ins_min,
            ins_max,
            max_p,
            persistent: EcnSharp::new(cfg),
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Instantaneous marking probability for a given sojourn time.
    pub fn ins_probability(&self, sojourn: Duration) -> f64 {
        if sojourn <= self.ins_min {
            0.0
        } else if sojourn > self.ins_max {
            1.0
        } else {
            let span = (self.ins_max - self.ins_min).as_nanos() as f64;
            let x = (sojourn - self.ins_min).as_nanos() as f64;
            self.max_p * x / span
        }
    }

    /// Per-packet decision: probabilistic instantaneous OR persistent.
    pub fn decide(&mut self, now: SimTime, sojourn: Duration) -> bool {
        let p = self.ins_probability(sojourn);
        let ins = p >= 1.0 || (p > 0.0 && self.rng.chance(p));
        let pst = self.persistent.should_persistent_mark(now, sojourn);
        ins || pst
    }
}

impl Aqm for EcnSharpProb {
    fn name(&self) -> &'static str {
        "ECN#-prob"
    }

    fn on_enqueue(&mut self, _now: SimTime, _q: &QueueState, _pkt: &PacketView) -> EnqueueVerdict {
        EnqueueVerdict::Admit
    }

    fn on_dequeue(&mut self, now: SimTime, _q: &QueueState, pkt: &PacketView) -> DequeueVerdict {
        if self.decide(now, pkt.sojourn(now)) {
            mark_or_drop(pkt.ect)
        } else {
            DequeueVerdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> EcnSharpProb {
        EcnSharpProb::new(
            EcnSharpConfig::paper_testbed(),
            Duration::from_micros(100),
            Duration::from_micros(300),
            0.8,
            7,
        )
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }
    fn d(us: u64) -> Duration {
        Duration::from_micros(us)
    }

    #[test]
    // Below the ramp and at saturation the function returns the clamped
    // literals 0.0 / 1.0, not computed values.
    #[allow(clippy::float_cmp)]
    fn ramp_shape() {
        let m = mk();
        assert_eq!(m.ins_probability(d(50)), 0.0);
        assert_eq!(m.ins_probability(d(100)), 0.0);
        assert!((m.ins_probability(d(200)) - 0.4).abs() < 1e-12);
        assert!((m.ins_probability(d(300)) - 0.8).abs() < 1e-12);
        assert_eq!(m.ins_probability(d(301)), 1.0);
    }

    #[test]
    fn marking_fraction_tracks_probability() {
        let mut m = mk();
        let n = 50_000;
        // Keep sojourn below pst_target's persistence window by pulsing:
        // alternate one low-sojourn packet to reset the detector.
        let mut marked = 0;
        for k in 0..n {
            if m.decide(t(k * 2), d(200)) {
                marked += 1;
            }
            m.decide(t(k * 2 + 1), d(10)); // resets persistence
        }
        let frac = marked as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn certain_marking_beyond_ins_max() {
        let mut m = mk();
        for k in 0..100 {
            assert!(m.decide(t(k), d(400)));
        }
    }

    #[test]
    fn persistent_component_still_fires() {
        let mut m = EcnSharpProb::new(
            EcnSharpConfig::paper_testbed(),
            Duration::from_micros(500), // instantaneous ramp far away
            Duration::from_micros(900),
            1.0,
            9,
        );
        // Standing 100 us sojourn: below the ramp, above pst_target (85).
        assert!(!m.decide(t(0), d(100)));
        assert!(!m.decide(t(100), d(100)));
        assert!(!m.decide(t(200), d(100)));
        assert!(m.decide(t(201), d(100)), "persistent mark after interval");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut m = EcnSharpProb::new(
                EcnSharpConfig::paper_testbed(),
                Duration::from_micros(100),
                Duration::from_micros(300),
                0.5,
                seed,
            );
            (0..5_000u64)
                .filter(|&k| m.decide(t(k * 3), d(150 + k % 200)))
                .count()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "ins_min < ins_max")]
    fn inverted_ramp_rejected() {
        let _ = EcnSharpProb::new(
            EcnSharpConfig::paper_testbed(),
            Duration::from_micros(300),
            Duration::from_micros(100),
            0.5,
            1,
        );
    }
}
