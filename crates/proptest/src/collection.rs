//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A half-open length range for generated collections, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange {
            start: *r.start(),
            end: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` (see [`fn@vec`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span.max(1)) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generate vectors whose length falls in `len` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_length_from_usize() {
        let mut r = TestRng::for_test("vec-fixed", 3);
        let s = vec(0u8..10, 4usize);
        for _ in 0..32 {
            assert_eq!(s.sample(&mut r).len(), 4);
        }
    }

    #[test]
    fn ranged_lengths_stay_in_bounds() {
        let mut r = TestRng::for_test("vec-ranged", 3);
        let s = vec(0u64..100, 1..9);
        for _ in 0..200 {
            let v = s.sample(&mut r);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 100));
        }
    }

    #[test]
    fn nested_tuple_elements() {
        let mut r = TestRng::for_test("vec-tuple", 3);
        let s = vec((0usize..3, 60u64..1500), 1..20);
        let v = s.sample(&mut r);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&(c, b)| c < 3 && (60..1500).contains(&b)));
    }
}
