//! The [`Strategy`] trait and the built-in strategies: integer ranges,
//! tuples, [`Just`], [`any`], and [`Map`].

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating one random value per test case.
///
/// Mirrors the corner of upstream proptest's `Strategy` this workspace
/// uses: sampling only, no shrink tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let width = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(width) as i128) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding any value of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests", 99)
    }

    #[test]
    fn ranges_cover_bounds_eventually() {
        let mut r = rng();
        let s = 0u8..4;
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[s.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values of a tiny range appear");
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        let mut r = rng();
        let s = -5i32..5;
        for _ in 0..200 {
            let v = s.sample(&mut r);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_end() {
        let mut r = rng();
        let s = 0u64..=1;
        let mut hit_end = false;
        for _ in 0..64 {
            if s.sample(&mut r) == 1 {
                hit_end = true;
            }
        }
        assert!(hit_end);
    }

    #[test]
    fn just_and_map() {
        let mut r = rng();
        let s = Just(21u64).prop_map(|v| v * 2);
        assert_eq!(s.sample(&mut r), 42);
    }

    #[test]
    fn any_bool_yields_both() {
        let mut r = rng();
        let s = any::<bool>();
        let mut seen = (false, false);
        for _ in 0..64 {
            match s.sample(&mut r) {
                true => seen.0 = true,
                false => seen.1 = true,
            }
        }
        assert_eq!(seen, (true, true));
    }
}
