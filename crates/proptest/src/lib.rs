//! # proptest (local deterministic shim)
//!
//! A std-only, registry-free stand-in for the `proptest` crate exposing the
//! subset of its API this workspace uses: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`], range and tuple
//! [`Strategy`] impls, [`collection::vec`], [`Just`], [`any`], and
//! [`ProptestConfig`].
//!
//! Two deliberate differences from upstream, both in service of the
//! workspace's determinism contract (see README "Static analysis &
//! invariants"):
//!
//! 1. **Fully deterministic by default.** Upstream proptest seeds its RNG
//!    from the OS; this shim derives every test's RNG from a fixed seed and
//!    the test's name, so `cargo test` explores the *same* cases on every
//!    machine, every run. Set `PROPTEST_SEED=<u64>` to explore a different
//!    universe, and `PROPTEST_CASES=<n>` to change the per-test case count.
//! 2. **No shrinking.** On failure the shim prints the complete generated
//!    inputs (they are reproducible verbatim from the printed seed) and
//!    re-raises the panic, instead of searching for a smaller case.
//!
//! ```
//! use proptest::prelude::*;
//!
//! # fn main() {
//! proptest! {
//!     # #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
//!     fn addition_commutes(a in 0u64..1_000, b in 0u64..1_000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Map, Strategy};

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed mixed with the test name to derive the per-test RNG.
    pub seed: u64,
}

impl ProptestConfig {
    /// Default base seed; chosen once, forever. Override with
    /// `PROPTEST_SEED`.
    pub const DEFAULT_SEED: u64 = 0xEC45_A12D ^ 0x9E37_79B9_7F4A_7C15;

    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Self::DEFAULT_SEED);
        ProptestConfig { cases, seed }
    }
}

/// Error type kept for API compatibility with upstream `prop_assert!`
/// signatures; the shim's assertion macros panic instead of returning it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

/// Result alias kept for API compatibility.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving every strategy (SplitMix64).
///
/// Not exported to simulation code — sim randomness must flow through
/// `ecnsharp_sim::Rng`; this generator only feeds test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive the RNG for `test_name` from `base_seed` (FNV-1a mix, so two
    /// properties in one file never share a stream).
    pub fn for_test(test_name: &str, base_seed: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: base_seed ^ h,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

/// Run one property `cases` times. Called by the [`proptest!`] expansion;
/// not intended for direct use.
#[doc(hidden)]
pub fn run_cases(config: &ProptestConfig, name: &str, mut case: impl FnMut(u32, &mut TestRng)) {
    let mut rng = TestRng::for_test(name, config.seed);
    for idx in 0..config.cases {
        case(idx, &mut rng);
    }
}

/// Report a failing case before re-raising its panic. Called by the
/// [`proptest!`] expansion; not intended for direct use.
#[doc(hidden)]
pub fn report_failure(name: &str, config: &ProptestConfig, idx: u32, inputs: &str) {
    eprintln!(
        "[proptest shim] property `{name}` failed at case {}/{} \
         (seed {:#x}); generated inputs: {inputs}",
        idx + 1,
        config.cases,
        config.seed,
    );
}

/// Define deterministic property tests over sampled inputs.
///
/// Supports the upstream surface used in this workspace: an optional
/// leading `#![proptest_config(expr)]`, doc comments, `#[test]`, and
/// `name in strategy` parameter lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__idx, __rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                // Upstream property bodies may `return Ok(())` early, so the
                // case closure returns a TestCaseResult with an implicit
                // trailing Ok.
                let __case = move || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__case),
                );
                match __outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        $crate::report_failure(stringify!($name), &__config, __idx, &__inputs);
                        panic!("property returned failure: {:?}", e);
                    }
                    Err(payload) => {
                        $crate::report_failure(stringify!($name), &__config, __idx, &__inputs);
                        ::std::panic::resume_unwind(payload);
                    }
                }
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a property (panics on failure, like
/// `assert!`, after the harness prints the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)+) => { assert!($($arg)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)+) => { assert_eq!($($arg)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)+) => { assert_ne!($($arg)+) };
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x", 1);
        let mut b = TestRng::for_test("x", 1);
        let mut c = TestRng::for_test("y", 1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc, "different tests must get different streams");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_test("bound", 7);
        for _ in 0..1_000 {
            assert!(r.below(13) < 13);
        }
    }

    proptest! {
        /// The macro itself round-trips: ranges stay in bounds and vec
        /// lengths honour their size range.
        #[test]
        fn macro_generates_in_bounds(
            x in 10u64..20,
            v in collection::vec(0u32..5, 2..6),
            pair in (0usize..3, 100u64..200),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(pair.0 < 3);
            prop_assert!((100..200).contains(&pair.1), "pair.1 = {}", pair.1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        /// `with_cases` limits the number of generated cases.
        #[test]
        fn config_is_honoured(_x in 0u8..10) {
            // Body intentionally trivial; the case budget is what matters.
        }
    }

    #[test]
    fn same_seed_same_cases() {
        fn collect() -> Vec<u64> {
            let cfg = ProptestConfig {
                cases: 16,
                seed: 42,
            };
            let mut out = vec![];
            crate::run_cases(&cfg, "capture", |_i, rng| {
                out.push(crate::Strategy::sample(&(0u64..1_000_000), rng));
            });
            out
        }
        assert_eq!(collect(), collect());
    }
}
