//! # ecnsharp-stats
//!
//! Metrics for the ECN♯ evaluation harness:
//!
//! - [`FctBreakdown`] — flow-completion-time summaries broken down exactly
//!   like the paper's figures: overall, short `(0,100 KB]`, large
//!   `[10 MB,∞)`; averages and 99th percentiles; multi-run averaging;
//! - [`QueueSummary`] — queue-occupancy series statistics (Fig. 10);
//! - [`Table`] — aligned text tables and CSV files for every report
//!   binary;
//! - percentile/mean helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fct;
pub mod hist;
pub mod percentile;
pub mod series;
pub mod table;

pub use fct::{average_breakdowns, FctBreakdown, FctSummary, LARGE_MIN, SHORT_MAX};
pub use hist::{ecdf_points, BoxStats, Histogram};
pub use percentile::{mean, percentile, std_dev};
pub use series::{monitor_csv, QueueSummary};
pub use table::{ratio, us, Table};

// Compile-time shard-safety proofs: per-shard statistics are merged on
// the host thread after parallel runs (ROADMAP item 1). Lint rules
// R7/R8 guard the source text; these assertions guard the types.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<FctBreakdown>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<Table>();
    assert_send_sync::<QueueSummary>();
};
