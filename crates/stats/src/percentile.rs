//! Percentile and summary helpers over `f64` samples.

/// The `p`-quantile (0 ≤ p ≤ 1) of `xs` using nearest-rank on a sorted
/// copy. Returns `None` for empty input.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
    Some(v[idx])
}

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation; `None` for empty input.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(100.0));
        assert_eq!(percentile(&xs, 0.5), Some(51.0)); // nearest-rank
        assert_eq!(percentile(&xs, 0.99), Some(99.0));
    }

    #[test]
    fn unsorted_input_ok() {
        let xs = vec![5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn mean_and_std() {
        let xs = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(std_dev(&xs), Some(2.0));
    }
}
