//! Flow-completion-time statistics with the paper's size breakdown:
//! short flows `(0, 100 KB]`, large flows `[10 MB, ∞)`, plus overall.

use crate::percentile::{mean, percentile};
use ecnsharp_net::{FlowOutcome, FlowRecord};

/// The paper's short-flow boundary.
pub const SHORT_MAX: u64 = 100_000;
/// The paper's large-flow boundary.
pub const LARGE_MIN: u64 = 10_000_000;

/// FCT summary of one flow population (all values in seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FctSummary {
    /// Number of flows.
    pub count: usize,
    /// Mean FCT.
    pub avg: f64,
    /// Median FCT.
    pub p50: f64,
    /// 99th-percentile FCT.
    pub p99: f64,
}

impl FctSummary {
    /// The summary of an empty population: zero flows, NaN statistics.
    /// Used for the overall bucket when every flow in a run failed — the
    /// counts stay meaningful while the timing columns are explicitly
    /// not-a-number rather than a fabricated zero.
    pub const EMPTY: FctSummary = FctSummary {
        count: 0,
        avg: f64::NAN,
        p50: f64::NAN,
        p99: f64::NAN,
    };

    /// Summarize a set of FCTs in seconds. `None` when empty.
    pub fn from_secs(xs: &[f64]) -> Option<FctSummary> {
        Some(FctSummary {
            count: xs.len(),
            avg: mean(xs)?,
            p50: percentile(xs, 0.50)?,
            p99: percentile(xs, 0.99)?,
        })
    }
}

/// The per-bucket breakdown the paper's figures report.
#[derive(Debug, Clone, Copy)]
pub struct FctBreakdown {
    /// All flows.
    pub overall: FctSummary,
    /// Flows of ≤ 100 KB.
    pub short: Option<FctSummary>,
    /// Flows of ≥ 10 MB.
    pub large: Option<FctSummary>,
    /// Everything in between.
    pub medium: Option<FctSummary>,
    /// Total retransmission timeouts across the population (completed and
    /// failed flows alike).
    pub timeouts: u64,
    /// Flows that aborted ([`FlowOutcome::Failed`]) — counted here,
    /// excluded from every timing summary (an abort time is not a
    /// completion time).
    pub failed: u64,
}

impl FctBreakdown {
    /// Build from finished-flow records. Failed flows are tallied in
    /// [`FctBreakdown::failed`] and excluded from the timing buckets.
    ///
    /// # Panics
    /// If `records` is empty — summarizing an experiment that finished no
    /// flows is a harness bug worth failing loudly on. (An all-failed
    /// population is *not* a panic: counts survive, timings are NaN.)
    pub fn from_records(records: &[FlowRecord]) -> FctBreakdown {
        assert!(!records.is_empty(), "no completed flows to summarize");
        let completed: Vec<&FlowRecord> = records
            .iter()
            .filter(|r| r.outcome == FlowOutcome::Completed)
            .collect();
        let fct = |r: &&FlowRecord| r.fct().as_secs_f64();
        let all: Vec<f64> = completed.iter().map(fct).collect();
        let short: Vec<f64> = completed
            .iter()
            .filter(|r| r.size <= SHORT_MAX)
            .map(fct)
            .collect();
        let large: Vec<f64> = completed
            .iter()
            .filter(|r| r.size >= LARGE_MIN)
            .map(fct)
            .collect();
        let medium: Vec<f64> = completed
            .iter()
            .filter(|r| r.size > SHORT_MAX && r.size < LARGE_MIN)
            .map(fct)
            .collect();
        FctBreakdown {
            overall: FctSummary::from_secs(&all).unwrap_or(FctSummary::EMPTY),
            short: FctSummary::from_secs(&short),
            large: FctSummary::from_secs(&large),
            medium: FctSummary::from_secs(&medium),
            timeouts: records.iter().map(|r| r.timeouts as u64).sum(),
            failed: (records.len() - completed.len()) as u64,
        }
    }
}

/// Average several runs' breakdowns metric-by-metric (the paper reports
/// the mean of three runs).
pub fn average_breakdowns(runs: &[FctBreakdown]) -> FctBreakdown {
    assert!(!runs.is_empty());
    let avg_summaries = |get: &dyn Fn(&FctBreakdown) -> Option<FctSummary>| {
        let xs: Vec<FctSummary> = runs.iter().filter_map(get).collect();
        if xs.is_empty() {
            return None;
        }
        let n = xs.len() as f64;
        Some(FctSummary {
            count: xs.iter().map(|s| s.count).sum::<usize>() / xs.len(),
            avg: xs.iter().map(|s| s.avg).sum::<f64>() / n,
            p50: xs.iter().map(|s| s.p50).sum::<f64>() / n,
            p99: xs.iter().map(|s| s.p99).sum::<f64>() / n,
        })
    };
    FctBreakdown {
        overall: avg_summaries(&|b: &FctBreakdown| Some(b.overall)).expect("non-empty"),
        short: avg_summaries(&|b: &FctBreakdown| b.short),
        large: avg_summaries(&|b: &FctBreakdown| b.large),
        medium: avg_summaries(&|b: &FctBreakdown| b.medium),
        timeouts: runs.iter().map(|b| b.timeouts).sum::<u64>() / runs.len() as u64,
        failed: runs.iter().map(|b| b.failed).sum::<u64>() / runs.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnsharp_net::{FlowId, NodeId};
    use ecnsharp_sim::SimTime;

    fn rec(id: u64, size: u64, fct_us: u64) -> FlowRecord {
        FlowRecord {
            flow: FlowId(id),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            start: SimTime::ZERO,
            finish: SimTime::from_micros(fct_us),
            class: 0,
            timeouts: 0,
            outcome: FlowOutcome::Completed,
        }
    }

    fn failed_rec(id: u64, size: u64, abort_us: u64, timeouts: u32) -> FlowRecord {
        FlowRecord {
            timeouts,
            outcome: FlowOutcome::Failed,
            ..rec(id, size, abort_us)
        }
    }

    #[test]
    fn buckets_split_correctly() {
        let records = vec![
            rec(1, 10_000, 100),      // short
            rec(2, 100_000, 200),     // short (boundary inclusive)
            rec(3, 500_000, 400),     // medium
            rec(4, 10_000_000, 900),  // large (boundary inclusive)
            rec(5, 50_000_000, 1500), // large
        ];
        let b = FctBreakdown::from_records(&records);
        assert_eq!(b.overall.count, 5);
        assert_eq!(b.short.unwrap().count, 2);
        assert_eq!(b.medium.unwrap().count, 1);
        assert_eq!(b.large.unwrap().count, 2);
        assert!((b.short.unwrap().avg - 150e-6).abs() < 1e-12);
        assert!((b.large.unwrap().avg - 1200e-6).abs() < 1e-12);
    }

    #[test]
    fn empty_buckets_are_none() {
        let b = FctBreakdown::from_records(&[rec(1, 1_000, 50)]);
        assert!(b.large.is_none());
        assert!(b.medium.is_none());
        assert_eq!(b.short.unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "no completed flows")]
    fn empty_records_panic() {
        let _ = FctBreakdown::from_records(&[]);
    }

    #[test]
    fn p99_picks_tail() {
        let records: Vec<FlowRecord> = (0..100).map(|i| rec(i, 1_000, 100 + i)).collect();
        let b = FctBreakdown::from_records(&records);
        assert!(
            (b.overall.p99 * 1e6 - 198.0).abs() < 1.0,
            "{}",
            b.overall.p99
        );
    }

    #[test]
    fn averaging_runs() {
        let r1 = FctBreakdown::from_records(&[rec(1, 1_000, 100)]);
        let r2 = FctBreakdown::from_records(&[rec(1, 1_000, 300)]);
        let avg = average_breakdowns(&[r1, r2]);
        assert!((avg.overall.avg - 200e-6).abs() < 1e-12);
        assert!((avg.short.unwrap().avg - 200e-6).abs() < 1e-12);
        assert!(avg.large.is_none());
    }

    #[test]
    fn timeouts_summed() {
        let mut a = rec(1, 1_000, 100);
        a.timeouts = 2;
        let b = rec(2, 1_000, 100);
        let bd = FctBreakdown::from_records(&[a, b]);
        assert_eq!(bd.timeouts, 2);
    }

    #[test]
    fn failed_flows_counted_not_averaged() {
        // One completed 100 us flow + one failed flow whose 9-second abort
        // time must NOT contaminate the FCT average.
        let records = vec![rec(1, 1_000, 100), failed_rec(2, 1_000, 9_000_000, 8)];
        let b = FctBreakdown::from_records(&records);
        assert_eq!(b.failed, 1);
        assert_eq!(b.overall.count, 1, "only the completed flow is timed");
        assert!((b.overall.avg - 100e-6).abs() < 1e-12);
        assert_eq!(b.short.unwrap().count, 1);
        assert_eq!(b.timeouts, 8, "failed flows' timeouts still counted");
    }

    #[test]
    fn all_failed_population_is_empty_but_counted() {
        let records = vec![failed_rec(1, 1_000, 500, 8), failed_rec(2, 1_000, 700, 8)];
        let b = FctBreakdown::from_records(&records);
        assert_eq!(b.failed, 2);
        assert_eq!(b.overall.count, 0);
        assert!(b.overall.avg.is_nan());
        assert!(b.short.is_none());
        assert_eq!(b.timeouts, 16);
    }
}
