//! Histograms and empirical CDFs — the box-plot/CDF data behind Figure 1
//! (RTT distributions) and any latency-distribution report.

use crate::percentile::percentile;

/// A fixed-width histogram over `f64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "need lo < hi");
        assert!(bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `(bin_center, count)` pairs.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }

    /// The mode's bin center (highest-count bin), or `None` when empty.
    pub fn mode(&self) -> Option<f64> {
        let (idx, &max) = self.bins.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        if max == 0 {
            return None;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        Some(self.lo + (idx as f64 + 0.5) * w)
    }
}

/// The five-number summary a box plot draws (Fig. 1's whisker data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Compute from samples; `None` when empty.
    pub fn from_samples(xs: &[f64]) -> Option<BoxStats> {
        if xs.is_empty() {
            return None;
        }
        Some(BoxStats {
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            q1: percentile(xs, 0.25)?,
            median: percentile(xs, 0.5)?,
            q3: percentile(xs, 0.75)?,
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Empirical CDF points `(value, P[X ≤ value])` at `n` evenly spaced
/// quantiles — ready to plot against Fig. 5-style reference CDFs.
pub fn ecdf_points(xs: &[f64], n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 2);
    if xs.is_empty() {
        return Vec::new();
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    (0..n)
        .map(|k| {
            let p = k as f64 / (n - 1) as f64;
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            (sorted[idx], p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0] {
            h.add(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        let bins = h.bins();
        assert_eq!(bins[0], (0.5, 1));
        assert_eq!(bins[1], (1.5, 2));
        assert_eq!(bins[9], (9.5, 1));
    }

    #[test]
    fn mode_finds_peak() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for _ in 0..5 {
            h.add(42.0);
        }
        h.add(80.0);
        assert_eq!(h.mode(), Some(45.0));
        let empty = Histogram::new(0.0, 1.0, 4);
        assert_eq!(empty.mode(), None);
    }

    #[test]
    // Quantiles of 1..=101 land exactly on integer samples; no arithmetic
    // error is possible.
    #[allow(clippy::float_cmp)]
    fn box_stats_basics() {
        let xs: Vec<f64> = (1..=101).map(|x| x as f64).collect();
        let b = BoxStats::from_samples(&xs).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 51.0);
        assert_eq!(b.max, 101.0);
        assert_eq!(b.q1, 26.0);
        assert_eq!(b.q3, 76.0);
        assert_eq!(b.iqr(), 50.0);
        assert!(BoxStats::from_samples(&[]).is_none());
    }

    #[test]
    fn ecdf_monotone_and_anchored() {
        let xs = vec![3.0, 1.0, 2.0, 5.0, 4.0];
        let pts = ecdf_points(&xs, 5);
        assert_eq!(pts.first().unwrap(), &(1.0, 0.0));
        assert_eq!(pts.last().unwrap(), &(5.0, 1.0));
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn inverted_range_rejected() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }
}
