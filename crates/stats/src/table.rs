//! Plain-text table rendering and CSV writing for experiment reports —
//! every figure/table binary prints through these so outputs are uniform.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = widths[i] + 2);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum::<usize>();
        out.push_str(&"-".repeat(total.min(120)));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        let _ = ncols;
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Format seconds as microseconds with sensible precision (FCTs).
pub fn us(secs: f64) -> String {
    format!("{:.1}", secs * 1e6)
}

/// Format a ratio as `x.xxx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["scheme", "avg_us"]);
        t.row(&["DCTCP-RED-Tail".into(), "964.0".into()]);
        t.row(&["ECN#".into(), "738.0".into()]);
        let s = t.render();
        assert!(s.contains("scheme"));
        assert!(s.contains("ECN#"));
        // Columns aligned: both data rows have avg at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let off1 = lines[2].find("964.0").unwrap();
        let off2 = lines[3].find("738.0").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("ecnsharp_stats_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(&["a"]);
        t.row(&["1".into()]);
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(0.000_964), "964.0");
        assert_eq!(ratio(0.7654321), "0.765");
    }
}
