//! Queue-occupancy time-series statistics (for the Fig. 10 microscope).

use ecnsharp_net::QueueMonitor;

/// Summary of a queue-occupancy series, in packets.
#[derive(Debug, Clone, Copy)]
pub struct QueueSummary {
    /// Number of samples.
    pub samples: usize,
    /// Mean backlog in packets.
    pub avg_pkts: f64,
    /// Peak backlog in packets.
    pub max_pkts: u64,
    /// Mean backlog in bytes.
    pub avg_bytes: f64,
}

impl QueueSummary {
    /// Summarize a monitor's samples.
    ///
    /// # Panics
    /// On an empty series.
    pub fn from_monitor(m: &QueueMonitor) -> QueueSummary {
        assert!(!m.samples.is_empty(), "monitor collected no samples");
        let n = m.samples.len() as f64;
        QueueSummary {
            samples: m.samples.len(),
            avg_pkts: m.samples.iter().map(|&(_, _, p)| p as f64).sum::<f64>() / n,
            max_pkts: m.samples.iter().map(|&(_, _, p)| p).max().unwrap(),
            avg_bytes: m.samples.iter().map(|&(_, b, _)| b as f64).sum::<f64>() / n,
        }
    }
}

/// Dump a monitor's series as CSV rows (`time_s,bytes,pkts`).
pub fn monitor_csv(m: &QueueMonitor) -> String {
    let mut out = String::from("time_s,backlog_bytes,backlog_pkts\n");
    for &(t, bytes, pkts) in &m.samples {
        out.push_str(&format!("{:.9},{bytes},{pkts}\n", t.as_secs_f64()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnsharp_net::NodeId;
    use ecnsharp_sim::{Duration, SimTime};

    fn monitor_with(samples: Vec<(SimTime, u64, u64)>) -> QueueMonitor {
        QueueMonitor {
            node: NodeId(0),
            port: 0,
            interval: Duration::from_micros(1),
            until: SimTime::from_micros(10),
            samples,
        }
    }

    #[test]
    fn summary_math() {
        let m = monitor_with(vec![
            (SimTime::from_micros(0), 1500, 1),
            (SimTime::from_micros(1), 4500, 3),
            (SimTime::from_micros(2), 3000, 2),
        ]);
        let s = QueueSummary::from_monitor(&m);
        assert_eq!(s.samples, 3);
        assert!((s.avg_pkts - 2.0).abs() < 1e-12);
        assert_eq!(s.max_pkts, 3);
        assert!((s.avg_bytes - 3000.0).abs() < 1e-12);
    }

    #[test]
    fn csv_format() {
        let m = monitor_with(vec![(SimTime::from_micros(1), 1500, 1)]);
        let csv = monitor_csv(&m);
        assert!(csv.starts_with("time_s,"));
        assert!(csv.contains("0.000001000,1500,1\n"));
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_series_panics() {
        let _ = QueueSummary::from_monitor(&monitor_with(vec![]));
    }
}
