//! Sweep execution: run scenario points in parallel across OS threads
//! (each simulation is single-threaded and deterministic; parallelism is
//! across independent runs only, so results never depend on scheduling).

use std::sync::Mutex;

/// Experiment scale, switchable via `ECNSHARP_SCALE=quick|mid|full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full fidelity: paper-like flow counts, multiple seeds per point.
    Full,
    /// Intermediate fidelity for slower machines: fewer flows/seeds and a
    /// coarser load sweep, same mechanisms.
    Mid,
    /// Seconds-scale smoke runs for tests and benches.
    Quick,
}

impl Scale {
    /// Read from the `ECNSHARP_SCALE` environment variable (default full).
    pub fn from_env() -> Scale {
        match std::env::var("ECNSHARP_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("mid") => Scale::Mid,
            _ => Scale::Full,
        }
    }

    /// Flows per FCT run.
    pub fn flows(self) -> usize {
        match self {
            Scale::Full => 1_200,
            Scale::Mid => 600,
            Scale::Quick => 120,
        }
    }

    /// Flows per FCT run for the heavy-tailed data-mining workload (whose
    /// mean flow is ~8× larger).
    pub fn flows_dm(self) -> usize {
        match self {
            Scale::Full => 400,
            Scale::Mid => 200,
            Scale::Quick => 60,
        }
    }

    /// Seeds averaged per point (the paper averages three runs).
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Full => 2,
            Scale::Mid | Scale::Quick => 1,
        }
    }

    /// Load sweep for the testbed figures.
    pub fn loads(self) -> Vec<f64> {
        match self {
            Scale::Full => (1..=9).map(|k| k as f64 / 10.0).collect(),
            Scale::Mid => vec![0.2, 0.4, 0.6, 0.8],
            Scale::Quick => vec![0.3, 0.7],
        }
    }
}

/// Map `f` over `items` using up to `available_parallelism` threads,
/// preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let work: Mutex<std::vec::IntoIter<(usize, T)>> = Mutex::new(
        items
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = work.lock().unwrap().next();
                let Some((idx, item)) = next else { break };
                let r = f(&item);
                results.lock().unwrap()[idx] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Results directory (override with `ECNSHARP_RESULTS`).
pub fn results_dir() -> std::path::PathBuf {
    std::env::var("ECNSHARP_RESULTS")
        .unwrap_or_else(|_| "results".into())
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys = parallel_map(xs, |&x| x * x);
        assert_eq!(ys, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_map_empty() {
        let ys: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(ys.is_empty());
    }

    #[test]
    fn scale_knobs() {
        assert!(Scale::Full.flows() > Scale::Quick.flows());
        assert!(Scale::Full.seeds() >= 1);
        assert!(!Scale::Quick.loads().is_empty());
    }
}
