//! Sweep execution: run scenario points in parallel across OS threads
//! (each simulation is single-threaded and deterministic; parallelism is
//! across independent runs only, so results never depend on scheduling).

use std::sync::Mutex;

/// Experiment scale, switchable via `ECNSHARP_SCALE=quick|mid|full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full fidelity: paper-like flow counts, multiple seeds per point.
    Full,
    /// Intermediate fidelity for slower machines: fewer flows/seeds and a
    /// coarser load sweep, same mechanisms.
    Mid,
    /// Seconds-scale smoke runs for tests and benches.
    Quick,
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Scale, String> {
        match s {
            "quick" => Ok(Scale::Quick),
            "mid" => Ok(Scale::Mid),
            "full" => Ok(Scale::Full),
            other => Err(format!(
                "unrecognized ECNSHARP_SCALE value {other:?} (expected \"quick\", \"mid\" or \"full\")"
            )),
        }
    }
}

impl Scale {
    /// Read from the `ECNSHARP_SCALE` environment variable. Unset means
    /// [`Scale::Full`]; anything else must parse exactly — a typo like
    /// `ful` is an error, not a silent full-scale run.
    pub fn from_env() -> Result<Scale, String> {
        match std::env::var("ECNSHARP_SCALE") {
            Ok(v) => v.parse(),
            Err(std::env::VarError::NotPresent) => Ok(Scale::Full),
            Err(e) => Err(format!("unreadable ECNSHARP_SCALE: {e}")),
        }
    }

    /// [`Scale::from_env`] for binaries: print the error and exit 2 instead
    /// of silently running at the wrong scale.
    pub fn from_env_or_exit() -> Scale {
        match Scale::from_env() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Flows per FCT run.
    pub fn flows(self) -> usize {
        match self {
            Scale::Full => 1_200,
            Scale::Mid => 600,
            Scale::Quick => 120,
        }
    }

    /// Flows per FCT run for the heavy-tailed data-mining workload (whose
    /// mean flow is ~8× larger).
    pub fn flows_dm(self) -> usize {
        match self {
            Scale::Full => 400,
            Scale::Mid => 200,
            Scale::Quick => 60,
        }
    }

    /// Seeds averaged per point (the paper averages three runs).
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Full => 2,
            Scale::Mid | Scale::Quick => 1,
        }
    }

    /// Cap a flow count at [`Scale::Quick`] only; mid and full scale pass
    /// `n` through untouched. Used by figures whose quick runs would
    /// otherwise dominate the smoke sweep's wall time (fig7's data-mining
    /// load sweep, fig12's fabric comparison).
    pub fn cap_quick(self, n: usize, cap: usize) -> usize {
        match self {
            Scale::Quick => n.min(cap),
            Scale::Mid | Scale::Full => n,
        }
    }

    /// Load sweep for the testbed figures.
    pub fn loads(self) -> Vec<f64> {
        match self {
            Scale::Full => (1..=9).map(|k| k as f64 / 10.0).collect(),
            Scale::Mid => vec![0.2, 0.4, 0.6, 0.8],
            Scale::Quick => vec![0.3, 0.7],
        }
    }
}

/// Map `f` over `items` using up to `available_parallelism` threads,
/// preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads == 1 {
        // Single-core host: skip the worker thread and mutex traffic and
        // run the jobs inline, in order.
        return items.iter().map(&f).collect();
    }
    let work: Mutex<std::vec::IntoIter<(usize, T)>> = Mutex::new(
        items
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = work.lock().unwrap().next();
                let Some((idx, item)) = next else { break };
                let r = f(&item);
                results.lock().unwrap()[idx] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Results directory (override with `ECNSHARP_RESULTS`).
pub fn results_dir() -> std::path::PathBuf {
    std::env::var("ECNSHARP_RESULTS")
        .unwrap_or_else(|_| "results".into())
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys = parallel_map(xs, |&x| x * x);
        assert_eq!(ys, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_map_empty() {
        let ys: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(ys.is_empty());
    }

    #[test]
    fn scale_knobs() {
        assert!(Scale::Full.flows() > Scale::Quick.flows());
        assert!(Scale::Full.seeds() >= 1);
        assert!(!Scale::Quick.loads().is_empty());
    }

    #[test]
    fn cap_quick_only_touches_quick_scale() {
        assert_eq!(Scale::Quick.cap_quick(60, 40), 40);
        assert_eq!(Scale::Quick.cap_quick(30, 40), 30);
        assert_eq!(Scale::Mid.cap_quick(200, 40), 200);
        assert_eq!(Scale::Full.cap_quick(400, 40), 400);
    }

    #[test]
    fn scale_parses_known_values_and_rejects_typos() {
        assert_eq!("quick".parse::<Scale>(), Ok(Scale::Quick));
        assert_eq!("mid".parse::<Scale>(), Ok(Scale::Mid));
        assert_eq!("full".parse::<Scale>(), Ok(Scale::Full));
        for bad in ["ful", "QUICK", "", "medium", "quick "] {
            let err = bad.parse::<Scale>().unwrap_err();
            assert!(
                err.contains("ECNSHARP_SCALE"),
                "error should name the knob: {err}"
            );
        }
    }
}
