//! Sweep execution: run scenario points in parallel across OS threads
//! (each simulation is single-threaded and deterministic; parallelism is
//! across independent runs only, so results never depend on scheduling).
//!
//! [`supervised_map`] layers run supervision on top: a completed-point
//! journal (JSONL keyed by deterministic point id) written as points
//! finish, resume support that skips journaled points on restart, and a
//! bounded same-seed retry policy for points failing with a *retryable*
//! [`SimError`] (worker panics; deterministic guard trips reproduce
//! byte-identically, so retrying them would waste the sweep's time).

use ecnsharp_net::SimError;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// Experiment scale, switchable via `ECNSHARP_SCALE=quick|mid|full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full fidelity: paper-like flow counts, multiple seeds per point.
    Full,
    /// Intermediate fidelity for slower machines: fewer flows/seeds and a
    /// coarser load sweep, same mechanisms.
    Mid,
    /// Seconds-scale smoke runs for tests and benches.
    Quick,
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Scale, String> {
        match s {
            "quick" => Ok(Scale::Quick),
            "mid" => Ok(Scale::Mid),
            "full" => Ok(Scale::Full),
            other => Err(format!(
                "unrecognized ECNSHARP_SCALE value {other:?} (expected \"quick\", \"mid\" or \"full\")"
            )),
        }
    }
}

impl Scale {
    /// Read from the `ECNSHARP_SCALE` environment variable (see
    /// [`crate::env::scale`]). Unset means [`Scale::Full`]; anything else
    /// must parse exactly — a typo like `ful` is an error, not a silent
    /// full-scale run.
    pub fn from_env() -> Result<Scale, String> {
        crate::env::scale()
    }

    /// [`Scale::from_env`] for binaries: print the error and exit 2 instead
    /// of silently running at the wrong scale.
    pub fn from_env_or_exit() -> Scale {
        crate::env::or_exit(Scale::from_env())
    }

    /// Flows per FCT run.
    pub fn flows(self) -> usize {
        match self {
            Scale::Full => 1_200,
            Scale::Mid => 600,
            Scale::Quick => 120,
        }
    }

    /// Flows per FCT run for the heavy-tailed data-mining workload (whose
    /// mean flow is ~8× larger).
    pub fn flows_dm(self) -> usize {
        match self {
            Scale::Full => 400,
            Scale::Mid => 200,
            Scale::Quick => 60,
        }
    }

    /// Seeds averaged per point (the paper averages three runs).
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Full => 2,
            Scale::Mid | Scale::Quick => 1,
        }
    }

    /// Cap a flow count at [`Scale::Quick`] only; mid and full scale pass
    /// `n` through untouched. Used by figures whose quick runs would
    /// otherwise dominate the smoke sweep's wall time (fig7's data-mining
    /// load sweep, fig12's fabric comparison).
    pub fn cap_quick(self, n: usize, cap: usize) -> usize {
        match self {
            Scale::Quick => n.min(cap),
            Scale::Mid | Scale::Full => n,
        }
    }

    /// Load sweep for the testbed figures.
    pub fn loads(self) -> Vec<f64> {
        match self {
            Scale::Full => (1..=9).map(|k| k as f64 / 10.0).collect(),
            Scale::Mid => vec![0.2, 0.4, 0.6, 0.8],
            Scale::Quick => vec![0.3, 0.7],
        }
    }
}

/// Outcome of a panic-tolerant sweep: per-item results in input order
/// (`None` where the worker panicked) plus the captured panic messages.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// One slot per input item, in order; `None` marks a panicked worker.
    pub results: Vec<Option<R>>,
    /// `(item index, panic message)` for every worker that panicked,
    /// sorted by index.
    pub panics: Vec<(usize, String)>,
}

impl<R> SweepOutcome<R> {
    /// The successful results, dropping panicked slots.
    pub fn successes(self) -> Vec<R> {
        self.results.into_iter().flatten().collect()
    }
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `f` over `items` using up to `available_parallelism` threads,
/// preserving order and surviving worker panics: a panicking item yields
/// `None` in its slot while every other item still runs to completion.
/// This is what lets a figure sweep deliver partial results instead of
/// aborting wholesale when one scenario crashes.
pub fn try_parallel_map<T, R, F>(items: Vec<T>, f: F) -> SweepOutcome<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let n = items.len();
    if n == 0 {
        return SweepOutcome {
            results: Vec::new(),
            panics: Vec::new(),
        };
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads == 1 {
        // Single-core host: skip the worker threads and mutex traffic and
        // run the jobs inline, in order.
        let mut results = Vec::with_capacity(n);
        let mut panics = Vec::new();
        for (idx, item) in items.iter().enumerate() {
            // catch_unwind wraps only the user closure — no lock is ever
            // held across a panic, so no mutex poisoning anywhere.
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => results.push(Some(r)),
                Err(e) => {
                    panics.push((idx, panic_message(e)));
                    results.push(None);
                }
            }
        }
        return SweepOutcome { results, panics };
    }
    let work: Mutex<std::vec::IntoIter<(usize, T)>> = Mutex::new(
        items
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = work.lock().unwrap().next();
                let Some((idx, item)) = next else { break };
                // As above: the catch wraps only the closure call, never a
                // lock guard, so a panic cannot poison the queues.
                match catch_unwind(AssertUnwindSafe(|| f(&item))) {
                    Ok(r) => results.lock().unwrap()[idx] = Some(r),
                    Err(e) => panics.lock().unwrap().push((idx, panic_message(e))),
                }
            });
        }
    });
    let mut panics = panics.into_inner().unwrap();
    panics.sort_by_key(|&(idx, _)| idx);
    SweepOutcome {
        results: results.into_inner().unwrap(),
        panics,
    }
}

/// Supervisor configuration for [`supervised_map`].
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Completed-point journal path (JSONL, one line per finished point).
    /// `None` disables journaling (and therefore resume).
    pub journal: Option<PathBuf>,
    /// Skip points already recorded in the journal (set from
    /// `ECNSHARP_RESUME` by the binaries).
    pub resume: bool,
    /// Same-seed retry budget for points failing with a retryable
    /// [`SimError`]. `0` disables retries.
    pub retries: u32,
}

/// Final state of one sweep point under [`supervised_map`].
#[derive(Debug)]
pub enum PointStatus<R> {
    /// The point produced a result (possibly after retries).
    Done(R),
    /// The point failed; `attempts` runs were made in total.
    Failed {
        /// The final structured error.
        error: SimError,
        /// Total attempts, including retries.
        attempts: u32,
    },
    /// The point was journaled by a previous run and skipped under
    /// resume. Its result is **not** recomputed — consumers emit partial
    /// outputs covering only this run's completed points.
    SkippedResumed,
}

/// Everything a supervised sweep produced, in input order.
#[derive(Debug)]
pub struct SweepReport<R> {
    /// One entry per input item, in order.
    pub points: Vec<PointStatus<R>>,
    /// Points that produced a result this run.
    pub completed: u64,
    /// Points whose final attempt failed.
    pub failed: u64,
    /// Points that needed at least one retry (whatever their outcome).
    pub retried: u64,
    /// Points skipped because the journal already records them.
    pub skipped: u64,
}

impl<R> SweepReport<R> {
    /// The one-line `completed/failed/retried/skipped-resumed` summary
    /// the sweep binaries print at exit.
    pub fn summary_line(&self) -> String {
        format!(
            "sweep: {} completed, {} failed, {} retried, {} skipped-resumed",
            self.completed, self.failed, self.retried, self.skipped
        )
    }
}

/// Extract the `"point"` id from a journal JSONL line (hand-rolled — the
/// workspace carries no serde). Returns `None` for lines without one.
fn journal_point_id(line: &str) -> Option<&str> {
    let rest = line.split_once("\"point\":\"")?.1;
    rest.split_once('"').map(|(id, _)| id)
}

/// Point ids already recorded in `journal` (empty when unreadable —
/// resume then re-runs everything, which is safe because point results
/// are deterministic).
fn journaled_points(journal: &std::path::Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(journal) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| journal_point_id(l).map(str::to_string))
        .collect()
}

/// Run `f` over `items` in parallel under full sweep supervision:
///
/// - **Journal** — every completed point appends one JSONL line
///   (`{"point":"<id>","seed":<seed>,"status":"ok"}`) to `cfg.journal`,
///   flushed as it happens, so an interrupted sweep knows what survived.
/// - **Resume** — with `cfg.resume`, points whose id is already
///   journaled are skipped ([`PointStatus::SkippedResumed`]).
/// - **Retry** — a point failing with a *retryable* error (worker
///   panics) is re-run with the same seed up to `cfg.retries` times;
///   deterministic guard trips fail immediately.
/// - **Identity** — a panicking point's captured message is prefixed
///   with its deterministic id and seed, so journals and logs can key on
///   it.
///
/// Every final failure is also printed to stderr as one JSONL line
/// (`{"point":…,"seed":…,"error":{…}}`), in input order.
///
/// `id_of` must be deterministic and unique per point — it is the
/// journal key that resume matches on across process restarts.
pub fn supervised_map<T, R, F, I, Sd>(
    items: Vec<T>,
    cfg: &SweepConfig,
    id_of: I,
    seed_of: Sd,
    f: F,
) -> SweepReport<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> Result<R, SimError> + Sync,
    I: Fn(&T) -> String + Sync,
    Sd: Fn(&T) -> u64 + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let done: Vec<String> = match (&cfg.journal, cfg.resume) {
        (Some(path), true) => journaled_points(path),
        _ => Vec::new(),
    };
    let journal_file: Option<Mutex<std::fs::File>> = cfg.journal.as_ref().and_then(|path| {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => Some(Mutex::new(f)),
            Err(e) => {
                eprintln!("warning: cannot open sweep journal {}: {e}", path.display());
                None
            }
        }
    });

    // Partition into skipped and runnable, remembering input positions.
    let mut skipped_idx = Vec::new();
    let mut jobs = Vec::new();
    for (idx, item) in items.into_iter().enumerate() {
        if cfg.resume && done.iter().any(|d| *d == id_of(&item)) {
            skipped_idx.push(idx);
        } else {
            jobs.push((idx, item));
        }
    }

    let n_total = jobs.len() + skipped_idx.len();
    let journal_file = &journal_file;
    let outcome = try_parallel_map(jobs, |(idx, item)| {
        let id = id_of(item);
        let seed = seed_of(item);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            // The catch wraps only the point closure, so a panic can
            // never poison the work queue; it becomes a structured,
            // identity-carrying WorkerPanic instead.
            let res = match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(Ok(v)) => {
                    if let Some(j) = journal_file {
                        let mut file = match j.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        let _ = writeln!(
                            file,
                            "{{\"point\":\"{id}\",\"seed\":{seed},\"status\":\"ok\"}}"
                        );
                        let _ = file.flush();
                    }
                    return (*idx, PointStatus::Done(v), attempts);
                }
                Ok(Err(e)) => e,
                Err(p) => SimError::WorkerPanic {
                    msg: format!("point {id} (seed {seed:#x}): {}", panic_message(p)),
                },
            };
            if res.retryable() && attempts <= cfg.retries {
                continue;
            }
            return (
                *idx,
                PointStatus::Failed {
                    error: res,
                    attempts,
                },
                attempts,
            );
        }
    });

    // Assemble the report in input order. The outer catch in
    // try_parallel_map never fires (the closure catches its own panics),
    // so every slot is Some.
    let mut points: Vec<Option<PointStatus<R>>> = (0..n_total).map(|_| None).collect();
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut retried = 0u64;
    for slot in outcome.results.into_iter().flatten() {
        let (idx, status, attempts) = slot;
        if attempts > 1 {
            retried += 1;
        }
        match &status {
            PointStatus::Done(_) => completed += 1,
            PointStatus::Failed { .. } => failed += 1,
            PointStatus::SkippedResumed => {}
        }
        points[idx] = Some(status);
    }
    for idx in skipped_idx {
        points[idx] = Some(PointStatus::SkippedResumed);
    }
    let skipped = points
        .iter()
        .filter(|p| matches!(p, Some(PointStatus::SkippedResumed)))
        .count() as u64;
    let points: Vec<PointStatus<R>> = points
        .into_iter()
        .map(|p| p.unwrap_or(PointStatus::SkippedResumed))
        .collect();
    SweepReport {
        points,
        completed,
        failed,
        retried,
        skipped,
    }
}

/// Print every final failure of `report` as one JSONL line on stderr
/// (`{"point":…,"seed":…,"error":{…}}`), in input order. `ids` and
/// `seeds` are indexed like the report's points.
pub fn report_failures<R>(report: &SweepReport<R>, ids: &[String], seeds: &[u64]) {
    for (idx, p) in report.points.iter().enumerate() {
        if let PointStatus::Failed { error, attempts } = p {
            let id = ids.get(idx).map(String::as_str).unwrap_or("?");
            let seed = seeds.get(idx).copied().unwrap_or(0);
            eprintln!(
                "{{\"point\":\"{id}\",\"seed\":{seed},\"attempts\":{attempts},\"error\":{}}}",
                error.to_jsonl()
            );
        }
    }
}

/// Run a figure binary's body under the supervision exit contract: a
/// panic anywhere in the body (a tripped guard surfacing through an
/// infallible engine API, a scenario invariant, a stats `expect`) is
/// caught, serialized as one structured [`SimError::WorkerPanic`] JSONL
/// line on stderr (`{"bin":"<name>","error":{…}}`) and turned into exit
/// code 1 — so every `fig*` binary fails machine-readably instead of
/// with a bare traceback.
pub fn guarded_run<F: FnOnce()>(name: &str, body: F) -> std::process::ExitCode {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(p) => {
            let err = SimError::WorkerPanic {
                msg: format!("{name}: {}", panic_message(p)),
            };
            eprintln!("{{\"bin\":\"{name}\",\"error\":{}}}", err.to_jsonl());
            std::process::ExitCode::FAILURE
        }
    }
}

/// Map `f` over `items` using up to `available_parallelism` threads,
/// preserving order. Panics (after all items finish) if any worker
/// panicked — callers that want partial results use [`try_parallel_map`].
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let out = try_parallel_map(items, f);
    if let Some((idx, msg)) = out.panics.first() {
        panic!("parallel_map worker for item {idx} panicked: {msg}");
    }
    out.results
        .into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Results directory (override with `ECNSHARP_RESULTS`; see
/// [`crate::env::results_dir`]).
pub fn results_dir() -> std::path::PathBuf {
    crate::env::results_dir()
}

/// Default base seed for fault-injection sweeps when `ECNSHARP_FAULT_SEED`
/// is unset.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA_017;

/// Parse an `ECNSHARP_FAULT_SEED` value: decimal or `0x`-prefixed hex.
/// Strict: anything else is an error naming the knob, never a silent
/// fallback.
pub fn parse_fault_seed(v: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse::<u64>()
    };
    parsed.map_err(|_| {
        format!("unrecognized ECNSHARP_FAULT_SEED value {v:?} (expected a decimal or 0x-hex u64)")
    })
}

/// Read the fault-sweep base seed from `ECNSHARP_FAULT_SEED` (see
/// [`crate::env::fault_seed`]). Unset means [`DEFAULT_FAULT_SEED`];
/// set-but-invalid is an error.
pub fn fault_seed_from_env() -> Result<u64, String> {
    crate::env::fault_seed()
}

/// [`fault_seed_from_env`] for binaries: print the error and exit 2
/// instead of silently running with the wrong seed.
pub fn fault_seed_or_exit() -> u64 {
    crate::env::or_exit(fault_seed_from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys = parallel_map(xs, |&x| x * x);
        assert_eq!(ys, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_map_empty() {
        let ys: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(ys.is_empty());
    }

    #[test]
    fn scale_knobs() {
        assert!(Scale::Full.flows() > Scale::Quick.flows());
        assert!(Scale::Full.seeds() >= 1);
        assert!(!Scale::Quick.loads().is_empty());
    }

    #[test]
    fn cap_quick_only_touches_quick_scale() {
        assert_eq!(Scale::Quick.cap_quick(60, 40), 40);
        assert_eq!(Scale::Quick.cap_quick(30, 40), 30);
        assert_eq!(Scale::Mid.cap_quick(200, 40), 200);
        assert_eq!(Scale::Full.cap_quick(400, 40), 400);
    }

    #[test]
    fn try_parallel_map_survives_worker_panics() {
        let xs: Vec<u64> = (0..20).collect();
        let out = try_parallel_map(xs, |&x| {
            if x % 7 == 3 {
                panic!("boom at {x}");
            }
            x * 10
        });
        assert_eq!(out.results.len(), 20);
        assert_eq!(out.panics.len(), 3, "items 3, 10, 17 panic");
        assert_eq!(
            out.panics.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![3, 10, 17]
        );
        assert!(out.panics[0].1.contains("boom at 3"));
        for (i, slot) in out.results.iter().enumerate() {
            if i % 7 == 3 {
                assert!(slot.is_none());
            } else {
                assert_eq!(*slot, Some(i as u64 * 10), "order preserved");
            }
        }
        assert_eq!(out.successes().len(), 17);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn parallel_map_propagates_worker_panic() {
        let _ = parallel_map(vec![1u64, 2, 3], |&x| {
            if x == 2 {
                panic!("worker died");
            }
            x
        });
    }

    #[test]
    fn fault_seed_parses_decimal_and_hex_and_rejects_junk() {
        assert_eq!(parse_fault_seed("42"), Ok(42));
        assert_eq!(parse_fault_seed("0xFA017"), Ok(0xFA017));
        assert_eq!(parse_fault_seed("0Xff"), Ok(255));
        for bad in ["", "seed", "-1", "0x", "1.5", "42 "] {
            let err = parse_fault_seed(bad).unwrap_err();
            assert!(
                err.contains("ECNSHARP_FAULT_SEED"),
                "error should name the knob: {err}"
            );
        }
    }

    #[test]
    fn scale_parses_known_values_and_rejects_typos() {
        assert_eq!("quick".parse::<Scale>(), Ok(Scale::Quick));
        assert_eq!("mid".parse::<Scale>(), Ok(Scale::Mid));
        assert_eq!("full".parse::<Scale>(), Ok(Scale::Full));
        for bad in ["ful", "QUICK", "", "medium", "quick "] {
            let err = bad.parse::<Scale>().unwrap_err();
            assert!(
                err.contains("ECNSHARP_SCALE"),
                "error should name the knob: {err}"
            );
        }
    }
}
