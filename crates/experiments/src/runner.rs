//! Sweep execution: run scenario points in parallel across OS threads
//! (each simulation is single-threaded and deterministic; parallelism is
//! across independent runs only, so results never depend on scheduling).

use std::sync::Mutex;

/// Experiment scale, switchable via `ECNSHARP_SCALE=quick|mid|full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full fidelity: paper-like flow counts, multiple seeds per point.
    Full,
    /// Intermediate fidelity for slower machines: fewer flows/seeds and a
    /// coarser load sweep, same mechanisms.
    Mid,
    /// Seconds-scale smoke runs for tests and benches.
    Quick,
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Scale, String> {
        match s {
            "quick" => Ok(Scale::Quick),
            "mid" => Ok(Scale::Mid),
            "full" => Ok(Scale::Full),
            other => Err(format!(
                "unrecognized ECNSHARP_SCALE value {other:?} (expected \"quick\", \"mid\" or \"full\")"
            )),
        }
    }
}

impl Scale {
    /// Read from the `ECNSHARP_SCALE` environment variable (see
    /// [`crate::env::scale`]). Unset means [`Scale::Full`]; anything else
    /// must parse exactly — a typo like `ful` is an error, not a silent
    /// full-scale run.
    pub fn from_env() -> Result<Scale, String> {
        crate::env::scale()
    }

    /// [`Scale::from_env`] for binaries: print the error and exit 2 instead
    /// of silently running at the wrong scale.
    pub fn from_env_or_exit() -> Scale {
        crate::env::or_exit(Scale::from_env())
    }

    /// Flows per FCT run.
    pub fn flows(self) -> usize {
        match self {
            Scale::Full => 1_200,
            Scale::Mid => 600,
            Scale::Quick => 120,
        }
    }

    /// Flows per FCT run for the heavy-tailed data-mining workload (whose
    /// mean flow is ~8× larger).
    pub fn flows_dm(self) -> usize {
        match self {
            Scale::Full => 400,
            Scale::Mid => 200,
            Scale::Quick => 60,
        }
    }

    /// Seeds averaged per point (the paper averages three runs).
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Full => 2,
            Scale::Mid | Scale::Quick => 1,
        }
    }

    /// Cap a flow count at [`Scale::Quick`] only; mid and full scale pass
    /// `n` through untouched. Used by figures whose quick runs would
    /// otherwise dominate the smoke sweep's wall time (fig7's data-mining
    /// load sweep, fig12's fabric comparison).
    pub fn cap_quick(self, n: usize, cap: usize) -> usize {
        match self {
            Scale::Quick => n.min(cap),
            Scale::Mid | Scale::Full => n,
        }
    }

    /// Load sweep for the testbed figures.
    pub fn loads(self) -> Vec<f64> {
        match self {
            Scale::Full => (1..=9).map(|k| k as f64 / 10.0).collect(),
            Scale::Mid => vec![0.2, 0.4, 0.6, 0.8],
            Scale::Quick => vec![0.3, 0.7],
        }
    }
}

/// Outcome of a panic-tolerant sweep: per-item results in input order
/// (`None` where the worker panicked) plus the captured panic messages.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// One slot per input item, in order; `None` marks a panicked worker.
    pub results: Vec<Option<R>>,
    /// `(item index, panic message)` for every worker that panicked,
    /// sorted by index.
    pub panics: Vec<(usize, String)>,
}

impl<R> SweepOutcome<R> {
    /// The successful results, dropping panicked slots.
    pub fn successes(self) -> Vec<R> {
        self.results.into_iter().flatten().collect()
    }
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `f` over `items` using up to `available_parallelism` threads,
/// preserving order and surviving worker panics: a panicking item yields
/// `None` in its slot while every other item still runs to completion.
/// This is what lets a figure sweep deliver partial results instead of
/// aborting wholesale when one scenario crashes.
pub fn try_parallel_map<T, R, F>(items: Vec<T>, f: F) -> SweepOutcome<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let n = items.len();
    if n == 0 {
        return SweepOutcome {
            results: Vec::new(),
            panics: Vec::new(),
        };
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads == 1 {
        // Single-core host: skip the worker threads and mutex traffic and
        // run the jobs inline, in order.
        let mut results = Vec::with_capacity(n);
        let mut panics = Vec::new();
        for (idx, item) in items.iter().enumerate() {
            // catch_unwind wraps only the user closure — no lock is ever
            // held across a panic, so no mutex poisoning anywhere.
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => results.push(Some(r)),
                Err(e) => {
                    panics.push((idx, panic_message(e)));
                    results.push(None);
                }
            }
        }
        return SweepOutcome { results, panics };
    }
    let work: Mutex<std::vec::IntoIter<(usize, T)>> = Mutex::new(
        items
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = work.lock().unwrap().next();
                let Some((idx, item)) = next else { break };
                // As above: the catch wraps only the closure call, never a
                // lock guard, so a panic cannot poison the queues.
                match catch_unwind(AssertUnwindSafe(|| f(&item))) {
                    Ok(r) => results.lock().unwrap()[idx] = Some(r),
                    Err(e) => panics.lock().unwrap().push((idx, panic_message(e))),
                }
            });
        }
    });
    let mut panics = panics.into_inner().unwrap();
    panics.sort_by_key(|&(idx, _)| idx);
    SweepOutcome {
        results: results.into_inner().unwrap(),
        panics,
    }
}

/// Map `f` over `items` using up to `available_parallelism` threads,
/// preserving order. Panics (after all items finish) if any worker
/// panicked — callers that want partial results use [`try_parallel_map`].
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let out = try_parallel_map(items, f);
    if let Some((idx, msg)) = out.panics.first() {
        panic!("parallel_map worker for item {idx} panicked: {msg}");
    }
    out.results
        .into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Results directory (override with `ECNSHARP_RESULTS`; see
/// [`crate::env::results_dir`]).
pub fn results_dir() -> std::path::PathBuf {
    crate::env::results_dir()
}

/// Default base seed for fault-injection sweeps when `ECNSHARP_FAULT_SEED`
/// is unset.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA_017;

/// Parse an `ECNSHARP_FAULT_SEED` value: decimal or `0x`-prefixed hex.
/// Strict: anything else is an error naming the knob, never a silent
/// fallback.
pub fn parse_fault_seed(v: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse::<u64>()
    };
    parsed.map_err(|_| {
        format!("unrecognized ECNSHARP_FAULT_SEED value {v:?} (expected a decimal or 0x-hex u64)")
    })
}

/// Read the fault-sweep base seed from `ECNSHARP_FAULT_SEED` (see
/// [`crate::env::fault_seed`]). Unset means [`DEFAULT_FAULT_SEED`];
/// set-but-invalid is an error.
pub fn fault_seed_from_env() -> Result<u64, String> {
    crate::env::fault_seed()
}

/// [`fault_seed_from_env`] for binaries: print the error and exit 2
/// instead of silently running with the wrong seed.
pub fn fault_seed_or_exit() -> u64 {
    crate::env::or_exit(fault_seed_from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys = parallel_map(xs, |&x| x * x);
        assert_eq!(ys, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_map_empty() {
        let ys: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(ys.is_empty());
    }

    #[test]
    fn scale_knobs() {
        assert!(Scale::Full.flows() > Scale::Quick.flows());
        assert!(Scale::Full.seeds() >= 1);
        assert!(!Scale::Quick.loads().is_empty());
    }

    #[test]
    fn cap_quick_only_touches_quick_scale() {
        assert_eq!(Scale::Quick.cap_quick(60, 40), 40);
        assert_eq!(Scale::Quick.cap_quick(30, 40), 30);
        assert_eq!(Scale::Mid.cap_quick(200, 40), 200);
        assert_eq!(Scale::Full.cap_quick(400, 40), 400);
    }

    #[test]
    fn try_parallel_map_survives_worker_panics() {
        let xs: Vec<u64> = (0..20).collect();
        let out = try_parallel_map(xs, |&x| {
            if x % 7 == 3 {
                panic!("boom at {x}");
            }
            x * 10
        });
        assert_eq!(out.results.len(), 20);
        assert_eq!(out.panics.len(), 3, "items 3, 10, 17 panic");
        assert_eq!(
            out.panics.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![3, 10, 17]
        );
        assert!(out.panics[0].1.contains("boom at 3"));
        for (i, slot) in out.results.iter().enumerate() {
            if i % 7 == 3 {
                assert!(slot.is_none());
            } else {
                assert_eq!(*slot, Some(i as u64 * 10), "order preserved");
            }
        }
        assert_eq!(out.successes().len(), 17);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn parallel_map_propagates_worker_panic() {
        let _ = parallel_map(vec![1u64, 2, 3], |&x| {
            if x == 2 {
                panic!("worker died");
            }
            x
        });
    }

    #[test]
    fn fault_seed_parses_decimal_and_hex_and_rejects_junk() {
        assert_eq!(parse_fault_seed("42"), Ok(42));
        assert_eq!(parse_fault_seed("0xFA017"), Ok(0xFA017));
        assert_eq!(parse_fault_seed("0Xff"), Ok(255));
        for bad in ["", "seed", "-1", "0x", "1.5", "42 "] {
            let err = parse_fault_seed(bad).unwrap_err();
            assert!(
                err.contains("ECNSHARP_FAULT_SEED"),
                "error should name the knob: {err}"
            );
        }
    }

    #[test]
    fn scale_parses_known_values_and_rejects_typos() {
        assert_eq!("quick".parse::<Scale>(), Ok(Scale::Quick));
        assert_eq!("mid".parse::<Scale>(), Ok(Scale::Mid));
        assert_eq!("full".parse::<Scale>(), Ok(Scale::Full));
        for bad in ["ful", "QUICK", "", "medium", "quick "] {
            let err = bad.parse::<Scale>().unwrap_err();
            assert!(
                err.contains("ECNSHARP_SCALE"),
                "error should name the knob: {err}"
            );
        }
    }
}
