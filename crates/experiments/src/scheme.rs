//! The AQM schemes under comparison and their parameterization from RTT
//! statistics, following §5.1's settings and §3.4's rule-of-thumb.

use ecnsharp_aqm::pie::PieConfig;
use ecnsharp_aqm::{params, CoDel, DctcpRed, DropTail, Pie, Tcn};
use ecnsharp_core::{EcnSharp, EcnSharpConfig, EcnSharpQlen};
use ecnsharp_net::PortConfig;
use ecnsharp_sim::{Duration, Rate};
use ecnsharp_tofino::{TofinoEcnSharp, WrapCmp};
use ecnsharp_workload::RttVariation;

/// One of the compared switch configurations.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// DCTCP-RED with `K = C × p90(RTT)` — "current practice".
    DctcpRedTail,
    /// DCTCP-RED with `K = C × mean(RTT)`.
    DctcpRedAvg,
    /// DCTCP-RED with an explicit threshold in bytes (the Fig. 2 sweep).
    DctcpRedK(u64),
    /// CoDel in marking mode (target = λ·mean RTT, interval = p90 RTT) —
    /// the paper's Tofino deployment.
    CoDel,
    /// CoDel in classic dropping mode — the ns-3 queue disc the paper's
    /// simulations (Figures 10–11) compare against.
    CoDelDrop,
    /// TCN with threshold `λ × p90(RTT)` (or an explicit override).
    Tcn(Option<Duration>),
    /// ECN♯ with the §3.4 rule-of-thumb (or an explicit config).
    EcnSharp(Option<EcnSharpConfig>),
    /// ECN♯ as the Tofino match-action pipeline (ablation: quantized time,
    /// LUT sqrt).
    EcnSharpTofino,
    /// ECN♯ driven by queue length instead of sojourn time (ablation).
    EcnSharpQlen,
    /// PIE (related-work extension).
    Pie,
    /// Plain tail-drop.
    DropTail,
}

impl Scheme {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Scheme::DctcpRedTail => "DCTCP-RED-Tail".into(),
            Scheme::DctcpRedAvg => "DCTCP-RED-AVG".into(),
            Scheme::DctcpRedK(k) => format!("DCTCP-RED-{}KB", k / 1000),
            Scheme::CoDel => "CoDel".into(),
            Scheme::CoDelDrop => "CoDel-drop".into(),
            Scheme::Tcn(_) => "TCN".into(),
            Scheme::EcnSharp(_) => "ECN#".into(),
            Scheme::EcnSharpTofino => "ECN#-Tofino".into(),
            Scheme::EcnSharpQlen => "ECN#-qlen".into(),
            Scheme::Pie => "PIE".into(),
            Scheme::DropTail => "DropTail".into(),
        }
    }

    /// The four schemes of the testbed figures (6, 7).
    pub fn testbed_set() -> Vec<Scheme> {
        vec![
            Scheme::DctcpRedTail,
            Scheme::DctcpRedAvg,
            Scheme::CoDel,
            Scheme::EcnSharp(None),
        ]
    }
}

/// Thresholds derived from an RTT model the way an operator would derive
/// them from PingMesh-style measurements (§2.3, §3.4, §5.1). λ = 1
/// throughout, matching the paper's settings (they size for regular-TCP
/// robustness even though endhosts run DCTCP).
#[derive(Debug, Clone, Copy)]
pub struct SchemeParams {
    /// Mean base RTT of the deployment.
    pub rtt_avg: Duration,
    /// 90th-percentile base RTT.
    pub rtt_p90: Duration,
    /// Bottleneck capacity.
    pub capacity: Rate,
}

impl SchemeParams {
    /// Derive from an RTT-variation model (deterministic Monte-Carlo
    /// stats) and the bottleneck rate.
    pub fn derive(rtt: &RttVariation, capacity: Rate) -> Self {
        let s = rtt.stats();
        SchemeParams {
            rtt_avg: s.mean,
            rtt_p90: s.p90,
            capacity,
        }
    }

    /// `K` for DCTCP-RED-Tail (Eq. 1 with p90).
    pub fn k_tail(&self) -> u64 {
        params::queue_threshold(1.0, self.capacity, self.rtt_p90)
    }

    /// `K` for DCTCP-RED-AVG (Eq. 1 with the mean).
    pub fn k_avg(&self) -> u64 {
        params::queue_threshold(1.0, self.capacity, self.rtt_avg)
    }

    /// The persistent-queue target. §3.4 recommends `≥ λ × avg RTT` with
    /// λ from the transport; all endhosts run DCTCP (λ ≈ 0.17), and the
    /// paper's own simulations use ~10 µs targets (§5.4 sets CoDel's
    /// target to 10 µs and Fig. 12b sweeps pst_target over 6–18 µs), i.e.
    /// the λ_DCTCP regime rather than the conservative λ=1 the testbed
    /// uses. We follow the simulation setting.
    pub fn pst_target(&self) -> Duration {
        self.rtt_avg.mul_f64(ecnsharp_aqm::params::LAMBDA_DCTCP)
    }

    /// The rule-of-thumb ECN♯ config: `ins_target` = p90 (λ=1 headroom for
    /// burst tolerance), `pst_interval` = p90 (one worst-case RTT),
    /// `pst_target` = λ_DCTCP × mean (see [`Self::pst_target`]).
    pub fn ecnsharp(&self) -> EcnSharpConfig {
        EcnSharpConfig::new(self.rtt_p90, self.pst_target(), self.rtt_p90)
    }

    /// CoDel configured like the paper's simulations: same target as
    /// ECN♯'s persistent component, interval = one p90 RTT.
    pub fn codel(&self) -> (Duration, Duration) {
        (self.pst_target(), self.rtt_p90) // (target, interval)
    }

    /// TCN threshold (Eq. 2 with p90).
    pub fn tcn(&self) -> Duration {
        self.rtt_p90
    }

    /// Build the egress-port configuration for `scheme`.
    pub fn port(&self, scheme: &Scheme, buffer: u64, seed: u64) -> PortConfig {
        let aqm: Box<dyn ecnsharp_aqm::Aqm> = match scheme {
            Scheme::DctcpRedTail => Box::new(DctcpRed::tail(1.0, self.capacity, self.rtt_p90)),
            Scheme::DctcpRedAvg => Box::new(DctcpRed::avg(1.0, self.capacity, self.rtt_avg)),
            Scheme::DctcpRedK(k) => Box::new(DctcpRed::with_threshold(*k)),
            Scheme::CoDel => {
                let (target, interval) = self.codel();
                Box::new(CoDel::new(target, interval))
            }
            Scheme::CoDelDrop => {
                let (target, interval) = self.codel();
                Box::new(CoDel::new_dropping(target, interval))
            }
            Scheme::Tcn(thr) => Box::new(Tcn::new(thr.unwrap_or_else(|| self.tcn()))),
            Scheme::EcnSharp(cfg) => {
                Box::new(EcnSharp::new(cfg.unwrap_or_else(|| self.ecnsharp())))
            }
            Scheme::EcnSharpTofino => Box::new(TofinoEcnSharp::new(
                self.ecnsharp(),
                1,
                0,
                WrapCmp::CorrectedLt,
            )),
            Scheme::EcnSharpQlen => {
                Box::new(EcnSharpQlen::from_config(self.ecnsharp(), self.capacity))
            }
            Scheme::Pie => Box::new(Pie::new(
                PieConfig {
                    target: self.rtt_avg,
                    t_update: self.rtt_p90,
                    ..PieConfig::default()
                },
                seed,
            )),
            Scheme::DropTail => Box::new(DropTail::new()),
        };
        PortConfig::fifo(buffer, aqm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_thresholds_from_3x_model() {
        let p = SchemeParams::derive(&RttVariation::paper_3x(), Rate::from_gbps(10));
        // p90 ≈ 200 us → K_tail ≈ 250 KB (paper's setting).
        let k = p.k_tail();
        assert!((230_000..265_000).contains(&k), "K_tail {k}");
        // mean ≈ 85-110 us → K_avg ≈ 105-140 KB (paper rounds to 80 KB;
        // same low-percentile regime).
        let k = p.k_avg();
        assert!((95_000..145_000).contains(&k), "K_avg {k}");
        let c = p.ecnsharp();
        assert!(c.ins_target > c.pst_target);
        assert_eq!(c.pst_interval, p.rtt_p90);
        // pst_target in the paper's simulation regime (~10-25 us).
        let tgt = c.pst_target.as_micros_f64();
        assert!((10.0..30.0).contains(&tgt), "pst_target {tgt}us");
    }

    #[test]
    fn every_scheme_builds_a_port() {
        let p = SchemeParams::derive(&RttVariation::paper_3x(), Rate::from_gbps(10));
        for s in [
            Scheme::DctcpRedTail,
            Scheme::DctcpRedAvg,
            Scheme::DctcpRedK(100_000),
            Scheme::CoDel,
            Scheme::CoDelDrop,
            Scheme::Tcn(None),
            Scheme::EcnSharp(None),
            Scheme::EcnSharpTofino,
            Scheme::EcnSharpQlen,
            Scheme::Pie,
            Scheme::DropTail,
        ] {
            let cfg = p.port(&s, 1_000_000, 7);
            assert_eq!(cfg.capacity_bytes, 1_000_000, "{}", s.label());
        }
    }

    #[test]
    fn labels_unique() {
        let labels: Vec<String> = Scheme::testbed_set().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
