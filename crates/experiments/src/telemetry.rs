//! Telemetry plumbing for the harness: strict environment knobs selecting
//! JSON-lines sinks, and helpers the binaries use to attach subscribers.
//!
//! Two knobs, both validated like `ECNSHARP_SCALE` — a set-but-bad value
//! is a hard error (exit 2), never a silent fallback:
//!
//! - `ECNSHARP_TELEMETRY_JSON=<path>` — the `diag` binary streams every
//!   telemetry event of its scenario replay to `<path>` as JSON lines
//!   (see [`ecnsharp_telemetry::JsonlWriter`]).
//! - `ECNSHARP_PERF_JSON=<path>` — every `[perf]` engine-rate report the
//!   figure binaries print is also appended to `<path>` as one JSON
//!   object per line (see [`crate::perf::Timed::report`]).

use ecnsharp_telemetry::JsonlWriter;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Parse a path-valued telemetry knob (see [`crate::env::path_knob`]).
/// Unset means `None`; set-but-empty (or unreadable) is an error naming
/// the knob.
fn env_path(knob: &'static str) -> Result<Option<PathBuf>, String> {
    crate::env::path_knob(knob)
}

fn env_path_or_exit(knob: &'static str) -> Option<PathBuf> {
    crate::env::or_exit(env_path(knob))
}

/// Read `ECNSHARP_TELEMETRY_JSON`. Unset means no sink; set-but-invalid
/// is an error.
pub fn telemetry_json_path() -> Result<Option<PathBuf>, String> {
    env_path("ECNSHARP_TELEMETRY_JSON")
}

/// [`telemetry_json_path`] for binaries: print the error and exit 2.
pub fn telemetry_json_path_or_exit() -> Option<PathBuf> {
    env_path_or_exit("ECNSHARP_TELEMETRY_JSON")
}

/// Read `ECNSHARP_PERF_JSON`. Unset means no sink; set-but-invalid is an
/// error.
pub fn perf_json_path() -> Result<Option<PathBuf>, String> {
    env_path("ECNSHARP_PERF_JSON")
}

/// [`perf_json_path`] for binaries: print the error and exit 2.
pub fn perf_json_path_or_exit() -> Option<PathBuf> {
    env_path_or_exit("ECNSHARP_PERF_JSON")
}

/// Open (truncate/create) `path` as a buffered JSON-lines event sink,
/// creating parent directories as needed.
pub fn open_jsonl_sink(path: &Path) -> Result<JsonlWriter<BufWriter<File>>, String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let f = File::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    Ok(JsonlWriter::new(BufWriter::new(f)))
}

/// The sink `ECNSHARP_TELEMETRY_JSON` selects, as a boxed writer so the
/// subscriber type does not depend on whether the knob is set: unset means
/// a null sink (events are formatted to nowhere is avoided by the caller
/// checking [`telemetry_json_path_or_exit`] first when cost matters).
/// Exits 2 on a bad value or an unopenable path.
pub fn jsonl_sink_from_env_or_exit() -> Option<JsonlWriter<BufWriter<File>>> {
    let path = telemetry_json_path_or_exit()?;
    match open_jsonl_sink(&path) {
        Ok(w) => Some(w),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Append one line to `path`, creating the file (and parents) on first
/// use. Used by the perf JSON sink; errors are returned, not ignored.
pub fn append_line(path: &Path, line: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    writeln!(f, "{line}").map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests poke process-global state; keep them to pure parsing
    // helpers exercised via a private seam instead of set_var races.
    #[test]
    fn append_line_creates_parents_and_appends() {
        let dir = std::env::temp_dir().join("ecnsharp-telemetry-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("perf.jsonl");
        append_line(&path, "{\"a\":1}").unwrap();
        append_line(&path, "{\"a\":2}").unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "{\"a\":1}\n{\"a\":2}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_jsonl_sink_truncates() {
        let dir = std::env::temp_dir().join("ecnsharp-telemetry-test-sink");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        {
            let w = open_jsonl_sink(&path).unwrap();
            drop(w.into_inner());
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
