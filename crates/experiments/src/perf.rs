//! Run-wide engine performance accounting for the figure binaries.
//!
//! Every scenario run absorbs its network's [`ecnsharp_net::PerfCounters`]
//! into a process-global accumulator on completion (atomics, so the
//! [`crate::parallel_map`] worker threads can report concurrently), and the
//! binaries wrap their figure computation in [`timed`] to print an
//! engine-rate line: events processed, ns/event, and — the number the
//! ROADMAP cares about — simulated seconds per wall-clock second.
//!
//! Reading (or not reading) these counters cannot change simulation
//! results: the accumulator is written after a run finishes and is never
//! consulted by the engine. `tests/determinism.rs` in this crate pins that
//! property.

// Host-side instrumentation: wall-clock here measures the harness itself
// and never feeds the simulation.
#![allow(clippy::disallowed_methods)]

use ecnsharp_net::{Network, Subscriber};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The process-global accumulator: every counter in one struct so the
/// shared state is a single audited item, not fifteen scattered ones.
/// All updates are commutative (`fetch_add`/`fetch_max`), so worker
/// interleaving cannot change a snapshot taken after the joins.
struct Accum {
    events_pushed: AtomicU64,
    events_popped: AtomicU64,
    peak_pending: AtomicU64,
    packets_forwarded: AtomicU64,
    ce_marks: AtomicU64,
    drops: AtomicU64,
    sim_nanos: AtomicU64,
    runs: AtomicU64,
    timers_armed: AtomicU64,
    timers_cancelled: AtomicU64,
    timers_fired: AtomicU64,
    timers_stale_suppressed: AtomicU64,
    heap_spills: AtomicU64,
    flows_failed: AtomicU64,
    no_route_drops: AtomicU64,
}

impl Accum {
    const fn new() -> Accum {
        Accum {
            events_pushed: AtomicU64::new(0),
            events_popped: AtomicU64::new(0),
            peak_pending: AtomicU64::new(0),
            packets_forwarded: AtomicU64::new(0),
            ce_marks: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            sim_nanos: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            timers_armed: AtomicU64::new(0),
            timers_cancelled: AtomicU64::new(0),
            timers_fired: AtomicU64::new(0),
            timers_stale_suppressed: AtomicU64::new(0),
            heap_spills: AtomicU64::new(0),
            flows_failed: AtomicU64::new(0),
            no_route_drops: AtomicU64::new(0),
        }
    }
}

// Host-side throughput accounting, written only after a run completes
// and never consulted by the engine (tests/determinism.rs pins that),
// so it cannot couple shards or perturb results.
static ACCUM: Accum = Accum::new();

/// Fold a finished run's counters into the process-global accumulator.
/// Called by every `run_*` scenario just before it returns. Generic over
/// the network's telemetry subscriber: counters exist (and agree) whether
/// or not one is attached.
pub fn absorb<S: Subscriber>(net: &Network<S>) {
    let c = net.perf();
    ACCUM
        .events_pushed
        .fetch_add(c.events_pushed, Ordering::Relaxed);
    ACCUM
        .events_popped
        .fetch_add(c.events_popped, Ordering::Relaxed);
    ACCUM
        .peak_pending
        .fetch_max(c.peak_pending, Ordering::Relaxed);
    ACCUM
        .packets_forwarded
        .fetch_add(c.packets_forwarded, Ordering::Relaxed);
    ACCUM.ce_marks.fetch_add(c.ce_marks, Ordering::Relaxed);
    ACCUM.drops.fetch_add(c.drops, Ordering::Relaxed);
    ACCUM
        .sim_nanos
        .fetch_add(net.now().as_nanos(), Ordering::Relaxed);
    ACCUM.runs.fetch_add(1, Ordering::Relaxed);
    ACCUM
        .timers_armed
        .fetch_add(c.timers_armed, Ordering::Relaxed);
    ACCUM
        .timers_cancelled
        .fetch_add(c.timers_cancelled, Ordering::Relaxed);
    ACCUM
        .timers_fired
        .fetch_add(c.timers_fired, Ordering::Relaxed);
    ACCUM
        .timers_stale_suppressed
        .fetch_add(c.timers_stale_suppressed, Ordering::Relaxed);
    ACCUM
        .heap_spills
        .fetch_add(c.heap_spills, Ordering::Relaxed);
    ACCUM
        .flows_failed
        .fetch_add(c.flows_failed, Ordering::Relaxed);
    ACCUM
        .no_route_drops
        .fetch_add(c.no_route_drops, Ordering::Relaxed);
}

/// Totals absorbed since the last [`reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Events scheduled, summed over runs.
    pub events_pushed: u64,
    /// Events processed, summed over runs.
    pub events_popped: u64,
    /// Largest pending-event peak of any single run.
    pub peak_pending: u64,
    /// Packets put on a wire (hop-counted), summed over runs.
    pub packets_forwarded: u64,
    /// CE marks applied, summed over runs.
    pub ce_marks: u64,
    /// Packets dropped, summed over runs.
    pub drops: u64,
    /// Simulated nanoseconds, summed over runs.
    pub sim_nanos: u64,
    /// Number of absorbed runs.
    pub runs: u64,
    /// Wheel timer arms (including re-arms), summed over runs.
    pub timers_armed: u64,
    /// Wheel timers cancelled before firing, summed over runs.
    pub timers_cancelled: u64,
    /// Wheel timers that fired, summed over runs.
    pub timers_fired: u64,
    /// Stale timers suppressed by in-place re-arm — queue events the
    /// legacy backend would have pushed and popped for nothing.
    pub timers_stale_suppressed: u64,
    /// Events that bypassed both calendar horizons into the heap,
    /// summed over runs.
    pub heap_spills: u64,
    /// Flows aborted after exhausting their RTO retries, summed over runs.
    pub flows_failed: u64,
    /// Switch discards for unreachable destinations, summed over runs.
    pub no_route_drops: u64,
}

/// Read the accumulator.
pub fn snapshot() -> Snapshot {
    Snapshot {
        events_pushed: ACCUM.events_pushed.load(Ordering::Relaxed),
        events_popped: ACCUM.events_popped.load(Ordering::Relaxed),
        peak_pending: ACCUM.peak_pending.load(Ordering::Relaxed),
        packets_forwarded: ACCUM.packets_forwarded.load(Ordering::Relaxed),
        ce_marks: ACCUM.ce_marks.load(Ordering::Relaxed),
        drops: ACCUM.drops.load(Ordering::Relaxed),
        sim_nanos: ACCUM.sim_nanos.load(Ordering::Relaxed),
        runs: ACCUM.runs.load(Ordering::Relaxed),
        timers_armed: ACCUM.timers_armed.load(Ordering::Relaxed),
        timers_cancelled: ACCUM.timers_cancelled.load(Ordering::Relaxed),
        timers_fired: ACCUM.timers_fired.load(Ordering::Relaxed),
        timers_stale_suppressed: ACCUM.timers_stale_suppressed.load(Ordering::Relaxed),
        heap_spills: ACCUM.heap_spills.load(Ordering::Relaxed),
        flows_failed: ACCUM.flows_failed.load(Ordering::Relaxed),
        no_route_drops: ACCUM.no_route_drops.load(Ordering::Relaxed),
    }
}

/// Zero the accumulator (start of a timed section).
pub fn reset() {
    ACCUM.events_pushed.store(0, Ordering::Relaxed);
    ACCUM.events_popped.store(0, Ordering::Relaxed);
    ACCUM.peak_pending.store(0, Ordering::Relaxed);
    ACCUM.packets_forwarded.store(0, Ordering::Relaxed);
    ACCUM.ce_marks.store(0, Ordering::Relaxed);
    ACCUM.drops.store(0, Ordering::Relaxed);
    ACCUM.sim_nanos.store(0, Ordering::Relaxed);
    ACCUM.runs.store(0, Ordering::Relaxed);
    ACCUM.timers_armed.store(0, Ordering::Relaxed);
    ACCUM.timers_cancelled.store(0, Ordering::Relaxed);
    ACCUM.timers_fired.store(0, Ordering::Relaxed);
    ACCUM.timers_stale_suppressed.store(0, Ordering::Relaxed);
    ACCUM.heap_spills.store(0, Ordering::Relaxed);
    ACCUM.flows_failed.store(0, Ordering::Relaxed);
    ACCUM.no_route_drops.store(0, Ordering::Relaxed);
}

/// Outcome of a [`timed`] section: the callee's result plus the rate
/// report.
pub struct Timed<R> {
    /// What the wrapped closure returned.
    pub result: R,
    /// Wall-clock seconds spent.
    pub wall_secs: f64,
    /// Engine counters absorbed during the section.
    pub perf: Snapshot,
}

impl<R> Timed<R> {
    /// Events processed per wall-clock second (0 when nothing ran).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.perf.events_popped as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Simulated seconds per wall-clock second, the headline engine rate.
    pub fn sim_secs_per_wall_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.perf.sim_nanos as f64 / 1e9 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The [`Timed::report`] line as one JSON object (no trailing newline),
    /// for the `ECNSHARP_PERF_JSON` sink and machine consumers.
    pub fn to_json(&self, name: &str) -> String {
        let p = &self.perf;
        format!(
            "{{\"name\":{:?},\"wall_secs\":{:.6},\"events_pushed\":{},\"events_popped\":{},\
             \"peak_pending\":{},\"packets_forwarded\":{},\"ce_marks\":{},\"drops\":{},\
             \"sim_nanos\":{},\"runs\":{},\"timers_armed\":{},\"timers_cancelled\":{},\
             \"timers_fired\":{},\"timers_stale_suppressed\":{},\"heap_spills\":{},\
             \"flows_failed\":{},\
             \"no_route_drops\":{},\"events_per_sec\":{:.1},\"sim_secs_per_wall_sec\":{:.4}}}",
            name,
            self.wall_secs,
            p.events_pushed,
            p.events_popped,
            p.peak_pending,
            p.packets_forwarded,
            p.ce_marks,
            p.drops,
            p.sim_nanos,
            p.runs,
            p.timers_armed,
            p.timers_cancelled,
            p.timers_fired,
            p.timers_stale_suppressed,
            p.heap_spills,
            p.flows_failed,
            p.no_route_drops,
            self.events_per_sec(),
            self.sim_secs_per_wall_sec(),
        )
    }

    /// One-line human-readable rate report for a figure binary.
    ///
    /// When `ECNSHARP_PERF_JSON=<path>` is set, the same report is also
    /// appended to `<path>` as one JSON line (see [`Timed::to_json`]).
    /// The knob is strict: an empty value, or a path that cannot be
    /// written, prints an error and exits 2 — a perf log that silently
    /// went nowhere is worse than no run.
    pub fn report(&self, name: &str) -> String {
        if let Some(path) = crate::telemetry::perf_json_path_or_exit() {
            if let Err(e) = crate::telemetry::append_line(&path, &self.to_json(name)) {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
        let p = &self.perf;
        let ns_per_event = if p.events_popped > 0 {
            self.wall_secs * 1e9 / p.events_popped as f64
        } else {
            0.0
        };
        format!(
            "[perf] {name}: wall {:.2}s | {} events ({:.1}M ev/s, {:.0} ns/ev) | \
             sim {:.3}s over {} runs ({:.2} sim-s/wall-s) | {} pkts fwd, {} CE marks, {} drops | \
             timers: {} armed, {} cancelled, {} fired, {} stale-suppressed | \
             {} heap spills | faults: {} failed flows, {} no-route drops",
            self.wall_secs,
            p.events_popped,
            self.events_per_sec() / 1e6,
            ns_per_event,
            p.sim_nanos as f64 / 1e9,
            p.runs,
            self.sim_secs_per_wall_sec(),
            p.packets_forwarded,
            p.ce_marks,
            p.drops,
            p.timers_armed,
            p.timers_cancelled,
            p.timers_fired,
            p.timers_stale_suppressed,
            p.heap_spills,
            p.flows_failed,
            p.no_route_drops,
        )
    }
}

/// Reset the accumulator, run `f`, and return its result together with the
/// wall time and the engine counters it generated. The figure binaries use
/// this so every invocation reports sim-seconds-per-wall-second.
pub fn timed<R>(f: impl FnOnce() -> R) -> Timed<R> {
    reset();
    let t0 = Instant::now();
    let result = f();
    let wall_secs = t0.elapsed().as_secs_f64();
    Timed {
        result,
        wall_secs,
        perf: snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_reports_engine_rate() {
        // A tiny real run: the quick incast micro scenario.
        let t = timed(|| {
            crate::run_incast_micro_with(
                crate::Scheme::DctcpRedTail,
                4,
                1,
                crate::IncastTimeline::Compressed,
            )
        });
        assert!(t.perf.runs >= 1);
        assert!(t.perf.events_popped > 0);
        assert!(t.perf.events_pushed >= t.perf.events_popped);
        assert!(t.perf.sim_nanos > 0);
        assert!(t.perf.packets_forwarded > 0);
        let line = t.report("test");
        assert!(line.contains("sim-s/wall-s"), "{line}");
        assert!(line.contains("[perf] test:"), "{line}");
        let json = t.to_json("test");
        assert!(json.starts_with("{\"name\":\"test\""), "{json}");
        assert!(json.ends_with('}'), "{json}");
        assert!(json.contains("\"events_popped\":"), "{json}");
        assert!(json.contains("\"sim_secs_per_wall_sec\":"), "{json}");
    }
}
