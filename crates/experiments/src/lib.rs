//! # ecnsharp-experiments
//!
//! The evaluation harness: everything needed to regenerate every table and
//! figure of the paper, as library functions (used by the `fig*`/`table*`
//! binaries, the Criterion benches, and the integration tests).
//!
//! See `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod figures;
pub mod perf;
pub mod runner;
pub mod scenario;
pub mod scheme;
pub mod telemetry;

pub use runner::{
    fault_seed_from_env, fault_seed_or_exit, guarded_run, parallel_map, parse_fault_seed,
    report_failures, results_dir, supervised_map, try_parallel_map, PointStatus, Scale,
    SweepConfig, SweepOutcome, SweepReport, DEFAULT_FAULT_SEED,
};
pub use scenario::{
    run_chaos_leaf_spine, run_chaos_leaf_spine_sharded, run_dwrr, run_fat_tree,
    run_fat_tree_sharded, run_incast_micro, run_incast_micro_with,
    run_incast_micro_with_subscriber, run_leaf_spine, run_leaf_spine_sharded,
    run_leaf_spine_with_subscriber, run_testbed_star, run_testbed_star_with_subscriber,
    try_run_chaos_leaf_spine_sharded, ChaosResult, DwrrResult, FctScenario, IncastResult,
    IncastTimeline,
};
pub use scheme::{Scheme, SchemeParams};
pub use telemetry::{
    jsonl_sink_from_env_or_exit, perf_json_path, perf_json_path_or_exit, telemetry_json_path,
    telemetry_json_path_or_exit,
};
