//! Regenerates Figure 11: query FCT vs incast fanout.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 11 — [Simulations] query-flow completion time vs concurrent senders");
    println!("paper headlines: CoDel collapses (losses) at ~100 senders; ECN# survives to ~175 (1.75x more)");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig11(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig11"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig11", run)
}
