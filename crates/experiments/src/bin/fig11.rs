//! Regenerates Figure 11: query FCT vs incast fanout.
fn main() {
    let scale = ecnsharp_experiments::Scale::from_env();
    println!("Figure 11 — [Simulations] query-flow completion time vs concurrent senders");
    println!("paper headlines: CoDel collapses (losses) at ~100 senders; ECN# survives to ~175 (1.75x more)");
    println!();
    print!("{}", ecnsharp_experiments::figures::fig11(scale).render());
}
