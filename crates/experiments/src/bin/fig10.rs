//! Regenerates Figure 10: queue-occupancy microscope around an incast
//! burst, plus the §5.4 headline numbers (avg queue pkts, drops).
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 10 — [Simulations] queue occupancy (fanout burst at t=4s)");
    println!("paper headlines: DCTCP-RED-Tail ~182 pkts avg, ECN# ~8 pkts (95.6% lower), CoDel drops ~125 pkts");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig10(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig10"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig10", run)
}
