//! Regenerates Figure 1's box-plot data: the RTT distribution per
//! processing-component combination (same data as Table 1, rendered as
//! five-number summaries).
use ecnsharp_sim::Rng;
use ecnsharp_stats::{BoxStats, Table};
use ecnsharp_workload::Table1Case;

fn run() {
    println!("Figure 1 — [Testbed] RTT variations (box-plot data; paper: up to 2.68x)");
    println!();
    let mut rng = Rng::seed_from_u64(0xF161);
    let mut t = Table::new(&[
        "case",
        "min_us",
        "q1_us",
        "median_us",
        "q3_us",
        "max_us",
        "paper_avg",
    ]);
    let mut means = Vec::new();
    for case in Table1Case::all() {
        let xs: Vec<f64> = (0..3_000)
            .map(|_| case.sample_rtt(&mut rng).as_micros_f64())
            .collect();
        means.push(xs.iter().sum::<f64>() / xs.len() as f64);
        let b = BoxStats::from_samples(&xs).expect("non-empty");
        let (pm, _, _, _) = case.paper_row();
        t.row(&[
            case.label().to_string(),
            format!("{:.1}", b.min),
            format!("{:.1}", b.q1),
            format!("{:.1}", b.median),
            format!("{:.1}", b.q3),
            format!("{:.1}", b.max),
            format!("{pm:.1}"),
        ]);
    }
    print!("{}", t.render());
    let _ = t.write_csv(ecnsharp_experiments::results_dir().join("fig1.csv"));
    println!(
        "\nmean-RTT variation factor: {:.2}x (paper: 2.68x)",
        means.last().unwrap() / means.first().unwrap()
    );
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig1", run)
}
