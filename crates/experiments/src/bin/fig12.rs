//! Regenerates Figure 12: ECN# parameter sensitivity.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 12 — [Simulations] parameter sensitivity (pst_interval 100-250us, pst_target 6-18us)");
    println!("paper headline: overall-FCT variation <1% (web search), <0.2% (data mining)");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig12(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig12"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig12", run)
}
