//! Chaos sweep: FCT robustness under injected faults — Gilbert–Elliott
//! burst loss (swept mean rate) crossed with a flapping leaf–spine link
//! (swept flap period) on the small leaf-spine fabric, DCTCP+ECN♯ vs
//! CoDel. Emits three CSVs (FCT, marking/drop ledger, abort ledger) and
//! survives worker crashes: a panicking point is reported, the rest of the
//! sweep still completes, partial CSVs are written, and the process exits
//! nonzero.
//!
//! Knobs (all strict — a typo is an error, never a silent default):
//! - `ECNSHARP_SCALE=quick|mid|full` — grid size and flow count;
//! - `ECNSHARP_FAULT_SEED=<u64|0xhex>` — base seed for every point;
//! - `ECNSHARP_INJECT_PANIC=worker` — crash the first sweep point (used by
//!   the crash-proof-runner acceptance check).

// Host-side binary: env/exit/printing never feed the simulation.
#![allow(clippy::disallowed_methods)]

use ecnsharp_experiments::{perf, runner, ChaosResult, Scale, Scheme};
use ecnsharp_sim::Duration;
use ecnsharp_stats::{us, Table};
use std::process::ExitCode;

/// One sweep point. The integer `idx` doubles as the panic-injection key
/// (the determinism lint forbids float comparisons, and an index is the
/// honest identity of a grid point anyway).
type Point = (usize, f64, Option<Duration>, Scheme);

fn flap_label(flap: &Option<Duration>) -> String {
    match flap {
        Some(d) => format!("{}", d.as_nanos() / 1_000),
        None => "-".into(),
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_env_or_exit();
    let seed = runner::fault_seed_or_exit();
    let inject = match ecnsharp_experiments::env::inject_panic() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let (losses, flap_us, n_flows): (Vec<f64>, Vec<Option<u64>>, usize) = match scale {
        Scale::Full => (
            vec![0.0, 0.002, 0.005, 0.01, 0.02, 0.05],
            vec![None, Some(100), Some(200), Some(1_000)],
            400,
        ),
        Scale::Mid => (
            vec![0.0, 0.005, 0.01, 0.02],
            vec![None, Some(200), Some(1_000)],
            200,
        ),
        Scale::Quick => (vec![0.0, 0.01], vec![None, Some(200)], 40),
    };
    let schemes = [Scheme::EcnSharp(None), Scheme::CoDel];
    let mut jobs: Vec<Point> = Vec::new();
    for &loss in &losses {
        for &f in &flap_us {
            for s in &schemes {
                let idx = jobs.len();
                jobs.push((idx, loss, f.map(Duration::from_micros), s.clone()));
            }
        }
    }
    let meta: Vec<(f64, Option<Duration>, String)> = jobs
        .iter()
        .map(|(_, loss, flap, s)| (*loss, *flap, s.label()))
        .collect();

    println!(
        "Chaos sweep — leaf-spine 2x2x4, web search @50% load, {} points (seed {seed:#x})",
        jobs.len()
    );
    println!("loss = GE mean burst-loss rate; flap_us = leaf0-spine0 flap period (- = no flap)\n");

    let t = perf::timed(|| {
        runner::try_parallel_map(jobs, |(idx, loss, flap, scheme)| {
            if inject && *idx == 0 {
                panic!("injected worker panic (ECNSHARP_INJECT_PANIC=worker)");
            }
            let point_seed = seed.wrapping_add(*idx as u64 * 7919);
            ecnsharp_experiments::run_chaos_leaf_spine(
                scheme.clone(),
                *loss,
                *flap,
                n_flows,
                point_seed,
            )
        })
    });
    let perf_line = t.report("chaos");
    let outcome = t.result;

    let mut fct_t = Table::new(&[
        "loss",
        "flap_us",
        "scheme",
        "completed",
        "failed",
        "overall_avg_us",
        "overall_p99_us",
        "short_p99_us",
        "timeouts",
    ]);
    let mut marks_t = Table::new(&[
        "loss",
        "flap_us",
        "scheme",
        "ce_marks",
        "fault_drops",
        "corrupt_drops",
        "burst_drops",
        "no_route_drops",
    ]);
    let mut aborts_t = Table::new(&["loss", "flap_us", "scheme", "failed", "timeouts"]);
    for ((loss, flap, label), r) in meta.iter().zip(&outcome.results) {
        let Some(r): &Option<ChaosResult> = r else {
            continue; // panicked point: reported below, absent from CSVs
        };
        let loss_s = format!("{loss:?}");
        let flap_s = flap_label(flap);
        fct_t.row(&[
            loss_s.clone(),
            flap_s.clone(),
            label.clone(),
            r.completed.to_string(),
            r.failed.to_string(),
            us(r.fct.overall.avg),
            us(r.fct.overall.p99),
            us(r.fct.short.map(|s| s.p99).unwrap_or(f64::NAN)),
            r.timeouts.to_string(),
        ]);
        marks_t.row(&[
            loss_s.clone(),
            flap_s.clone(),
            label.clone(),
            r.ce_marks.to_string(),
            r.fault_drops.to_string(),
            r.corrupt_drops.to_string(),
            r.burst_drops.to_string(),
            r.no_route_drops.to_string(),
        ]);
        aborts_t.row(&[
            loss_s,
            flap_s,
            label.clone(),
            r.failed.to_string(),
            r.timeouts.to_string(),
        ]);
    }
    let dir = runner::results_dir();
    for (table, name) in [
        (&fct_t, "chaos_fct"),
        (&marks_t, "chaos_marks"),
        (&aborts_t, "chaos_aborts"),
    ] {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = table.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    print!("{}", fct_t.render());
    println!();
    print!("{}", marks_t.render());
    eprintln!("{perf_line}");

    if !outcome.panics.is_empty() {
        for (idx, msg) in &outcome.panics {
            let (loss, flap, label) = &meta[*idx];
            eprintln!(
                "error: sweep point {idx} (loss={loss:?}, flap_us={}, scheme={label}) \
                 panicked: {msg}",
                flap_label(flap)
            );
        }
        eprintln!(
            "chaos: {} of {} points failed; partial CSVs written to {}",
            outcome.panics.len(),
            meta.len(),
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
