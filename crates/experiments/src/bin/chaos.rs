//! Chaos sweep: FCT robustness under injected faults — Gilbert–Elliott
//! burst loss (swept mean rate) crossed with a flapping leaf–spine link
//! (swept flap period) on the small leaf-spine fabric, DCTCP+ECN♯ vs
//! CoDel. Emits three CSVs (FCT, marking/drop ledger, abort ledger).
//!
//! First consumer of the run-supervision stack ([`runner::supervised_map`]):
//! every point runs with watchdogs and memory guards armed (byte-identical
//! when untriggered — the supervision suite pins this), completed points
//! are journaled as they finish, `ECNSHARP_RESUME=1` skips journaled
//! points on restart, and points failing with a retryable error are
//! re-run with the same seed. A failing point is reported as structured
//! JSONL on stderr, the rest of the sweep still completes, partial CSVs
//! are written, and the process exits nonzero.
//!
//! Knobs (all strict — a typo is an error, never a silent default):
//! - `ECNSHARP_SCALE=quick|mid|full` — grid size and flow count;
//! - `ECNSHARP_FAULT_SEED=<u64|0xhex>` — base seed for every point;
//! - `ECNSHARP_SHARDS=<n>` — shard count per point (clamped to 2 here);
//! - `ECNSHARP_RESUME=1` — skip points already in the journal;
//! - `ECNSHARP_RETRIES=<n>` — same-seed retry budget (default 1);
//! - `ECNSHARP_LIVELOCK_BUDGET` / `ECNSHARP_STALL_BUDGET` /
//!   `ECNSHARP_MEM_BUDGET` — guard budget overrides;
//! - `ECNSHARP_INJECT_PANIC=worker` — crash the first sweep point;
//! - `ECNSHARP_INJECT_STALL=window` — freeze the first point's shard
//!   windows so the barrier-stall detector must trip (needs shards ≥ 2);
//! - `ECNSHARP_INJECT_LIVELOCK=engine` — schedule a zero-delay event
//!   cycle on the first point so the progress guard must trip.

// Host-side binary: env/exit/printing never feed the simulation.
#![allow(clippy::disallowed_methods)]

use ecnsharp_experiments::{env, perf, runner, ChaosResult, PointStatus, Scale, Scheme};
use ecnsharp_net::Supervision;
use ecnsharp_sim::Duration;
use ecnsharp_stats::{us, Table};
use std::process::ExitCode;

/// One sweep point. The integer `idx` doubles as the drill-injection key
/// (the determinism lint forbids float comparisons, and an index is the
/// honest identity of a grid point anyway).
type Point = (usize, f64, Option<Duration>, Scheme);

fn flap_label(flap: &Option<Duration>) -> String {
    match flap {
        Some(d) => format!("{}", d.as_nanos() / 1_000),
        None => "-".into(),
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_env_or_exit();
    let seed = runner::fault_seed_or_exit();
    let inject_panic = env::or_exit(env::inject_panic());
    let inject_stall = env::or_exit(env::inject_stall());
    let inject_livelock = env::or_exit(env::inject_livelock());
    let shards = env::or_exit(env::shards());
    let mut sup = Supervision::armed();
    if let Some(b) = env::or_exit(env::budget_knob("ECNSHARP_LIVELOCK_BUDGET")) {
        sup.livelock_budget = Some(b);
    }
    if let Some(b) = env::or_exit(env::budget_knob("ECNSHARP_STALL_BUDGET")) {
        sup.stall_rounds = Some(b);
    }
    if let Some(b) = env::or_exit(env::budget_knob("ECNSHARP_MEM_BUDGET")) {
        sup.event_ceiling = Some(b);
    }
    let cfg = runner::SweepConfig {
        journal: Some(runner::results_dir().join("chaos.journal.jsonl")),
        resume: env::or_exit(env::resume()),
        retries: env::or_exit(env::retries()),
    };

    let (losses, flap_us, n_flows): (Vec<f64>, Vec<Option<u64>>, usize) = match scale {
        Scale::Full => (
            vec![0.0, 0.002, 0.005, 0.01, 0.02, 0.05],
            vec![None, Some(100), Some(200), Some(1_000)],
            400,
        ),
        Scale::Mid => (
            vec![0.0, 0.005, 0.01, 0.02],
            vec![None, Some(200), Some(1_000)],
            200,
        ),
        Scale::Quick => (vec![0.0, 0.01], vec![None, Some(200)], 40),
    };
    let schemes = [Scheme::EcnSharp(None), Scheme::CoDel];
    let mut jobs: Vec<Point> = Vec::new();
    for &loss in &losses {
        for &f in &flap_us {
            for s in &schemes {
                let idx = jobs.len();
                jobs.push((idx, loss, f.map(Duration::from_micros), s.clone()));
            }
        }
    }
    let meta: Vec<(f64, Option<Duration>, String)> = jobs
        .iter()
        .map(|(_, loss, flap, s)| (*loss, *flap, s.label()))
        .collect();
    let point_id = |(idx, loss, flap, s): &Point| {
        format!(
            "chaos-{idx}-loss{loss:?}-flap{}-{}",
            flap_label(flap),
            s.label()
        )
    };
    let point_seed = |(idx, ..): &Point| seed.wrapping_add(*idx as u64 * 7919);
    let ids: Vec<String> = jobs.iter().map(point_id).collect();
    let seeds: Vec<u64> = jobs.iter().map(point_seed).collect();

    println!(
        "Chaos sweep — leaf-spine 2x2x4, web search @50% load, {} points (seed {seed:#x})",
        jobs.len()
    );
    println!("loss = GE mean burst-loss rate; flap_us = leaf0-spine0 flap period (- = no flap)\n");

    let t = perf::timed(|| {
        runner::supervised_map(jobs, &cfg, point_id, point_seed, |p| {
            let (idx, loss, flap, scheme) = p;
            if inject_panic && *idx == 0 {
                panic!("injected worker panic (ECNSHARP_INJECT_PANIC=worker)");
            }
            let mut point_sup = sup;
            point_sup.inject_stall = inject_stall && *idx == 0;
            ecnsharp_experiments::try_run_chaos_leaf_spine_sharded(
                scheme.clone(),
                *loss,
                *flap,
                n_flows,
                point_seed(p),
                shards,
                point_sup,
                inject_livelock && *idx == 0,
            )
        })
    });
    let perf_line = t.report("chaos");
    let report = t.result;

    let mut fct_t = Table::new(&[
        "loss",
        "flap_us",
        "scheme",
        "completed",
        "failed",
        "overall_avg_us",
        "overall_p99_us",
        "short_p99_us",
        "timeouts",
    ]);
    let mut marks_t = Table::new(&[
        "loss",
        "flap_us",
        "scheme",
        "ce_marks",
        "fault_drops",
        "corrupt_drops",
        "burst_drops",
        "no_route_drops",
    ]);
    let mut aborts_t = Table::new(&["loss", "flap_us", "scheme", "failed", "timeouts"]);
    for ((loss, flap, label), p) in meta.iter().zip(&report.points) {
        // Failed and resumed-skipped points are reported below and absent
        // from this run's CSVs.
        let PointStatus::Done(r): &PointStatus<ChaosResult> = p else {
            continue;
        };
        let loss_s = format!("{loss:?}");
        let flap_s = flap_label(flap);
        fct_t.row(&[
            loss_s.clone(),
            flap_s.clone(),
            label.clone(),
            r.completed.to_string(),
            r.failed.to_string(),
            us(r.fct.overall.avg),
            us(r.fct.overall.p99),
            us(r.fct.short.map(|s| s.p99).unwrap_or(f64::NAN)),
            r.timeouts.to_string(),
        ]);
        marks_t.row(&[
            loss_s.clone(),
            flap_s.clone(),
            label.clone(),
            r.ce_marks.to_string(),
            r.fault_drops.to_string(),
            r.corrupt_drops.to_string(),
            r.burst_drops.to_string(),
            r.no_route_drops.to_string(),
        ]);
        aborts_t.row(&[
            loss_s,
            flap_s,
            label.clone(),
            r.failed.to_string(),
            r.timeouts.to_string(),
        ]);
    }
    let dir = runner::results_dir();
    for (table, name) in [
        (&fct_t, "chaos_fct"),
        (&marks_t, "chaos_marks"),
        (&aborts_t, "chaos_aborts"),
    ] {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = table.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    print!("{}", fct_t.render());
    println!();
    print!("{}", marks_t.render());
    eprintln!("{perf_line}");

    runner::report_failures(&report, &ids, &seeds);
    println!("{}", report.summary_line());
    if report.failed > 0 {
        eprintln!(
            "chaos: {} of {} points failed; partial CSVs written to {}",
            report.failed,
            meta.len(),
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
