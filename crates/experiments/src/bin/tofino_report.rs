//! Section-4 report: Tofino pipeline resources and Algorithm-2 fidelity.
fn run() {
    println!("Section 4 — Tofino implementation: resource usage & time-emulation fidelity");
    println!();
    print!(
        "{}",
        ecnsharp_experiments::figures::tofino_report().render()
    );
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("tofino_report", run)
}
