//! Section-4 report: Tofino pipeline resources and Algorithm-2 fidelity.
fn main() {
    println!("Section 4 — Tofino implementation: resource usage & time-emulation fidelity");
    println!();
    print!(
        "{}",
        ecnsharp_experiments::figures::tofino_report().render()
    );
}
