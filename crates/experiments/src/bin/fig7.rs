//! Regenerates Figure 7: testbed FCT statistics, data-mining workload.
fn main() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 7 — [Testbed] FCT, data mining workload (normalized to DCTCP-RED-Tail)");
    println!("paper headlines: ECN# short-flow avg up to -31.2%, p99 up to -37.6%; large flows comparable to RED-Tail");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig7(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig7"));
}
