//! Regenerates Figure 7: testbed FCT statistics, data-mining workload.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 7 — [Testbed] FCT, data mining workload (normalized to DCTCP-RED-Tail)");
    println!("paper headlines: ECN# short-flow avg up to -31.2%, p99 up to -37.6%; large flows comparable to RED-Tail");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig7(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig7"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig7", run)
}
