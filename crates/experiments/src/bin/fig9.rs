//! Regenerates Figure 9: large-scale leaf-spine simulations.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 9 — [Simulations] 128-host leaf-spine, web search, ECMP (normalized to DCTCP-RED-Tail)");
    println!(
        "paper headlines: overall avg -26.3%..-37.4%; short-flow avg at least -18.5%, up to -36.9%"
    );
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig9(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig9"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig9", run)
}
