//! Regenerates Figure 13: ECN# under DWRR packet scheduling.
fn main() {
    let scale = ecnsharp_experiments::Scale::from_env();
    println!("Figure 13 — [Simulations] DWRR (3 classes, weights 2:1:1): goodput staircase + short-probe FCT vs TCN");
    println!("paper headlines: goodput ~9.6 -> 6.42/3.18 -> 4.82/2.40/2.40 Gbps; probe FCT 19.6% better than TCN");
    println!();
    print!("{}", ecnsharp_experiments::figures::fig13(scale).render());
}
