//! Regenerates Figure 13: ECN# under DWRR packet scheduling.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 13 — [Simulations] DWRR (3 classes, weights 2:1:1): goodput staircase + short-probe FCT vs TCN");
    println!("paper headlines: goodput ~9.6 -> 6.42/3.18 -> 4.82/2.40/2.40 Gbps; probe FCT 19.6% better than TCN");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig13(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig13"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig13", run)
}
