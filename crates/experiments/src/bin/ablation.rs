//! Ablation of ECN♯'s two components (the §3.3 "why it works" argument,
//! measured):
//!
//! - **full ECN♯** — instantaneous + persistent marking;
//! - **instantaneous-only** — ECN♯ with the persistent detector disabled
//!   (equivalent to TCN at the same threshold): keeps throughput and burst
//!   tolerance but tolerates standing queues;
//! - **persistent-only** — ECN♯ with the instantaneous threshold pushed out
//!   of reach (CoDel-like): drains standing queues but nothing tames
//!   bursts;
//! - **probabilistic** — the §3.5 DCQCN-style extension ([`EcnSharpProb`]).
//!
//! Each variant runs the testbed FCT scenario and the incast microscope.

use ecnsharp_core::{EcnSharpConfig, EcnSharpProb};
use ecnsharp_experiments::{
    run_incast_micro_with, run_testbed_star, FctScenario, IncastTimeline, Scale, Scheme,
    SchemeParams,
};
use ecnsharp_net::PortConfig;
use ecnsharp_sim::{Duration, Rate};
use ecnsharp_stats::Table;
use ecnsharp_workload::{dists, RttVariation};

fn variants(params: &SchemeParams) -> Vec<(&'static str, Scheme)> {
    let base = params.ecnsharp();
    let ins_only = EcnSharpConfig::new(base.ins_target, base.ins_target, base.pst_interval);
    let pst_only = EcnSharpConfig::new(
        Duration::from_millis(100), // out of reach: never fires
        base.pst_target,
        base.pst_interval,
    );
    vec![
        ("full", Scheme::EcnSharp(Some(base))),
        ("instantaneous-only", Scheme::EcnSharp(Some(ins_only))),
        ("persistent-only", Scheme::EcnSharp(Some(pst_only))),
    ]
}

fn run() {
    let scale = Scale::from_env_or_exit();
    let (flows, fanout, timeline) = match scale {
        Scale::Full => (1_200, 100, IncastTimeline::Paper),
        Scale::Mid => (600, 100, IncastTimeline::Compressed),
        Scale::Quick => (150, 40, IncastTimeline::Compressed),
    };
    let params = SchemeParams::derive(&RttVariation::paper_3x(), Rate::from_gbps(10));

    println!("ECN# component ablation (testbed FCT @60% web search + incast microscope)\n");
    let mut t = Table::new(&[
        "variant",
        "short_avg_us",
        "short_p99_us",
        "large_avg_us",
        "standing_pkts",
        "burst_drops",
    ]);
    for (name, scheme) in variants(&params) {
        let sc = FctScenario::testbed(scheme.clone(), dists::web_search(), 0.6, flows, 314);
        let (fct, _) = run_testbed_star(&sc);
        let inc = run_incast_micro_with(scheme, fanout, 314, timeline);
        t.row(&[
            name.into(),
            format!("{:.1}", fct.short.map(|s| s.avg * 1e6).unwrap_or(f64::NAN)),
            format!("{:.1}", fct.short.map(|s| s.p99 * 1e6).unwrap_or(f64::NAN)),
            format!("{:.1}", fct.large.map(|s| s.avg * 1e6).unwrap_or(f64::NAN)),
            format!("{:.1}", inc.standing_pkts),
            inc.drops.to_string(),
        ]);
    }
    print!("{}", t.render());
    let _ = t.write_csv(ecnsharp_experiments::results_dir().join("ablation.csv"));

    // The probabilistic extension: demonstrate it builds, marks, and keeps
    // the persistent behaviour (a full DCQCN evaluation is out of scope,
    // as in the paper).
    let cfg = params.ecnsharp();
    let _port = PortConfig::fifo(
        1_000_000,
        Box::new(EcnSharpProb::new(
            cfg,
            cfg.pst_target,
            cfg.ins_target,
            0.8,
            99,
        )),
    );
    println!("\nprobabilistic variant (section 3.5 extension): constructed OK;");
    println!("see ecnsharp_core::prob unit tests for its marking-fraction law.");
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("ablation", run)
}
