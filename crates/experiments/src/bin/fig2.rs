//! Regenerates Figure 2: instantaneous-threshold sweep under 3x RTT
//! variation — no single K achieves both high throughput and low latency.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 2 — [Testbed] marking-threshold sweep (web search @50%, 3x RTT variation, normalized to K=50KB)");
    println!("paper headlines: K from p90 RTT (250KB) -> short p99 +119%; K from avg RTT -> 8% throughput loss");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig2(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig2"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig2", run)
}
