//! Regenerates Figure 6: testbed FCT statistics, web-search workload.
//!
//! Run `ECNSHARP_SCALE=quick cargo run --release -p ecnsharp-experiments
//! --bin fig6` for a fast pass; default is full fidelity.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 6 — [Testbed] FCT, web search workload (normalized to DCTCP-RED-Tail)");
    println!("paper headlines: ECN# short-flow avg up to -23.4%, p99 up to -37.2%; CoDel much worse; RED-AVG hurts large flows >20%");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig6(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig6"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig6", run)
}
