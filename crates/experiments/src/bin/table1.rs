//! Regenerates Table 1 / Figure 1: RTT statistics per processing-component
//! combination (network stack / SLB / hypervisor / load).
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Table 1 / Figure 1 — [Testbed] RTT statistics (synthetic processing-delay pipeline vs paper measurements)");
    println!("paper headline: up to 2.68x mean-RTT variation across component combinations");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::table1(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("table1"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("table1", run)
}
