//! Regenerates Table 1 / Figure 1: RTT statistics per processing-component
//! combination (network stack / SLB / hypervisor / load).
fn main() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Table 1 / Figure 1 — [Testbed] RTT statistics (synthetic processing-delay pipeline vs paper measurements)");
    println!("paper headline: up to 2.68x mean-RTT variation across component combinations");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::table1(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("table1"));
}
