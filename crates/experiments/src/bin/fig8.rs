//! Regenerates Figure 8: ECN# vs DCTCP-RED-Tail as RTT variation grows.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 8 — [Testbed] ECN# normalized to DCTCP-RED-Tail under 3x/4x/5x RTT variation (web search)");
    println!("paper headlines: overall within 7.6%; short-flow p99 -37.3% (3x) to -73.4% (5x)");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig8(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig8"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig8", run)
}
