//! Regenerates Figure 5: the web-search and data-mining flow-size CDFs.
fn main() {
    println!("Figure 5 — flow size distributions (DCTCP web search, VL2 data mining)");
    println!();
    print!("{}", ecnsharp_experiments::figures::fig5().render());
}
