//! Regenerates Figure 5: the web-search and data-mining flow-size CDFs.
fn run() {
    println!("Figure 5 — flow size distributions (DCTCP web search, VL2 data mining)");
    println!();
    print!("{}", ecnsharp_experiments::figures::fig5().render());
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig5", run)
}
