//! Runs the complete reproduction suite (every table and figure) at the
//! scale selected by ECNSHARP_SCALE, writing CSVs under results/.

// Host-side harness: wall-clock progress timing never feeds the simulation.
#![allow(clippy::disallowed_methods)]

use ecnsharp_experiments::{figures, perf};
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    let t0 = std::time::Instant::now();
    for (name, f) in [
        (
            "table1",
            Box::new(move || figures::table1(scale)) as Box<dyn Fn() -> ecnsharp_stats::Table>,
        ),
        ("fig2", Box::new(move || figures::fig2(scale))),
        ("fig3", Box::new(move || figures::fig3(scale))),
        ("fig5", Box::new(figures::fig5)),
        ("fig6", Box::new(move || figures::fig6(scale))),
        ("fig7", Box::new(move || figures::fig7(scale))),
        ("fig8", Box::new(move || figures::fig8(scale))),
        ("fig9", Box::new(move || figures::fig9(scale))),
        ("fig10", Box::new(move || figures::fig10(scale))),
        ("fig11", Box::new(move || figures::fig11(scale))),
        ("fig12", Box::new(move || figures::fig12(scale))),
        ("fig13", Box::new(move || figures::fig13(scale))),
        ("tofino", Box::new(figures::tofino_report)),
    ] {
        println!("================ {name} ================");
        let t = perf::timed(f);
        print!("{}", t.result.render());
        eprintln!("{}", t.report(name));
        println!("[{name} done in {:.1}s]\n", t.wall_secs);
    }
    println!("full suite finished in {:.1}s", t0.elapsed().as_secs_f64());
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("all", run)
}
