//! Regenerates Figure 3: larger RTT variations enlarge the performance gap
//! between avg-RTT and p90-RTT thresholds.
fn run() {
    let scale = ecnsharp_experiments::Scale::from_env_or_exit();
    println!("Figure 3 — [Testbed] performance loss vs RTT variation (2x..5x)");
    println!("paper headlines: avg-threshold throughput loss 6.7%->29.8%; tail-threshold short-p99 penalty 41%->198%");
    println!();
    let t = ecnsharp_experiments::perf::timed(|| ecnsharp_experiments::figures::fig3(scale));
    print!("{}", t.result.render());
    eprintln!("{}", t.report("fig3"));
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("fig3", run)
}
