//! `diag` — observability diagnostics for the ECN♯ marker and the
//! telemetry stack (see OBSERVABILITY.md).
//!
//! Three parts:
//!
//! 1. **Algorithm-1 episode timeline.** Replays the persistent-marking
//!    state machine at 1 µs resolution with the paper-testbed config and
//!    writes `episode_timeline.csv` (one row per conservative mark, plus
//!    the episode entry/exit transitions). The first four mark times must
//!    reproduce the pinned sqrt-shrink schedule 201/402/543/658 µs — a
//!    mismatch is a regression in Algorithm 1 and exits 1.
//! 2. **Instrumented incast replay.** Re-runs the compressed §5.4 incast
//!    microscope with the full subscriber stack attached — metrics
//!    aggregator, histogram recorder, timeline sampler, and (when
//!    `ECNSHARP_TELEMETRY_JSON=<path>` is set) the JSON-lines sink — and
//!    writes `diag_metrics.csv`, `diag_ports.csv`, `diag_flows.csv`, and
//!    `diag_sojourn_hist.csv`.
//! 3. **Parallel histogram merge.** Runs the quick testbed star once per
//!    seed across `parallel_map` workers, merges the per-worker histogram
//!    recorders, and prints merged sojourn quantiles — the aggregation
//!    pattern the figure sweeps use.

use ecnsharp_aqm::Aqm;
use ecnsharp_core::{EcnSharp, EcnSharpConfig};
use ecnsharp_experiments::{
    parallel_map, results_dir, run_incast_micro_with_subscriber, run_testbed_star_with_subscriber,
    FctScenario, IncastTimeline, Scheme,
};
use ecnsharp_sim::{Duration, SimTime};
use ecnsharp_telemetry::{HistogramRecorder, MetricsAggregator, TimelineSampler};

/// The §3 sqrt-shrink schedule with `EcnSharpConfig::paper_testbed`
/// (pst_interval = 200 µs, detection from t = 0): marks at 201, 402, 543,
/// 658 µs. Pinned here and in `ecnsharp-core`'s
/// `sqrt_shrink_schedule_exact_times` test.
const PINNED_SCHEDULE_US: [u64; 4] = [201, 402, 543, 658];

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

fn episode_timeline() -> String {
    let mut m = EcnSharp::new(EcnSharpConfig::paper_testbed());
    let mut csv = String::from("event,at_us,gap_us,episode,marks\n");
    let mut marks: Vec<u64> = Vec::new();
    let mut episode = 0u64;
    // High sojourn (100 µs: above the 85 µs persistent target, below the
    // 200 µs instantaneous target) from t = 0, collapsing at t = 700 µs.
    for us in 0..1_000u64 {
        let sojourn = if us < 700 {
            Duration::from_micros(100)
        } else {
            Duration::from_micros(10)
        };
        let marked = m.should_persistent_mark(t(us), sojourn);
        if let Some(tr) = m.take_episode_transition() {
            if tr.entered {
                episode += 1;
            }
            csv.push_str(&format!(
                "{},{},,{episode},{}\n",
                if tr.entered { "enter" } else { "exit" },
                tr.at.as_nanos() / 1_000,
                tr.marks,
            ));
        }
        if marked {
            let gap = us - marks.last().copied().unwrap_or(0);
            marks.push(us);
            csv.push_str(&format!("mark,{us},{gap},{episode},{}\n", marks.len()));
        }
    }
    let first_four: Vec<u64> = marks.iter().take(4).copied().collect();
    if first_four != PINNED_SCHEDULE_US {
        eprintln!(
            "error: Algorithm-1 sqrt schedule drifted: expected {PINNED_SCHEDULE_US:?} µs, \
             got {first_four:?} µs"
        );
        std::process::exit(1);
    }
    println!(
        "episode timeline: {} marks in episode {episode}, sqrt schedule {:?} µs OK",
        marks.len(),
        PINNED_SCHEDULE_US
    );
    csv
}

fn write(path: &str, content: &str) {
    let full = results_dir().join(path);
    if let Err(e) = std::fs::write(&full, content) {
        eprintln!("error: cannot write {}: {e}", full.display());
        std::process::exit(1);
    }
    println!("wrote {}", full.display());
}

fn report_incast(
    metrics: &MetricsAggregator,
    hist: &HistogramRecorder,
    timeline: &TimelineSampler,
) {
    write("diag_metrics.csv", &metrics.to_csv());
    write("diag_ports.csv", &timeline.ports_csv());
    write("diag_flows.csv", &timeline.flows_csv());
    write("diag_sojourn_hist.csv", &hist.sojourn_ns.to_csv());
    println!(
        "incast replay: {} CE marks, {} drops, sojourn p50 {} ns / p99 {} ns \
         (relative error ≤ {:.2}%), {} timeline rows",
        metrics.get(ecnsharp_telemetry::Metric::EnqueueMarks)
            + metrics.get(ecnsharp_telemetry::Metric::DequeueMarks),
        metrics.total_drops(),
        hist.sojourn_ns.quantile(0.5).unwrap_or(0),
        hist.sojourn_ns.quantile(0.99).unwrap_or(0),
        hist.sojourn_ns.relative_error_bound() * 100.0,
        timeline.rows(),
    );
}

fn instrumented_incast() {
    let scheme = Scheme::EcnSharp(None);
    // 5 ms cadence keeps the committed timeline CSVs at figure scale
    // (tens of KB); drop to µs-level when chasing a specific transient.
    let sub = (
        MetricsAggregator::new(),
        (
            HistogramRecorder::new(),
            TimelineSampler::new(Duration::from_millis(5)),
        ),
    );
    match ecnsharp_experiments::jsonl_sink_from_env_or_exit() {
        Some(json) => {
            let (_, (metrics, ((hist, timeline), json))) = run_incast_micro_with_subscriber(
                scheme,
                16,
                3,
                IncastTimeline::Compressed,
                (sub.0, ((sub.1 .0, sub.1 .1), json)),
            );
            report_incast(&metrics, &hist, &timeline);
            if json.had_error() {
                eprintln!("error: JSON-lines sink failed mid-run");
                std::process::exit(1);
            }
            drop(json.into_inner());
            println!("event stream written to ECNSHARP_TELEMETRY_JSON sink");
        }
        None => {
            let (_, (metrics, (hist, timeline))) =
                run_incast_micro_with_subscriber(scheme, 16, 3, IncastTimeline::Compressed, sub);
            report_incast(&metrics, &hist, &timeline);
        }
    }
}

fn parallel_histogram_merge() {
    let seeds: Vec<u64> = (1..=4).collect();
    let per_worker = parallel_map(seeds, |&seed| {
        let sc = FctScenario::testbed(
            Scheme::EcnSharp(None),
            ecnsharp_workload::dists::web_search(),
            0.5,
            40,
            seed,
        );
        let (_, _, hist) = run_testbed_star_with_subscriber(&sc, HistogramRecorder::new());
        hist
    });
    let mut merged = HistogramRecorder::new();
    for h in &per_worker {
        merged.merge(h).expect("same precision everywhere");
    }
    println!(
        "parallel merge: {} workers, {} sojourn samples total, merged p99 {} ns",
        per_worker.len(),
        merged.sojourn_ns.count(),
        merged.sojourn_ns.quantile(0.99).unwrap_or(0),
    );
}

fn run() {
    println!("diag — ECN♯ episode timelines and telemetry sinks");
    println!();
    if let Err(e) = std::fs::create_dir_all(results_dir()) {
        eprintln!("error: cannot create {}: {e}", results_dir().display());
        std::process::exit(1);
    }
    let csv = episode_timeline();
    write("episode_timeline.csv", &csv);
    instrumented_incast();
    parallel_histogram_merge();
}

fn main() -> std::process::ExitCode {
    // Supervision exit contract: a panic anywhere above becomes one
    // structured JSONL error line and exit 1 (see `runner::guarded_run`).
    ecnsharp_experiments::guarded_run("diag", run)
}
