//! One function per paper table/figure. Each returns a [`Table`] whose
//! rows mirror what the paper plots, writes a CSV under the results
//! directory, and (where the paper states numbers) includes the paper's
//! value next to the measured one.

use crate::runner::{parallel_map, results_dir, Scale};
use crate::scenario::{run_dwrr, run_leaf_spine, run_testbed_star, FctScenario};
use crate::scheme::{Scheme, SchemeParams};
use ecnsharp_core::EcnSharpConfig;
use ecnsharp_sim::{Duration, Rate, Rng};
use ecnsharp_stats::{average_breakdowns, ratio, us, FctBreakdown, Table};
use ecnsharp_tofino::{reference_ticks, RegisterFile, TimeEmulator, TofinoEcnSharp, WrapCmp};
use ecnsharp_workload::{dists, measure_case, RttVariation, Table1Case};

fn save(table: &Table, name: &str) {
    let path = results_dir().join(format!("{name}.csv"));
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Average an FCT scenario over `seeds` seeds.
fn averaged_fct(base: &FctScenario, seeds: u64) -> FctBreakdown {
    let runs: Vec<FctBreakdown> = parallel_map((0..seeds).collect::<Vec<u64>>(), |&s| {
        let mut sc = base.clone();
        sc.seed = base.seed + s * 7919;
        run_testbed_star(&sc).0
    });
    average_breakdowns(&runs)
}

// ─────────────────────────────────────────────────────────────────────────
// Table 1 / Figure 1
// ─────────────────────────────────────────────────────────────────────────

/// Table 1: RTT statistics per processing-component combination, measured
/// vs paper. Also covers Fig. 1 (the same data as a box plot).
pub fn table1(scale: Scale) -> Table {
    let samples = match scale {
        Scale::Full => 30_000,
        Scale::Mid => 10_000,
        Scale::Quick => 3_000,
    };
    let mut rng = Rng::seed_from_u64(0x7AB1E1);
    let mut t = Table::new(&[
        "case",
        "mean_us",
        "paper_mean",
        "std_us",
        "paper_std",
        "p90_us",
        "paper_p90",
        "p99_us",
        "paper_p99",
    ]);
    for case in Table1Case::all() {
        let got = measure_case(case, samples, &mut rng);
        let (pm, ps, p90, p99) = case.paper_row();
        t.row(&[
            case.label().to_string(),
            format!("{:.1}", got.mean),
            format!("{pm:.1}"),
            format!("{:.1}", got.std),
            format!("{ps:.1}"),
            format!("{:.1}", got.p90),
            format!("{p90:.1}"),
            format!("{:.1}", got.p99),
            format!("{p99:.1}"),
        ]);
    }
    save(&t, "table1");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 2: threshold sweep under 3× RTT variation
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 2: no single instantaneous threshold gives both high throughput
/// and low tail latency. Sweeps K ∈ 50..250 KB at 50% web-search load;
/// reports large-flow avg FCT (throughput proxy) and short-flow p99,
/// normalized to the K = 50 KB run.
pub fn fig2(scale: Scale) -> Table {
    let ks: Vec<u64> = vec![50_000, 100_000, 150_000, 200_000, 250_000];
    let rows = parallel_map(ks.clone(), |&k| {
        let sc = FctScenario::testbed(
            Scheme::DctcpRedK(k),
            dists::web_search(),
            0.5,
            scale.flows(),
            11,
        );
        averaged_fct(&sc, scale.seeds())
    });
    let base = &rows[0];
    let mut t = Table::new(&[
        "K_KB",
        "large_avg_us",
        "short_p99_us",
        "norm_large_avg",
        "norm_short_p99",
    ]);
    for (k, r) in ks.iter().zip(&rows) {
        let large = r.large.map(|s| s.avg).unwrap_or(f64::NAN);
        let short = r.short.map(|s| s.p99).unwrap_or(f64::NAN);
        let base_large = base.large.map(|s| s.avg).unwrap_or(f64::NAN);
        let base_short = base.short.map(|s| s.p99).unwrap_or(f64::NAN);
        t.row(&[
            format!("{}", k / 1000),
            us(large),
            us(short),
            ratio(large / base_large),
            ratio(short / base_short),
        ]);
    }
    save(&t, "fig2");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 3: growing RTT variation widens the avg-vs-tail gap
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 3: sweep the RTT variation 2×–5×; for each, run thresholds from
/// the average and the 90th-percentile RTT; report large-flow avg and
/// short-flow p99 normalized to the average-RTT threshold run.
pub fn fig3(scale: Scale) -> Table {
    let variations: Vec<u64> = vec![2, 3, 4, 5];
    let rows = parallel_map(variations.clone(), |&n| {
        let rtt = RttVariation::paper_nx(n);
        let run = |scheme: Scheme| {
            let mut sc =
                FctScenario::testbed(scheme, dists::web_search(), 0.5, scale.flows(), 23 + n);
            sc.rtt = rtt;
            averaged_fct(&sc, scale.seeds())
        };
        (run(Scheme::DctcpRedAvg), run(Scheme::DctcpRedTail))
    });
    let mut t = Table::new(&[
        "variation",
        "tail_vs_avg:large_avg",
        "avg_vs_tail:short_p99",
        "large_avg(avg)_us",
        "large_avg(tail)_us",
        "short_p99(avg)_us",
        "short_p99(tail)_us",
    ]);
    for (n, (avg_run, tail_run)) in variations.iter().zip(&rows) {
        let la = avg_run.large.map(|s| s.avg).unwrap_or(f64::NAN);
        let lt = tail_run.large.map(|s| s.avg).unwrap_or(f64::NAN);
        let sa = avg_run.short.map(|s| s.p99).unwrap_or(f64::NAN);
        let st = tail_run.short.map(|s| s.p99).unwrap_or(f64::NAN);
        t.row(&[
            format!("{n}x"),
            // >1 means the avg-threshold hurts large flows (throughput).
            ratio(la / lt),
            // >1 means the tail-threshold hurts short-flow latency.
            ratio(st / sa),
            us(la),
            us(lt),
            us(sa),
            us(st),
        ]);
    }
    save(&t, "fig3");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 5: the workload CDFs
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 5: flow-size CDF points for both workloads.
pub fn fig5() -> Table {
    let mut t = Table::new(&["workload", "size_bytes", "cdf"]);
    for (name, cdf) in [
        ("web_search", dists::web_search()),
        ("data_mining", dists::data_mining()),
    ] {
        for &(v, p) in cdf.points() {
            t.row(&[name.into(), format!("{v:.0}"), format!("{p:.3}")]);
        }
    }
    save(&t, "fig5");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figures 6 & 7: testbed FCT vs load, four schemes
// ─────────────────────────────────────────────────────────────────────────

fn testbed_fct_figure(
    name: &str,
    cdf: ecnsharp_workload::PiecewiseCdf,
    flows: usize,
    scale: Scale,
) -> Table {
    let loads = scale.loads();
    let schemes = Scheme::testbed_set();
    let mut jobs = Vec::new();
    for &load in &loads {
        for scheme in &schemes {
            jobs.push((load, scheme.clone()));
        }
    }
    let results = parallel_map(jobs.clone(), |(load, scheme)| {
        let sc = FctScenario::testbed(scheme.clone(), cdf.clone(), *load, flows, 37);
        averaged_fct(&sc, scale.seeds())
    });
    let mut t = Table::new(&[
        "load",
        "scheme",
        "overall_avg_us",
        "short_avg_us",
        "short_p99_us",
        "large_avg_us",
        "norm_overall_avg",
        "norm_short_avg",
        "norm_short_p99",
        "norm_large_avg",
    ]);
    for (li, &load) in loads.iter().enumerate() {
        // Normalize to DCTCP-RED-Tail at the same load (schemes[0]).
        let base = &results[li * schemes.len()];
        for (si, scheme) in schemes.iter().enumerate() {
            let r = &results[li * schemes.len() + si];
            let get = |b: &FctBreakdown, f: &dyn Fn(&FctBreakdown) -> Option<f64>| {
                f(b).unwrap_or(f64::NAN)
            };
            let overall = r.overall.avg;
            let short_avg = get(r, &|b| b.short.map(|s| s.avg));
            let short_p99 = get(r, &|b| b.short.map(|s| s.p99));
            let large_avg = get(r, &|b| b.large.map(|s| s.avg));
            t.row(&[
                format!("{:.0}%", load * 100.0),
                scheme.label(),
                us(overall),
                us(short_avg),
                us(short_p99),
                us(large_avg),
                ratio(overall / base.overall.avg),
                ratio(short_avg / get(base, &|b| b.short.map(|s| s.avg))),
                ratio(short_p99 / get(base, &|b| b.short.map(|s| s.p99))),
                ratio(large_avg / get(base, &|b| b.large.map(|s| s.avg))),
            ]);
        }
    }
    save(&t, name);
    t
}

/// Fig. 6: testbed FCT with the web-search workload, loads 10–90%,
/// DCTCP-RED-Tail / DCTCP-RED-AVG / CoDel / ECN♯ (normalized to RED-Tail).
pub fn fig6(scale: Scale) -> Table {
    testbed_fct_figure("fig6", dists::web_search(), scale.flows(), scale)
}

/// Fig. 7: same as Fig. 6 with the data-mining workload. Quick-scale runs
/// cap the flow count: the heavy tail makes even 60 data-mining flows the
/// slowest smoke run by far, and the smoke sweep only checks plumbing.
pub fn fig7(scale: Scale) -> Table {
    let flows = scale.cap_quick(scale.flows_dm(), 40);
    testbed_fct_figure("fig7", dists::data_mining(), flows, scale)
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 8: ECN♯ vs RED-Tail as variation grows
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 8: normalized FCT of ECN♯ to DCTCP-RED-Tail under 3×/4×/5× RTT
/// variation (web search): overall average and short-flow p99.
pub fn fig8(scale: Scale) -> Table {
    let loads = scale.loads();
    let variations: Vec<u64> = vec![3, 4, 5];
    let mut jobs = Vec::new();
    for &n in &variations {
        for &load in &loads {
            for scheme in [Scheme::DctcpRedTail, Scheme::EcnSharp(None)] {
                jobs.push((n, load, scheme));
            }
        }
    }
    let results = parallel_map(jobs.clone(), |(n, load, scheme)| {
        let mut sc = FctScenario::testbed(
            scheme.clone(),
            dists::web_search(),
            *load,
            scale.flows(),
            41 + n,
        );
        sc.rtt = RttVariation::paper_nx(*n);
        averaged_fct(&sc, scale.seeds())
    });
    let mut t = Table::new(&[
        "variation",
        "load",
        "NFCT_overall_avg",
        "NFCT_short_p99",
        "ecnsharp_overall_us",
        "redtail_overall_us",
    ]);
    let mut idx = 0;
    for &n in &variations {
        for &load in &loads {
            let red = &results[idx];
            let sharp = &results[idx + 1];
            idx += 2;
            let nshort = sharp.short.map(|s| s.p99).unwrap_or(f64::NAN)
                / red.short.map(|s| s.p99).unwrap_or(f64::NAN);
            t.row(&[
                format!("{n}x"),
                format!("{:.0}%", load * 100.0),
                ratio(sharp.overall.avg / red.overall.avg),
                ratio(nshort),
                us(sharp.overall.avg),
                us(red.overall.avg),
            ]);
        }
    }
    save(&t, "fig8");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 9: large-scale leaf-spine simulation
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 9: leaf-spine fabric (8×8×16 at full scale), web-search workload,
/// ECMP; overall and short-flow average FCT normalized to DCTCP-RED-Tail.
pub fn fig9(scale: Scale) -> Table {
    let (spines, leaves, hpl, flows, loads): (usize, usize, usize, usize, Vec<f64>) = match scale {
        Scale::Full => (
            8,
            8,
            16,
            4_000,
            vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        ),
        Scale::Mid => (8, 8, 16, 1_500, vec![0.3, 0.5, 0.7]),
        Scale::Quick => (2, 2, 4, 150, vec![0.3, 0.6]),
    };
    let schemes = [Scheme::DctcpRedTail, Scheme::EcnSharp(None)];
    let mut jobs = Vec::new();
    for &load in &loads {
        for scheme in &schemes {
            jobs.push((load, scheme.clone()));
        }
    }
    let results = parallel_map(jobs, |(load, scheme)| {
        let mut sc = FctScenario::testbed(scheme.clone(), dists::web_search(), *load, flows, 53);
        sc.rtt = RttVariation::sim_3x();
        run_leaf_spine(&sc, spines, leaves, hpl)
    });
    let mut t = Table::new(&[
        "load",
        "NFCT_overall_avg",
        "NFCT_short_avg",
        "ecnsharp_overall_us",
        "redtail_overall_us",
    ]);
    for (li, &load) in loads.iter().enumerate() {
        let red = &results[li * 2];
        let sharp = &results[li * 2 + 1];
        let nshort = sharp.short.map(|s| s.avg).unwrap_or(f64::NAN)
            / red.short.map(|s| s.avg).unwrap_or(f64::NAN);
        t.row(&[
            format!("{:.0}%", load * 100.0),
            ratio(sharp.overall.avg / red.overall.avg),
            ratio(nshort),
            us(sharp.overall.avg),
            us(red.overall.avg),
        ]);
    }
    save(&t, "fig9");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 10: queue-occupancy microscope
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 10: queue occupancy over a 5 ms window around a 100-flow incast,
/// per scheme; paper headline: RED-Tail ≈ 182 pkt average vs ECN♯ ≈ 8 pkt,
/// CoDel drops ~125 packets.
pub fn fig10(scale: Scale) -> Table {
    let fanout = match scale {
        Scale::Full | Scale::Mid => 100,
        Scale::Quick => 40,
    };
    let timeline = match scale {
        Scale::Full => crate::scenario::IncastTimeline::Paper,
        Scale::Mid | Scale::Quick => crate::scenario::IncastTimeline::Compressed,
    };
    let schemes = vec![
        Scheme::DctcpRedTail,
        Scheme::CoDelDrop,
        Scheme::EcnSharp(None),
    ];
    let results = parallel_map(schemes.clone(), |scheme| {
        crate::scenario::run_incast_micro_with(scheme.clone(), fanout, 61, timeline)
    });
    let mut t = Table::new(&[
        "scheme",
        "standing_queue_pkts",
        "paper_standing",
        "avg_queue_pkts",
        "max_queue_pkts",
        "drops",
        "query_avg_us",
        "query_p99_us",
    ]);
    for (scheme, r) in schemes.iter().zip(&results) {
        // Dump the raw series for plotting.
        let mut series = Table::new(&["time_s", "backlog_bytes", "backlog_pkts"]);
        for &(ts, b, p) in &r.series {
            series.row(&[
                format!("{:.9}", ts.as_secs_f64()),
                b.to_string(),
                p.to_string(),
            ]);
        }
        save(
            &series,
            &format!("fig10_series_{}", scheme.label().replace('#', "sharp")),
        );
        let paper_standing = match scheme {
            Scheme::DctcpRedTail => "182",
            Scheme::EcnSharp(_) => "8",
            _ => "-",
        };
        t.row(&[
            scheme.label(),
            format!("{:.1}", r.standing_pkts),
            paper_standing.into(),
            format!("{:.1}", r.queue.avg_pkts),
            r.queue.max_pkts.to_string(),
            r.drops.to_string(),
            us(r.query_fct.overall.avg),
            us(r.query_fct.overall.p99),
        ]);
    }
    save(&t, "fig10");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 11: query FCT vs incast fanout
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 11: average and p99 query completion time as the incast fanout
/// grows; CoDel collapses (timeouts) around 100 senders, ECN♯ survives to
/// ~175 (the paper's 1.75× headline).
pub fn fig11(scale: Scale) -> Table {
    let fanouts: Vec<usize> = match scale {
        Scale::Full => vec![25, 50, 75, 100, 125, 150, 175, 200],
        Scale::Mid => vec![50, 100, 150, 200],
        Scale::Quick => vec![25, 75],
    };
    let schemes = vec![
        Scheme::DctcpRedTail,
        Scheme::CoDelDrop,
        Scheme::EcnSharp(None),
    ];
    let mut jobs = Vec::new();
    for &f in &fanouts {
        for s in &schemes {
            jobs.push((f, s.clone()));
        }
    }
    let timeline = match scale {
        Scale::Full => crate::scenario::IncastTimeline::Paper,
        Scale::Mid | Scale::Quick => crate::scenario::IncastTimeline::Compressed,
    };
    let results = parallel_map(jobs, |(f, s)| {
        crate::scenario::run_incast_micro_with(s.clone(), *f, 67, timeline)
    });
    let mut t = Table::new(&[
        "fanout",
        "scheme",
        "query_avg_ms",
        "query_p99_ms",
        "timeouts",
        "drops",
    ]);
    let mut idx = 0;
    for &f in &fanouts {
        for s in &schemes {
            let r = &results[idx];
            idx += 1;
            t.row(&[
                f.to_string(),
                s.label(),
                format!("{:.3}", r.query_fct.overall.avg * 1e3),
                format!("{:.3}", r.query_fct.overall.p99 * 1e3),
                r.query_timeouts.to_string(),
                r.drops.to_string(),
            ]);
        }
    }
    save(&t, "fig11");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 12: parameter sensitivity
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 12: overall FCT of ECN♯ under swept `pst_interval` (100–250 µs)
/// and `pst_target` values, normalized to the rule-of-thumb setting —
/// the paper reports <1% variation.
pub fn fig12(scale: Scale) -> Table {
    let base_params = SchemeParams::derive(&RttVariation::paper_3x(), Rate::from_gbps(10));
    let base_cfg = base_params.ecnsharp();
    let intervals: Vec<u64> = vec![100, 150, 200, 250];
    let targets: Vec<u64> = vec![6, 10, 14, 18]; // Fig. 12b's axis
    let mut cfgs: Vec<(String, EcnSharpConfig)> = Vec::new();
    cfgs.push(("rule-of-thumb".into(), base_cfg));
    for &i in &intervals {
        cfgs.push((
            format!("pst_interval={i}us"),
            base_cfg.with_pst_interval(Duration::from_micros(i)),
        ));
    }
    for &tg in &targets {
        cfgs.push((
            format!("pst_target={tg}us"),
            base_cfg.with_pst_target(Duration::from_micros(tg)),
        ));
    }
    let jobs: Vec<(String, EcnSharpConfig, &'static str)> = cfgs
        .iter()
        .flat_map(|(n, c)| {
            [
                ("web_search", *c, n.clone()),
                ("data_mining", *c, n.clone()),
            ]
            .into_iter()
            .map(|(w, c, n)| (n, c, w))
        })
        .collect();
    let results = parallel_map(jobs.clone(), |(_, cfg, workload)| {
        // Quick-scale caps: the 18-setting × 2-workload sweep is the widest
        // figure; uncapped it dominates the smoke sweep's wall time.
        let (cdf, flows) = if *workload == "web_search" {
            (dists::web_search(), scale.cap_quick(scale.flows(), 80))
        } else {
            (dists::data_mining(), scale.cap_quick(scale.flows_dm(), 30))
        };
        let sc = FctScenario::testbed(Scheme::EcnSharp(Some(*cfg)), cdf, 0.6, flows, 71);
        averaged_fct(&sc, scale.seeds())
    });
    let mut t = Table::new(&[
        "setting",
        "workload",
        "overall_avg_us",
        "norm_to_rule_of_thumb",
    ]);
    // Index of the baseline rows.
    let base_ws = results[0].overall.avg;
    let base_dm = results[1].overall.avg;
    for ((name, _, workload), r) in jobs.iter().zip(&results) {
        let base = if *workload == "web_search" {
            base_ws
        } else {
            base_dm
        };
        t.row(&[
            name.clone(),
            workload.to_string(),
            us(r.overall.avg),
            ratio(r.overall.avg / base),
        ]);
    }
    save(&t, "fig12");
    t
}

// ─────────────────────────────────────────────────────────────────────────
// Figure 13: packet schedulers
// ─────────────────────────────────────────────────────────────────────────

/// Fig. 13: DWRR (weights 2:1:1) with ECN♯ — goodput staircase per class
/// plus short-probe FCT vs TCN.
pub fn fig13(scale: Scale) -> Table {
    let _ = scale;
    let schemes = vec![
        Scheme::EcnSharp(None),
        Scheme::Tcn(Some(Duration::from_micros(150))),
    ];
    let results = parallel_map(schemes.clone(), |s| run_dwrr(s.clone(), 73));
    // Goodput staircase (ECN♯ run) — Fig. 13a.
    let mut stair = Table::new(&["time_s", "class0_gbps", "class1_gbps", "class2_gbps"]);
    for (ts, g) in results[0].checkpoints.iter().zip(&results[0].goodput) {
        stair.row(&[
            format!("{:.1}", ts.as_secs_f64()),
            format!("{:.2}", g[0]),
            format!("{:.2}", g[1]),
            format!("{:.2}", g[2]),
        ]);
    }
    save(&stair, "fig13a_goodput");
    // Probe FCT comparison — Fig. 13b.
    let mut t = Table::new(&["scheme", "probe_avg_us", "probe_p99_us", "probes"]);
    for (s, r) in schemes.iter().zip(&results) {
        t.row(&[
            s.label(),
            us(r.probe_fct.overall.avg),
            us(r.probe_fct.overall.p99),
            r.probe_fct.overall.count.to_string(),
        ]);
    }
    save(&t, "fig13b_probe_fct");
    // Also print the staircase to stdout via the returned table: merge.
    let mut merged = Table::new(&["section", "row"]);
    for line in stair.render().lines() {
        merged.row(&["goodput".into(), line.to_string()]);
    }
    for line in t.render().lines() {
        merged.row(&["probe_fct".into(), line.to_string()]);
    }
    merged
}

// ─────────────────────────────────────────────────────────────────────────
// §4: Tofino resource/fidelity report
// ─────────────────────────────────────────────────────────────────────────

/// §4 report: pipeline resource usage and the Algorithm-2 time-emulation
/// fidelity (including the `<=` vs `<` wrap-comparison discrepancy).
pub fn tofino_report() -> Table {
    let params = SchemeParams::derive(&RttVariation::paper_3x(), Rate::from_gbps(10));
    let pipe = TofinoEcnSharp::new(params.ecnsharp(), 128, 0, WrapCmp::CorrectedLt);
    let r = pipe.resources();
    let mut t = Table::new(&["item", "ours", "paper"]);
    t.row(&[
        "match-action tables".into(),
        r.match_action_tables.to_string(),
        "7".into(),
    ]);
    t.row(&[
        "register arrays".into(),
        format!("{}x32-bit", r.reg32_arrays),
        "5x32-bit + 2x64-bit".into(),
    ]);
    t.row(&[
        "register memory (128 ports)".into(),
        format!("{} B", r.register_bytes),
        "~37 KB".into(),
    ]);
    t.row(&[
        "per-packet metadata".into(),
        format!("{} bits", r.metadata_bits),
        "124 bits".into(),
    ]);
    t.row(&[
        "sqrt lookup entries".into(),
        r.sqrt_table_entries.to_string(),
        "(n/a: MAT)".into(),
    ]);
    // Time-emulation fidelity: fraction of packets where the literal
    // `<=` comparator corrupts the clock on a line-rate trace.
    let mut rf_le = RegisterFile::new();
    let emu_le = TimeEmulator::new(&mut rf_le, WrapCmp::PaperLe);
    let mut rf_lt = RegisterFile::new();
    let emu_lt = TimeEmulator::new(&mut rf_lt, WrapCmp::CorrectedLt);
    let mut bad_le = 0u64;
    let mut bad_lt = 0u64;
    let n = 100_000u64;
    for k in 0..n {
        // 10 Gbps line rate: one MTU every ~1230 ns — multiple packets per
        // 1024 ns tick boundary region.
        let ts = k * 1230;
        rf_le.begin_pass();
        if emu_le.emulate(&mut rf_le, ts) != reference_ticks(ts) {
            bad_le += 1;
        }
        rf_lt.begin_pass();
        if emu_lt.emulate(&mut rf_lt, ts) != reference_ticks(ts) {
            bad_lt += 1;
        }
    }
    t.row(&[
        "Algorithm 2 literal '<=': corrupted timestamps".into(),
        format!("{bad_le}/{n}"),
        "(bug as printed)".into(),
    ]);
    t.row(&[
        "Algorithm 2 corrected '<': corrupted timestamps".into(),
        format!("{bad_lt}/{n}"),
        "0 expected".into(),
    ]);
    save(&t, "tofino_report");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure smoke tests run at quick scale in the integration suite;
    // here only the cheap ones.

    #[test]
    fn fig5_lists_both_workloads() {
        let t = fig5();
        let csv = t.to_csv();
        assert!(csv.contains("web_search"));
        assert!(csv.contains("data_mining"));
    }

    #[test]
    fn table1_shape() {
        let t = table1(Scale::Quick);
        assert_eq!(t.to_csv().lines().count(), 6); // header + 5 cases
    }

    #[test]
    fn tofino_report_flags_le_bug() {
        let t = tofino_report();
        let csv = t.to_csv();
        // Corrected comparator: zero corrupted stamps.
        assert!(csv.contains("0/100000"));
    }
}
