//! Scenario builders and runners for the paper's experiment shapes.

use crate::scheme::{Scheme, SchemeParams};
use ecnsharp_aqm::DropTail;
use ecnsharp_net::topology::{
    fat_tree, leaf_spine, leaf_spine_with_subscriber, star, star_with_subscriber, LeafSpine, Star,
};
use ecnsharp_net::{
    FaultPlan, FlowId, GilbertElliott, Network, NodeId, NoopSubscriber, PortConfig, ShardPlan,
    ShardSubscriber, SimError, Subscriber, Supervision,
};
use ecnsharp_sched::Dwrr;
use ecnsharp_sim::{Duration, Rate, Rng, SimTime};
use ecnsharp_stats::{FctBreakdown, QueueSummary};
use ecnsharp_transport::{TcpConfig, TcpStack};
use ecnsharp_workload::{IncastSpec, Pattern, PiecewiseCdf, RttVariation, TrafficSpec};

/// Common knobs of an FCT experiment.
#[derive(Debug, Clone)]
pub struct FctScenario {
    /// RNG seed (workload + network dice).
    pub seed: u64,
    /// Scheme installed on every switch egress port.
    pub scheme: Scheme,
    /// Link rate (10 Gbps everywhere in the paper).
    pub rate: Rate,
    /// Per-port buffer.
    pub buffer: u64,
    /// RTT-variation model; also determines link propagation delays (the
    /// model's minimum is realized physically).
    pub rtt: RttVariation,
    /// Flow-size distribution.
    pub cdf: PiecewiseCdf,
    /// Target bottleneck load.
    pub load: f64,
    /// Flows to run.
    pub n_flows: usize,
}

impl FctScenario {
    /// The paper's testbed defaults (§5.2): 10 Gbps, 3× RTT variation,
    /// web-search traffic, 1 MB port buffers.
    pub fn testbed(
        scheme: Scheme,
        cdf: PiecewiseCdf,
        load: f64,
        n_flows: usize,
        seed: u64,
    ) -> Self {
        FctScenario {
            seed,
            scheme,
            rate: Rate::from_gbps(10),
            buffer: 1_000_000,
            rtt: RttVariation::paper_3x(),
            cdf,
            load,
            n_flows,
        }
    }

    fn params(&self) -> SchemeParams {
        SchemeParams::derive(&self.rtt, self.rate)
    }
}

/// Host NIC ports: deep FIFO, no AQM (the queueing under study happens at
/// the switch).
fn nic_port() -> PortConfig {
    PortConfig::fifo(4_000_000, Box::new(DropTail::new()))
}

/// Run `net` to completion, serial (`plan` = `None`) or on the
/// conservative-PDES engine ([`Network::run_sharded_until_idle`]).
///
/// The shard-equivalence suite pins that both paths produce
/// byte-identical figures, so callers treat the choice purely as a
/// wall-clock knob.
fn run_to_idle<S: ShardSubscriber>(net: &mut Network<S>, plan: Option<&ShardPlan>) {
    match plan {
        Some(p) => {
            net.run_sharded_until_idle(p);
        }
        None => {
            net.run_until_idle();
        }
    }
}

/// [`run_to_idle`] through the fallible supervision entry points: a
/// tripped watchdog or memory guard returns the structured
/// [`SimError`] instead of panicking. With supervision disarmed the
/// two are behaviourally identical.
fn try_run_to_idle<S: ShardSubscriber>(
    net: &mut Network<S>,
    plan: Option<&ShardPlan>,
) -> Result<(), SimError> {
    match plan {
        Some(p) => net.try_run_sharded_until_idle(p).map(|_| ()),
        None => net.try_run_until_idle().map(|_| ()),
    }
}

/// Clamp a requested shard count to a topology's natural ceiling (leaf
/// count, pod count). Requests above it are clamped rather than rejected
/// so `ECNSHARP_SHARDS=8` works across a sweep of differently-sized
/// fabrics; 0/1 means serial.
fn effective_shards(requested: u32, max_shards: usize) -> u32 {
    requested.clamp(1, (max_shards as u32).max(1))
}

/// The `ECNSHARP_SHARDS` knob (strict; see [`crate::env::shards`]),
/// unwrapped for scenario use.
fn env_shards() -> u32 {
    crate::env::or_exit(crate::env::shards())
}

/// Endpoint transport used by every scenario. `ECNSHARP_DELACK` overrides
/// the delayed-ACK count (calibration experiments); `ECNSHARP_TIMER_BACKEND`
/// (`wheel` | `legacy`) selects the timer backend — the equivalence test
/// uses it to prove both produce byte-identical figures. Both knobs are
/// strict (see [`crate::env`]): a set-but-invalid value exits 2 instead of
/// silently running the default configuration.
fn endpoint_tcp() -> TcpConfig {
    let mut cfg = TcpConfig::dctcp();
    if let Some(n) = crate::env::or_exit(crate::env::delack()) {
        cfg.delack_count = n;
    }
    if let Some(backend) = crate::env::or_exit(crate::env::timer_backend()) {
        cfg.timer_backend = backend;
    }
    cfg
}

/// Run the 8-host testbed (7 senders → 1 receiver, §5.2). Returns the FCT
/// breakdown plus the bottleneck port's drop/mark stats.
pub fn run_testbed_star(sc: &FctScenario) -> (FctBreakdown, ecnsharp_net::PortStats) {
    let (fct, stats, _) = run_testbed_star_with_subscriber(sc, NoopSubscriber);
    (fct, stats)
}

/// [`run_testbed_star`] with a telemetry subscriber attached for the whole
/// run; returns it (consumed and handed back) alongside the results.
pub fn run_testbed_star_with_subscriber<S: Subscriber>(
    sc: &FctScenario,
    sub: S,
) -> (FctBreakdown, ecnsharp_net::PortStats, S) {
    let n_hosts = 8;
    let params = sc.params();
    // The star realizes the minimum base RTT: host→switch→host traverses
    // two links each way ⇒ 4 propagation legs per RTT.
    let link_delay = Duration::from_nanos(sc.rtt.min().as_nanos() / 4);
    let scheme = sc.scheme.clone();
    let buffer = sc.buffer;
    let mut topo = star_with_subscriber(
        sc.seed,
        n_hosts,
        sc.rate,
        link_delay,
        |_| TcpStack::boxed(endpoint_tcp()),
        nic_port,
        || params.port(&scheme, buffer, 0xEC0),
        sub,
    );
    let receiver = topo.hosts[n_hosts - 1];
    let senders: Vec<NodeId> = topo.hosts[..n_hosts - 1].to_vec();
    let spec = TrafficSpec {
        cdf: sc.cdf.clone(),
        load: sc.load,
        bottleneck: sc.rate,
        pattern: Pattern::ManyToOne { senders, receiver },
        rtt: sc.rtt,
        class: 0,
        start: SimTime::ZERO,
    };
    let mut rng = Rng::seed_from_u64(sc.seed ^ 0x5EED);
    for (at, cmd) in spec.generate(sc.n_flows, 1, &mut rng) {
        topo.net.schedule_flow(at, cmd);
    }
    topo.net.run_until_idle();
    let bport = topo
        .net
        .port_towards(topo.switch, receiver)
        .expect("receiver port");
    let stats = topo.net.port_stats(topo.switch, bport);
    crate::perf::absorb(&topo.net);
    let fct = FctBreakdown::from_records(topo.net.records());
    (fct, stats, topo.net.into_subscriber())
}

/// Run the §5.3 leaf-spine fabric (all-to-all traffic, ECMP). Scaled by
/// `hosts_per_leaf`/`n_leaves`/`n_spines` so tests can shrink it.
///
/// Honors `ECNSHARP_SHARDS`: with `n ≥ 2` the fabric is partitioned per
/// leaf and run on the sharded engine, byte-identically (see
/// CONCURRENCY.md).
pub fn run_leaf_spine(
    sc: &FctScenario,
    n_spines: usize,
    n_leaves: usize,
    hosts_per_leaf: usize,
) -> FctBreakdown {
    run_leaf_spine_sharded(sc, n_spines, n_leaves, hosts_per_leaf, env_shards())
}

/// [`run_leaf_spine`] with an explicit shard count instead of the
/// `ECNSHARP_SHARDS` knob (1 = serial). The shard-equivalence suite uses
/// this to pin sharded and serial outputs against each other in one
/// process.
pub fn run_leaf_spine_sharded(
    sc: &FctScenario,
    n_spines: usize,
    n_leaves: usize,
    hosts_per_leaf: usize,
    shards: u32,
) -> FctBreakdown {
    let (fct, _) = run_leaf_spine_inner(
        sc,
        n_spines,
        n_leaves,
        hosts_per_leaf,
        shards,
        NoopSubscriber,
    );
    fct
}

/// [`run_leaf_spine`] with a telemetry subscriber attached for the whole
/// run; returns it alongside the FCT breakdown. Sharded runs fork the
/// subscriber per shard and merge deterministically, so the bound is
/// [`ShardSubscriber`] — order-sensitive sinks are rejected at compile
/// time rather than silently reordered.
pub fn run_leaf_spine_with_subscriber<S: ShardSubscriber>(
    sc: &FctScenario,
    n_spines: usize,
    n_leaves: usize,
    hosts_per_leaf: usize,
    sub: S,
) -> (FctBreakdown, S) {
    run_leaf_spine_inner(sc, n_spines, n_leaves, hosts_per_leaf, env_shards(), sub)
}

fn run_leaf_spine_inner<S: ShardSubscriber>(
    sc: &FctScenario,
    n_spines: usize,
    n_leaves: usize,
    hosts_per_leaf: usize,
    shards: u32,
    sub: S,
) -> (FctBreakdown, S) {
    let params = sc.params();
    // host→leaf→spine→leaf→host: 8 propagation legs per RTT.
    let link_delay = Duration::from_nanos(sc.rtt.min().as_nanos() / 8);
    let scheme = sc.scheme.clone();
    let buffer = sc.buffer;
    let mut topo = leaf_spine_with_subscriber(
        sc.seed,
        n_spines,
        n_leaves,
        hosts_per_leaf,
        sc.rate,
        sc.rate,
        link_delay,
        |_| TcpStack::boxed(endpoint_tcp()),
        nic_port,
        || params.port(&scheme, buffer, 0xEC1),
        sub,
    );
    let spec = TrafficSpec {
        cdf: sc.cdf.clone(),
        load: sc.load,
        bottleneck: sc.rate,
        pattern: Pattern::AllToAll {
            hosts: topo.hosts.clone(),
        },
        rtt: sc.rtt,
        class: 0,
        start: SimTime::ZERO,
    };
    // Load is per edge link; with all-to-all each host sources flows at
    // `load` of its uplink, so the aggregate generator runs at
    // n_hosts × the single-link rate.
    let n_hosts = topo.hosts.len();
    let mut rng = Rng::seed_from_u64(sc.seed ^ 0x1EAF);
    let mean_gap = spec.mean_interarrival() / n_hosts as u64;
    let mut t = SimTime::ZERO;
    let mut flows = Vec::with_capacity(sc.n_flows);
    for k in 0..sc.n_flows {
        t += rng.exp_duration(mean_gap);
        let mut cmds = spec.generate(1, 1 + k as u64, &mut rng);
        let (_, mut cmd) = cmds.pop().expect("one");
        cmd.flow = FlowId(1 + k as u64);
        flows.push((t, cmd));
    }
    for (at, cmd) in flows {
        topo.net.schedule_flow(at, cmd);
    }
    let n = effective_shards(shards, n_leaves);
    let plan = (n >= 2).then(|| topo.shard_plan(n));
    run_to_idle(&mut topo.net, plan.as_ref());
    crate::perf::absorb(&topo.net);
    let fct = FctBreakdown::from_records(topo.net.records());
    (fct, topo.net.into_subscriber())
}

/// Run an all-to-all workload on a k-ary fat-tree
/// ([`ecnsharp_net::topology::fat_tree`]) — the datacenter-scale shape the
/// sharded engine exists for (k=16 is 1024 hosts). Honors
/// `ECNSHARP_SHARDS` with a per-pod cut (ceiling `k`).
pub fn run_fat_tree(sc: &FctScenario, k: usize) -> FctBreakdown {
    run_fat_tree_sharded(sc, k, env_shards())
}

/// [`run_fat_tree`] with an explicit shard count instead of the
/// `ECNSHARP_SHARDS` knob (1 = serial).
pub fn run_fat_tree_sharded(sc: &FctScenario, k: usize, shards: u32) -> FctBreakdown {
    let params = sc.params();
    // host→edge→agg→core→agg→edge→host: 12 propagation legs per RTT.
    let link_delay = Duration::from_nanos(sc.rtt.min().as_nanos() / 12);
    let scheme = sc.scheme.clone();
    let buffer = sc.buffer;
    let mut topo = fat_tree(
        sc.seed,
        k,
        sc.rate,
        sc.rate,
        link_delay,
        |_| TcpStack::boxed(endpoint_tcp()),
        nic_port,
        || params.port(&scheme, buffer, 0xFA7),
    );
    let spec = TrafficSpec {
        cdf: sc.cdf.clone(),
        load: sc.load,
        bottleneck: sc.rate,
        pattern: Pattern::AllToAll {
            hosts: topo.hosts.clone(),
        },
        rtt: sc.rtt,
        class: 0,
        start: SimTime::ZERO,
    };
    // As in the leaf-spine runner: per-edge-link load, aggregated over all
    // hosts sourcing flows.
    let n_hosts = topo.hosts.len();
    let mut rng = Rng::seed_from_u64(sc.seed ^ 0xFA77);
    let mean_gap = spec.mean_interarrival() / n_hosts as u64;
    let mut t = SimTime::ZERO;
    let mut flows = Vec::with_capacity(sc.n_flows);
    for idx in 0..sc.n_flows {
        t += rng.exp_duration(mean_gap);
        let mut cmds = spec.generate(1, 1 + idx as u64, &mut rng);
        let (_, mut cmd) = cmds.pop().expect("one");
        cmd.flow = FlowId(1 + idx as u64);
        flows.push((t, cmd));
    }
    for (at, cmd) in flows {
        topo.net.schedule_flow(at, cmd);
    }
    let n = effective_shards(shards, k);
    let plan = (n >= 2).then(|| topo.shard_plan(n));
    run_to_idle(&mut topo.net, plan.as_ref());
    crate::perf::absorb(&topo.net);
    FctBreakdown::from_records(topo.net.records())
}

/// Result of one chaos-sweep point: FCT over the flows that completed,
/// plus the full fault-accounting ledger for the run.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// FCT breakdown (failed flows counted, excluded from timings).
    pub fct: FctBreakdown,
    /// Flows that completed.
    pub completed: u64,
    /// Flows that aborted after `max_rto_retries` consecutive timeouts.
    pub failed: u64,
    /// CE marks applied across the fabric.
    pub ce_marks: u64,
    /// Independent-fault wire drops.
    pub fault_drops: u64,
    /// Corruption (checksum-fail) wire drops.
    pub corrupt_drops: u64,
    /// Gilbert–Elliott burst-loss wire drops.
    pub burst_drops: u64,
    /// Switch discards for destinations with no up link.
    pub no_route_drops: u64,
    /// Retransmission timeouts across all flows.
    pub timeouts: u64,
}

/// One point of the chaos sweep: the small leaf-spine fabric (2×2×4)
/// under web-search traffic at 50% load, with a Gilbert–Elliott burst-loss
/// process of mean rate `mean_loss` (mean burst 8 packets) on every switch
/// egress and, when `flap_period` is set, a leaf0–spine0 link flapping
/// with that period (50% duty cycle) for the first 20 ms. Fully
/// deterministic per `seed`: faults are scheduled through the same event
/// queue as traffic and the GE process draws from the port's seeded dice.
pub fn run_chaos_leaf_spine(
    scheme: Scheme,
    mean_loss: f64,
    flap_period: Option<Duration>,
    n_flows: usize,
    seed: u64,
) -> ChaosResult {
    run_chaos_leaf_spine_sharded(scheme, mean_loss, flap_period, n_flows, seed, env_shards())
}

/// [`run_chaos_leaf_spine`] with an explicit shard count instead of the
/// `ECNSHARP_SHARDS` knob (1 = serial). Fault application — flaps, GE
/// loss, route rebuilds — crosses shard boundaries, so the equivalence
/// suite leans on this variant to prove chaos outputs stay byte-identical.
pub fn run_chaos_leaf_spine_sharded(
    scheme: Scheme,
    mean_loss: f64,
    flap_period: Option<Duration>,
    n_flows: usize,
    seed: u64,
    shards: u32,
) -> ChaosResult {
    match try_run_chaos_leaf_spine_sharded(
        scheme,
        mean_loss,
        flap_period,
        n_flows,
        seed,
        shards,
        Supervision::default(),
        false,
    ) {
        Ok(r) => r,
        // Supervision is disarmed here, so the only possible error is a
        // worker panic — rethrow it like the infallible engine APIs do.
        Err(e) => panic!("run_chaos_leaf_spine_sharded: {e}"),
    }
}

/// [`run_chaos_leaf_spine_sharded`] under run supervision: `sup` arms the
/// engine's watchdogs and memory guards, and a tripped guard comes back
/// as a structured [`SimError`] instead of a panic or hang. With all
/// budgets armed but untriggered the result is byte-identical to the
/// infallible path (the supervision suite pins this). `inject_livelock`
/// schedules a self-rescheduling zero-delay drill event early in the run
/// so the `ProgressGuard` must trip — the `ECNSHARP_INJECT_LIVELOCK`
/// drill leg.
#[allow(clippy::too_many_arguments)]
pub fn try_run_chaos_leaf_spine_sharded(
    scheme: Scheme,
    mean_loss: f64,
    flap_period: Option<Duration>,
    n_flows: usize,
    seed: u64,
    shards: u32,
    sup: Supervision,
    inject_livelock: bool,
) -> Result<ChaosResult, SimError> {
    let rate = Rate::from_gbps(10);
    let rtt = RttVariation::sim_3x();
    let params = SchemeParams::derive(&rtt, rate);
    let buffer = 1_000_000;
    let link_delay = Duration::from_nanos(rtt.min().as_nanos() / 8);
    let scheme2 = scheme.clone();
    let mut topo: LeafSpine = leaf_spine(
        seed,
        2,
        2,
        4,
        rate,
        rate,
        link_delay,
        |_| TcpStack::boxed(endpoint_tcp()),
        nic_port,
        move || {
            let mut p = params.port(&scheme2, buffer, 0xC4A0);
            if mean_loss > 0.0 {
                p = p.with_ge(GilbertElliott::from_mean_loss(mean_loss, 8.0));
            }
            p
        },
    );
    if let Some(period) = flap_period {
        let plan = FaultPlan::new().flap(
            topo.leaves[0],
            topo.spines[0],
            SimTime::from_micros(50),
            period,
            period / 2,
            SimTime::from_millis(20),
        );
        topo.net.install_fault_plan(plan);
    }
    let spec = TrafficSpec {
        cdf: ecnsharp_workload::dists::web_search(),
        load: 0.5,
        bottleneck: rate,
        pattern: Pattern::AllToAll {
            hosts: topo.hosts.clone(),
        },
        rtt,
        class: 0,
        start: SimTime::ZERO,
    };
    let n_hosts = topo.hosts.len();
    let mut rng = Rng::seed_from_u64(seed ^ 0xC4A05);
    let mean_gap = spec.mean_interarrival() / n_hosts as u64;
    let mut t = SimTime::ZERO;
    let mut flows = Vec::with_capacity(n_flows);
    for k in 0..n_flows {
        t += rng.exp_duration(mean_gap);
        let mut cmds = spec.generate(1, 1 + k as u64, &mut rng);
        let (_, mut cmd) = cmds.pop().expect("one");
        cmd.flow = FlowId(1 + k as u64);
        flows.push((t, cmd));
    }
    for (at, cmd) in flows {
        topo.net.schedule_flow(at, cmd);
    }
    topo.net.set_supervision(sup);
    if inject_livelock {
        topo.net.inject_livelock_at(SimTime::from_micros(10));
    }
    let n = effective_shards(shards, topo.leaves.len());
    let plan = (n >= 2).then(|| topo.shard_plan(n));
    try_run_to_idle(&mut topo.net, plan.as_ref())?;
    let perf = topo.net.perf();
    let fct = FctBreakdown::from_records(topo.net.records());
    crate::perf::absorb(&topo.net);
    Ok(ChaosResult {
        completed: (topo.net.records().len() as u64) - fct.failed,
        failed: fct.failed,
        timeouts: fct.timeouts,
        ce_marks: perf.ce_marks,
        fault_drops: perf.fault_drops,
        corrupt_drops: perf.corrupt_drops,
        burst_drops: perf.burst_drops,
        no_route_drops: perf.no_route_drops,
        fct,
    })
}

/// Result of the §5.4 incast microscope.
#[derive(Debug, Clone)]
pub struct IncastResult {
    /// Queue occupancy summary over the sampled window.
    pub queue: QueueSummary,
    /// The raw series `(t, bytes, pkts)` for plotting (Fig. 10).
    pub series: Vec<(SimTime, u64, u64)>,
    /// FCT breakdown of the query flows only (Fig. 11).
    pub query_fct: FctBreakdown,
    /// Total drops at the bottleneck during the run.
    pub drops: u64,
    /// Total timeouts suffered by query flows.
    pub query_timeouts: u64,
    /// Average standing queue (packets) in the 5 ms *before* the burst —
    /// the level Fig. 10's flat segments show (paper: ~182 pkts for
    /// RED-Tail vs ~8 for ECN#).
    pub standing_pkts: f64,
}

/// When the microscope's events happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncastTimeline {
    /// The paper's timeline: background from 3.0/3.5 s, burst at 4 s,
    /// horizon 4.6 s (what Figs. 10–11 plot).
    Paper,
    /// Same structure compressed ~5×: background from 0.2/0.25 s, burst at
    /// 0.5 s, horizon 1.0 s. The background flows still converge (hundreds
    /// of RTTs) — used by tests and benches to stay fast.
    Compressed,
}

impl IncastTimeline {
    fn times(self) -> (u64, u64, u64, u64) {
        // (long_start_ms, bg_start_ms, burst_ms, horizon_ms)
        match self {
            IncastTimeline::Paper => (3_000, 3_500, 4_000, 4_600),
            IncastTimeline::Compressed => (200, 250, 500, 1_000),
        }
    }
}

/// The §5.4 microscope with the paper's timeline (see
/// [`run_incast_micro_with`]).
pub fn run_incast_micro(scheme: Scheme, fanout: usize, seed: u64) -> IncastResult {
    run_incast_micro_with(scheme, fanout, seed, IncastTimeline::Paper)
}

/// The §5.4 microscope: 16 senders → 1 receiver, 2 long-lived small-RTT
/// background flows plus data-mining short flows, and an `fanout`-wide
/// query burst. The queue is sampled for 5 ms before and after the burst.
pub fn run_incast_micro_with(
    scheme: Scheme,
    fanout: usize,
    seed: u64,
    timeline: IncastTimeline,
) -> IncastResult {
    let (r, _) = run_incast_micro_with_subscriber(scheme, fanout, seed, timeline, NoopSubscriber);
    r
}

/// [`run_incast_micro_with`] with a telemetry subscriber attached for the
/// whole run; returns it alongside the result.
pub fn run_incast_micro_with_subscriber<S: Subscriber>(
    scheme: Scheme,
    fanout: usize,
    seed: u64,
    timeline: IncastTimeline,
    sub: S,
) -> (IncastResult, S) {
    let (long_ms, bg_ms, burst_ms, horizon_ms) = timeline.times();
    let rate = Rate::from_gbps(10);
    let rtt = RttVariation::sim_3x();
    let params = SchemeParams::derive(&rtt, rate);
    let buffer = 1_000_000;
    let link_delay = Duration::from_nanos(rtt.min().as_nanos() / 4);
    let mut topo = star_with_subscriber(
        seed,
        17,
        rate,
        link_delay,
        |_| TcpStack::boxed(endpoint_tcp()),
        nic_port,
        || params.port(&scheme, buffer, 0xE5D),
        sub,
    );
    let receiver = topo.hosts[16];
    let senders: Vec<NodeId> = topo.hosts[..16].to_vec();
    let bport = topo
        .net
        .port_towards(topo.switch, receiver)
        .expect("receiver port");

    // Two long-lived background flows with the minimum base RTT — the
    // standing-queue builders the persistent detector must tame.
    for (i, &s) in senders.iter().take(2).enumerate() {
        topo.net.schedule_flow(
            SimTime::from_millis(long_ms),
            ecnsharp_net::FlowCmd {
                flow: FlowId(900_000 + i as u64),
                src: s,
                dst: receiver,
                // Effectively infinite: outlives the run horizon.
                size: 4_000_000_000,
                class: 0,
                extra_delay: Duration::ZERO,
            },
        );
    }
    // Data-mining background at modest load in the surrounding second.
    let spec = TrafficSpec {
        cdf: ecnsharp_workload::dists::data_mining(),
        load: 0.2,
        bottleneck: rate,
        pattern: Pattern::ManyToOne {
            senders: senders.clone(),
            receiver,
        },
        rtt,
        class: 0,
        start: SimTime::from_millis(bg_ms),
    };
    let mut rng = Rng::seed_from_u64(seed ^ 0xBAC6);
    for (at, cmd) in spec.generate(60, 1, &mut rng) {
        topo.net.schedule_flow(at, cmd);
    }
    // The query burst.
    let burst_at = SimTime::from_millis(burst_ms);
    let incast = IncastSpec::paper(senders, receiver, fanout, burst_at);
    let first_query = 1_000_000u64;
    for (at, cmd) in incast.generate(first_query, &mut rng) {
        topo.net.schedule_flow(at, cmd);
    }
    // Fig. 10's 5 ms microscope window, plus a 5 ms pre-roll that shows
    // the standing queue the schemes maintain before the burst.
    topo.net.add_queue_monitor(
        topo.switch,
        bport,
        Duration::from_micros(5),
        burst_at - Duration::from_millis(5),
        burst_at + Duration::from_millis(5),
    );
    topo.net.run_until(SimTime::from_millis(horizon_ms));
    // Stop background cleanly: summarize what completed.
    let records = topo.net.records().to_vec();
    let query: Vec<_> = records
        .iter()
        .filter(|r| r.flow.0 >= first_query)
        .cloned()
        .collect();
    assert!(
        !query.is_empty(),
        "no query flows finished — run window too small"
    );
    let monitor = &topo.net.monitors()[0];
    let pre: Vec<f64> = monitor
        .samples
        .iter()
        .filter(|&&(t, _, _)| t < burst_at)
        .map(|&(_, _, p)| p as f64)
        .collect();
    let standing_pkts = pre.iter().sum::<f64>() / pre.len().max(1) as f64;
    crate::perf::absorb(&topo.net);
    let result = IncastResult {
        standing_pkts,
        queue: QueueSummary::from_monitor(monitor),
        series: monitor.samples.clone(),
        query_fct: FctBreakdown::from_records(&query),
        drops: topo.net.port_stats(topo.switch, bport).total_drops(),
        query_timeouts: query.iter().map(|r| r.timeouts as u64).sum(),
    };
    (result, topo.net.into_subscriber())
}

/// Result of the DWRR scheduling experiment (§5.4, Fig. 13).
#[derive(Debug, Clone)]
pub struct DwrrResult {
    /// Goodput (Gbps) per class sampled at `checkpoints` (per window).
    pub goodput: Vec<[f64; 3]>,
    /// Checkpoint times.
    pub checkpoints: Vec<SimTime>,
    /// Short-probe FCT breakdown.
    pub probe_fct: FctBreakdown,
}

/// The Fig. 13 experiment: DWRR with weights 2:1:1 over three service
/// classes; long-lived flows join classes 0/1/2 at 0 s/0.5 s/1.0 s; short
/// probes (3–60 KB) sample latency across classes throughout.
pub fn run_dwrr(scheme: Scheme, seed: u64) -> DwrrResult {
    let rate = Rate::from_gbps(10);
    let rtt = RttVariation::sim_3x();
    let params = SchemeParams::derive(&rtt, rate);
    let link_delay = Duration::from_nanos(rtt.min().as_nanos() / 4);
    // 6 hosts: 3 long-flow senders, 2 probe senders, 1 receiver.
    let scheme2 = scheme.clone();
    let mut topo: Star = star(
        seed,
        6,
        rate,
        link_delay,
        |_| TcpStack::boxed(endpoint_tcp()),
        nic_port,
        move || {
            params
                .port(&scheme2, 1_000_000, 0xD3)
                .with_sched(Box::new(Dwrr::new(&[2, 1, 1], 1_538)))
        },
    );
    let receiver = topo.hosts[5];
    let bport = topo.net.port_towards(topo.switch, receiver).expect("port");

    // Long-lived flows, one per class, staggered.
    for (i, (&s, start_ms)) in topo.hosts[..3].iter().zip([0u64, 500, 1_000]).enumerate() {
        topo.net.schedule_flow(
            SimTime::from_millis(start_ms),
            ecnsharp_net::FlowCmd {
                flow: FlowId(500_000 + i as u64),
                src: s,
                dst: receiver,
                size: 4_000_000_000,
                class: i as u8,
                extra_delay: Duration::ZERO,
            },
        );
    }
    // Short probes: uniform 3-60 KB, random class, Poisson-ish spacing.
    let mut rng = Rng::seed_from_u64(seed ^ 0xD884);
    let first_probe = 700_000u64;
    let mut n_probes = 0;
    let mut t = SimTime::from_millis(100);
    while t < SimTime::from_millis(1_900) {
        t += rng.exp_duration(Duration::from_millis(4));
        let src = topo.hosts[3 + (n_probes % 2) as usize];
        topo.net.schedule_flow(
            t,
            ecnsharp_net::FlowCmd {
                flow: FlowId(first_probe + n_probes),
                src,
                dst: receiver,
                size: rng.range_u64(3_000, 60_001),
                class: (n_probes % 3) as u8,
                extra_delay: rtt.sample(&mut rng).saturating_sub(rtt.min()),
            },
        );
        n_probes += 1;
    }

    // Sample per-class goodput in 100 ms windows over [0, 2 s].
    let mut checkpoints = Vec::new();
    let mut goodput = Vec::new();
    let mut prev = vec![0u64; 3];
    for k in 1..=20u64 {
        let t = SimTime::from_millis(k * 100);
        topo.net.run_until(t);
        let mut tx = topo.net.tx_payload_per_class(topo.switch, bport);
        tx.resize(3, 0);
        let window = 0.1;
        let rates = [
            (tx[0] - prev[0]) as f64 * 8.0 / window / 1e9,
            (tx[1] - prev[1]) as f64 * 8.0 / window / 1e9,
            (tx[2] - prev[2]) as f64 * 8.0 / window / 1e9,
        ];
        prev = tx;
        checkpoints.push(t);
        goodput.push(rates);
    }
    // Let the probes drain (long flows may still be running; stop at 3 s).
    topo.net.run_until(SimTime::from_secs(3));
    let probes: Vec<_> = topo
        .net
        .records()
        .iter()
        .filter(|r| (first_probe..first_probe + n_probes).contains(&r.flow.0))
        .cloned()
        .collect();
    assert!(!probes.is_empty(), "no probes completed");
    crate::perf::absorb(&topo.net);
    DwrrResult {
        goodput,
        checkpoints,
        probe_fct: FctBreakdown::from_records(&probes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecnsharp_workload::dists;

    #[test]
    fn testbed_star_smoke() {
        let sc = FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.5, 60, 1);
        let (fct, stats) = run_testbed_star(&sc);
        assert_eq!(fct.overall.count, 60);
        assert!(stats.enqueued > 0);
        assert!(fct.overall.avg > 0.0);
    }

    #[test]
    fn leaf_spine_smoke() {
        let sc = FctScenario::testbed(Scheme::DctcpRedTail, dists::web_search(), 0.3, 40, 2);
        let fct = run_leaf_spine(&sc, 2, 2, 4);
        assert_eq!(fct.overall.count, 40);
    }

    #[test]
    fn leaf_spine_sharded_matches_serial() {
        let sc = FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.3, 30, 5);
        let serial = run_leaf_spine_sharded(&sc, 2, 2, 4, 1);
        let sharded = run_leaf_spine_sharded(&sc, 2, 2, 4, 2);
        assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
    }

    fn tmp_run_ft_records(shards: u32) -> (u64, Vec<String>) {
        let sc = FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.2, 30, 6);
        let params = sc.params();
        let link_delay = Duration::from_nanos(sc.rtt.min().as_nanos() / 12);
        let scheme = sc.scheme.clone();
        let buffer = sc.buffer;
        let mut topo = fat_tree(
            sc.seed,
            4,
            sc.rate,
            sc.rate,
            link_delay,
            |_| TcpStack::boxed(endpoint_tcp()),
            nic_port,
            || params.port(&scheme, buffer, 0xFA7),
        );
        let spec = TrafficSpec {
            cdf: sc.cdf.clone(),
            load: sc.load,
            bottleneck: sc.rate,
            pattern: Pattern::AllToAll {
                hosts: topo.hosts.clone(),
            },
            rtt: sc.rtt,
            class: 0,
            start: SimTime::ZERO,
        };
        let n_hosts = topo.hosts.len();
        let mut rng = Rng::seed_from_u64(sc.seed ^ 0xFA77);
        let mean_gap = spec.mean_interarrival() / n_hosts as u64;
        let mut t = SimTime::ZERO;
        for idx in 0..sc.n_flows {
            t += rng.exp_duration(mean_gap);
            let mut cmds = spec.generate(1, 1 + idx as u64, &mut rng);
            let (_, mut cmd) = cmds.pop().expect("one");
            cmd.flow = FlowId(1 + idx as u64);
            topo.net.schedule_flow(t, cmd);
        }
        let plan = (shards >= 2).then(|| topo.shard_plan(shards));
        run_to_idle(&mut topo.net, plan.as_ref());
        let mut out: Vec<String> = topo
            .net
            .records()
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        for node in 0..topo.net.node_count() {
            let n = NodeId(node);
            for port in 0..topo.net.port_count(n) {
                out.push(format!(
                    "port {node}.{port} {:?}",
                    topo.net.port_stats(n, port)
                ));
            }
        }
        (topo.net.steps(), out)
    }

    #[test]
    fn tmp_bisect_ls4() {
        let sc = FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.2, 30, 6);
        let a = format!("{:?}", run_leaf_spine_sharded(&sc, 4, 4, 4, 1));
        let b = format!("{:?}", run_leaf_spine_sharded(&sc, 4, 4, 4, 4));
        assert_eq!(a, b, "ls 4x4x4 4 shards");
    }

    #[test]
    fn tmp_bisect() {
        let (steps_s, recs_s) = tmp_run_ft_records(1);
        let (steps_2, recs_2) = tmp_run_ft_records(2);
        eprintln!("steps serial={steps_s} sharded={steps_2}");
        for (a, b) in recs_s.iter().zip(recs_2.iter()) {
            if a != b {
                eprintln!("DIVERGENT:\n  serial:  {a}\n  sharded: {b}");
            }
        }
        assert_eq!(recs_s.len(), recs_2.len());
        assert!(recs_s == recs_2);
    }

    #[test]
    fn fat_tree_smoke() {
        let sc = FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.2, 30, 6);
        let serial = run_fat_tree_sharded(&sc, 4, 1);
        assert_eq!(serial.overall.count, 30);
        let sharded = run_fat_tree_sharded(&sc, 4, 4);
        assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
    }

    #[test]
    fn chaos_smoke() {
        let r = run_chaos_leaf_spine(
            Scheme::EcnSharp(None),
            0.01,
            Some(Duration::from_micros(200)),
            40,
            7,
        );
        assert_eq!(r.completed + r.failed, 40);
        assert!(r.burst_drops > 0, "1% GE loss must drop something");
        assert!(
            r.fct.overall.count as u64 == r.completed,
            "timing buckets cover exactly the completed flows"
        );
    }

    #[test]
    fn incast_micro_smoke() {
        let r = run_incast_micro_with(Scheme::EcnSharp(None), 20, 3, IncastTimeline::Compressed);
        assert_eq!(r.query_fct.overall.count, 20);
        assert!(r.queue.samples > 500);
    }

    #[test]
    fn dwrr_smoke() {
        let r = run_dwrr(Scheme::EcnSharp(None), 4);
        assert_eq!(r.goodput.len(), 20);
        // After 1.2 s all three classes are active: ratios near 2:1:1.
        let late = r.goodput[14];
        assert!(late[0] > late[1] * 1.4, "{late:?}");
        assert!((late[1] / late[2] - 1.0).abs() < 0.4, "{late:?}");
    }
}
