//! The crate's single blessed environment-knob module (lint rule R10):
//! every `std::env::var` read in `ecnsharp-experiments` lives here, so
//! configuration cannot scatter and every knob shares the strict-knob
//! policy — a set-but-invalid value is a hard error (the binaries print
//! it and exit 2), never a silent fallback.
//!
//! Knob inventory:
//!
//! | knob | values | default |
//! |------|--------|---------|
//! | `ECNSHARP_SCALE` | `quick`/`mid`/`full` | `full` |
//! | `ECNSHARP_RESULTS` | directory path | `results` |
//! | `ECNSHARP_FAULT_SEED` | decimal or `0x`-hex u64 | [`crate::runner::DEFAULT_FAULT_SEED`] |
//! | `ECNSHARP_TELEMETRY_JSON` | writable file path | unset = no sink |
//! | `ECNSHARP_PERF_JSON` | writable file path | unset = no sink |
//! | `ECNSHARP_DELACK` | u32 ≥ 1 | transport default |
//! | `ECNSHARP_TIMER_BACKEND` | `wheel`/`legacy` | `wheel` |
//! | `ECNSHARP_INJECT_PANIC` | `worker` | unset = no injection |
//! | `ECNSHARP_SHARDS` | u32 ≥ 1 | `1` (serial) |
//! | `ECNSHARP_INJECT_STALL` | `window` | unset = no injection |
//! | `ECNSHARP_INJECT_LIVELOCK` | `engine` | unset = no injection |
//! | `ECNSHARP_RESUME` | `1`/`0` | `0` (fresh sweep) |
//! | `ECNSHARP_LIVELOCK_BUDGET` | u64 ≥ 1 | supervision default |
//! | `ECNSHARP_STALL_BUDGET` | u64 ≥ 1 | supervision default |
//! | `ECNSHARP_MEM_BUDGET` | u64 ≥ 1 | supervision default |
//! | `ECNSHARP_RETRIES` | u32 | `1` |

use crate::runner::{parse_fault_seed, DEFAULT_FAULT_SEED};
use crate::Scale;
use ecnsharp_transport::TimerBackend;
use std::path::PathBuf;

/// Read one knob. `Ok(None)` when unset; an unreadable (non-unicode)
/// value is an error naming the knob.
fn read(knob: &'static str) -> Result<Option<String>, String> {
    match std::env::var(knob) {
        Ok(v) => Ok(Some(v)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(e) => Err(format!("unreadable {knob}: {e}")),
    }
}

/// Unwrap a knob result for binaries: print the error and exit 2.
pub fn or_exit<T>(r: Result<T, String>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// `ECNSHARP_SCALE`: experiment scale. Unset means [`Scale::Full`];
/// anything else must parse exactly.
pub fn scale() -> Result<Scale, String> {
    match read("ECNSHARP_SCALE")? {
        Some(v) => v.parse(),
        None => Ok(Scale::Full),
    }
}

/// `ECNSHARP_RESULTS`: the results directory, defaulting to `results`.
/// Deliberately lenient — the figure binaries warn when a CSV cannot be
/// written, which covers a bad path without making smoke runs brittle.
pub fn results_dir() -> PathBuf {
    std::env::var("ECNSHARP_RESULTS")
        .unwrap_or_else(|_| "results".into())
        .into()
}

/// `ECNSHARP_FAULT_SEED`: base seed for fault-injection sweeps. Unset
/// means [`DEFAULT_FAULT_SEED`]; set-but-invalid is an error.
pub fn fault_seed() -> Result<u64, String> {
    match read("ECNSHARP_FAULT_SEED")? {
        Some(v) => parse_fault_seed(&v),
        None => Ok(DEFAULT_FAULT_SEED),
    }
}

/// A path-valued knob (`ECNSHARP_TELEMETRY_JSON` / `ECNSHARP_PERF_JSON`).
/// Unset means `None`; set-but-empty is an error naming the knob.
pub fn path_knob(knob: &'static str) -> Result<Option<PathBuf>, String> {
    match read(knob)? {
        Some(v) if v.trim().is_empty() => Err(format!(
            "empty {knob} value (expected a writable file path)"
        )),
        Some(v) => Ok(Some(PathBuf::from(v))),
        None => Ok(None),
    }
}

/// `ECNSHARP_DELACK`: delayed-ACK count override for the calibration
/// experiments. Unset means the transport default; set values must parse
/// as a u32 ≥ 1.
pub fn delack() -> Result<Option<u32>, String> {
    match read("ECNSHARP_DELACK")? {
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "unrecognized ECNSHARP_DELACK value {v:?} (expected an integer >= 1)"
            )),
        },
        None => Ok(None),
    }
}

/// `ECNSHARP_TIMER_BACKEND`: timer backend selection, used by the
/// wheel/legacy equivalence test. Unset means the transport default
/// (the wheel); set values must be exactly `wheel` or `legacy`.
pub fn timer_backend() -> Result<Option<TimerBackend>, String> {
    match read("ECNSHARP_TIMER_BACKEND")? {
        Some(v) => match v.as_str() {
            "wheel" => Ok(Some(TimerBackend::Wheel)),
            "legacy" => Ok(Some(TimerBackend::Legacy)),
            other => Err(format!(
                "unrecognized ECNSHARP_TIMER_BACKEND value {other:?} \
                 (expected \"wheel\" or \"legacy\")"
            )),
        },
        None => Ok(None),
    }
}

/// `ECNSHARP_SHARDS`: shard count for the conservative-PDES engine (see
/// CONCURRENCY.md). Unset or `1` means the serial event loop; `n ≥ 2`
/// makes shard-capable scenarios partition their fabric into `n` shards
/// and run them on `n` worker threads. Outputs are byte-identical either
/// way (the shard-equivalence suite pins this), so the knob is purely a
/// wall-clock trade. Set values must parse as a u32 ≥ 1; scenarios clamp
/// to their topology's natural shard ceiling (e.g. the leaf count).
pub fn shards() -> Result<u32, String> {
    match read("ECNSHARP_SHARDS")? {
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "unrecognized ECNSHARP_SHARDS value {v:?} (expected an integer >= 1)"
            )),
        },
        None => Ok(1),
    }
}

/// `ECNSHARP_INJECT_PANIC`: crash-proof-runner drill switch. `worker`
/// crashes the first sweep point; unset means no injection; anything
/// else is an error.
pub fn inject_panic() -> Result<bool, String> {
    match read("ECNSHARP_INJECT_PANIC")? {
        Some(v) if v == "worker" => Ok(true),
        Some(v) => Err(format!(
            "unrecognized ECNSHARP_INJECT_PANIC value {v:?} (expected \"worker\" or unset)"
        )),
        None => Ok(false),
    }
}

/// `ECNSHARP_INJECT_STALL`: barrier-stall drill switch. `window` freezes
/// every shard's window processing on the first sweep point so the
/// barrier-stall detector must trip; unset means no injection; anything
/// else is an error.
pub fn inject_stall() -> Result<bool, String> {
    match read("ECNSHARP_INJECT_STALL")? {
        Some(v) if v == "window" => Ok(true),
        Some(v) => Err(format!(
            "unrecognized ECNSHARP_INJECT_STALL value {v:?} (expected \"window\" or unset)"
        )),
        None => Ok(false),
    }
}

/// `ECNSHARP_INJECT_LIVELOCK`: livelock drill switch. `engine` schedules
/// a self-rescheduling zero-delay event on the first sweep point so the
/// `ProgressGuard` must trip; unset means no injection; anything else is
/// an error.
pub fn inject_livelock() -> Result<bool, String> {
    match read("ECNSHARP_INJECT_LIVELOCK")? {
        Some(v) if v == "engine" => Ok(true),
        Some(v) => Err(format!(
            "unrecognized ECNSHARP_INJECT_LIVELOCK value {v:?} (expected \"engine\" or unset)"
        )),
        None => Ok(false),
    }
}

/// `ECNSHARP_RESUME`: resume an interrupted sweep from its
/// completed-point journal. `1` skips journaled points, `0` (or unset)
/// starts fresh; anything else is an error.
pub fn resume() -> Result<bool, String> {
    match read("ECNSHARP_RESUME")? {
        Some(v) if v == "1" => Ok(true),
        Some(v) if v == "0" => Ok(false),
        Some(v) => Err(format!(
            "unrecognized ECNSHARP_RESUME value {v:?} (expected \"1\", \"0\", or unset)"
        )),
        None => Ok(false),
    }
}

/// A supervision-budget knob (`ECNSHARP_LIVELOCK_BUDGET` /
/// `ECNSHARP_STALL_BUDGET` / `ECNSHARP_MEM_BUDGET`): overrides the
/// corresponding default in [`ecnsharp_net::Supervision::armed`]. Unset
/// means the default; set values must parse as a u64 ≥ 1.
pub fn budget_knob(knob: &'static str) -> Result<Option<u64>, String> {
    match read(knob)? {
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "unrecognized {knob} value {v:?} (expected an integer >= 1)"
            )),
        },
        None => Ok(None),
    }
}

/// `ECNSHARP_RETRIES`: bounded same-seed retry count for sweep points
/// failing with a *retryable* error (worker panics). Unset means `1`;
/// `0` disables retries; set values must parse as a u32.
pub fn retries() -> Result<u32, String> {
    match read("ECNSHARP_RETRIES")? {
        Some(v) => v.parse::<u32>().map_err(|_| {
            format!("unrecognized ECNSHARP_RETRIES value {v:?} (expected an integer >= 0)")
        }),
        None => Ok(1),
    }
}
