//! Run supervision must be an observer, never a participant: with every
//! watchdog and memory guard armed but untriggered, supervised runs are
//! byte-identical to guard-free runs — figure output and perf-counter
//! ledger alike, serial and sharded (`ChaosResult`'s `Debug` covers
//! both: bit-exact FCT floats plus the `[perf]` mark/drop counters).
//! And each guard must actually fire: a synthetic zero-delay event
//! cycle trips the `ProgressGuard`, a withheld shard window trips the
//! barrier-stall detector, and a 1-event memory budget trips the
//! admission guard. DESIGN.md "Run supervision" carries the contract;
//! these tests pin it.

use ecnsharp_experiments::runner::{supervised_map, PointStatus, SweepConfig};
use ecnsharp_experiments::{try_run_chaos_leaf_spine_sharded, Scheme};
use ecnsharp_net::{MemComponent, SimError, Supervision};
use ecnsharp_sim::Duration;
use std::sync::atomic::{AtomicU32, Ordering};

/// One chaos point under supervision `sup`, rendered to its bit-exact
/// `Debug` form (floats print shortest-round-trip, so string equality is
/// bit equality).
fn chaos_row(seed: u64, shards: u32, sup: Supervision) -> Result<String, SimError> {
    try_run_chaos_leaf_spine_sharded(
        Scheme::EcnSharp(None),
        0.01,
        Some(Duration::from_micros(200)),
        60,
        seed,
        shards,
        sup,
        false,
    )
    .map(|r| format!("{r:?}"))
}

#[test]
fn armed_untriggered_supervision_is_byte_identical_serial_and_sharded() {
    for shards in [1u32, 2, 4] {
        let bare = chaos_row(0xC0DE, shards, Supervision::default()).expect("unsupervised run");
        let armed = chaos_row(0xC0DE, shards, Supervision::armed()).expect("supervised run");
        assert_eq!(bare, armed, "{shards} shard(s)");
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Arming every guard without tripping any must leave the full
        /// chaos ledger bit-identical across seeds, serial and 2/4-shard
        /// (4 clamps to the chaos topology's 2-leaf ceiling — the
        /// documented sweep behaviour, still a distinct code path).
        #[test]
        fn prop_armed_untriggered_runs_are_byte_identical(
            seed in 0u64..1_000_000,
            shards in 1u32..5,
        ) {
            let bare = chaos_row(seed, shards, Supervision::default())
                .expect("unsupervised run");
            let armed = chaos_row(seed, shards, Supervision::armed())
                .expect("supervised run");
            prop_assert_eq!(bare, armed);
        }
    }
}

#[test]
fn progress_guard_trips_on_zero_delay_event_cycle() {
    let mut sup = Supervision::armed();
    sup.livelock_budget = Some(1_000);
    let err = try_run_chaos_leaf_spine_sharded(
        Scheme::EcnSharp(None),
        0.0,
        None,
        20,
        7,
        1,
        sup,
        true, // schedule the self-rescheduling drill event
    )
    .expect_err("the zero-delay cycle must trip the progress guard");
    match err {
        SimError::Livelock {
            events_at_instant,
            budget,
            ..
        } => {
            assert_eq!(budget, 1_000);
            assert!(events_at_instant > budget);
        }
        other => panic!("expected Livelock, got {other:?}"),
    }
    assert!(
        !err.retryable(),
        "guard trips reproduce; retrying wastes time"
    );
    assert!(err.to_jsonl().contains("\"type\":\"Livelock\""));
}

#[test]
fn stall_detector_trips_on_withheld_shard_window() {
    let mut sup = Supervision::armed();
    sup.stall_rounds = Some(4);
    sup.inject_stall = true; // every shard skips window processing
    let err =
        try_run_chaos_leaf_spine_sharded(Scheme::EcnSharp(None), 0.0, None, 20, 7, 2, sup, false)
            .expect_err("frozen windows must trip the barrier-stall detector");
    match &err {
        SimError::BarrierStall { budget, shards, .. } => {
            assert_eq!(*budget, 4);
            assert_eq!(shards.len(), 2, "one diagnostic per shard");
            assert!(shards[0].shard < shards[1].shard, "diags sorted");
            assert!(shards.iter().any(|d| d.pending > 0));
        }
        other => panic!("expected BarrierStall, got {other:?}"),
    }
    assert!(err.to_jsonl().contains("\"type\":\"BarrierStall\""));
}

#[test]
fn mem_budget_trips_on_one_event_ceiling() {
    let sup = Supervision {
        event_ceiling: Some(1),
        ..Supervision::default()
    };
    let err = chaos_row(7, 1, sup).expect_err("a 1-event budget must trip instantly");
    match err {
        SimError::MemBudgetExceeded { breach, .. } => {
            assert_eq!(breach.component, MemComponent::EventQueue);
            assert_eq!(breach.ceiling, 1);
            assert!(breach.live > 1);
        }
        other => panic!("expected MemBudgetExceeded, got {other:?}"),
    }
}

#[test]
fn mem_budget_trips_sharded_too() {
    let sup = Supervision {
        event_ceiling: Some(1),
        ..Supervision::default()
    };
    let err = chaos_row(7, 2, sup).expect_err("the ceiling is distributed to every shard");
    assert!(
        matches!(err, SimError::MemBudgetExceeded { .. }),
        "got {err:?}"
    );
}

/// Resume skips exactly the journaled points and recomputes the rest.
#[test]
fn resume_skips_journaled_points() {
    let dir = std::env::temp_dir().join("ecnsharp_supervision_resume");
    let _ = std::fs::remove_dir_all(&dir);
    let journal = dir.join("sweep.journal.jsonl");
    let items: Vec<u32> = vec![10, 20, 30];
    let id_of = |x: &u32| format!("pt-{x}");
    let seed_of = |x: &u32| u64::from(*x);

    // Interrupted first run: only point 20 made it into the journal.
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(
        &journal,
        "{\"point\":\"pt-20\",\"seed\":20,\"status\":\"ok\"}\n",
    )
    .expect("seed journal");

    let cfg = SweepConfig {
        journal: Some(journal.clone()),
        resume: true,
        retries: 0,
    };
    let report = supervised_map(items, &cfg, id_of, seed_of, |x| Ok(*x * 2));
    assert_eq!((report.completed, report.failed, report.skipped), (2, 0, 1));
    assert!(matches!(report.points[0], PointStatus::Done(20)));
    assert!(matches!(report.points[1], PointStatus::SkippedResumed));
    assert!(matches!(report.points[2], PointStatus::Done(60)));
    assert_eq!(
        report.summary_line(),
        "sweep: 2 completed, 0 failed, 1 retried, 1 skipped-resumed"
            .replace("1 retried", "0 retried")
    );

    // The completed points were appended, so a third run skips everything.
    let rerun = supervised_map(vec![10u32, 20, 30], &cfg, id_of, seed_of, |_| {
        Err::<u32, _>(SimError::InvariantViolation {
            msg: "must not re-run a journaled point".into(),
        })
    });
    assert_eq!((rerun.completed, rerun.failed, rerun.skipped), (0, 0, 3));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A retryable failure (worker panic) is re-run with the same seed and
/// can succeed on the second attempt; deterministic guard trips are not
/// retried.
#[test]
fn retry_policy_reruns_retryable_failures_once() {
    let first_attempts = AtomicU32::new(0);
    let cfg = SweepConfig {
        journal: None,
        resume: false,
        retries: 1,
    };
    let report = supervised_map(
        vec![0u32, 1, 2],
        &cfg,
        |x| format!("pt-{x}"),
        |x| u64::from(*x),
        |x| {
            if *x == 1 && first_attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                return Err(SimError::WorkerPanic {
                    msg: "transient".into(),
                });
            }
            Ok(*x)
        },
    );
    assert_eq!((report.completed, report.failed, report.retried), (3, 0, 1));

    // Non-retryable: a guard trip fails on the first attempt despite the
    // retry budget.
    let report = supervised_map(
        vec![0u32],
        &cfg,
        |x| format!("pt-{x}"),
        |x| u64::from(*x),
        |_| {
            Err::<u32, _>(SimError::InvariantViolation {
                msg: "deterministic".into(),
            })
        },
    );
    assert_eq!((report.completed, report.failed, report.retried), (0, 1, 0));
    match &report.points[0] {
        PointStatus::Failed { attempts, .. } => assert_eq!(*attempts, 1),
        other => panic!("expected Failed, got {other:?}"),
    }
}

/// Panics inside a supervised point become identity-carrying
/// `WorkerPanic` errors (point id + seed in the message).
#[test]
fn point_panics_carry_identity() {
    let cfg = SweepConfig {
        journal: None,
        resume: false,
        retries: 0,
    };
    let report = supervised_map(
        vec![5u32],
        &cfg,
        |x| format!("pt-{x}"),
        |x| 0xABC0 + u64::from(*x),
        |_| -> Result<u32, SimError> { panic!("boom") },
    );
    assert_eq!(report.failed, 1);
    match &report.points[0] {
        PointStatus::Failed { error, .. } => {
            let SimError::WorkerPanic { msg } = error else {
                panic!("expected WorkerPanic, got {error:?}");
            };
            assert!(msg.contains("pt-5"), "id in message: {msg}");
            assert!(msg.contains("0xabc5"), "seed in message: {msg}");
            assert!(msg.contains("boom"), "payload in message: {msg}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
}
