//! Golden regression pins for the cache-level host-path pass: figure
//! CSVs and a chaos-sweep point are pinned byte-identical to fixtures
//! captured from the engine *before* the packed `Packet` layout, pooled
//! per-switch rings, wheel-batched delayed ACKs, and the second calendar
//! horizon landed.
//!
//! The in-build equivalence suites (`shard_equivalence`,
//! `timer_equivalence`, `delack_equivalence`) compare two modes of the
//! same build, so a behaviour shift that hits *both* modes equally would
//! slip through them. These fixtures close that hole: they are a
//! snapshot of the pre-pass engine's actual output.
//!
//! Regenerate only after an *intentional* behaviour change:
//! `ECNSHARP_BLESS_GOLDEN=1 cargo test --release -p ecnsharp-experiments
//! --test golden_figures` — then audit the fixture diff like any other
//! code change.
//!
//! Single test in its own binary: it mutates process environment
//! (`ECNSHARP_SHARDS`, `ECNSHARP_RESULTS`), which would race with any
//! concurrently running test in the same process.

use ecnsharp_experiments::{
    figures, run_chaos_leaf_spine, ChaosResult, Scale, Scheme, DEFAULT_FAULT_SEED,
};
use ecnsharp_sim::Duration;
use ecnsharp_stats::FctSummary;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Render every field of a chaos result with bit-exact floats (`{:?}` on
/// f64 is the shortest round-trip form): two renders match iff the
/// underlying bits match.
fn render_chaos(r: &ChaosResult) -> String {
    let s = |x: &Option<FctSummary>| match x {
        Some(s) => format!("{},{:?},{:?},{:?}", s.count, s.avg, s.p50, s.p99),
        None => "-".to_string(),
    };
    format!(
        "{},{:?},{:?},{:?}|{}|{}|{}|{},{},{},{},{},{},{},{}\n",
        r.fct.overall.count,
        r.fct.overall.avg,
        r.fct.overall.p50,
        r.fct.overall.p99,
        s(&r.fct.short),
        s(&r.fct.medium),
        s(&r.fct.large),
        r.completed,
        r.failed,
        r.timeouts,
        r.ce_marks,
        r.fault_drops,
        r.corrupt_drops,
        r.burst_drops,
        r.no_route_drops,
    )
}

#[test]
fn engine_output_matches_prepass_golden() {
    // Keep the figure CSV side effect out of the working tree.
    let dir = std::env::temp_dir().join("ecnsharp_golden_figures");
    std::fs::create_dir_all(&dir).expect("temp results dir");
    std::env::set_var("ECNSHARP_RESULTS", &dir);
    std::env::remove_var("ECNSHARP_SHARDS");

    // The four pinned outputs: fig2 (testbed star threshold sweep), fig9
    // serial and under the sharded engine (leaf-spine grid — the pooled
    // rings' main consumer), and one adversarial chaos point (flapping
    // link + 1% GE burst loss crossing shard cuts).
    let mut outputs: Vec<(&str, String)> = Vec::new();
    outputs.push(("fig2_quick.csv", figures::fig2(Scale::Quick).to_csv()));
    outputs.push(("fig9_quick.csv", figures::fig9(Scale::Quick).to_csv()));
    for shards in [2u32, 4] {
        std::env::set_var("ECNSHARP_SHARDS", shards.to_string());
        let csv = figures::fig9(Scale::Quick).to_csv();
        std::env::remove_var("ECNSHARP_SHARDS");
        // Sharding is pinned against the *same* serial fixture: one file,
        // three engine configurations.
        outputs.push(("fig9_quick.csv", csv));
    }
    let chaos = run_chaos_leaf_spine(
        Scheme::EcnSharp(None),
        0.01,
        Some(Duration::from_micros(200)),
        40,
        DEFAULT_FAULT_SEED,
    );
    outputs.push(("chaos_point.txt", render_chaos(&chaos)));

    if std::env::var("ECNSHARP_BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        for (name, got) in &outputs {
            std::fs::write(golden_dir().join(name), got).expect("write fixture");
        }
        eprintln!(
            "blessed {} fixtures into {}",
            outputs.len(),
            golden_dir().display()
        );
        return;
    }

    for (i, (name, got)) in outputs.iter().enumerate() {
        let path = golden_dir().join(name);
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run with ECNSHARP_BLESS_GOLDEN=1 \
                 on a known-good engine to capture it",
                path.display()
            )
        });
        assert_eq!(
            got, &want,
            "output #{i} ({name}) drifted from the pre-pass golden fixture; \
             if the change is intentional, re-bless and audit the diff"
        );
    }
}
