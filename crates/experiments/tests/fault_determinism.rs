//! The fault-injection acceptance checks: a chaos point (flapping link +
//! 1% Gilbert–Elliott burst loss) replays byte-identically from the same
//! seed, and a permanently-down last hop terminates — flows abort with
//! `Failed` instead of retrying forever.

use ecnsharp_aqm::DropTail;
use ecnsharp_experiments::{run_chaos_leaf_spine, ChaosResult, Scheme};
use ecnsharp_net::topology::dumbbell;
use ecnsharp_net::{FlowCmd, FlowId, FlowOutcome, PortConfig};
use ecnsharp_sim::{Duration, Rate, SimTime};
use ecnsharp_stats::FctSummary;
use ecnsharp_transport::{TcpConfig, TcpStack};

/// Render every field of a chaos result with bit-exact floats (`{:?}` on
/// f64 is the shortest round-trip form): two renders match iff the
/// underlying bits match.
fn render(r: &ChaosResult) -> String {
    let s = |x: &Option<FctSummary>| match x {
        Some(s) => format!("{},{:?},{:?},{:?}", s.count, s.avg, s.p50, s.p99),
        None => "-".to_string(),
    };
    format!(
        "{},{:?},{:?},{:?}|{}|{}|{}|{},{},{},{},{},{},{},{}",
        r.fct.overall.count,
        r.fct.overall.avg,
        r.fct.overall.p50,
        r.fct.overall.p99,
        s(&r.fct.short),
        s(&r.fct.medium),
        s(&r.fct.large),
        r.completed,
        r.failed,
        r.timeouts,
        r.ce_marks,
        r.fault_drops,
        r.corrupt_drops,
        r.burst_drops,
        r.no_route_drops,
    )
}

#[test]
fn chaos_point_is_replay_identical() {
    let run = || {
        run_chaos_leaf_spine(
            Scheme::EcnSharp(None),
            0.01,
            Some(Duration::from_micros(200)),
            40,
            42,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(
        render(&a),
        render(&b),
        "same seed must replay byte-identically under flaps + burst loss"
    );
    assert!(a.burst_drops > 0, "the GE process must actually fire");
    assert_eq!(a.completed + a.failed, 40);
}

#[test]
fn permanently_down_last_hop_fails_flows() {
    let plain = || PortConfig::fifo(1_000_000, Box::new(DropTail::new()));
    let mut d = dumbbell(
        11,
        Rate::from_gbps(10),
        Rate::from_gbps(10),
        Duration::from_micros(5),
        TcpStack::boxed(TcpConfig::dctcp()),
        TcpStack::boxed(TcpConfig::dctcp()),
        plain,
        plain(),
    );
    // The receiver's last hop goes down before the flow starts and never
    // comes back.
    d.net.set_link_up(d.s2, d.b, false);
    d.net.schedule_flow(
        SimTime::ZERO,
        FlowCmd {
            flow: FlowId(1),
            src: d.a,
            dst: d.b,
            size: 100_000,
            class: 0,
            extra_delay: Duration::ZERO,
        },
    );
    // Terminates: the sender gives up after `max_rto_retries` instead of
    // backing off forever.
    d.net.run_until_idle();
    let recs = d.net.records();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].outcome, FlowOutcome::Failed);
    assert_eq!(recs[0].timeouts, TcpConfig::dctcp().max_rto_retries);
    assert_eq!(d.net.unfinished_flows(), 0);
    let perf = d.net.perf();
    assert_eq!(perf.flows_failed, 1);
    assert!(
        perf.no_route_drops > 0,
        "packets towards the dead hop are counted as no-route discards"
    );
}
