//! The timer wheel is an optimization, not a behaviour change: the wheel
//! and legacy backends must produce byte-identical figure CSVs, and the
//! wheel must do so while popping strictly fewer events (the legacy
//! backend's stale epoch-filtered timers never enter the queue).
//!
//! Single test in its own binary: it mutates process environment
//! (`ECNSHARP_TIMER_BACKEND`, `ECNSHARP_RESULTS`), which would race with
//! any concurrently running test in the same process.

use ecnsharp_experiments::{figures, perf, Scale};

/// Run fig2's threshold sweep under `backend` and return its rendered CSV
/// plus the engine counters the run generated.
fn run_fig2(backend: &str) -> (String, perf::Snapshot) {
    std::env::set_var("ECNSHARP_TIMER_BACKEND", backend);
    let t = perf::timed(|| figures::fig2(Scale::Quick));
    (t.result.to_csv(), t.perf)
}

#[test]
fn wheel_and_legacy_backends_are_equivalent() {
    // Keep the figure CSV side effect out of the working tree.
    let dir = std::env::temp_dir().join("ecnsharp_timer_equivalence");
    std::fs::create_dir_all(&dir).expect("temp results dir");
    std::env::set_var("ECNSHARP_RESULTS", &dir);

    let (csv_legacy, perf_legacy) = run_fig2("legacy");
    let (csv_wheel, perf_wheel) = run_fig2("wheel");

    assert_eq!(csv_legacy, csv_wheel, "timer backend changed figure output");

    // Same work, fewer queue events: arms are identical (the wheel shares
    // the legacy seq counter), but stale legacy timers pop for nothing.
    assert_eq!(perf_legacy.packets_forwarded, perf_wheel.packets_forwarded);
    assert_eq!(perf_legacy.ce_marks, perf_wheel.ce_marks);
    assert!(
        perf_wheel.events_popped < perf_legacy.events_popped,
        "wheel must pop strictly fewer events: wheel {} vs legacy {}",
        perf_wheel.events_popped,
        perf_legacy.events_popped
    );
    // The wheel actually ran: timers were armed and re-arms suppressed
    // stale deadlines in place.
    assert!(perf_wheel.timers_armed > 0);
    assert!(perf_wheel.timers_stale_suppressed > 0);
    assert!(perf_wheel.timers_fired <= perf_wheel.timers_armed);
    // The legacy run never touched the wheel.
    assert_eq!(perf_legacy.timers_armed, 0);
}
