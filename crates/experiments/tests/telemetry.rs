//! Telemetry determinism: attaching subscribers must never change
//! simulation results, and identical runs must produce byte-identical
//! telemetry. Together with `tests/determinism.rs` this pins the
//! "observation is free" contract OBSERVABILITY.md promises.

use ecnsharp_experiments::{
    run_incast_micro_with, run_incast_micro_with_subscriber, run_testbed_star,
    run_testbed_star_with_subscriber, FctScenario, IncastTimeline, Scheme,
};
use ecnsharp_sim::Duration;
use ecnsharp_telemetry::{HistogramRecorder, JsonlWriter, MetricsAggregator, TimelineSampler};
use ecnsharp_workload::dists;

fn scenario(seed: u64) -> FctScenario {
    FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.5, 40, seed)
}

/// The full subscriber stack attached to a run must leave every figure
/// number byte-identical to the detached run: subscribers observe the
/// event stream, they never feed back into it.
#[test]
fn attached_subscribers_do_not_change_figures() {
    let (fct_detached, stats_detached) = run_testbed_star(&scenario(11));
    let sub = (
        MetricsAggregator::new(),
        (
            HistogramRecorder::new(),
            (
                TimelineSampler::new(Duration::from_micros(50)),
                JsonlWriter::new(std::io::sink()),
            ),
        ),
    );
    let (fct_attached, stats_attached, sub) = run_testbed_star_with_subscriber(&scenario(11), sub);
    assert_eq!(
        format!("{fct_detached:?}"),
        format!("{fct_attached:?}"),
        "FCT breakdown must not depend on observation"
    );
    assert_eq!(
        format!("{stats_detached:?}"),
        format!("{stats_attached:?}"),
        "port stats must not depend on observation"
    );
    // With telemetry compiled in, the stack must actually have observed
    // the run (guards against emission sites silently rotting away).
    #[cfg(feature = "telemetry")]
    {
        use ecnsharp_telemetry::Metric;
        let (metrics, (hist, (timeline, json))) = sub;
        assert!(metrics.get(Metric::PacketsEnqueued) > 0);
        assert!(metrics.get(Metric::SojournSamples) > 0);
        assert!(metrics.get(Metric::FlowsCompleted) > 0);
        assert!(hist.sojourn_ns.count() > 0);
        assert!(hist.fct.iter().map(|h| h.count()).sum::<u64>() > 0);
        assert!(timeline.rows() > 0);
        assert!(!json.had_error());
    }
    #[cfg(not(feature = "telemetry"))]
    drop(sub);
}

/// The §5.4 incast microscope, attached vs detached: the queue series —
/// the exact rows fig10.csv renders — must be byte-identical.
#[test]
fn incast_series_identical_attached_and_detached() {
    let detached = run_incast_micro_with(Scheme::EcnSharp(None), 8, 5, IncastTimeline::Compressed);
    let (attached, _) = run_incast_micro_with_subscriber(
        Scheme::EcnSharp(None),
        8,
        5,
        IncastTimeline::Compressed,
        (
            MetricsAggregator::new(),
            TimelineSampler::new(Duration::from_micros(100)),
        ),
    );
    assert_eq!(
        format!("{:?}", detached.series),
        format!("{:?}", attached.series)
    );
    assert_eq!(
        format!("{:?}", detached.query_fct),
        format!("{:?}", attached.query_fct)
    );
    assert_eq!(detached.drops, attached.drops);
}

/// Two identical runs must produce identical histograms and timeline CSVs
/// — telemetry is a pure function of the (deterministic) event stream.
#[test]
fn identical_runs_produce_identical_telemetry() {
    let run = || {
        run_incast_micro_with_subscriber(
            Scheme::EcnSharp(None),
            8,
            5,
            IncastTimeline::Compressed,
            (
                HistogramRecorder::new(),
                TimelineSampler::new(Duration::from_micros(100)),
            ),
        )
    };
    let (_, (h1, t1)) = run();
    let (_, (h2, t2)) = run();
    assert_eq!(h1, h2, "histograms must be run-to-run identical");
    assert_eq!(t1.ports_csv(), t2.ports_csv());
    assert_eq!(t1.flows_csv(), t2.flows_csv());
}

/// Histogram recorders merged across `parallel_map`-style workers must be
/// identical regardless of merge order (associativity at the recorder
/// level; the bucket-level property lives in the telemetry crate's
/// proptests).
#[test]
fn worker_histograms_merge_order_independent() {
    let per_seed: Vec<HistogramRecorder> = [3u64, 4, 5]
        .iter()
        .map(|&seed| {
            let (_, _, h) =
                run_testbed_star_with_subscriber(&scenario(seed), HistogramRecorder::new());
            h
        })
        .collect();
    let mut forward = HistogramRecorder::new();
    for h in &per_seed {
        forward.merge(h).unwrap();
    }
    let mut reverse = HistogramRecorder::new();
    for h in per_seed.iter().rev() {
        reverse.merge(h).unwrap();
    }
    assert_eq!(forward, reverse);
}
