//! Perf counters must be observers, not participants: reading them (or
//! not) around a run must leave results bit-identical. These tests pin
//! that property at the level the figures consume — FCT summary rows and
//! port mark/drop statistics rendered to CSV text.

use ecnsharp_experiments::{
    perf, run_incast_micro_with, run_testbed_star, FctScenario, IncastTimeline, Scheme,
};
use ecnsharp_stats::FctBreakdown;
use ecnsharp_workload::dists;

/// Render a breakdown + port stats to a CSV row with bit-exact floats
/// (`{:?}` on f64 prints the shortest round-trip representation, so two
/// rows match iff the underlying bits match).
fn csv_row(fct: &FctBreakdown, stats: &ecnsharp_net::PortStats) -> String {
    let s = |x: &Option<ecnsharp_stats::FctSummary>| match x {
        Some(s) => format!("{},{:?},{:?},{:?}", s.count, s.avg, s.p50, s.p99),
        None => "-".to_string(),
    };
    format!(
        "{},{},{},{},{:?},{},{},{},{},{},{}",
        fct.overall.count,
        s(&fct.short),
        s(&fct.large),
        s(&fct.medium),
        fct.overall.avg,
        fct.timeouts,
        stats.enq_marks,
        stats.deq_marks,
        stats.tail_drops,
        stats.aqm_enq_drops,
        stats.dequeued,
    )
}

fn scenario() -> FctScenario {
    FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.6, 120, 42)
}

#[test]
fn counters_read_vs_ignored_yield_identical_csv_rows() {
    // Run 1: counters completely ignored (reset only, never read).
    perf::reset();
    let (fct_a, stats_a) = run_testbed_star(&scenario());
    let row_a = csv_row(&fct_a, &stats_a);

    // Run 2: counters read aggressively — before, around (via `timed`),
    // and after the run — with stale state from an unrelated run left in
    // the accumulator to prove global counter state cannot leak into
    // results.
    let _ = run_incast_micro_with(Scheme::DctcpRedTail, 4, 7, IncastTimeline::Compressed);
    let _ = perf::snapshot();
    let t = perf::timed(|| run_testbed_star(&scenario()));
    let after = perf::snapshot();
    let (fct_b, stats_b) = t.result;
    let row_b = csv_row(&fct_b, &stats_b);

    assert_eq!(row_a, row_b, "reading perf counters perturbed results");
    // And the counters themselves did observe the run.
    assert!(t.perf.events_popped > 0);
    assert!(t.perf.packets_forwarded > 0);
    assert_eq!(
        after, t.perf,
        "no simulation ran between timed() and snapshot()"
    );
}

#[test]
fn same_seed_same_counters() {
    // Determinism extends to the counters: identical seeds produce
    // identical event/packet/mark totals, not just identical results.
    let t1 = perf::timed(|| {
        run_incast_micro_with(Scheme::EcnSharp(None), 8, 3, IncastTimeline::Compressed)
    });
    let t2 = perf::timed(|| {
        run_incast_micro_with(Scheme::EcnSharp(None), 8, 3, IncastTimeline::Compressed)
    });
    assert_eq!(t1.perf.events_pushed, t2.perf.events_pushed);
    assert_eq!(t1.perf.events_popped, t2.perf.events_popped);
    assert_eq!(t1.perf.peak_pending, t2.perf.peak_pending);
    assert_eq!(t1.perf.packets_forwarded, t2.perf.packets_forwarded);
    assert_eq!(t1.perf.ce_marks, t2.perf.ce_marks);
    assert_eq!(t1.perf.drops, t2.perf.drops);
    assert_eq!(t1.perf.sim_nanos, t2.perf.sim_nanos);
    // Byte-identical figure rows too.
    assert_eq!(
        format!("{:?},{}", t1.result.standing_pkts, t1.result.drops),
        format!("{:?},{}", t2.result.standing_pkts, t2.result.drops),
    );
}
