//! Wheel-batched delayed-ACK bookkeeping is an optimization, not a
//! behaviour change: with `delack_count > 1` the wheel backend keeps one
//! long-lived token per receiver (no cancel per ACK, no re-arm per packet)
//! while the legacy backend runs the un-batched per-packet epoch protocol.
//! Both must produce byte-identical figure CSVs at `ECNSHARP_DELACK=2`.
//!
//! Single test in its own binary: it mutates process environment
//! (`ECNSHARP_DELACK`, `ECNSHARP_TIMER_BACKEND`, `ECNSHARP_RESULTS`),
//! which would race with any concurrently running test in the same
//! process.

use ecnsharp_experiments::{figures, perf, Scale};

/// Run fig2's threshold sweep under `backend` with delayed ACKs enabled
/// and return its rendered CSV plus the engine counters.
fn run_fig2_delack2(backend: &str) -> (String, perf::Snapshot) {
    std::env::set_var("ECNSHARP_TIMER_BACKEND", backend);
    let t = perf::timed(|| figures::fig2(Scale::Quick));
    (t.result.to_csv(), t.perf)
}

#[test]
fn batched_delack_matches_unbatched_reference() {
    // Keep the figure CSV side effect out of the working tree.
    let dir = std::env::temp_dir().join("ecnsharp_delack_equivalence");
    std::fs::create_dir_all(&dir).expect("temp results dir");
    std::env::set_var("ECNSHARP_RESULTS", &dir);
    std::env::set_var("ECNSHARP_DELACK", "2");

    let (csv_legacy, perf_legacy) = run_fig2_delack2("legacy");
    let (csv_wheel, perf_wheel) = run_fig2_delack2("wheel");
    std::env::remove_var("ECNSHARP_DELACK");

    assert_eq!(
        csv_legacy, csv_wheel,
        "delack batching changed figure output"
    );

    // Identical traffic, identical marking.
    assert_eq!(perf_legacy.packets_forwarded, perf_wheel.packets_forwarded);
    assert_eq!(perf_legacy.ce_marks, perf_wheel.ce_marks);

    // The batched run actually exercised the wheel, and the legacy
    // reference never touched it.
    assert!(perf_wheel.timers_armed > 0);
    assert!(perf_wheel.timers_fired <= perf_wheel.timers_armed);
    assert_eq!(perf_legacy.timers_armed, 0);

    // Batching evidence: the un-batched legacy protocol pushes one queue
    // event per delack arm (stale epochs pop for nothing), so the wheel
    // run must get through the same workload with strictly fewer pops.
    assert!(
        perf_wheel.events_popped < perf_legacy.events_popped,
        "batched wheel must pop strictly fewer events: wheel {} vs legacy {}",
        perf_wheel.events_popped,
        perf_legacy.events_popped
    );
    // One long-lived token per receiver quiet period, not one arm per
    // in-order packet: arms must be far rarer than forwarded packets.
    assert!(
        perf_wheel.timers_armed * 4 < perf_wheel.packets_forwarded,
        "batched delack armed {} timers for {} packets",
        perf_wheel.timers_armed,
        perf_wheel.packets_forwarded
    );
}
