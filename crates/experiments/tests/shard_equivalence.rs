//! The sharded conservative-PDES engine is an execution mode, not a
//! model change: for the same seed, a run partitioned over worker
//! threads must produce byte-identical results to the serial event loop
//! — figure CSVs, chaos-sweep ledgers, and scheme-internal counters
//! alike. CONCURRENCY.md carries the argument; these tests pin it.
//!
//! The figure-level test drives the real `ECNSHARP_SHARDS` knob through
//! `figures::fig9` (the leaf-spine sweep every load/scheme grid uses).
//! Everything else goes through the explicit `run_*_sharded` variants so
//! no other test in this binary depends on mutated process environment.

use ecnsharp_experiments::{
    figures, run_chaos_leaf_spine_sharded, run_fat_tree_sharded, run_leaf_spine_sharded,
    FctScenario, Scale, Scheme, SchemeParams,
};
use ecnsharp_workload::{dists, RttVariation};

/// Leaf-spine FCT sweep point, serial vs explicit shard counts. `{:?}`
/// on `FctBreakdown` prints shortest-round-trip floats, so string
/// equality is bit equality.
#[test]
fn leaf_spine_fct_is_shard_invariant() {
    let mut sc = FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.6, 160, 53);
    sc.rtt = RttVariation::sim_3x();
    let serial = format!("{:?}", run_leaf_spine_sharded(&sc, 2, 2, 4, 1));
    assert_eq!(
        serial,
        format!("{:?}", run_leaf_spine_sharded(&sc, 2, 2, 4, 2)),
        "2 shards"
    );
    // 4 requested, clamped to the 2-leaf ceiling — the documented
    // sweep-friendly behaviour of the knob.
    assert_eq!(
        serial,
        format!("{:?}", run_leaf_spine_sharded(&sc, 2, 2, 4, 4)),
        "4 shards (clamped)"
    );
}

/// Fat-tree (k=4, 16 hosts, cross-pod traffic over the core) FCT, serial
/// vs per-pod cuts.
#[test]
fn fat_tree_fct_is_shard_invariant() {
    let mut sc = FctScenario::testbed(Scheme::EcnSharp(None), dists::web_search(), 0.5, 120, 7);
    sc.rtt = RttVariation::sim_3x();
    let serial = format!("{:?}", run_fat_tree_sharded(&sc, 4, 1));
    assert_eq!(
        serial,
        format!("{:?}", run_fat_tree_sharded(&sc, 4, 2)),
        "2 shards"
    );
    assert_eq!(
        serial,
        format!("{:?}", run_fat_tree_sharded(&sc, 4, 4)),
        "4 shards"
    );
}

/// Chaos-sweep outputs — fault application (flaps, GE burst loss, route
/// rebuilds) crosses shard boundaries, so this is the adversarial case
/// for the epoch/straggler protocol. The full `ChaosResult` ledger
/// (FCT + every drop/abort counter) must match field for field.
#[test]
fn chaos_sweep_is_shard_invariant() {
    for (loss, flap) in [
        (0.0, None),
        (0.01, Some(ecnsharp_sim::Duration::from_micros(200))),
    ] {
        let serial = format!(
            "{:?}",
            run_chaos_leaf_spine_sharded(Scheme::EcnSharp(None), loss, flap, 60, 0xC0DE, 1)
        );
        for shards in [2u32, 4] {
            assert_eq!(
                serial,
                format!(
                    "{:?}",
                    run_chaos_leaf_spine_sharded(
                        Scheme::EcnSharp(None),
                        loss,
                        flap,
                        60,
                        0xC0DE,
                        shards
                    )
                ),
                "loss={loss} flap={flap:?} shards={shards}"
            );
        }
    }
}

/// Figure-level pinning through the real env knob: fig9's quick CSV must
/// be byte-identical under `ECNSHARP_SHARDS` ∈ {unset, 2, 4}. Runs
/// last-alphabetically irrelevant — the knob is only read by this test's
/// own figure calls (every other test here uses the explicit variants),
/// so the mutation cannot leak meaning into concurrent tests.
#[test]
fn sharded_figure_csv_is_byte_identical() {
    let dir = std::env::temp_dir().join("ecnsharp_shard_equivalence");
    std::fs::create_dir_all(&dir).expect("temp results dir");
    std::env::set_var("ECNSHARP_RESULTS", &dir);

    std::env::remove_var("ECNSHARP_SHARDS");
    let serial = figures::fig9(Scale::Quick).to_csv();
    for shards in ["2", "4"] {
        std::env::set_var("ECNSHARP_SHARDS", shards);
        assert_eq!(
            serial,
            figures::fig9(Scale::Quick).to_csv(),
            "ECNSHARP_SHARDS={shards} changed fig9"
        );
    }
    std::env::remove_var("ECNSHARP_SHARDS");
}

/// White-box property: the shard count never changes ECN♯'s `MarkStats`
/// on any switch port — the marker sees the exact same packet sequence
/// at the exact same sojourn times regardless of partitioning.
mod mark_stats_prop {
    use ecnsharp_aqm::DropTail;
    use ecnsharp_core::{EcnSharp, MarkStats};
    use ecnsharp_net::topology::leaf_spine;
    use ecnsharp_net::{FlowCmd, FlowId, Network, NodeId, PortConfig, ShardSubscriber};
    use ecnsharp_sim::{Duration, Rate, SimTime};
    use ecnsharp_transport::{TcpConfig, TcpStack};
    use proptest::prelude::*;

    use super::*;

    /// 2 spines × 4 leaves × 2 hosts with ECN♯ on every switch egress,
    /// DCTCP endpoints, and a deterministic cross-leaf flow pattern.
    /// Returns every switch port's `MarkStats` (ports without an ECN♯
    /// marker never appear — hosts use DropTail NICs).
    fn mark_stats(seed: u64, shards: u32) -> Vec<(usize, usize, MarkStats)> {
        let params = SchemeParams::derive(&RttVariation::sim_3x(), Rate::from_gbps(10));
        let scheme = Scheme::EcnSharp(None);
        let ls = leaf_spine(
            seed,
            2,
            4,
            2,
            Rate::from_gbps(10),
            Rate::from_gbps(10),
            Duration::from_micros(1),
            |_| TcpStack::boxed(TcpConfig::dctcp()),
            || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
            || params.port(&scheme, 200_000, 0xBEEF),
        );
        let plan = (shards >= 2).then(|| ls.shard_plan(shards));
        let mut net = ls.net;
        let n = ls.hosts.len() as u64;
        for f in 0..4 * n {
            let (src, dst) = ((f % n) as usize, ((f * 3 + 2) % n) as usize);
            if src / 2 == dst / 2 {
                continue; // keep flows cross-leaf so they meet the fabric
            }
            net.schedule_flow(
                SimTime::from_nanos(157 * f),
                FlowCmd {
                    flow: FlowId(1 + f),
                    src: ls.hosts[src],
                    dst: ls.hosts[dst],
                    size: 1460 * (2 + f % 14),
                    class: 0,
                    extra_delay: Duration::ZERO,
                },
            );
        }
        match plan {
            Some(plan) => {
                net.run_sharded_until_idle(&plan);
            }
            None => {
                net.run_until_idle();
            }
        }
        assert_eq!(net.unfinished_flows(), 0, "all flows complete");
        collect(&net)
    }

    fn collect<S: ShardSubscriber>(net: &Network<S>) -> Vec<(usize, usize, MarkStats)> {
        let mut out = Vec::new();
        for node in 0..net.node_count() {
            for port in 0..net.port_count(NodeId(node)) {
                if let Some(aqm) = net.aqm_as_any(NodeId(node), port) {
                    if let Some(m) = aqm.downcast_ref::<EcnSharp>() {
                        out.push((node, port, m.stats()));
                    }
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Serial and n-shard runs of the same seed produce identical
        /// `MarkStats` on every switch port, and the workload actually
        /// exercises the marker (some port saw packets).
        #[test]
        fn prop_shard_count_never_changes_mark_stats(
            seed in 0u64..1_000_000,
            shards in 2u32..5,
        ) {
            let serial = mark_stats(seed, 1);
            prop_assert!(
                serial.iter().any(|(_, _, m)| m.packets > 0),
                "workload never reached an ECN# port"
            );
            let sharded = mark_stats(seed, shards);
            prop_assert_eq!(serial, sharded);
        }
    }
}
