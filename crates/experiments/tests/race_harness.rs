//! Shuffled-schedule race harness: the shard-safety contract, tested at
//! runtime.
//!
//! The static side of the contract lives in `cargo xtask lint` (rules
//! R7–R10: no shared statics, no `!Send` cells on the boundary, no
//! order-sensitive unordered iteration) and in the `Send`/`Sync`
//! assertions each sim-facing crate carries. This harness attacks the same
//! contract dynamically: it drives [`try_parallel_map`] under many
//! deliberately perturbed worker interleavings — per-item jitter sleeps
//! reshuffle which thread grabs which item and when results land — and
//! asserts the merged outputs are **byte-identical** across every
//! schedule and equal to a serial reference. Any hidden shared state,
//! order-dependent merge, or cross-worker coupling shows up as a byte
//! diff here long before a sharded engine (ROADMAP item 1) would turn it
//! into a heisenbug.

use ecnsharp_experiments::{
    run_testbed_star_with_subscriber, try_parallel_map, FctScenario, Scheme,
};
use ecnsharp_sim::hash_mix;
use ecnsharp_telemetry::{HistogramRecorder, MetricsAggregator};
use ecnsharp_workload::dists;
use std::time::Duration as HostDuration;

/// Deterministic per-(schedule, item) jitter in microseconds. Sleeping a
/// different pattern each schedule makes the OS hand items to workers in
/// a different order and lets result writes land in a different order —
/// without touching the items' own computation.
fn jitter_us(schedule_seed: u64, item: u64) -> u64 {
    hash_mix(schedule_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ item) % 200
}

/// One synthetic work item: a deterministic function of the item index
/// alone, producing the two mergeable telemetry accumulators the figure
/// sweeps merge across workers.
fn synth_item(item: u64) -> (MetricsAggregator, HistogramRecorder) {
    let mut hist = HistogramRecorder::new();
    let metrics = MetricsAggregator::new();
    let mut x = hash_mix(item);
    for _ in 0..64 {
        x = hash_mix(x);
        hist.sojourn_ns.record(x % 1_000_000);
        hist.queue_depth_bytes.record(x % 4_000_000);
        hist.fct[(x % 3) as usize].record(x % 10_000_000);
    }
    (metrics, hist)
}

/// Merge per-item accumulators **in item order** (never arrival order)
/// and serialize everything to bytes.
fn merge_to_bytes(parts: &[(MetricsAggregator, HistogramRecorder)]) -> String {
    let mut metrics = MetricsAggregator::new();
    let mut hist = HistogramRecorder::new();
    for (m, h) in parts {
        metrics.merge(m);
        hist.merge(h).expect("uniform precision");
    }
    let mut out = metrics.to_csv();
    out.push_str(&hist.sojourn_ns.to_csv());
    out.push_str(&hist.queue_depth_bytes.to_csv());
    for h in &hist.fct {
        out.push_str(&h.to_csv());
    }
    out
}

/// Synthetic leg: 24 items × 12 shuffled schedules. Fast (no simulation),
/// so it can afford many interleavings.
#[test]
fn shuffled_schedules_merge_byte_identical_synthetic() {
    const ITEMS: u64 = 24;
    const SCHEDULES: u64 = 12;

    let serial: Vec<_> = (0..ITEMS).map(synth_item).collect();
    let reference = merge_to_bytes(&serial);

    for schedule in 0..SCHEDULES {
        let out = try_parallel_map((0..ITEMS).collect(), |&item| {
            std::thread::sleep(HostDuration::from_micros(jitter_us(schedule, item)));
            synth_item(item)
        });
        assert!(
            out.panics.is_empty(),
            "schedule {schedule}: {:?}",
            out.panics
        );
        let parts: Vec<_> = out
            .results
            .into_iter()
            .map(|r| r.expect("no panics, so every slot is filled"))
            .collect();
        assert_eq!(
            merge_to_bytes(&parts),
            reference,
            "schedule {schedule} produced different bytes"
        );
    }
}

/// Real-simulation leg: a quick 6-point testbed sweep (2 schemes × 3
/// seeds), each point a full deterministic simulation with a
/// [`HistogramRecorder`] attached, repeated under 3 shuffled schedules.
/// The per-point FCT debug strings and the order-merged histograms must
/// be byte-identical across schedules.
#[test]
fn shuffled_schedules_keep_simulation_sweeps_byte_identical() {
    let points: Vec<(Scheme, u64)> = [Scheme::EcnSharp(None), Scheme::CoDel]
        .into_iter()
        .flat_map(|s| (7u64..10).map(move |seed| (s.clone(), seed)))
        .collect();

    let run_sweep = |schedule: u64| {
        let out = try_parallel_map(points.clone(), |(scheme, seed)| {
            std::thread::sleep(HostDuration::from_micros(jitter_us(schedule, *seed)));
            let sc = FctScenario::testbed(scheme.clone(), dists::web_search(), 0.5, 30, *seed);
            let (fct, stats, hist) =
                run_testbed_star_with_subscriber(&sc, HistogramRecorder::new());
            (format!("{fct:?}|{stats:?}"), hist)
        });
        assert!(out.panics.is_empty(), "{:?}", out.panics);
        let parts: Vec<_> = out
            .results
            .into_iter()
            .map(|r| r.expect("no panics, so every slot is filled"))
            .collect();
        let fcts: Vec<String> = parts.iter().map(|(f, _)| f.clone()).collect();
        let mut merged = HistogramRecorder::new();
        for (_, h) in &parts {
            merged.merge(h).expect("uniform precision");
        }
        let mut bytes = merged.sojourn_ns.to_csv();
        bytes.push_str(&merged.queue_depth_bytes.to_csv());
        (fcts, bytes)
    };

    let (fcts0, bytes0) = run_sweep(0);
    for schedule in 1..3u64 {
        let (fcts, bytes) = run_sweep(schedule);
        assert_eq!(
            fcts, fcts0,
            "per-point results diverged (schedule {schedule})"
        );
        assert_eq!(
            bytes, bytes0,
            "merged histograms diverged (schedule {schedule})"
        );
    }
}
