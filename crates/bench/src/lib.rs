//! # ecnsharp-bench
//!
//! Criterion benchmark crate. The actual benchmarks live in `benches/`:
//!
//! - `engine` — event-queue and end-to-end packet-forwarding throughput of
//!   the simulator core;
//! - `aqm_cost` — per-packet decision cost of every AQM, including the
//!   Tofino match-action pipeline (the §4 line-rate claim: the decision
//!   path is a handful of register accesses and one table lookup);
//! - `figures` — scaled-down regenerations of every paper table/figure so
//!   `cargo bench` exercises the complete reproduction matrix.
//!
//! This lib target exists to document the crate; it intentionally exports
//! nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
