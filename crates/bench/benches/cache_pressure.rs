//! Cache-level host-path pressure: the benches that motivated (and now
//! guard) the packed `Packet` layout and the pooled per-switch ring
//! storage.
//!
//! - `leaf_spine_working_set` is a fig9-shaped 2x2x4 leaf-spine run —
//!   the smallest workload whose live working set (per-port rings, the
//!   two-level calendar, per-flow transport state) outgrows L2, so it is
//!   where scattered per-port allocations actually cost.
//! - `packet_clone_churn` prices raw `Packet` copy/mutate bandwidth: the
//!   engine clones a packet on every hop (enqueue into a ring slot), so
//!   bytes-per-packet is a first-order term of forwarding throughput.
//! - `port_ring_churn/{fifo,pooled}` run the identical enqueue/drain
//!   schedule through a private-`VecDeque` port and an arena-pooled one.
//!   Single-port, the pooled ring pays a small indirection tax (~7%
//!   with one-cache-line slots and the register-screened overflow; it
//!   was ~15% before those). This pair bounds the tax so it cannot
//!   silently grow.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ecnsharp_aqm::{DctcpRed, DropTail};
use ecnsharp_experiments::{Scheme, SchemeParams};
use ecnsharp_net::topology::leaf_spine;
use ecnsharp_net::{Ecn, FlowId, Network, NodeId, Packet, PortConfig, RingArena};
use ecnsharp_sim::{Duration, Rate, Rng, SimTime};
use ecnsharp_transport::{TcpConfig, TcpStack};
use ecnsharp_workload::{dists, Pattern, RttVariation, TrafficSpec};
use std::hint::black_box;

const FLOWS: u64 = 150;
const SEED: u64 = 53;

/// Fig9's quick-scale leaf-spine (2 spines x 2 leaves x 4 hosts, ECN#
/// fabric, DCTCP endpoints, web-search all-to-all at 60% load), built and
/// scheduled in setup so the timed region is exactly the run phase.
fn leaf_spine_setup() -> Network {
    let rtt = RttVariation::sim_3x();
    let rate = Rate::from_gbps(10);
    let params = SchemeParams::derive(&rtt, rate);
    let scheme = Scheme::EcnSharp(None);
    let delay = Duration::from_nanos(rtt.min().as_nanos() / 12);
    let topo = leaf_spine(
        SEED,
        2,
        2,
        4,
        rate,
        rate,
        delay,
        |_| TcpStack::boxed(TcpConfig::dctcp()),
        || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
        || params.port(&scheme, 200_000, 0xFA7),
    );
    let spec = TrafficSpec {
        cdf: dists::web_search(),
        load: 0.6,
        bottleneck: rate,
        pattern: Pattern::AllToAll {
            hosts: topo.hosts.clone(),
        },
        rtt,
        class: 0,
        start: SimTime::ZERO,
    };
    let n_hosts = topo.hosts.len();
    let mut rng = Rng::seed_from_u64(SEED ^ 0x1EAF);
    let mean_gap = spec.mean_interarrival() / n_hosts as u64;
    let mut t = SimTime::ZERO;
    let mut net = topo.net;
    for f in 0..FLOWS {
        t += rng.exp_duration(mean_gap);
        let mut cmds = spec.generate(1, 1 + f, &mut rng);
        let (_, mut cmd) = cmds.pop().expect("one command per call");
        cmd.flow = FlowId(1 + f);
        net.schedule_flow(t, cmd);
    }
    net
}

fn bench_leaf_spine_working_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_pressure");
    g.sample_size(10);
    g.bench_function("leaf_spine_working_set", |b| {
        b.iter_batched(
            leaf_spine_setup,
            |mut net| {
                net.run_until_idle();
                black_box(net.steps())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_packet_clone_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_pressure");
    let n = 65_536u64;
    g.throughput(Throughput::Elements(n));
    // Clone + mutate + read back a packet working set several L2s wide:
    // the per-hop copy pattern of the forwarding path, isolated.
    g.bench_function("packet_clone_churn_64k", |b| {
        let pkts: Vec<Packet> = (0..n)
            .map(|i| {
                let mut p = Packet::data(FlowId(i % 512), NodeId(0), NodeId(1), i * 1_460, 1_460);
                p.set_ecn(Ecn::Ect);
                p
            })
            .collect();
        b.iter_batched(
            || pkts.clone(),
            |src| {
                let mut marked = 0u64;
                let mut copies: Vec<Packet> = Vec::with_capacity(src.len());
                for (i, p) in src.iter().enumerate() {
                    let mut q = p.clone();
                    if i % 7 == 0 {
                        q.set_ecn(Ecn::Ce);
                    }
                    q.set_class((i % 8) as u8);
                    marked += u64::from(q.ecn().is_ce());
                    copies.push(q);
                }
                let sum: u64 = copies.iter().map(|p| p.seq() + p.payload()).sum();
                black_box((marked, sum))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Drive one egress port through `n` enqueue/drain cycles (the
/// `telemetry_noop` schedule, minus the subscriber variable).
fn ring_churn(port: &mut ecnsharp_net::EgressPort, arena: &mut RingArena, n: u64) -> u64 {
    let (src, dst) = (NodeId(0), NodeId(1));
    let mut now = SimTime::ZERO;
    let mut popped = 0u64;
    let mut sub = ecnsharp_net::NoopSubscriber;
    for i in 0..n {
        port.bench_enqueue(
            now,
            Packet::data(FlowId(1), src, dst, i * 1_500, 1_500),
            arena,
            &mut sub,
        );
        if i % 8 == 7 {
            while let Some((_, tx)) = port.bench_next_tx(now, || 0.5, arena, &mut sub) {
                now += tx;
                popped += 1;
            }
        }
        now += Duration::from_nanos(100);
    }
    while let Some((_, tx)) = port.bench_next_tx(now, || 0.5, arena, &mut sub) {
        now += tx;
        popped += 1;
    }
    popped
}

fn bench_port_ring_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_pressure");
    g.sample_size(40);
    let n = 40_000u64;
    g.throughput(Throughput::Elements(n));
    let cfg = || PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(65_000)));
    g.bench_function("port_ring_churn_40k_fifo", |b| {
        b.iter_batched(
            || ecnsharp_net::port::bench_port(cfg()),
            |mut port| {
                let mut arena = RingArena::new();
                black_box(ring_churn(&mut port, &mut arena, black_box(n)))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("port_ring_churn_40k_pooled", |b| {
        b.iter_batched(
            || {
                let mut port = ecnsharp_net::port::bench_port(cfg());
                let mut arena = RingArena::new();
                port.bench_pool_ring(&mut arena);
                (port, arena)
            },
            |(mut port, mut arena)| black_box(ring_churn(&mut port, &mut arena, black_box(n))),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_leaf_spine_working_set,
    bench_packet_clone_churn,
    bench_port_ring_churn
);
criterion_main!(benches);
