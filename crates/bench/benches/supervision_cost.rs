//! Run-supervision overhead: the same 10 MB DCTCP dumbbell transfer with
//! guards off vs every watchdog and memory guard armed (but untriggered).
//! The armed path pays one branch and a counter per popped event
//! (`ProgressGuard::on_event`) plus the memory-breach poll per dispatch;
//! the claim (DESIGN.md "Run supervision") is that this stays within
//! measurement noise, so `bench-diff --check` holds armed within 3% of
//! off — as a same-run pair ratio on per-sample minima, not against the
//! committed baseline, because co-tenant bursts on a shared box move
//! absolute medians of a whole-simulation bench far beyond 3%.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ecnsharp_aqm::{DctcpRed, DropTail};
use ecnsharp_net::topology::{dumbbell, Dumbbell};
use ecnsharp_net::{FlowCmd, FlowId, PortConfig, Supervision};
use ecnsharp_sim::{Duration, Rate};
use ecnsharp_transport::{TcpConfig, TcpStack};
use std::hint::black_box;

fn rig() -> Dumbbell {
    dumbbell(
        1,
        Rate::from_gbps(40),
        Rate::from_gbps(10),
        Duration::from_micros(5),
        TcpStack::boxed(TcpConfig::dctcp()),
        TcpStack::boxed(TcpConfig::dctcp()),
        || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
        PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(65_000))),
    )
}

fn schedule_transfer(d: &mut Dumbbell, bytes: u64) {
    let (a, b) = (d.a, d.b);
    d.net.schedule_flow(
        d.net.now(),
        FlowCmd {
            flow: FlowId(d.net.records().len() as u64 + 1),
            src: a,
            dst: b,
            size: bytes,
            class: 0,
            extra_delay: Duration::ZERO,
        },
    );
}

fn bench_supervision_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("supervision_cost");
    g.sample_size(20);
    let mb = 10_000_000u64;
    g.throughput(Throughput::Bytes(mb));
    g.bench_function("dctcp_10mb_guards_off", |b| {
        b.iter_batched(
            rig,
            |mut d| {
                schedule_transfer(&mut d, mb);
                d.net.run_until_idle();
                black_box(d.net.steps())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("dctcp_10mb_guards_armed", |b| {
        b.iter_batched(
            rig,
            |mut d| {
                schedule_transfer(&mut d, mb);
                d.net.set_supervision(Supervision::armed());
                d.net
                    .try_run_until_idle()
                    .expect("armed-untriggered guards must not trip");
                black_box(d.net.steps())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_supervision_cost);
criterion_main!(benches);
