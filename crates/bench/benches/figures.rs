//! Scaled-down regenerations of every paper table/figure, so `cargo bench`
//! exercises the complete reproduction matrix end-to-end. Full-fidelity
//! runs live in the `ecnsharp-experiments` binaries (`--bin all`); these
//! benches use `Scale::Quick` workloads to stay in the seconds range while
//! still walking the identical code paths.

use criterion::{criterion_group, criterion_main, Criterion};
use ecnsharp_experiments::figures;
use ecnsharp_experiments::Scale;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    // Keep CSV side effects out of the repo during benches.
    std::env::set_var(
        "ECNSHARP_RESULTS",
        std::env::temp_dir().join("ecnsharp_bench_results"),
    );
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);

    g.bench_function("table1", |b| {
        b.iter(|| black_box(figures::table1(Scale::Quick)))
    });
    g.bench_function("fig2", |b| {
        b.iter(|| black_box(figures::fig2(Scale::Quick)))
    });
    g.bench_function("fig3", |b| {
        b.iter(|| black_box(figures::fig3(Scale::Quick)))
    });
    g.bench_function("fig5", |b| b.iter(|| black_box(figures::fig5())));
    g.bench_function("fig6", |b| {
        b.iter(|| black_box(figures::fig6(Scale::Quick)))
    });
    g.bench_function("fig7", |b| {
        b.iter(|| black_box(figures::fig7(Scale::Quick)))
    });
    g.bench_function("fig8", |b| {
        b.iter(|| black_box(figures::fig8(Scale::Quick)))
    });
    g.bench_function("fig9", |b| {
        b.iter(|| black_box(figures::fig9(Scale::Quick)))
    });
    g.bench_function("fig10", |b| {
        b.iter(|| black_box(figures::fig10(Scale::Quick)))
    });
    g.bench_function("fig11", |b| {
        b.iter(|| black_box(figures::fig11(Scale::Quick)))
    });
    g.bench_function("fig12", |b| {
        b.iter(|| black_box(figures::fig12(Scale::Quick)))
    });
    g.bench_function("fig13", |b| {
        b.iter(|| black_box(figures::fig13(Scale::Quick)))
    });
    g.bench_function("tofino_report", |b| {
        b.iter(|| black_box(figures::tofino_report()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
