//! Conservative-PDES scaling: wall time of the *run phase* of one
//! fat-tree workload at 1/2/4/8 shards (PERFORMANCE.md "Scaling").
//!
//! Topology construction and flow scheduling happen in `iter_batched`
//! setup so the timed region is exactly the engine — the serial event
//! loop at 1 shard, `run_sharded_until_idle` otherwise. Every variant
//! replays the same seed, so by the CONCURRENCY.md determinism contract
//! the simulated outcome is byte-identical across the row; only the
//! wall clock differs. A single-hardware-thread host therefore measures
//! the engine's partitioning overhead (and the smaller-queue locality
//! win at k=16) rather than parallel speedup — see PERFORMANCE.md for
//! how to read the numbers on 1-core CI versus a multicore box.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ecnsharp_aqm::DropTail;
use ecnsharp_experiments::{Scheme, SchemeParams};
use ecnsharp_net::topology::fat_tree;
use ecnsharp_net::{FlowId, Network, PortConfig, ShardPlan};
use ecnsharp_sim::{Duration, Rate, Rng, SimTime};
use ecnsharp_transport::{TcpConfig, TcpStack};
use ecnsharp_workload::{dists, Pattern, RttVariation, TrafficSpec};
use std::hint::black_box;

const FLOWS: u64 = 200;
const SEED: u64 = 11;

/// Build the k-ary fat-tree with ECN# switch ports and DCTCP endpoints,
/// schedule the all-to-all web-search workload, and cut the shard plan —
/// everything the run phase needs, none of it timed.
fn setup(k: usize, shards: u32) -> (Network, Option<ShardPlan>) {
    let rtt = RttVariation::sim_3x();
    let rate = Rate::from_gbps(10);
    let params = SchemeParams::derive(&rtt, rate);
    let scheme = Scheme::EcnSharp(None);
    let link_delay = Duration::from_nanos(rtt.min().as_nanos() / 12);
    let topo = fat_tree(
        SEED,
        k,
        rate,
        rate,
        link_delay,
        |_| TcpStack::boxed(TcpConfig::dctcp()),
        || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
        || params.port(&scheme, 200_000, 0xFA7),
    );
    let spec = TrafficSpec {
        cdf: dists::web_search(),
        load: 0.5,
        bottleneck: rate,
        pattern: Pattern::AllToAll {
            hosts: topo.hosts.clone(),
        },
        rtt,
        class: 0,
        start: SimTime::ZERO,
    };
    let n_hosts = topo.hosts.len();
    let mut rng = Rng::seed_from_u64(SEED ^ 0x1EAF);
    let mean_gap = spec.mean_interarrival() / n_hosts as u64;
    let mut t = SimTime::ZERO;
    let plan = (shards >= 2).then(|| topo.shard_plan(shards));
    let mut net = topo.net;
    for f in 0..FLOWS {
        t += rng.exp_duration(mean_gap);
        let mut cmds = spec.generate(1, 1 + f, &mut rng);
        let (_, mut cmd) = cmds.pop().expect("one command per call");
        cmd.flow = FlowId(1 + f);
        net.schedule_flow(t, cmd);
    }
    (net, plan)
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_scaling");
    g.sample_size(5);
    for k in [8usize, 16] {
        for shards in [1u32, 2, 4, 8] {
            g.bench_function(&format!("fat_tree_k{k}_s{shards}"), |b| {
                b.iter_batched(
                    || setup(k, shards),
                    |(mut net, plan)| {
                        match &plan {
                            Some(p) => {
                                net.run_sharded_until_idle(p);
                            }
                            None => {
                                net.run_until_idle();
                            }
                        }
                        black_box(net.steps())
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
