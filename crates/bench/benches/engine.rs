//! Simulator-core throughput: how many events/packets per second the
//! engine sustains. These set the wall-clock budget of the full-fidelity
//! figure runs (millions of packets each).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ecnsharp_aqm::{DctcpRed, DropTail};
use ecnsharp_net::topology::{dumbbell, Dumbbell};
use ecnsharp_net::{FlowCmd, FlowId, PortConfig};
use ecnsharp_sim::{Duration, EventQueue, Rate, Rng, SimTime};
use ecnsharp_transport::{TcpConfig, TcpStack};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("push_pop_10k", |b| {
        let mut rng = Rng::seed_from_u64(1);
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000_000)).collect();
        b.iter_batched(
            || times.clone(),
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.into_iter().enumerate() {
                    q.schedule(SimTime::from_nanos(t), i);
                }
                let mut sum = 0usize;
                while let Some((_, e)) = q.pop() {
                    sum += e;
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_timer_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("timer_wheel");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    // The RTO pattern: every flow re-arms its timer on each ACK, and almost
    // no deadline ever fires. Measures the O(1) cancel+re-arm path.
    g.bench_function("rearm_churn_10k", |b| {
        let mut rng = Rng::seed_from_u64(2);
        let deadlines: Vec<u64> = (0..n).map(|_| rng.range_u64(1_000, 10_000_000)).collect();
        b.iter_batched(
            || deadlines.clone(),
            |deadlines| {
                let mut q: EventQueue<usize> = EventQueue::new();
                const FLOWS: usize = 64;
                let mut tokens = [None; FLOWS];
                for (i, after) in deadlines.into_iter().enumerate() {
                    let slot = i % FLOWS;
                    tokens[slot] =
                        Some(q.rearm_timer(tokens[slot], SimTime::from_nanos(after), slot));
                }
                let mut sum = 0usize;
                while let Some((_, e)) = q.pop() {
                    sum += e;
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
    // Same-tick incast burst: thousands of events landing in one bucket,
    // exercising the refill fast path (single-run reverse, no sort).
    g.bench_function("same_tick_burst_10k", |b| {
        b.iter_batched(
            || (),
            |()| {
                let mut q: EventQueue<usize> = EventQueue::new();
                let t = SimTime::from_nanos(2_000);
                for i in 0..n as usize {
                    q.schedule(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, e)) = q.pop() {
                    sum += e;
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Drive an egress port through `n` enqueue/drain cycles with the given
/// subscriber attached — the telemetry hot path in isolation. The port
/// arrives from `iter_batched` setup so its 1 MB FIFO pre-allocation
/// never lands inside the timed region.
fn port_churn<S: ecnsharp_net::Subscriber>(
    port: &mut ecnsharp_net::EgressPort,
    arena: &mut ecnsharp_net::RingArena,
    sub: &mut S,
    n: u64,
) -> u64 {
    let (src, dst) = (ecnsharp_net::NodeId(0), ecnsharp_net::NodeId(1));
    let flow = FlowId(1);
    let mut now = SimTime::ZERO;
    let mut popped = 0u64;
    for i in 0..n {
        port.bench_enqueue(
            now,
            ecnsharp_net::Packet::data(flow, src, dst, i * 1_500, 1_500),
            arena,
            sub,
        );
        // Drain in small batches so both the enqueue and dequeue emission
        // sites run with a non-trivial standing queue.
        if i % 8 == 7 {
            while let Some((_, tx)) = port.bench_next_tx(now, || 0.5, arena, sub) {
                now += tx;
                popped += 1;
            }
        }
        now += Duration::from_nanos(100);
    }
    while let Some((_, tx)) = port.bench_next_tx(now, || 0.5, arena, sub) {
        now += tx;
        popped += 1;
    }
    popped
}

fn churn_port() -> ecnsharp_net::EgressPort {
    ecnsharp_net::port::bench_port(PortConfig::fifo(
        1_000_000,
        Box::new(DctcpRed::with_threshold(65_000)),
    ))
}

/// The zero-cost claim of OBSERVABILITY.md: with telemetry compiled in
/// but only the no-op subscriber attached, the port fast path must cost
/// what it costs with telemetry compiled out. `bench-diff --check` holds
/// this group to a 3% budget (vs 25% for the engine groups), so the
/// bench is deliberately long (40k packets) and allocation-free in the
/// timed region to keep run-to-run noise under that bar.
fn bench_telemetry_noop(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_noop");
    g.sample_size(40);
    let n = 40_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("port_churn_40k_noop", |b| {
        b.iter_batched(
            churn_port,
            |mut port| {
                black_box(port_churn(
                    &mut port,
                    &mut ecnsharp_net::RingArena::new(),
                    &mut ecnsharp_net::NoopSubscriber,
                    black_box(n),
                ))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Same workload with a real `MetricsAggregator` attached: prices the
/// O(1) counter bumps. Lives in its own group on the routine 25% budget
/// — the 3% gate belongs to the no-op claim, not the aggregator.
fn bench_telemetry_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_cost");
    g.sample_size(40);
    let n = 40_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("port_churn_40k_metrics", |b| {
        b.iter_batched(
            churn_port,
            |mut port| {
                let mut sub = ecnsharp_telemetry::MetricsAggregator::new();
                let mut arena = ecnsharp_net::RingArena::new();
                let popped = port_churn(&mut port, &mut arena, &mut sub, black_box(n));
                black_box((popped, sub))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn transfer(d: &mut Dumbbell, bytes: u64) {
    let (a, b) = (d.a, d.b);
    d.net.schedule_flow(
        d.net.now(),
        FlowCmd {
            flow: FlowId(d.net.records().len() as u64 + 1),
            src: a,
            dst: b,
            size: bytes,
            class: 0,
            extra_delay: Duration::ZERO,
        },
    );
    d.net.run_until_idle();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let mb = 10_000_000u64;
    g.throughput(Throughput::Bytes(mb));
    g.bench_function("dctcp_10mb_transfer", |b| {
        b.iter_batched(
            || {
                dumbbell(
                    1,
                    Rate::from_gbps(40),
                    Rate::from_gbps(10),
                    Duration::from_micros(5),
                    TcpStack::boxed(TcpConfig::dctcp()),
                    TcpStack::boxed(TcpConfig::dctcp()),
                    || PortConfig::fifo(4_000_000, Box::new(DropTail::new())),
                    PortConfig::fifo(1_000_000, Box::new(DctcpRed::with_threshold(65_000))),
                )
            },
            |mut d| {
                transfer(&mut d, mb);
                black_box(d.net.steps())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_timer_wheel,
    bench_telemetry_noop,
    bench_telemetry_cost,
    bench_end_to_end
);
criterion_main!(benches);
