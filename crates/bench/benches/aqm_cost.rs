//! Per-packet decision cost of every AQM. The §4 claim is that ECN♯ runs
//! at line rate on Tofino; the software analogue is that the decision path
//! is O(1) — a few compares and register updates — for both the reference
//! algorithm and the match-action pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ecnsharp_aqm::red::{Red, RedConfig};
use ecnsharp_aqm::{Aqm, CoDel, DctcpRed, Pie, PieConfig, QueueState, Tcn};
use ecnsharp_core::{EcnSharp, EcnSharpConfig};
use ecnsharp_sim::{Duration, Rate, SimTime};
use ecnsharp_tofino::{TofinoEcnSharp, WrapCmp};
use std::hint::black_box;

fn drive(aqm: &mut dyn Aqm, n: u64) -> u64 {
    let q = QueueState {
        backlog_bytes: 150_000,
        backlog_pkts: 100,
        capacity_bytes: 1_000_000,
        drain_rate: Rate::from_gbps(10),
    };
    let mut marks = 0u64;
    for k in 0..n {
        // ~line-rate spacing, sojourn oscillating around the thresholds.
        let now = SimTime::from_nanos(k * 1_230);
        let sojourn_ns = 50_000 + (k % 7) * 45_000;
        let pkt = ecnsharp_aqm::PacketView {
            bytes: 1_538,
            ect: true,
            enqueued_at: now - Duration::from_nanos(sojourn_ns),
        };
        if aqm.on_enqueue(now, &q, &pkt) != ecnsharp_aqm::EnqueueVerdict::Admit {
            marks += 1;
        }
        if aqm.on_dequeue(now, &q, &pkt) != ecnsharp_aqm::DequeueVerdict::Pass {
            marks += 1;
        }
    }
    marks
}

fn bench_aqm_decisions(c: &mut Criterion) {
    let mut g = c.benchmark_group("aqm_per_packet");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    let cfg = EcnSharpConfig::paper_testbed();

    g.bench_function("dctcp_red", |b| {
        let mut a = DctcpRed::with_threshold(250_000);
        b.iter(|| black_box(drive(&mut a, n)))
    });
    g.bench_function("red_classic", |b| {
        let mut a = Red::new(RedConfig::default(), 7);
        b.iter(|| black_box(drive(&mut a, n)))
    });
    g.bench_function("codel", |b| {
        let mut a = CoDel::new(Duration::from_micros(85), Duration::from_micros(200));
        b.iter(|| black_box(drive(&mut a, n)))
    });
    g.bench_function("tcn", |b| {
        let mut a = Tcn::new(Duration::from_micros(200));
        b.iter(|| black_box(drive(&mut a, n)))
    });
    g.bench_function("pie", |b| {
        let mut a = Pie::new(PieConfig::default(), 7);
        b.iter(|| black_box(drive(&mut a, n)))
    });
    g.bench_function("ecnsharp_reference", |b| {
        let mut a = EcnSharp::new(cfg);
        b.iter(|| black_box(drive(&mut a, n)))
    });
    g.bench_function("ecnsharp_tofino_pipeline", |b| {
        let mut a = TofinoEcnSharp::new(cfg, 128, 0, WrapCmp::CorrectedLt);
        b.iter(|| black_box(drive(&mut a, n)))
    });
    g.finish();
}

criterion_group!(benches, bench_aqm_decisions);
criterion_main!(benches);
