//! Strict priority scheduling: class 0 always preempts class 1, which
//! preempts class 2, and so on. Starvation of low classes is by design;
//! the DWRR experiments use it as a contrast case.

use crate::{Dequeued, Scheduler};
use std::collections::VecDeque;

/// Strict priority over `n` classes (0 = highest).
pub struct StrictPriority<P> {
    queues: Vec<VecDeque<(u64, P)>>,
    bytes: Vec<u64>,
    total_bytes: u64,
    total_pkts: u64,
}

impl<P> StrictPriority<P> {
    /// Create with `n` priority levels.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one priority level");
        StrictPriority {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            bytes: vec![0; n],
            total_bytes: 0,
            total_pkts: 0,
        }
    }
}

impl<P: Send> Scheduler<P> for StrictPriority<P> {
    fn classes(&self) -> usize {
        self.queues.len()
    }

    fn enqueue(&mut self, class: usize, bytes: u64, item: P) {
        self.queues[class].push_back((bytes, item));
        self.bytes[class] += bytes;
        self.total_bytes += bytes;
        self.total_pkts += 1;
    }

    fn dequeue(&mut self) -> Option<Dequeued<P>> {
        for (class, q) in self.queues.iter_mut().enumerate() {
            if let Some((bytes, item)) = q.pop_front() {
                self.bytes[class] -= bytes;
                self.total_bytes -= bytes;
                self.total_pkts -= 1;
                return Some(Dequeued { class, bytes, item });
            }
        }
        None
    }

    fn backlog_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn backlog_pkts(&self) -> u64 {
        self.total_pkts
    }

    fn class_backlog_bytes(&self, class: usize) -> u64 {
        self.bytes[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_priority_always_first() {
        let mut s = StrictPriority::new(3);
        s.enqueue(2, 100, "low");
        s.enqueue(0, 100, "high");
        s.enqueue(1, 100, "mid");
        let order: Vec<&str> = std::iter::from_fn(|| s.dequeue().map(|d| d.item)).collect();
        assert_eq!(order, vec!["high", "mid", "low"]);
    }

    #[test]
    fn starves_low_class_while_high_backlogged() {
        let mut s = StrictPriority::new(2);
        for i in 0..100u32 {
            s.enqueue(0, 100, i);
            s.enqueue(1, 100, 1000 + i);
        }
        for _ in 0..100 {
            assert_eq!(s.dequeue().unwrap().class, 0);
        }
        assert_eq!(s.dequeue().unwrap().class, 1);
    }

    #[test]
    fn accounting() {
        let mut s = StrictPriority::new(2);
        s.enqueue(0, 10, ());
        s.enqueue(1, 20, ());
        assert_eq!(s.backlog_bytes(), 30);
        assert_eq!(s.class_backlog_bytes(1), 20);
        s.dequeue();
        s.dequeue();
        assert!(s.is_empty());
        assert!(s.dequeue().is_none());
    }
}
