//! Deficit Weighted Round Robin (Shreedhar & Varghese, SIGCOMM'95).
//!
//! Each class has a weight; one round visits every backlogged class and
//! grants it `weight × quantum` additional byte credit ("deficit"). A class
//! transmits head-of-line packets while its deficit covers them; leftover
//! deficit carries to the next round, which is what makes the long-run
//! served-byte ratios converge to the weights regardless of packet sizes.
//! An emptied class forfeits its deficit (standard DRR rule).
//!
//! This is the scheduler of the paper's §5.4 experiment: 3 services with
//! weights 2:1:1, under which ECN♯ must both preserve the 2:1:1 goodput
//! split and still kill persistent queues.

use crate::{Dequeued, Scheduler};
use std::collections::VecDeque;

struct Class<P> {
    q: VecDeque<(u64, P)>,
    bytes: u64,
    weight: u64,
    deficit: u64,
}

/// Deficit Weighted Round Robin over `P`.
pub struct Dwrr<P> {
    classes: Vec<Class<P>>,
    /// Byte quantum granted per unit weight per round; should be at least
    /// one MTU so every round can serve at least one packet.
    quantum: u64,
    /// Next class index to visit.
    cursor: usize,
    /// Whether the class under the cursor has already received its quantum
    /// for the current visit (we may be mid-service of that class).
    in_service: bool,
    total_bytes: u64,
    total_pkts: u64,
}

impl<P> Dwrr<P> {
    /// Create with one entry per class giving its weight.
    ///
    /// # Panics
    /// If `weights` is empty, any weight is zero, or `quantum` is zero.
    pub fn new(weights: &[u64], quantum: u64) -> Self {
        assert!(!weights.is_empty(), "DWRR needs at least one class");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        assert!(quantum > 0, "quantum must be positive");
        Dwrr {
            classes: weights
                .iter()
                .map(|&w| Class {
                    q: VecDeque::new(),
                    bytes: 0,
                    weight: w,
                    deficit: 0,
                })
                .collect(),
            quantum,
            cursor: 0,
            in_service: false,
            total_bytes: 0,
            total_pkts: 0,
        }
    }

    /// The configured weights.
    pub fn weights(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.weight).collect()
    }
}

impl<P: Send> Scheduler<P> for Dwrr<P> {
    fn classes(&self) -> usize {
        self.classes.len()
    }

    fn enqueue(&mut self, class: usize, bytes: u64, item: P) {
        let c = &mut self.classes[class];
        c.q.push_back((bytes, item));
        c.bytes += bytes;
        self.total_bytes += bytes;
        self.total_pkts += 1;
    }

    fn dequeue(&mut self) -> Option<Dequeued<P>> {
        if self.total_pkts == 0 {
            return None;
        }
        // Each full sweep grants every backlogged class `weight × quantum`
        // extra deficit, so a head packet of any finite size is eventually
        // servable: the loop always terminates while backlog exists.
        loop {
            let idx = self.cursor;
            let n = self.classes.len();
            let quantum = self.quantum;
            let c = &mut self.classes[idx];
            if c.q.is_empty() {
                // Idle classes forfeit deficit and are skipped.
                c.deficit = 0;
                self.in_service = false;
                self.cursor = (idx + 1) % n;
                continue;
            }
            if !self.in_service {
                // First visit of this round: grant the quantum exactly once.
                c.deficit += c.weight * quantum;
                self.in_service = true;
            }
            // Non-empty was checked above; a None head simply falls through
            // to the deficit-carry branch instead of aborting the sim.
            let head_bytes = c.q.front().map(|&(b, _)| b).unwrap_or(u64::MAX);
            if c.deficit >= head_bytes {
                if let Some((bytes, item)) = c.q.pop_front() {
                    c.deficit -= bytes;
                    c.bytes -= bytes;
                    self.total_bytes -= bytes;
                    self.total_pkts -= 1;
                    if c.q.is_empty() {
                        // Standard DRR: an emptied class forfeits its deficit.
                        c.deficit = 0;
                        self.in_service = false;
                        self.cursor = (idx + 1) % n;
                    }
                    // Otherwise stay mid-service: the next call continues with
                    // the remaining deficit, without a fresh grant.
                    return Some(Dequeued {
                        class: idx,
                        bytes,
                        item,
                    });
                }
            }
            // Deficit exhausted for this visit: carry it and move on.
            self.in_service = false;
            self.cursor = (idx + 1) % n;
        }
    }

    fn backlog_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn backlog_pkts(&self) -> u64 {
        self.total_pkts
    }

    fn class_backlog_bytes(&self, class: usize) -> u64 {
        self.classes[class].bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::served_ratio;
    use proptest::prelude::*;

    #[test]
    fn paper_weights_2_1_1() {
        let mut d = Dwrr::new(&[2, 1, 1], 1500);
        let served = served_ratio(&mut d, 2_000, 1_500, 4_000);
        let total: u64 = served.iter().sum();
        let frac: Vec<f64> = served.iter().map(|&s| s as f64 / total as f64).collect();
        assert!((frac[0] - 0.5).abs() < 0.02, "{frac:?}");
        assert!((frac[1] - 0.25).abs() < 0.02, "{frac:?}");
        assert!((frac[2] - 0.25).abs() < 0.02, "{frac:?}");
    }

    #[test]
    fn single_class_is_fifo() {
        let mut d = Dwrr::new(&[1], 1500);
        for i in 0..50u32 {
            d.enqueue(0, 1500, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| d.dequeue().map(|x| x.item)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn idle_class_capacity_redistributed() {
        // Class 0 idle: classes 1 and 2 split everything 1:1.
        let mut d = Dwrr::new(&[2, 1, 1], 1500);
        for i in 0..1_000u32 {
            d.enqueue(1, 1_500, i);
            d.enqueue(2, 1_500, i);
        }
        let mut served = [0u64; 3];
        for _ in 0..1_000 {
            let x = d.dequeue().unwrap();
            served[x.class] += x.bytes;
        }
        assert_eq!(served[0], 0);
        let ratio = served[1] as f64 / served[2] as f64;
        assert!((ratio - 1.0).abs() < 0.05, "{served:?}");
    }

    #[test]
    fn variable_packet_sizes_still_weighted() {
        // Class 0 sends large packets, class 1 small ones; byte ratio must
        // still approach 1:1 for equal weights.
        let mut d = Dwrr::new(&[1, 1], 1500);
        for i in 0..6_000u32 {
            d.enqueue(0, 1_500, i);
        }
        for i in 0..60_000u32 {
            d.enqueue(1, 150, i);
        }
        let mut served = [0u64; 2];
        for _ in 0..20_000 {
            let x = d.dequeue().unwrap();
            served[x.class] += x.bytes;
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 1.0).abs() < 0.05, "{served:?}");
    }

    #[test]
    fn byte_and_pkt_accounting() {
        let mut d = Dwrr::new(&[1, 3], 1000);
        d.enqueue(0, 700, "a");
        d.enqueue(1, 300, "b");
        assert_eq!(d.backlog_bytes(), 1_000);
        assert_eq!(d.backlog_pkts(), 2);
        assert_eq!(d.class_backlog_bytes(0), 700);
        assert_eq!(d.class_backlog_bytes(1), 300);
        d.dequeue().unwrap();
        d.dequeue().unwrap();
        assert!(d.is_empty());
        assert_eq!(d.backlog_bytes(), 0);
        assert!(d.dequeue().is_none());
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let _ = Dwrr::<u32>::new(&[1, 0], 1500);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_weights_rejected() {
        let _ = Dwrr::<u32>::new(&[], 1500);
    }

    proptest! {
        /// Long-run served-byte fractions approach weights for any weight
        /// vector (all classes backlogged, MTU packets).
        #[test]
        fn prop_served_matches_weights(
            weights in proptest::collection::vec(1u64..8, 2..5),
        ) {
            // Serve fewer packets than any single class holds so every
            // class stays backlogged throughout (otherwise the served
            // ratio trivially collapses to the enqueued ratio).
            let mut d = Dwrr::new(&weights, 1500);
            let served = served_ratio(&mut d, 4_000, 1_500, 4_000);
            let total: u64 = served.iter().sum();
            let wsum: u64 = weights.iter().sum();
            for (s, w) in served.iter().zip(&weights) {
                let got = *s as f64 / total as f64;
                let want = *w as f64 / wsum as f64;
                prop_assert!((got - want).abs() < 0.03,
                    "weights {weights:?} served {served:?}");
            }
        }

        /// Work conservation: with any backlog, dequeue never returns None
        /// until exactly backlog_pkts() items were served.
        #[test]
        fn prop_work_conserving(
            pkts in proptest::collection::vec((0usize..3, 60u64..1500), 1..200),
        ) {
            let mut d = Dwrr::new(&[2, 1, 1], 1500);
            for (i, &(c, b)) in pkts.iter().enumerate() {
                d.enqueue(c, b, i as u32);
            }
            let n = d.backlog_pkts();
            let mut seen = std::collections::BTreeSet::new();
            for _ in 0..n {
                let x = d.dequeue();
                prop_assert!(x.is_some());
                prop_assert!(seen.insert(x.unwrap().item), "duplicate item");
            }
            prop_assert!(d.dequeue().is_none());
            prop_assert_eq!(d.backlog_bytes(), 0);
        }

        /// Per-class FIFO order is preserved.
        #[test]
        fn prop_per_class_fifo(
            pkts in proptest::collection::vec(0usize..3, 1..300),
        ) {
            let mut d = Dwrr::new(&[2, 1, 1], 1500);
            for (i, &c) in pkts.iter().enumerate() {
                d.enqueue(c, 1500, i as u32);
            }
            let mut last: [Option<u32>; 3] = [None; 3];
            while let Some(x) = d.dequeue() {
                if let Some(prev) = last[x.class] {
                    prop_assert!(x.item > prev, "class {} out of order", x.class);
                }
                last[x.class] = Some(x.item);
            }
        }
    }
}
