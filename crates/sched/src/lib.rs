//! # ecnsharp-sched
//!
//! Packet schedulers for switch egress ports, generic over the queued item
//! type so the crate has no dependency on the network model.
//!
//! A [`Scheduler`] owns one or more FIFO sub-queues ("classes"/"services")
//! and decides which class supplies the next packet for transmission:
//!
//! - [`Fifo`] — a single queue (the degenerate scheduler every basic port
//!   uses);
//! - [`Dwrr`] — Deficit Weighted Round Robin (Shreedhar & Varghese), the
//!   scheduler of the paper's §5.4 experiment (3 services, weights 2:1:1);
//! - [`StrictPriority`] — lower class index always wins;
//! - [`RoundRobin`] — packet-by-packet round robin (unweighted).
//!
//! Sojourn-time AQMs (TCN, ECN♯) are scheduler-agnostic by design: the AQM
//! sits at the port and sees packets in whatever order the scheduler
//! releases them. This crate is what makes that claim testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dwrr;
pub mod fifo;
pub mod prio;
pub mod rr;

pub use dwrr::Dwrr;
pub use fifo::Fifo;
pub use prio::StrictPriority;
pub use rr::RoundRobin;

/// A multi-class packet scheduler.
///
/// `P` is the queued item type; the scheduler additionally tracks each
/// item's wire size in bytes, which weighted schedulers need for their
/// accounting.
pub trait Scheduler<P>: Send {
    /// Number of classes this scheduler serves.
    fn classes(&self) -> usize;

    /// Append an item of `bytes` bytes to class `class`.
    ///
    /// # Panics
    /// If `class >= self.classes()`.
    fn enqueue(&mut self, class: usize, bytes: u64, item: P);

    /// Remove and return the next item to transmit, with its class and
    /// size, or `None` when all classes are empty.
    fn dequeue(&mut self) -> Option<Dequeued<P>>;

    /// Total queued bytes across all classes.
    fn backlog_bytes(&self) -> u64;

    /// Total queued items across all classes.
    fn backlog_pkts(&self) -> u64;

    /// Queued bytes in one class.
    fn class_backlog_bytes(&self, class: usize) -> u64;

    /// `true` when nothing is queued.
    fn is_empty(&self) -> bool {
        self.backlog_pkts() == 0
    }
}

/// An item released by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dequeued<P> {
    /// The class it was queued in.
    pub class: usize,
    /// Its recorded size in bytes.
    pub bytes: u64,
    /// The item itself.
    pub item: P,
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Drain a scheduler completely, returning (class, bytes) in service
    /// order.
    pub fn drain<P, S: Scheduler<P>>(s: &mut S) -> Vec<(usize, u64)> {
        std::iter::from_fn(|| s.dequeue().map(|d| (d.class, d.bytes))).collect()
    }

    /// Served bytes per class while all classes stay backlogged: enqueue
    /// `n_per_class` packets of `pkt_bytes` each, then count the first
    /// `serve` dequeues.
    pub fn served_ratio<S: Scheduler<u32>>(
        s: &mut S,
        n_per_class: usize,
        pkt_bytes: u64,
        serve: usize,
    ) -> Vec<u64> {
        let k = s.classes();
        for i in 0..n_per_class {
            for c in 0..k {
                s.enqueue(c, pkt_bytes, (i * k + c) as u32);
            }
        }
        let mut served = vec![0u64; k];
        for _ in 0..serve {
            let d = s.dequeue().expect("enough backlog");
            served[d.class] += d.bytes;
        }
        served
    }
}

// Compile-time shard-safety proofs: schedulers sit on ports inside the
// `Network` a sharded engine (ROADMAP item 1) moves across worker
// threads — which is why the `Scheduler` trait itself requires `Send`.
// Lint rules R7/R8 guard the source text; these assertions guard the
// types.
const fn assert_send<T: Send>() {}
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<Box<dyn Scheduler<u64>>>();
    assert_send_sync::<Dwrr<u64>>();
    assert_send_sync::<Fifo<u64>>();
    assert_send_sync::<StrictPriority<u64>>();
    assert_send_sync::<RoundRobin<u64>>();
};
