//! Single-queue FIFO scheduler: the default for every port that doesn't
//! need service differentiation.

use crate::{Dequeued, Scheduler};
use std::collections::VecDeque;

/// First-in first-out, one class.
pub struct Fifo<P> {
    q: VecDeque<(u64, P)>,
    bytes: u64,
}

impl<P> Fifo<P> {
    /// Create an empty FIFO.
    pub fn new() -> Self {
        Fifo {
            q: VecDeque::new(),
            bytes: 0,
        }
    }

    /// Create an empty FIFO with room for `n` packets before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        Fifo {
            q: VecDeque::with_capacity(n),
            bytes: 0,
        }
    }
}

impl<P> Default for Fifo<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Send> Scheduler<P> for Fifo<P> {
    fn classes(&self) -> usize {
        1
    }

    fn enqueue(&mut self, class: usize, bytes: u64, item: P) {
        assert_eq!(class, 0, "FIFO has a single class");
        self.bytes += bytes;
        self.q.push_back((bytes, item));
    }

    fn dequeue(&mut self) -> Option<Dequeued<P>> {
        let (bytes, item) = self.q.pop_front()?;
        self.bytes -= bytes;
        Some(Dequeued {
            class: 0,
            bytes,
            item,
        })
    }

    fn backlog_bytes(&self) -> u64 {
        self.bytes
    }

    fn backlog_pkts(&self) -> u64 {
        self.q.len() as u64
    }

    fn class_backlog_bytes(&self, class: usize) -> u64 {
        assert_eq!(class, 0);
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::drain;

    #[test]
    fn preserves_order() {
        let mut f = Fifo::new();
        for i in 0..10u32 {
            f.enqueue(0, 100 + i as u64, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| f.dequeue().map(|d| d.item)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn byte_accounting() {
        let mut f = Fifo::new();
        f.enqueue(0, 1500, "a");
        f.enqueue(0, 64, "b");
        assert_eq!(f.backlog_bytes(), 1564);
        assert_eq!(f.backlog_pkts(), 2);
        assert_eq!(f.class_backlog_bytes(0), 1564);
        let d = f.dequeue().unwrap();
        assert_eq!((d.class, d.bytes, d.item), (0, 1500, "a"));
        assert_eq!(f.backlog_bytes(), 64);
        drain(&mut f);
        assert!(f.is_empty());
        assert_eq!(f.backlog_bytes(), 0);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut f: Fifo<u32> = Fifo::new();
        assert!(f.dequeue().is_none());
    }

    #[test]
    #[should_panic(expected = "single class")]
    fn rejects_other_classes() {
        let mut f = Fifo::new();
        f.enqueue(1, 100, ());
    }
}
