//! Unweighted packet-by-packet round robin: DWRR's simpler cousin, fair in
//! packets rather than bytes.

use crate::{Dequeued, Scheduler};
use std::collections::VecDeque;

/// Packet-granularity round robin over `n` classes.
pub struct RoundRobin<P> {
    queues: Vec<VecDeque<(u64, P)>>,
    bytes: Vec<u64>,
    cursor: usize,
    total_bytes: u64,
    total_pkts: u64,
}

impl<P> RoundRobin<P> {
    /// Create with `n` classes.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one class");
        RoundRobin {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            bytes: vec![0; n],
            cursor: 0,
            total_bytes: 0,
            total_pkts: 0,
        }
    }
}

impl<P: Send> Scheduler<P> for RoundRobin<P> {
    fn classes(&self) -> usize {
        self.queues.len()
    }

    fn enqueue(&mut self, class: usize, bytes: u64, item: P) {
        self.queues[class].push_back((bytes, item));
        self.bytes[class] += bytes;
        self.total_bytes += bytes;
        self.total_pkts += 1;
    }

    fn dequeue(&mut self) -> Option<Dequeued<P>> {
        if self.total_pkts == 0 {
            return None;
        }
        let n = self.queues.len();
        for _ in 0..n {
            let idx = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            if let Some((bytes, item)) = self.queues[idx].pop_front() {
                self.bytes[idx] -= bytes;
                self.total_bytes -= bytes;
                self.total_pkts -= 1;
                return Some(Dequeued {
                    class: idx,
                    bytes,
                    item,
                });
            }
        }
        // total_pkts > 0 with every ring slot empty means the counters
        // desynced — a bug, but one we surface in debug builds and degrade
        // to "empty" in release rather than aborting a long simulation.
        debug_assert!(false, "backlogged RR found no packet");
        None
    }

    fn backlog_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn backlog_pkts(&self) -> u64 {
        self.total_pkts
    }

    fn class_backlog_bytes(&self, class: usize) -> u64 {
        self.bytes[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_between_backlogged_classes() {
        let mut s = RoundRobin::new(2);
        for i in 0..6u32 {
            s.enqueue((i % 2) as usize, 100, i);
        }
        let classes: Vec<usize> = std::iter::from_fn(|| s.dequeue().map(|d| d.class)).collect();
        assert_eq!(classes, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn skips_empty_classes() {
        let mut s = RoundRobin::new(3);
        s.enqueue(1, 100, "only");
        let d = s.dequeue().unwrap();
        assert_eq!((d.class, d.item), (1, "only"));
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn packet_fairness_not_byte_fairness() {
        // Class 0: big packets; class 1: small. RR serves equal *packets*.
        let mut s = RoundRobin::new(2);
        for i in 0..100u32 {
            s.enqueue(0, 1500, i);
            s.enqueue(1, 100, i);
        }
        let mut pkt_count = [0u32; 2];
        for _ in 0..100 {
            pkt_count[s.dequeue().unwrap().class] += 1;
        }
        assert_eq!(pkt_count[0], 50);
        assert_eq!(pkt_count[1], 50);
    }
}
