//! Piecewise-linear CDFs over flow sizes, in the format the HKUST
//! TrafficGenerator (the paper's testbed traffic tool) uses: a list of
//! `(value, cumulative probability)` points, linearly interpolated.

use ecnsharp_sim::Rng;

/// A piecewise-linear cumulative distribution over `u64` values.
#[derive(Debug, Clone)]
pub struct PiecewiseCdf {
    /// `(value, P[X <= value])`, strictly increasing in both coordinates.
    points: Vec<(f64, f64)>,
}

impl PiecewiseCdf {
    /// Build from `(value, probability)` points. The last probability must
    /// be 1.0; a leading `(v0, 0.0)` anchor is required.
    ///
    /// # Panics
    /// On malformed input (unsorted, probabilities outside `[0, 1]`,
    /// missing anchors).
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        // The anchor must be given as literal 0.0, not merely close to it.
        #[allow(clippy::float_cmp)]
        {
            assert_eq!(points[0].1, 0.0, "first point must have probability 0");
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-12,
            "last point must have probability 1"
        );
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "values must strictly increase: {w:?}");
            assert!(w[0].1 <= w[1].1, "probabilities must not decrease: {w:?}");
        }
        PiecewiseCdf {
            points: points.to_vec(),
        }
    }

    /// Inverse-transform sample.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        self.quantile(rng.f64()).round().max(1.0) as u64
    }

    /// The `p`-quantile (inverse CDF), linearly interpolated.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let mut prev = self.points[0];
        for &pt in &self.points[1..] {
            if p <= pt.1 {
                // Exact equality is the only true division-by-zero in the
                // interpolation below; near-equal segments interpolate fine.
                #[allow(clippy::float_cmp)]
                if pt.1 == prev.1 {
                    return pt.0;
                }
                let f = (p - prev.1) / (pt.1 - prev.1);
                return prev.0 + f * (pt.0 - prev.0);
            }
            prev = pt;
        }
        self.points.last().unwrap().0
    }

    /// `P[X <= v]`, linearly interpolated.
    pub fn cdf(&self, v: f64) -> f64 {
        if v <= self.points[0].0 {
            return 0.0;
        }
        let mut prev = self.points[0];
        for &pt in &self.points[1..] {
            if v <= pt.0 {
                let f = (v - prev.0) / (pt.0 - prev.0);
                return prev.1 + f * (pt.1 - prev.1);
            }
            prev = pt;
        }
        1.0
    }

    /// Analytic mean of the piecewise-linear distribution (trapezoid rule
    /// is exact here: within a segment the density is uniform).
    pub fn mean(&self) -> f64 {
        let mut m = 0.0;
        for w in self.points.windows(2) {
            let ((v0, p0), (v1, p1)) = (w[0], w[1]);
            m += (p1 - p0) * (v0 + v1) / 2.0;
        }
        m
    }

    /// The underlying points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_0_100() -> PiecewiseCdf {
        PiecewiseCdf::new(&[(0.0, 0.0), (100.0, 1.0)])
    }

    #[test]
    // Interpolating the two-point uniform CDF at 0/0.5/1 involves only
    // exactly-representable values.
    #[allow(clippy::float_cmp)]
    fn quantiles_of_uniform() {
        let c = uniform_0_100();
        assert_eq!(c.quantile(0.0), 0.0);
        assert_eq!(c.quantile(0.5), 50.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.mean(), 50.0);
    }

    #[test]
    fn cdf_inverts_quantile() {
        let c = PiecewiseCdf::new(&[(1.0, 0.0), (10.0, 0.3), (100.0, 0.9), (1000.0, 1.0)]);
        for p in [0.1, 0.3, 0.5, 0.9, 0.95] {
            let v = c.quantile(p);
            assert!((c.cdf(v) - p).abs() < 1e-9, "p={p} v={v}");
        }
    }

    #[test]
    fn sample_mean_converges() {
        let c = PiecewiseCdf::new(&[(0.0, 0.0), (10.0, 0.5), (1000.0, 1.0)]);
        let expected = c.mean();
        let mut rng = Rng::seed_from_u64(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| c.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "sampled {mean}, analytic {expected}"
        );
    }

    #[test]
    fn samples_within_support() {
        let c = PiecewiseCdf::new(&[(5.0, 0.0), (50.0, 1.0)]);
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..10_000 {
            let s = c.sample(&mut rng);
            assert!((5..=50).contains(&s), "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "probability 0")]
    fn missing_anchor_rejected() {
        let _ = PiecewiseCdf::new(&[(0.0, 0.1), (1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn unsorted_rejected() {
        let _ = PiecewiseCdf::new(&[(0.0, 0.0), (5.0, 0.5), (3.0, 1.0)]);
    }
}
